// Multi-task defense — §2 imagines network automation as a portfolio
// of tasks ("hundreds or thousands ... concurrently"). This example
// runs three at once on one border pipeline:
//
//   task 1: drop DNS-amplification floods      (confidence >= 90%)
//   task 2: drop spoofed SYN floods            (confidence >= 90%)
//   task 3: rate-limit SSH brute-force sources (20 pps through)
//
// Each task is developed independently from the campus's own labelled
// data, then co-deployed through TaskManager, which enforces the
// combined switch budget. A fresh campus day with all three attacks
// (plus a benign flash crowd to keep everyone honest) scores the
// portfolio.
//
// Run:  ./multi_task_defense
#include <cstdio>

#include "campuslab/control/task_manager.h"
#include "campuslab/testbed/testbed.h"

using namespace campuslab;

namespace {

testbed::TestbedConfig all_attacks(std::uint64_t seed) {
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = seed;
  cfg.scenario.campus.diurnal = false;
  // Pushed in the legacy arming order (dns, syn, ssh, crowd) so the
  // per-phase seeds — and thus emitted traffic — match the old runs.
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .rate(1500)
          .starting_at(Timestamp::from_seconds(4))
          .lasting(Duration::seconds(18)));
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kSynFlood)
          .rate(1500)
          .starting_at(Timestamp::from_seconds(8))
          .lasting(Duration::seconds(14)));
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kSshBruteForce)
          .rate(25)
          .starting_at(Timestamp::from_seconds(2))
          .lasting(Duration::seconds(20)));
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kFlashCrowd)
          .rate(1000)
          .starting_at(Timestamp::from_seconds(10))
          .lasting(Duration::seconds(8)));
  return cfg;
}

control::DeploymentPackage develop(packet::TrafficLabel event,
                                   const char* name,
                                   control::MitigationAction action,
                                   std::uint64_t seed) {
  auto cfg = all_attacks(seed);
  cfg.collector.labeling.binary_target = event;
  cfg.collector.attack_sample_rate = 0.5;
  cfg.collector.seed = seed + 1;
  testbed::Testbed bed(cfg);
  bed.run(Duration::seconds(26));

  control::DevelopmentConfig dev;
  dev.task.name = name;
  dev.task.event = event;
  dev.task.action = action;
  dev.task.rate_limit_pps = 20;
  dev.teacher.n_trees = 20;
  dev.teacher.seed = seed + 2;
  dev.extraction.seed = seed + 3;
  auto result = control::DevelopmentLoop(dev).run(bed.harvest_dataset());
  if (!result.ok()) {
    std::fprintf(stderr, "develop(%s) failed: %s\n", name,
                 result.error().message.c_str());
    std::exit(1);
  }
  std::printf("  %-22s accuracy %.4f  fidelity %.4f  (%s)\n", name,
              result.value().student_holdout_accuracy,
              result.value().holdout_fidelity,
              result.value().resources.to_string().c_str());
  return std::move(result).value();
}

}  // namespace

int main() {
  std::puts("Developing three automation tasks from campus data...");
  const auto amp = develop(packet::TrafficLabel::kDnsAmplification,
                           "amp-ingress-drop",
                           control::MitigationAction::kDrop, 8101);
  const auto syn = develop(packet::TrafficLabel::kSynFlood,
                           "synflood-ingress-drop",
                           control::MitigationAction::kDrop, 8202);
  const auto brute = develop(packet::TrafficLabel::kSshBruteForce,
                             "ssh-brute-rate-limit",
                             control::MitigationAction::kRateLimit, 8303);

  std::puts("\nCo-deploying on one pipeline...");
  control::TaskManager manager(dataplane::ResourceBudget::tofino_like());
  const auto s1 = manager.deploy(amp);
  const auto s2 = manager.deploy(syn);
  const auto s3 = manager.deploy(brute);
  if (!s1.ok() || !s2.ok() || !s3.ok()) {
    std::puts("budget refused a task");
    return 1;
  }
  std::printf("  combined pipeline: %s (budget: 12 stages)\n",
              manager.combined_resources().to_string().c_str());

  std::puts("\nRoad-testing against a fresh campus day with all three "
            "attacks + a benign flash crowd...");
  auto cfg = all_attacks(9999);
  cfg.collector.benign_sample_rate = 0.01;
  cfg.collector.attack_sample_rate = 0.01;
  testbed::Testbed bed(cfg);
  manager.install(bed.network());
  bed.run(Duration::seconds(28));

  std::puts("\nPer-task outcome (ground-truth scored):");
  for (const auto slot : {s1.value(), s2.value(), s3.value()}) {
    const auto& stats = manager.task_stats(slot);
    std::printf("  %-22s dropped %7llu (precision %.4f)\n",
                manager.task(slot).name.c_str(),
                (unsigned long long)stats.dropped,
                stats.drop_precision());
  }

  const auto& acc = bed.network().accounting();
  std::puts("\nNetwork outcome per traffic class "
            "(delivered / reached border):");
  for (std::size_t i = 0; i < packet::kTrafficLabelCount; ++i) {
    const auto tapped = acc.tapped_in.frames[i];
    if (tapped == 0) continue;
    std::printf("  %-18s %8llu / %-8llu (%.4f)\n",
                std::string(to_string(static_cast<packet::TrafficLabel>(i)))
                    .c_str(),
                (unsigned long long)acc.delivered.frames[i],
                (unsigned long long)tapped,
                static_cast<double>(acc.delivered.frames[i]) /
                    static_cast<double>(tapped));
  }
  std::puts("\n(benign — including the flash crowd — sails through; "
            "each attack family is shed by its own task)");
  return 0;
}

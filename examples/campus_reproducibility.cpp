// Cross-campus reproducibility — the paper's §5 proposal in action:
// "open-sourcing the learning algorithms ... and training them with
// data from some other campus networks (each with its own data store)
// suggests a viable path for tackling the much-debated reproducibility
// problem".
//
// Three synthetic universities with different sizes, app mixes and
// address plans each run the SAME open-sourced algorithm on their OWN
// data store. Models are exchanged as serialized artifacts (the data
// never leaves a campus) and every model is evaluated on every campus,
// producing the cross-campus accuracy matrix.
//
// Run:  ./campus_reproducibility
#include <cstdio>

#include "campuslab/control/development_loop.h"
#include "campuslab/ml/metrics.h"
#include "campuslab/testbed/testbed.h"

using namespace campuslab;

namespace {

struct Campus {
  const char* name;
  std::uint64_t seed;
  int wired, wifi;
  double load;
  double attack_pps;
};

testbed::TestbedConfig make_config(const Campus& c) {
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = c.seed;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.campus.wired_clients = c.wired;
  cfg.scenario.campus.wifi_clients = c.wifi;
  cfg.scenario.campus.load_scale = c.load;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .rate(c.attack_pps)
          .starting_at(Timestamp::from_seconds(8))
          .lasting(Duration::seconds(25)));
  cfg.collector.labeling.binary_target =
      packet::TrafficLabel::kDnsAmplification;
  cfg.collector.attack_sample_rate = 0.25;
  cfg.collector.seed = c.seed * 31;
  return cfg;
}

}  // namespace

int main() {
  const Campus campuses[] = {
      {"State U   ", 11, 200, 500, 1.2, 2500},
      {"Tech Inst ", 22, 80, 150, 0.6, 1500},
      {"Liberal C.", 33, 40, 250, 0.4, 3500},
  };
  constexpr int kN = 3;

  // Each campus: collect its own data, run the open-sourced algorithm,
  // export the model as text (the only thing that crosses campuses).
  std::vector<ml::Dataset> local_data;
  std::vector<std::string> exported_models;
  for (const auto& campus : campuses) {
    std::printf("Campus %s: collecting + training locally...\n",
                campus.name);
    testbed::Testbed bed(make_config(campus));
    bed.run(Duration::seconds(40));
    local_data.push_back(bed.harvest_dataset());

    control::DevelopmentConfig dev;  // <- the open-sourced algorithm
    dev.teacher.n_trees = 30;
    dev.teacher.seed = campus.seed;
    dev.extraction.seed = campus.seed + 1;
    const auto package =
        control::DevelopmentLoop(dev).run(local_data.back());
    if (!package.ok()) {
      std::printf("  failed: %s\n", package.error().message.c_str());
      return 1;
    }
    exported_models.push_back(package.value().student.serialize());
    std::printf("  model exported (%zu bytes serialized, accuracy %.3f "
                "on own holdout)\n",
                exported_models.back().size(),
                package.value().student_holdout_accuracy);
  }

  // Cross-evaluation: model i on campus j's data. Note each campus
  // trained on *quantized* features; evaluation quantizes with a grid
  // fitted to the local data, mirroring each campus's own deployment.
  std::puts("\nCross-campus accuracy matrix (rows: trained-on, cols: "
            "evaluated-on):");
  std::printf("             ");
  for (const auto& c : campuses) std::printf("%s  ", c.name);
  std::puts("");
  double diag_sum = 0.0, off_sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    const auto model = ml::DecisionTree::deserialize(exported_models[
        static_cast<std::size_t>(i)]);
    if (!model.ok()) return 1;
    std::printf("  %s ", campuses[i].name);
    for (int j = 0; j < kN; ++j) {
      const auto& data = local_data[static_cast<std::size_t>(j)];
      const auto quantizer = dataplane::Quantizer::fit(data);
      const auto quantized = quantizer.quantize_dataset(data);
      const auto cm = ml::evaluate(model.value(), quantized);
      std::printf("   %.3f    ", cm.accuracy());
      (i == j ? diag_sum : off_sum) += cm.accuracy();
    }
    std::puts("");
  }
  std::printf(
      "\nmean on-campus accuracy:    %.3f\n"
      "mean cross-campus accuracy: %.3f\n",
      diag_sum / kN, off_sum / (kN * (kN - 1)));
  std::puts(
      "-> the open-sourced *algorithm* reproduces across campuses "
      "without sharing any campus's data.");
  return 0;
}

// DDoS mitigation — the paper's running example (§2) through the full
// Figure-2 road to deployment:
//
//   1. operate the campus as a data source while a DNS-amplification
//      attack is in progress; collect labelled per-packet training data
//   2. SLOW LOOP: train the black-box teacher offline, extract the
//      deployable tree (XAI), compile it for the switch, and print the
//      operator-facing trust report + P4 excerpt
//   3. canary: score the model on mirrored traffic of a *new* incident
//   4. promote: enforce "drop attack traffic on ingress if confidence
//      >= 90%" under a safety monitor; print the road-test report
//
// Run:  ./ddos_mitigation
#include <cstdio>

#include "campuslab/control/development_loop.h"
#include "campuslab/control/fast_loop.h"
#include "campuslab/xai/collection_spec.h"
#include "campuslab/testbed/canary.h"
#include "campuslab/testbed/report.h"
#include "campuslab/testbed/safety.h"
#include "campuslab/testbed/testbed.h"

using namespace campuslab;

namespace {

testbed::TestbedConfig incident(std::uint64_t seed, double pps,
                                double start_s, double secs) {
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = seed;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 2800})
          .rate(pps)
          .starting_at(Timestamp::from_seconds(start_s))
          .lasting(Duration::from_seconds(secs)));
  cfg.collector.labeling.binary_target =
      packet::TrafficLabel::kDnsAmplification;
  cfg.collector.attack_sample_rate = 0.25;
  cfg.collector.seed = seed + 7;
  return cfg;
}

}  // namespace

int main() {
  // ---- 1. Data collection during a live incident. --------------------
  std::puts("[1/4] Collecting labelled training data on the campus...");
  testbed::Testbed training_bed(incident(1001, 2000, 10, 40));
  training_bed.run(Duration::seconds(60));
  const auto dataset = training_bed.harvest_dataset();
  const auto counts = dataset.class_counts();
  std::printf("      %zu packet samples (%zu benign-ish, %zu attack)\n",
              dataset.n_rows(), counts[0], counts[1]);

  // ---- 2. Slow development loop. -------------------------------------
  std::puts("\n[2/4] Development loop: train -> extract -> compile...");
  control::DevelopmentConfig dev;
  dev.task = control::AutomationTask::dns_amplification_drop();
  dev.teacher.n_trees = 40;
  dev.teacher.seed = 11;
  dev.extraction.student_max_depth = 5;
  dev.extraction.seed = 12;
  auto package_result = control::DevelopmentLoop(dev).run(dataset);
  if (!package_result.ok()) {
    std::printf("development loop failed: %s\n",
                package_result.error().message.c_str());
    return 1;
  }
  auto& package = package_result.value();
  std::printf(
      "      timings: train %.1f ms, extract %.1f ms, compile %.2f ms\n",
      package.timings.train_us / 1e3, package.timings.extract_us / 1e3,
      package.timings.compile_us / 1e3);
  std::printf("      strategy %s, %s\n", package.strategy.c_str(),
              package.resources.to_string().c_str());
  std::puts("\n--- Operator trust report -----------------------------");
  std::fputs(package.trust.to_string().c_str(), stdout);
  std::puts("--- P4 program (first lines) ---------------------------");
  const auto p4_head = package.p4_source.substr(
      0, package.p4_source.find("control TreeLevel1"));
  std::fputs(p4_head.c_str(), stdout);
  std::puts("... (full program in package.p4_source)");

  // §5: the handoff artifact for a large-network deployment — exactly
  // which telemetry the model needs, nothing more.
  std::vector<bool> reg_mask(features::kPacketFeatureCount, false);
  for (std::size_t f = 0; f < reg_mask.size(); ++f)
    reg_mask[f] = features::is_register_feature(
        static_cast<features::PacketFeature>(f));
  std::puts("");
  std::fputs(
      xai::derive_collection_spec(package.student, reg_mask)
          .to_string()
          .c_str(),
      stdout);

  // ---- 3. Canary on a fresh incident. --------------------------------
  std::puts("\n[3/4] Canary: mirror-only scoring on a new incident...");
  testbed::Testbed canary_bed(incident(2002, 2500, 5, 20));
  auto canary = testbed::CanaryDeployment::create(package);
  if (!canary.ok()) return 1;
  canary.value()->attach(canary_bed);
  canary_bed.run(Duration::seconds(30));
  const auto& cs = canary.value()->stats();
  std::printf(
      "      would-drop precision %.3f, block rate %.3f, benign loss "
      "%.4f over %llu packets\n",
      cs.would_drop_precision(), cs.would_block_rate(),
      cs.would_benign_loss(), (unsigned long long)cs.observed);
  if (!canary.value()->ready_to_promote(0.95, 0.85)) {
    std::puts("      canary says NOT ready; stopping before enforcement");
    return 1;
  }
  std::puts("      canary PASSED -> promoting to enforcement");

  // ---- 4. Enforcement with the safety monitor. -----------------------
  std::puts("\n[4/4] Enforcing at ingress (confidence >= 90%)...");
  testbed::Testbed enforce_bed(incident(3003, 3000, 5, 25));
  auto loop = control::FastLoop::deploy(package);
  if (!loop.ok()) return 1;
  testbed::SafetyMonitor safety(*loop.value(), testbed::SafetyConfig{});
  safety.install(enforce_bed.network());
  enforce_bed.run(Duration::seconds(40));

  const auto report = testbed::make_road_test_report(
      package, *canary.value(), *loop.value(), safety,
      enforce_bed.network());
  std::puts("");
  std::fputs(report.to_string().c_str(), stdout);

  const auto& acc = enforce_bed.network().accounting();
  std::printf(
      "victim-side outcome: %llu attack frames delivered (of %llu that "
      "reached the border)\n",
      (unsigned long long)acc.delivered.attack_frames(),
      (unsigned long long)acc.tapped_in.attack_frames());
  return 0;
}

// Performance diagnosis — the §3 operational need "to be able to
// pinpoint performance problems and notify the service or cloud
// provider(s) in case the root cause is not internal to the campus
// network".
//
// The campus runs synthetic probes and watches link-level telemetry in
// three phases: healthy, an internal problem (access-link congestion
// from a volumetric flood), and an external problem (the upstream
// provider adds 40 ms of delay). A simple localizer reads the same
// signals an operator would and attributes each episode.
//
// Run:  ./performance_diagnosis
#include <cstdio>
#include <string>

#include "campuslab/store/datastore.h"
#include "campuslab/testbed/testbed.h"

using namespace campuslab;

namespace {

struct Telemetry {
  double upstream_extra_delay_ms;  // provider-side signal (probe RTT)
  double access_backlog_ms;        // internal distribution queue
  double upstream_drop_rate;
  double access_drop_rate;
};

Telemetry sample(const sim::CampusNetwork& net, Timestamp now) {
  // Drop rates are computed over the window since the last sample —
  // an operator reads counters as deltas, not lifetime totals.
  static sim::LinkStats prev_up{}, prev_acc{};
  auto windowed = [](const sim::LinkStats& cur, sim::LinkStats& prev) {
    const auto fwd = cur.frames_forwarded - prev.frames_forwarded;
    const auto drop = cur.frames_dropped - prev.frames_dropped;
    prev = cur;
    const auto total = fwd + drop;
    return total == 0 ? 0.0
                      : static_cast<double>(drop) /
                            static_cast<double>(total);
  };
  Telemetry t;
  t.upstream_extra_delay_ms = net.upstream_in().extra_delay().to_millis();
  t.access_backlog_ms =
      net.client_access().queuing_delay(now).to_millis();
  t.upstream_drop_rate = windowed(net.upstream_in().stats(), prev_up);
  t.access_drop_rate = windowed(net.client_access().stats(), prev_acc);
  return t;
}

std::string localize(const Telemetry& t) {
  const bool internal_congestion =
      t.access_backlog_ms > 1.0 || t.access_drop_rate > 0.001;
  const bool provider_delay = t.upstream_extra_delay_ms > 5.0;
  if (internal_congestion && !provider_delay)
    return "INTERNAL (distribution/access congestion) -> fix locally";
  if (provider_delay && !internal_congestion)
    return "EXTERNAL (upstream provider latency) -> notify provider";
  if (provider_delay && internal_congestion)
    return "BOTH internal congestion and provider issue";
  return "healthy";
}

void report(const char* phase, const sim::CampusNetwork& net,
            Timestamp now, store::DataStore& store) {
  const auto t = sample(net, now);
  const auto verdict = localize(t);
  std::printf(
      "%-22s probe-extra-delay %5.1f ms | access backlog %6.2f ms | "
      "drops up %.4f acc %.4f\n  -> %s\n",
      phase, t.upstream_extra_delay_ms, t.access_backlog_ms,
      t.upstream_drop_rate, t.access_drop_rate, verdict.c_str());
  // Every diagnosis lands in the store as a complementary event (§5).
  store.ingest_log(store::LogEvent{
      now, "perf-diagnosis", verdict == "healthy" ? 0 : 2,
      packet::Ipv4Address{}, std::string(phase) + ": " + verdict});
}

}  // namespace

int main() {
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = 77;
  cfg.scenario.campus.diurnal = false;
  // Phase 2's internal problem: a flood that overruns the 2 Gbps
  // client access link (but not the 10 Gbps upstream).
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 2800})
          .rate(110'000)
          .starting_at(Timestamp::from_seconds(30))
          .lasting(Duration::seconds(20)));
  // This example reads link telemetry only; keep the ML collector from
  // buffering millions of flood packets.
  cfg.collector.benign_sample_rate = 0.001;
  cfg.collector.attack_sample_rate = 0.001;

  testbed::Testbed bed(cfg);
  auto& net = bed.network();

  std::puts("Phase 1: healthy baseline (t=0..30s)");
  bed.run(Duration::seconds(25));
  report("  t=25s baseline", net, bed.simulator().now(), bed.store());

  std::puts("\nPhase 2: volumetric flood congests the access link "
            "(t=30..50s)");
  bed.run(Duration::seconds(15));  // now inside the attack window
  report("  t=40s during flood", net, bed.simulator().now(), bed.store());
  bed.run(Duration::seconds(20));  // flood over, queues drain
  // This sample's window (t=40..60) still covers the flood tail.
  report("  t=60s window covers flood tail", net, bed.simulator().now(),
         bed.store());

  std::puts("\nPhase 3: upstream provider develops a 40 ms problem "
            "(t=60s...)");
  net.set_upstream_extra_delay(Duration::millis(40));
  bed.run(Duration::seconds(15));
  report("  t=75s provider issue", net, bed.simulator().now(),
         bed.store());
  net.set_upstream_extra_delay(Duration::millis(0));
  bed.run(Duration::seconds(10));
  report("  t=85s recovered", net, bed.simulator().now(), bed.store());

  // The paper trail the operator hands to the provider.
  std::puts("\nDiagnosis log (from the data store):");
  store::LogQuery q;
  q.source = "perf-diagnosis";
  for (const auto& ev : bed.store().query_logs(q)) {
    std::printf("  [%6.1fs] sev=%d %s\n", ev.ts.to_seconds(),
                ev.severity, ev.message.c_str());
  }
  return 0;
}

// Quickstart — the campus network as a data source (paper §3).
//
// Simulates a slice of a campus day, captures every border packet
// losslessly, meters flows into the data store, and then asks the
// store the kinds of questions a researcher or operator asks:
// what is in here, who talked to whom, what did the attack look like,
// and what does the privacy gate let each role see.
//
// Run:  ./quickstart
#include <cstdio>

#include "campuslab/capture/sharded_engine.h"
#include "campuslab/obs/registry.h"
#include "campuslab/obs/stage_timer.h"
#include "campuslab/features/flow_merge.h"
#include "campuslab/privacy/gate.h"
#include "campuslab/store/sharded_ingest.h"
#include "campuslab/store/timeline.h"
#include "campuslab/testbed/testbed.h"

using namespace campuslab;

int main() {
  // --- 1. A campus with one injected DNS-amplification incident. -----
  testbed::TestbedConfig config;
  config.scenario.campus.seed = 42;
  config.scenario.campus.upstream_gbps = 10.0;
  config.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .rate(2000)
          .starting_at(Timestamp::from_seconds(60))
          .lasting(Duration::seconds(30)));

  testbed::Testbed bed(config);
  std::puts("Simulating 3 minutes of campus traffic (incl. one attack)...");
  bed.run(Duration::minutes(3));
  bed.simulator().network().set_tap(nullptr);  // stop capturing
  // Flush in-flight flows into the store.
  bed.flush_flows();

  // --- 2. Capture & store health. ------------------------------------
  const auto& cap = bed.capture_engine().stats();
  std::printf("capture: offered=%llu dropped=%llu (loss %.4f%%)\n",
              (unsigned long long)cap.offered,
              (unsigned long long)cap.dropped, 100.0 * cap.loss_rate());

  const auto catalog = bed.store().catalog();
  std::printf(
      "store:   %llu flows, %llu packets, %.1f MB, %zu segments, "
      "span %.0fs..%.0fs\n",
      (unsigned long long)catalog.total_flows,
      (unsigned long long)catalog.total_packets,
      catalog.total_bytes / 1e6, catalog.segments,
      catalog.earliest.to_seconds(), catalog.latest.to_seconds());
  for (std::size_t i = 0; i < packet::kTrafficLabelCount; ++i) {
    if (catalog.flows_per_label[i] == 0) continue;
    std::printf("         %-18s %llu flows\n",
                std::string(to_string(static_cast<packet::TrafficLabel>(i)))
                    .c_str(),
                (unsigned long long)catalog.flows_per_label[i]);
  }

  // --- 3. Flexible search (the §5 "fast and flexible search"). -------
  const auto victim = bed.network().topology().clients().front().endpoint.ip;
  store::FlowQuery attack_query;
  attack_query.about_host(victim)
      .with_label(packet::TrafficLabel::kDnsAmplification)
      .top(5);
  const auto hits = bed.store().query(attack_query);
  std::printf("\nTop flows of the incident against %s:\n",
              victim.to_string().c_str());
  for (const auto& stored : hits) {
    std::printf("  %s  %llu pkts, %.2f MB, %.1fs\n",
                stored.flow.tuple.to_string().c_str(),
                (unsigned long long)stored.flow.packets,
                stored.flow.bytes / 1e6,
                stored.flow.duration().to_seconds());
  }

  store::FlowQuery dns_query;
  dns_query.dns_only = true;
  std::printf("DNS flows in store: %zu\n",
              bed.store().query(dns_query).size());

  const auto talkers =
      bed.store().aggregate(store::FlowQuery{}, store::GroupBy::kHost,
                            /*top_k=*/3);
  std::puts("Top talkers (bytes, both directions):");
  for (const auto& row : talkers.rows) {
    std::printf("  %-15s %6llu flows  %.2f MB\n",
                row.host().to_string().c_str(),
                (unsigned long long)row.flows, row.bytes / 1e6);
  }

  // --- 4. Role-arbitrated access through the privacy gate. -----------
  privacy::PrivacyGate gate(bed.store(),
                            privacy::AccessPolicy::campus_default(),
                            /*anonymization_key=*/0xCA3B5);
  const auto now = bed.simulator().now();

  auto operator_view = gate.query(store::FlowQuery{}.top(1),
                                  privacy::Role::kOperator, "noc", now);
  auto researcher_view = gate.query(store::FlowQuery{}.top(1),
                                    privacy::Role::kResearcher, "phd",
                                    now);
  auto external_view = gate.query(store::FlowQuery{},
                                  privacy::Role::kExternal, "3rdparty",
                                  now);
  std::puts("\nPrivacy gate:");
  if (operator_view.ok() && !operator_view.value().empty())
    std::printf("  operator sees   %s\n",
                operator_view.value()[0].flow.tuple.to_string().c_str());
  if (researcher_view.ok() && !researcher_view.value().empty())
    std::printf("  researcher sees %s  (prefix-preserving anonymized)\n",
                researcher_view.value()[0].flow.tuple.to_string().c_str());
  std::printf("  external party: %s\n",
              external_view.ok() ? "GRANTED (bug!)"
                                 : external_view.error().message.c_str());
  std::printf("  audit trail: %zu entries\n", gate.audit_log().size());

  // --- 5. Cross-source incident timeline (flows + sensor logs). ------
  std::puts("\nIncident timeline for the victim (first 8 entries):");
  store::TimelineOptions opt;
  opt.max_entries = 8;
  opt.min_benign_flow_bytes = 100'000;  // keep it readable
  const auto timeline = store::incident_timeline(
      bed.store(), victim, Timestamp::from_seconds(55),
      Timestamp::from_seconds(95), opt);
  std::fputs(store::to_string(timeline).c_str(), stdout);
  if (bed.sensors()) {
    std::printf("(sensor events so far: %llu firewall, %llu sshd, "
                "%llu ids, %llu dhcp)\n",
                (unsigned long long)bed.sensors()->stats().firewall_events,
                (unsigned long long)bed.sensors()->stats().auth_events,
                (unsigned long long)bed.sensors()->stats().ids_events,
                (unsigned long long)bed.sensors()->stats().dhcp_events);
  }

  // --- 6. The same capture, sharded across worker threads. -----------
  // At 10-20 Gbps one consumer thread is the bottleneck; the sharded
  // engine hash-spreads the tap across N rings, each with its own
  // worker, flow meter and store ingester — losslessness stays
  // measured per shard.
  std::puts("\nSharded capture (4 workers) over a fresh campus run:");
  constexpr std::size_t kShards = 4;
  capture::ShardedCaptureConfig shard_cfg;
  shard_cfg.shards = kShards;
  capture::ShardedCaptureEngine sharded(shard_cfg);
  features::ShardedFlowCollector shard_flows(kShards);
  store::ShardedFlowIngester ingester(kShards);
  for (std::size_t s = 0; s < kShards; ++s)
    shard_flows.meter(s).set_sink(
        [&ingester, s](const capture::FlowRecord& r) {
          ingester.ingest(s, r);
        });
  sharded.add_sink_factory([&](std::size_t s) {
    return [&shard_flows, s](const capture::TaggedPacket& t) {
      shard_flows.meter(s).offer(t.pkt, t.dir);
    };
  });

  sim::ScenarioConfig rerun = config.scenario;
  sim::CampusSimulator replay(rerun);
  replay.network().set_tap(
      [&](const packet::Packet& p, sim::Direction d) {
        sharded.offer(p, d);  // ring-full would count as a shard drop
      });
  sharded.start();
  replay.run_for(Duration::minutes(3));
  sharded.stop();  // drains every ring, joins the workers
  for (std::size_t s = 0; s < kShards; ++s) shard_flows.meter(s).flush();

  store::DataStore sharded_store;
  const auto merged_flows = ingester.merge_into(sharded_store);
  const auto total = sharded.stats();
  std::printf("  merged:  offered=%llu consumed=%llu dropped=%llu -> "
              "%llu flows in store\n",
              (unsigned long long)total.offered,
              (unsigned long long)total.consumed,
              (unsigned long long)total.dropped,
              (unsigned long long)merged_flows);
  for (std::size_t s = 0; s < kShards; ++s) {
    const auto shard = sharded.shard_stats(s);
    std::printf("  shard %zu: offered=%-8llu consumed=%-8llu dropped=%llu\n",
                s, (unsigned long long)shard.offered,
                (unsigned long long)shard.consumed,
                (unsigned long long)shard.dropped);
  }

  // --- 7. One snapshot of the whole pipeline (campuslab::obs). -------
  // Every stage above — tap decode, rings, flow meters, dataset and
  // store ingest, buffer pool — registered its counters, live gauges
  // and per-stage latency histograms in the global registry as a side
  // effect of running. An operator (or a scraper) exports them all
  // with one call; no per-component plumbing.
  std::puts("\nMetrics snapshot (obs::Registry::global):");
  const auto snapshot = obs::Registry::global().snapshot();
  std::fputs(snapshot.to_text().c_str(), stdout);
  const auto json = snapshot.to_json();
  std::printf("\nJSON export: %zu bytes, e.g. %.120s...\n", json.size(),
              json.c_str());
  return 0;
}

// T-CAP — §5's "continuous, lossless, full packet capture at scale ...
// at link speeds of up to 100 Gbps or higher".
//
// Two parts:
//   1. google-benchmark microbenches of the capture hot path (ring
//      push/pop single- and two-threaded) establishing the packets/sec
//      ceiling of this host.
//   2. A printed loss table: offered load (Gbps-equivalent IMIX) vs
//      ring capacity, with a deliberately paced consumer, reproducing
//      the knee where "lossless" stops being true — the paper's reason
//      campus-scale (10-20G) is tractable where carrier-scale is not.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <thread>

#include "campuslab/capture/engine.h"
#include "campuslab/capture/flow.h"
#include "campuslab/capture/sharded_engine.h"
#include "campuslab/obs/registry.h"
#include "campuslab/obs/stage_timer.h"
#include "campuslab/packet/buffer.h"
#include "campuslab/resilience/fault.h"
#include "campuslab/util/rng.h"

using namespace campuslab;

namespace {

/// IMIX-ish synthetic frame sizes (mean ~ 400B).
std::vector<packet::Packet> make_imix(std::size_t count,
                                      std::uint64_t seed) {
  using namespace packet;
  Rng rng(seed);
  std::vector<Packet> out;
  out.reserve(count);
  const Endpoint src{MacAddress::from_id(1), Ipv4Address(8, 8, 8, 8), 53};
  for (std::size_t i = 0; i < count; ++i) {
    const Endpoint dst{MacAddress::from_id(2),
                       Ipv4Address(static_cast<std::uint32_t>(
                           0x0A001000 + rng.below(512))),
                       static_cast<std::uint16_t>(1024 + rng.below(60000))};
    const double roll = rng.uniform();
    const std::size_t payload =
        roll < 0.58 ? 26 : (roll < 0.91 ? 532 : 1458);  // IMIX
    out.push_back(PacketBuilder(Timestamp::from_nanos(
                                    static_cast<std::int64_t>(i)))
                      .udp(src, dst)
                      .payload_size(payload)
                      .build());
  }
  return out;
}

void BM_RingPushPop(benchmark::State& state) {
  capture::SpscRing<packet::Packet> ring(1 << 12);
  auto frames = make_imix(1024, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    packet::Packet p = frames[i++ & 1023];
    benchmark::DoNotOptimize(ring.try_push(std::move(p)));
    packet::Packet out;
    benchmark::DoNotOptimize(ring.try_pop(out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RingPushPop);

void BM_EngineOfferDrain(benchmark::State& state) {
  capture::CaptureConfig cfg;
  cfg.ring_capacity = static_cast<std::size_t>(state.range(0));
  capture::CaptureEngine engine(cfg);
  std::uint64_t sink_bytes = 0;
  engine.add_sink([&](const capture::TaggedPacket& t) {
    sink_bytes += t.pkt.size();
  });
  auto frames = make_imix(4096, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    engine.offer(frames[i++ & 4095], sim::Direction::kInbound);
    if ((i & 63) == 0) engine.poll(64);
  }
  engine.drain();
  benchmark::DoNotOptimize(sink_bytes);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineOfferDrain)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_TwoThreadCapture(benchmark::State& state) {
  // Sustained producer/consumer rate across real threads.
  for (auto _ : state) {
    state.PauseTiming();
    capture::CaptureConfig cfg;
    cfg.ring_capacity = 1 << 14;
    capture::CaptureEngine engine(cfg);
    std::uint64_t consumed_bytes = 0;
    engine.add_sink([&](const capture::TaggedPacket& t) {
      consumed_bytes += t.pkt.size();
    });
    auto frames = make_imix(8192, 3);
    constexpr std::size_t kCount = 200'000;
    state.ResumeTiming();

    std::thread consumer([&] {
      std::uint64_t seen = 0;
      while (seen < kCount) {
        const auto n = engine.poll(512);
        seen += n;
        if (n == 0) std::this_thread::yield();
      }
    });
    for (std::size_t i = 0; i < kCount;) {
      if (engine.offer(frames[i & 8191], sim::Direction::kInbound)) ++i;
    }
    consumer.join();
    benchmark::DoNotOptimize(consumed_bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          200'000);
}
BENCHMARK(BM_TwoThreadCapture)->Unit(benchmark::kMillisecond);

void BM_ShardedCapture(benchmark::State& state) {
  // Sustained rate with one producer and N shard workers; the producer
  // retries on ring-full so items processed == items consumed.
  const auto shards = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    capture::ShardedCaptureConfig cfg;
    cfg.shards = shards;
    cfg.ring_capacity = 1 << 14;
    capture::ShardedCaptureEngine engine(cfg);
    std::vector<std::uint64_t> consumed_bytes(shards, 0);
    engine.add_sink_factory([&](std::size_t s) {
      return [&consumed_bytes, s](const capture::TaggedPacket& t) {
        consumed_bytes[s] += t.pkt.size();
      };
    });
    auto frames = make_imix(8192, 4);
    constexpr std::size_t kCount = 200'000;
    state.ResumeTiming();

    engine.start();
    for (std::size_t i = 0; i < kCount;) {
      if (engine.offer(frames[i & 8191], sim::Direction::kInbound)) ++i;
    }
    engine.stop();
    benchmark::DoNotOptimize(consumed_bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          200'000);
}
BENCHMARK(BM_ShardedCapture)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Loss-knee table: virtual-time offered load against a consumer whose
/// per-packet service cost is fixed (ns), sweeping ring capacity.
void print_loss_table() {
  std::puts("\n=== T-CAP: loss vs offered load (IMIX, paced consumer) ===");
  std::puts("consumer service cost: 120 ns/pkt (~8.3 Mpps ceiling)");
  std::printf("%-14s", "offered");
  const std::size_t rings[] = {1 << 10, 1 << 14, 1 << 18};
  for (const auto r : rings) std::printf("ring=%-8zu", r);
  std::puts("(loss rate)");

  const double gbps_points[] = {1, 5, 10, 20, 40, 100};
  for (const double gbps : gbps_points) {
    std::printf("%5.0f Gbps     ", gbps);
    for (const auto ring_cap : rings) {
      capture::CaptureConfig cfg;
      cfg.ring_capacity = ring_cap;
      capture::CaptureEngine engine(cfg);
      engine.add_sink([](const capture::TaggedPacket&) {});
      auto frames = make_imix(4096, 7);

      // Virtual-time pacing: mean frame 454B -> arrivals at `gbps`;
      // consumer drains in bursts every 50 us of virtual time, capped
      // by its 120ns/pkt service rate.
      const double mean_frame_bits = 454 * 8;
      const double arrival_pps = gbps * 1e9 / mean_frame_bits;
      const double service_pps = 1e9 / 120.0;
      const double burst_interval_s = 50e-6;
      const auto drain_per_burst = static_cast<std::size_t>(
          service_pps * burst_interval_s);

      double now = 0.0, next_drain = burst_interval_s;
      Rng rng(static_cast<std::uint64_t>(gbps * 100) + ring_cap);
      constexpr std::size_t kPackets = 400'000;
      for (std::size_t i = 0; i < kPackets; ++i) {
        now += rng.exponential(1.0 / arrival_pps);
        while (now >= next_drain) {
          engine.poll(drain_per_burst);
          next_drain += burst_interval_s;
        }
        engine.offer(frames[i & 4095], sim::Direction::kInbound);
      }
      engine.drain();
      std::printf("%-13.5f", engine.stats().loss_rate());
    }
    std::puts("");
  }
  std::puts("shape: lossless through the service ceiling (~24 Gbps IMIX "
            "at 120ns/pkt); past it, bigger rings only delay the knee.");
}

/// Sharded loss-knee table: same virtual-time model as above, but the
/// 5-tuple hash spreads arrivals over N shards, each drained by its own
/// paced consumer (120 ns/pkt each — the "one core per shard" budget).
/// The knee per N is the largest drop-free offered load; sharding must
/// move it by ~N (modulo hash imbalance).
void print_sharded_loss_table() {
  std::puts("\n=== T-CAP: sharded loss vs offered load "
            "(IMIX, 120 ns/pkt consumer PER SHARD, ring 16Ki/shard) ===");
  const std::size_t shard_counts[] = {1, 2, 4};
  const double gbps_points[] = {5, 10, 20, 30, 40, 60, 80, 100, 160};

  std::printf("%-14s", "offered");
  for (const auto n : shard_counts) std::printf("shards=%-7zu", n);
  std::puts("(loss rate)");

  double knee[sizeof(shard_counts) / sizeof(shard_counts[0])] = {};
  std::vector<std::uint64_t> shard4_drops;
  double shard4_drop_load = 0;

  for (const double gbps : gbps_points) {
    std::printf("%5.0f Gbps     ", gbps);
    for (std::size_t ni = 0; ni < 3; ++ni) {
      const std::size_t shards = shard_counts[ni];
      capture::ShardedCaptureConfig cfg;
      cfg.shards = shards;
      cfg.ring_capacity = 1 << 14;
      capture::ShardedCaptureEngine engine(cfg);
      engine.add_sink_factory(
          [](std::size_t) { return [](const capture::TaggedPacket&) {}; });
      auto frames = make_imix(4096, 11);

      const double mean_frame_bits = 454 * 8;
      const double arrival_pps = gbps * 1e9 / mean_frame_bits;
      const double service_pps = 1e9 / 120.0;  // per shard
      const double burst_interval_s = 50e-6;
      const auto drain_per_burst =
          static_cast<std::size_t>(service_pps * burst_interval_s);

      double now = 0.0, next_drain = burst_interval_s;
      Rng rng(static_cast<std::uint64_t>(gbps * 100) + shards);
      constexpr std::size_t kPackets = 300'000;
      for (std::size_t i = 0; i < kPackets; ++i) {
        now += rng.exponential(1.0 / arrival_pps);
        while (now >= next_drain) {
          for (std::size_t s = 0; s < shards; ++s)
            engine.poll_shard(s, drain_per_burst);
          next_drain += burst_interval_s;
        }
        engine.offer(frames[i & 4095], sim::Direction::kInbound);
      }
      engine.drain();

      const auto loss = engine.stats().loss_rate();
      std::printf("%-13.5f", loss);
      if (loss == 0.0 && gbps > knee[ni]) knee[ni] = gbps;
      if (shards == 4 && engine.stats().dropped > 0 &&
          shard4_drops.empty()) {
        shard4_drop_load = gbps;
        for (std::size_t s = 0; s < shards; ++s)
          shard4_drops.push_back(engine.shard_stats(s).dropped);
      }
    }
    std::puts("");
  }

  std::printf("drop-free knee: shards=1 -> %.0f Gbps, shards=2 -> %.0f "
              "Gbps, shards=4 -> %.0f Gbps (x%.1f over single shard)\n",
              knee[0], knee[1], knee[2],
              knee[0] > 0 ? knee[2] / knee[0] : 0.0);
  if (!shard4_drops.empty()) {
    std::printf("per-shard drops (shards=4, first lossy load %.0f Gbps):",
                shard4_drop_load);
    for (std::size_t s = 0; s < shard4_drops.size(); ++s)
      std::printf("  shard%zu=%" PRIu64, s, shard4_drops[s]);
    std::puts("");
  } else {
    std::puts("per-shard drops (shards=4): none at any offered load "
              "(lossless through 160 Gbps)");
  }
  std::puts("shape: the knee scales ~linearly with shard count — the "
            "paper's 100 Gbps target needs the multi-queue path.");
}

/// Allocation accounting for the parse-once/copy-never refactor,
/// measured off the shared buffer pool's own counters. Two runs of the
/// same engine hot path:
///   legacy  — deep-copies every frame before offering, the per-hop
///             behavior before Packet became a pooled handle (pre-pool
///             each of those acquisitions was a raw malloc, and the
///             ring hop + sink copies added ~2 more per packet);
///   pooled  — offer(const&) as the tap does it now: a refcount bump.
/// The pooled run must stay at ~0 heap allocations per offered packet
/// (acceptance: <= 0.05) once the slab freelist is warm.
void print_allocation_table() {
  auto& pool = packet::default_buffer_pool();
  std::puts("\n=== T-CAP: buffer-pool traffic per offered packet ===");
  std::printf("%-8s%-18s%-18s%-14s\n", "run", "acquisitions/pkt",
              "heap allocs/pkt", "pool hit rate");

  auto frames = make_imix(4096, 13);
  constexpr std::size_t kCount = 400'000;

  const auto run = [&](const char* name, bool legacy_deep_copy) {
    capture::CaptureConfig cfg;
    cfg.ring_capacity = 1 << 14;
    capture::CaptureEngine engine(cfg);
    std::uint64_t sink_bytes = 0;
    engine.add_sink([&](const capture::TaggedPacket& t) {
      sink_bytes += t.pkt.size();
    });
    const auto before = pool.stats();
    for (std::size_t i = 0; i < kCount; ++i) {
      if (legacy_deep_copy) {
        packet::Packet deep;
        deep.assign(frames[i & 4095].bytes());
        deep.ts = frames[i & 4095].ts;
        engine.offer(std::move(deep), sim::Direction::kInbound);
      } else {
        engine.offer(frames[i & 4095], sim::Direction::kInbound);
      }
      if ((i & 63) == 0) engine.poll(64);
    }
    engine.drain();
    benchmark::DoNotOptimize(sink_bytes);
    const auto after = pool.stats();
    const double acquisitions =
        static_cast<double>((after.pool_hits - before.pool_hits) +
                            (after.pool_misses - before.pool_misses));
    const double heap_allocs =
        static_cast<double>(after.heap_allocations -
                            before.heap_allocations);
    const double hit_rate =
        acquisitions == 0.0
            ? 1.0
            : static_cast<double>(after.pool_hits - before.pool_hits) /
                  acquisitions;
    std::printf("%-8s%-18.4f%-18.4f%-14.4f\n", name,
                acquisitions / static_cast<double>(kCount),
                heap_allocs / static_cast<double>(kCount), hit_rate);
    return heap_allocs / static_cast<double>(kCount);
  };

  run("legacy", true);
  const double pooled = run("pooled", false);

  const auto s = pool.stats();
  std::printf("pool gauge: outstanding=%" PRIu64 " high_water=%" PRIu64
              " freelist=%" PRIu64 " oversize=%" PRIu64 "\n",
              s.outstanding, s.high_water, s.freelist_size,
              s.oversize_allocations);
  std::printf("hot path: %.4f heap allocs/offered packet (target <= "
              "0.05) — %s\n",
              pooled, pooled <= 0.05 ? "OK" : "REGRESSION");
  std::puts("shape: pre-pool the legacy column was >= 3 mallocs/packet "
            "(tap copy + ring copy + sink copies); the pool absorbs even "
            "forced deep copies, and the handle path allocates nothing.");
}

/// Per-stage latency distribution of the capture path, from the
/// campuslab::obs stage histograms. Sample period 1 so every hop of
/// every packet is measured; quantiles resolve inside the log2 bucket
/// that holds the rank (within 2x — the right resolution for tails).
void print_stage_latency_table() {
  obs::set_trace_sample_period(1);
  obs::set_tracing_enabled(true);

  constexpr std::size_t kShards = 2;
  capture::ShardedCaptureConfig cfg;
  cfg.shards = kShards;
  cfg.ring_capacity = 1 << 14;
  capture::ShardedCaptureEngine engine(cfg);
  std::vector<std::unique_ptr<capture::FlowMeter>> meters;
  for (std::size_t s = 0; s < kShards; ++s)
    meters.push_back(std::make_unique<capture::FlowMeter>());
  engine.add_sink_factory([&](std::size_t s) {
    return [meter = meters[s].get()](const capture::TaggedPacket& t) {
      meter->offer(t.pkt, t.view, t.dir);
    };
  });

  auto frames = make_imix(4096, 17);
  constexpr std::size_t kCount = 200'000;
  for (std::size_t i = 0; i < kCount; ++i) {
    engine.offer(frames[i & 4095], sim::Direction::kInbound);
    if ((i & 63) == 0) engine.drain();
  }
  engine.drain();

  std::puts("\n=== T-CAP: per-stage latency (ns, sampled every packet) ===");
  std::printf("%-22s%-10s%-10s%-10s%-10s%-10s\n", "stage", "count", "p50",
              "p99", "p999", "mean");
  const auto snap = obs::Registry::global().snapshot();
  for (const auto& m : snap.metrics) {
    if (m.name != "pipeline_stage_ns" || m.histogram.count == 0) continue;
    std::printf("%-22s%-10" PRIu64 "%-10.0f%-10.0f%-10.0f%-10.0f\n",
                m.labels.c_str(), m.histogram.count,
                m.histogram.quantile(0.50), m.histogram.quantile(0.99),
                m.histogram.quantile(0.999), m.histogram.mean());
  }
  std::puts("shape: enqueue/dequeue are tens of ns; decode dominates the "
            "per-packet budget, flow_update sits between.");
  obs::set_trace_sample_period(256);
}

/// The observability bill: the same 4-shard hot path with tracing off
/// vs on (default 1/256 sampling). Acceptance: <= 3% throughput cost at
/// the knee configuration.
void print_obs_overhead_table() {
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kCount = 400'000;
  auto frames = make_imix(4096, 19);

  const auto run_once = [&]() -> double {
    capture::ShardedCaptureConfig cfg;
    cfg.shards = kShards;
    cfg.ring_capacity = 1 << 14;
    capture::ShardedCaptureEngine engine(cfg);
    std::vector<std::unique_ptr<capture::FlowMeter>> meters;
    for (std::size_t s = 0; s < kShards; ++s)
      meters.push_back(std::make_unique<capture::FlowMeter>());
    engine.add_sink_factory([&](std::size_t s) {
      return [meter = meters[s].get()](const capture::TaggedPacket& t) {
        meter->offer(t.pkt, t.view, t.dir);
      };
    });
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kCount; ++i) {
      engine.offer(frames[i & 4095], sim::Direction::kInbound);
      if ((i & 63) == 0) engine.drain();
    }
    engine.drain();
    const auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                   .count()) /
           static_cast<double>(kCount);
  };
  obs::set_trace_sample_period(256);  // production default
  // Warm the pool and caches, then interleave off/on pairs and take the
  // per-mode minimum, so frequency and cache drift hit both modes alike.
  obs::set_tracing_enabled(false);
  run_once();
  double off_ns = 1e18, on_ns = 1e18;
  for (int r = 0; r < 7; ++r) {
    obs::set_tracing_enabled(false);
    off_ns = std::min(off_ns, run_once());
    obs::set_tracing_enabled(true);
    on_ns = std::min(on_ns, run_once());
  }

  const double overhead = (on_ns - off_ns) / off_ns * 100.0;
  std::puts("\n=== T-CAP: observability overhead (4 shards, IMIX) ===");
  std::printf("tracing off: %7.1f ns/pkt (%.2f Mpps)\n", off_ns,
              1e3 / off_ns);
  std::printf("tracing on:  %7.1f ns/pkt (%.2f Mpps), 1/256 sampling\n",
              on_ns, 1e3 / on_ns);
  std::printf("overhead: %+.2f%% (target <= 3%%) — %s\n", overhead,
              overhead <= 3.0 ? "OK" : "REGRESSION");
  std::puts("shape: counters are relaxed fetch_adds resolved once; timers "
            "pay two clock reads only on the sampled 1/256 of packets.");
}

/// Fault recovery at the 4-shard knee configuration: a worker death
/// (sink exception) injected every 100 000th dispatch, supervisor
/// armed. The run must complete with restarts == injected deaths,
/// nothing unaccounted, and the restart tail visible from the
/// resilience.restart_ns histogram. Then the bill for the always-on
/// machinery: armed-but-idle injector vs disarmed (chaos-mode tax,
/// informational) and the disarmed per-packet check the shipped binary
/// pays permanently (gated <= 1% of the pipeline budget).
void print_fault_recovery_table() {
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kCount = 400'000;
  constexpr std::uint64_t kDeathEvery = 100'000;
  auto frames = make_imix(4096, 23);

  std::puts("\n=== T-CAP: fault recovery (4 shards, worker death every "
            "100k dispatches) ===");

  const auto snap_before = obs::Registry::global().snapshot();
  const auto* hist_before = snap_before.find("resilience.restart_ns");

  resilience::FaultPlan plan;
  plan.seed = resilience::FaultPlan::seed_from_env(1);
  plan.faults.push_back({.site = "capture.sink_dispatch",
                         .kind = resilience::FaultKind::kThrow,
                         .every_n = kDeathEvery});
  std::uint64_t fires = 0, restarts = 0, quarantines = 0;
  std::vector<std::uint64_t> delivered_per_shard(kShards, 0);
  capture::CaptureStats stats;
  {
    resilience::FaultScope scope(plan);
    capture::ShardedCaptureConfig cfg;
    cfg.shards = kShards;
    cfg.ring_capacity = 1 << 14;
    cfg.max_worker_restarts = 64;
    capture::ShardedCaptureEngine engine(cfg);
    engine.add_sink_factory([&](std::size_t s) {
      return [&delivered_per_shard, s](const capture::TaggedPacket&) {
        ++delivered_per_shard[s];
      };
    });
    engine.start();
    for (std::size_t i = 0; i < kCount;) {
      if (engine.offer(frames[i & 4095], sim::Direction::kInbound)) ++i;
    }
    engine.stop();
    fires = scope.injector().total_fires();
    restarts = engine.worker_restarts();
    quarantines = engine.quarantined_shards();
    stats = engine.stats();
  }

  const auto snap_after = obs::Registry::global().snapshot();
  const auto* hist_after = snap_after.find("resilience.restart_ns");
  obs::HistogramSnapshot restart{};
  if (hist_after != nullptr) {
    restart = hist_before != nullptr
                  ? hist_after->histogram.since(hist_before->histogram)
                  : hist_after->histogram;
  }

  std::uint64_t delivered = 0;
  for (const auto d : delivered_per_shard) delivered += d;
  const std::uint64_t lost =
      stats.accepted - stats.consumed - stats.abandoned;

  std::printf("injected worker deaths: %" PRIu64
              " (every %" PRIu64 "th dispatch, seed %" PRIu64 ")\n",
              fires, kDeathEvery, plan.seed);
  std::printf("supervisor restarts: %" PRIu64 " (%s injected), "
              "quarantines: %" PRIu64 "\n",
              restarts, restarts == fires ? "==" : "MISMATCH vs",
              quarantines);
  std::printf("time-to-restart: p50=%.0f ns  p99=%.0f ns  (n=%" PRIu64
              ")\n",
              restart.quantile(0.50), restart.quantile(0.99),
              restart.count);
  std::printf("accounting: offered=%" PRIu64 " (retry-on-full) "
              "accepted=%" PRIu64 " consumed=%" PRIu64 " abandoned=%"
              PRIu64 "\n",
              stats.offered, stats.accepted, stats.consumed,
              stats.abandoned);
  std::printf("packets lost per death: %.2f (unaccounted: %" PRIu64
              "); undelivered in-flight per death: %.2f (counted "
              "consumed)\n",
              fires > 0 ? static_cast<double>(lost) /
                              static_cast<double>(fires)
                        : 0.0,
              lost,
              fires > 0 ? static_cast<double>(stats.consumed - delivered) /
                              static_cast<double>(fires)
                        : 0.0);

  // --- the no-fault bill -------------------------------------------
  // Same interleaved min-of-7 discipline as the obs table: the full
  // single-threaded pipeline (offer + hash + ring + sinks + flow
  // meter), injector disarmed vs armed with a plan that never fires.
  const auto run_once = [&frames]() -> double {
    capture::ShardedCaptureConfig cfg;
    cfg.shards = kShards;
    cfg.ring_capacity = 1 << 14;
    capture::ShardedCaptureEngine engine(cfg);
    std::vector<std::unique_ptr<capture::FlowMeter>> meters;
    for (std::size_t s = 0; s < kShards; ++s)
      meters.push_back(std::make_unique<capture::FlowMeter>());
    engine.add_sink_factory([&](std::size_t s) {
      return [meter = meters[s].get()](const capture::TaggedPacket& t) {
        meter->offer(t.pkt, t.view, t.dir);
      };
    });
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kCount; ++i) {
      engine.offer(frames[i & 4095], sim::Direction::kInbound);
      if ((i & 63) == 0) engine.drain();
    }
    engine.drain();
    const auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                   .count()) /
           static_cast<double>(kCount);
  };
  resilience::FaultPlan idle;
  idle.seed = 1;
  idle.faults.push_back({.site = "capture.sink_dispatch",
                         .kind = resilience::FaultKind::kThrow,
                         .every_n = 1'000'000'000'000ull});
  idle.faults.push_back({.site = "flow.update",
                         .kind = resilience::FaultKind::kThrow,
                         .every_n = 1'000'000'000'000ull});
  run_once();  // warm pool and caches
  double off_ns = 1e18, on_ns = 1e18;
  for (int r = 0; r < 7; ++r) {
    off_ns = std::min(off_ns, run_once());
    {
      resilience::FaultScope scope(idle);
      on_ns = std::min(on_ns, run_once());
    }
  }

  // The shipped binary runs disarmed: its permanent cost is the null
  // check at each injection point. Calibrate that check directly and
  // express it against the measured per-packet pipeline budget (two
  // hot-path sites: sink dispatch + flow update).
  constexpr std::size_t kProbe = 20'000'000;
  const auto p0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kProbe; ++i)
    resilience::fault_point("capture.sink_dispatch");
  const auto p1 = std::chrono::steady_clock::now();
  const double check_ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(p1 - p0)
              .count()) /
      static_cast<double>(kProbe);
  const double disarmed_pct = 2.0 * check_ns / off_ns * 100.0;
  const double armed_pct = (on_ns - off_ns) / off_ns * 100.0;

  std::puts("--- overhead when no faults fire (interleaved min of 7) ---");
  std::printf("injector disarmed: %7.1f ns/pkt (%.2f Mpps)\n", off_ns,
              1e3 / off_ns);
  std::printf("armed, zero fires: %7.1f ns/pkt (%+.2f%% — chaos-mode "
              "tax, paid only under an installed plan)\n",
              on_ns, armed_pct);
  std::printf("disarmed check: %.2f ns/site x 2 sites = %+.2f%% of the "
              "pipeline (target <= 1%%) — %s\n",
              check_ns, disarmed_pct,
              disarmed_pct <= 1.0 ? "OK" : "REGRESSION");
  std::puts("shape: recovery is the catch-to-repoll hop (sub-us); the "
            "in-flight frame of each death is consumed-not-delivered, "
            "and nothing leaves the accounting identities.");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  // Stage latencies first: the global histograms are clean, so the
  // table's counts are exactly this table's packets.
  print_stage_latency_table();
  print_obs_overhead_table();
  print_allocation_table();
  print_loss_table();
  print_sharded_loss_table();
  print_fault_recovery_table();
  return 0;
}

// T-PRIV — §5 "Revisiting data privacy": privacy must be cheap enough
// to sit on the collection path. Microbenches for prefix-preserving
// anonymization (cold and cached), port permutation, payload policy
// application on real frames, and gate-arbitrated queries.
#include <benchmark/benchmark.h>

#include "campuslab/packet/builder.h"
#include "campuslab/privacy/gate.h"
#include "campuslab/util/rng.h"

using namespace campuslab;

namespace {

void BM_AnonymizeCold(benchmark::State& state) {
  privacy::PrefixPreservingAnonymizer anon(0xFEED);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(anon.anonymize(
        packet::Ipv4Address(static_cast<std::uint32_t>(rng.next()))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AnonymizeCold);

void BM_AnonymizeCached(benchmark::State& state) {
  // A campus sees a bounded address population; the cache captures it.
  privacy::CachedAnonymizer anon(0xFEED);
  Rng rng(2);
  std::vector<packet::Ipv4Address> population;
  for (int i = 0; i < 4096; ++i)
    population.emplace_back(static_cast<std::uint32_t>(rng.next()));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(anon.anonymize(population[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AnonymizeCached);

void BM_AnonymizePort(benchmark::State& state) {
  privacy::PrefixPreservingAnonymizer anon(0xFEED);
  std::uint16_t port = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(anon.anonymize_port(++port));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AnonymizePort);

packet::Packet frame_to_port(std::uint16_t dport, std::size_t payload) {
  using namespace packet;
  return PacketBuilder(Timestamp::from_seconds(1))
      .udp(Endpoint{MacAddress::from_id(1), Ipv4Address(10, 0, 16, 2),
                    50000},
           Endpoint{MacAddress::from_id(2), Ipv4Address(1, 2, 3, 4),
                    dport})
      .payload_size(payload)
      .build();
}

void BM_PayloadPolicyApply(benchmark::State& state) {
  const auto policy = privacy::PayloadPolicy::conservative();
  const auto original = frame_to_port(
      static_cast<std::uint16_t>(state.range(0)), 1200);
  for (auto _ : state) {
    packet::Packet copy = original;
    policy.apply(copy, 42);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(state.range(0) == 53   ? "keep (dns)"
                 : state.range(0) == 443 ? "truncate (web)"
                                          : "strip (ssh)");
}
BENCHMARK(BM_PayloadPolicyApply)->Arg(53)->Arg(443)->Arg(22);

void BM_GatedQuery(benchmark::State& state) {
  store::DataStore store;
  Rng rng(3);
  for (int i = 0; i < 50'000; ++i) {
    capture::FlowRecord f;
    f.tuple = packet::FiveTuple{
        packet::Ipv4Address(
            static_cast<std::uint32_t>(0x0A010000 + rng.below(512))),
        packet::Ipv4Address(
            static_cast<std::uint32_t>(0x08080000 + rng.below(64))),
        static_cast<std::uint16_t>(1024 + rng.below(60000)), 53, 17};
    f.first_ts = Timestamp::from_seconds(rng.uniform(0, 1000));
    f.last_ts = f.first_ts + Duration::seconds(1);
    f.packets = 10;
    f.bytes = 5000;
    f.label_packets[0] = 10;
    store.ingest(f);
  }
  privacy::PrivacyGate gate(store, privacy::AccessPolicy::campus_default(),
                            7);
  const bool researcher = state.range(0) == 1;
  for (auto _ : state) {
    store::FlowQuery q;
    q.on_port(53).top(100);
    benchmark::DoNotOptimize(
        gate.query(q,
                   researcher ? privacy::Role::kResearcher
                              : privacy::Role::kOperator,
                   "bench", Timestamp::from_seconds(1000)));
  }
  state.SetLabel(researcher ? "researcher (anonymizing)"
                            : "operator (raw)");
}
BENCHMARK(BM_GatedQuery)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();

// T-MULTI — flow-level multi-class classification across the full
// attack zoo. The paper's data-source argument (§3) is that a labelled
// store enables supervised learning "for the task at hand" — not one
// detector, but any of them. This bench trains one forest to separate
// benign traffic from all four attack families at once on flow records
// pulled straight from the store, and prints the confusion matrix an
// analyst would review — overall, and broken down per armed scenario
// instance via the generation-time scenario-id column (a flash crowd
// rides along so benign-but-attack-shaped collateral is measurable).
// Under CAMPUSLAB_BENCH_GATE=1 the per-scenario breakdown is a gate:
// every attack scenario must land at least one true positive.
#include <cstdio>
#include <cstdlib>
#include <map>

#include "campuslab/features/dataset_builder.h"
#include "campuslab/ml/forest.h"
#include "campuslab/ml/metrics.h"
#include "campuslab/testbed/testbed.h"

using namespace campuslab;

int main() {
  // One busy day: all four attacks at staggered times.
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = 60001;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .rate(800)
          .starting_at(Timestamp::from_seconds(5))
          .lasting(Duration::seconds(25)));
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kSynFlood)
          .rate(900)
          .starting_at(Timestamp::from_seconds(15))
          .lasting(Duration::seconds(25)));
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kPortScan)
          .rate(250)
          .starting_at(Timestamp::from_seconds(2))
          .lasting(Duration::seconds(40)));
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kSshBruteForce)
          .rate(15)
          .starting_at(Timestamp::from_seconds(8))
          .lasting(Duration::seconds(35)));
  // Benign-but-attack-shaped collateral probe: flows stay kBenign but
  // carry a scenario id, so misclassified crowd traffic is measurable.
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kFlashCrowd)
          .rate(400)
          .starting_at(Timestamp::from_seconds(20))
          .lasting(Duration::seconds(15)));
  cfg.collector.benign_sample_rate = 0.01;  // flow-level task: skip
  cfg.collector.attack_sample_rate = 0.01;  // the packet collector
  testbed::Testbed bed(cfg);
  bed.run(Duration::seconds(50));
  bed.flush_flows();

  // Flow dataset straight from the data store, with the per-row
  // scenario provenance column alongside.
  std::vector<std::uint32_t> scenario_ids;
  const auto dataset =
      features::build_flow_dataset(bed.store(), {}, scenario_ids);
  std::printf("flow dataset: %zu rows x %zu features, %d classes\n",
              dataset.n_rows(), dataset.n_features(),
              dataset.n_classes());
  const auto counts = dataset.class_counts();
  for (std::size_t c = 0; c < counts.size(); ++c)
    std::printf("  %-18s %zu flows\n", dataset.class_names()[c].c_str(),
                counts[c]);

  // Hand-rolled 70/30 split so test rows keep their scenario ids
  // (stratified_split shuffles provenance away).
  Rng rng(60002);
  ml::Dataset train(dataset.feature_names(), dataset.class_names());
  ml::Dataset test(dataset.feature_names(), dataset.class_names());
  std::vector<std::uint32_t> test_ids;
  for (std::size_t i = 0; i < dataset.n_rows(); ++i) {
    if (rng.chance(0.3)) {
      test.add(dataset.row(i), dataset.label(i));
      test_ids.push_back(scenario_ids[i]);
    } else {
      train.add(dataset.row(i), dataset.label(i));
    }
  }
  ml::ForestConfig fc;
  fc.n_trees = 40;
  fc.seed = 60003;
  ml::RandomForest forest(fc);
  forest.fit(train);

  std::puts("\n=== T-MULTI: held-out confusion matrix "
            "(one model, all attack families) ===");
  const auto cm = ml::evaluate(forest, test);
  std::fputs(cm.to_string(test.class_names()).c_str(), stdout);

  // ---- Per-scenario breakdown over the generation-time ids. ---------
  std::puts("\n=== T-MULTI: per-scenario confusion "
            "(rows attributed by scenario-instance id) ===");
  std::printf("%-4s %-18s %-8s %-8s %-8s %-8s\n", "id", "scenario",
              "flows", "TP", "missed", "recall");
  bool all_attacks_detected = true;
  double crowd_collateral = -1.0;
  for (const auto& inst : bed.simulator().scenario_instances()) {
    const int want = features::dataset_label(inst.label, {});
    std::uint64_t rows = 0, hit = 0, flagged = 0;
    for (std::size_t i = 0; i < test.n_rows(); ++i) {
      if (test_ids[i] != inst.id) continue;
      ++rows;
      const int got = forest.predict(test.row(i));
      if (got == want) ++hit;
      if (got != 0) ++flagged;  // predicted any attack class
    }
    if (inst.label == packet::TrafficLabel::kBenign) {
      // Flash crowd: "hits" are correct benign calls; collateral is
      // anything flagged as an attack.
      crowd_collateral =
          rows ? static_cast<double>(flagged) / static_cast<double>(rows)
               : 0.0;
      std::printf("%-4u %-18s %-8llu %-8s %-8s collateral %.4f\n",
                  inst.id, inst.phase.c_str(), (unsigned long long)rows,
                  "-", "-", crowd_collateral);
      continue;
    }
    const double recall =
        rows ? static_cast<double>(hit) / static_cast<double>(rows) : 0.0;
    std::printf("%-4u %-18s %-8llu %-8llu %-8llu %.4f\n", inst.id,
                inst.phase.c_str(), (unsigned long long)rows,
                (unsigned long long)hit, (unsigned long long)(rows - hit),
                recall);
    if (hit == 0) all_attacks_detected = false;
  }

  const bool gate = [] {
    const char* v = std::getenv("CAMPUSLAB_BENCH_GATE");
    return v && *v && *v != '0';
  }();
  std::printf("\nper-scenario gate: every attack scenario >= 1 true "
              "positive — %s; flash-crowd collateral %.4f (reported, "
              "not gated)\n",
              all_attacks_detected ? "OK" : "REGRESSION",
              crowd_collateral);

  std::puts("\ntop flow features by importance:");
  const auto importance = forest.feature_importance();
  std::vector<std::pair<double, std::size_t>> ranked;
  for (std::size_t f = 0; f < importance.size(); ++f)
    ranked.emplace_back(importance[f], f);
  std::sort(ranked.rbegin(), ranked.rend());
  for (std::size_t i = 0; i < 6 && i < ranked.size(); ++i)
    std::printf("  %-22s %.3f\n",
                features::flow_feature_names()[ranked[i].second].c_str(),
                ranked[i].first);
  std::puts("\nshape: one supervised model separates every attack family "
            "from benign traffic with high per-class F1 — the labelled "
            "store makes multi-task learning a query away. The residual "
            "syn_flood/port_scan confusion is inherent at flow "
            "granularity: a lone inbound SYN to a web port looks the "
            "same either way (per-packet register features, which the "
            "deployable pipeline uses, separate them by fanout).");
  return gate && !all_attacks_detected ? 1 : 0;
}

// T-MULTI — flow-level multi-class classification across the full
// attack zoo. The paper's data-source argument (§3) is that a labelled
// store enables supervised learning "for the task at hand" — not one
// detector, but any of them. This bench trains one forest to separate
// benign traffic from all four attack families at once on flow records
// pulled straight from the store, and prints the confusion matrix an
// analyst would review.
#include <cstdio>

#include "campuslab/features/dataset_builder.h"
#include "campuslab/ml/forest.h"
#include "campuslab/ml/metrics.h"
#include "campuslab/testbed/testbed.h"

using namespace campuslab;

int main() {
  // One busy day: all four attacks at staggered times.
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = 60001;
  cfg.scenario.campus.diurnal = false;
  sim::DnsAmplificationConfig amp;
  amp.start = Timestamp::from_seconds(5);
  amp.duration = Duration::seconds(25);
  amp.response_rate_pps = 800;
  cfg.scenario.dns_amplification.push_back(amp);
  sim::SynFloodConfig flood;
  flood.start = Timestamp::from_seconds(15);
  flood.duration = Duration::seconds(25);
  flood.syn_rate_pps = 900;
  cfg.scenario.syn_flood.push_back(flood);
  sim::PortScanConfig scan;
  scan.start = Timestamp::from_seconds(2);
  scan.duration = Duration::seconds(40);
  scan.probe_rate_pps = 250;
  cfg.scenario.port_scan.push_back(scan);
  sim::SshBruteForceConfig brute;
  brute.start = Timestamp::from_seconds(8);
  brute.duration = Duration::seconds(35);
  brute.attempts_per_second = 15;
  cfg.scenario.ssh_brute_force.push_back(brute);
  cfg.collector.benign_sample_rate = 0.01;  // flow-level task: skip
  cfg.collector.attack_sample_rate = 0.01;  // the packet collector
  testbed::Testbed bed(cfg);
  bed.run(Duration::seconds(50));
  bed.flush_flows();

  // Flow dataset straight from the data store.
  const auto dataset = features::build_flow_dataset(bed.store());
  std::printf("flow dataset: %zu rows x %zu features, 5 classes\n",
              dataset.n_rows(), dataset.n_features());
  const auto counts = dataset.class_counts();
  for (std::size_t c = 0; c < counts.size(); ++c)
    std::printf("  %-18s %zu flows\n", dataset.class_names()[c].c_str(),
                counts[c]);

  Rng rng(60002);
  const auto [train, test] = dataset.stratified_split(0.3, rng);
  ml::ForestConfig fc;
  fc.n_trees = 40;
  fc.seed = 60003;
  ml::RandomForest forest(fc);
  forest.fit(train);

  std::puts("\n=== T-MULTI: held-out confusion matrix "
            "(one model, all attack families) ===");
  const auto cm = ml::evaluate(forest, test);
  std::fputs(cm.to_string(test.class_names()).c_str(), stdout);

  std::puts("\ntop flow features by importance:");
  const auto importance = forest.feature_importance();
  std::vector<std::pair<double, std::size_t>> ranked;
  for (std::size_t f = 0; f < importance.size(); ++f)
    ranked.emplace_back(importance[f], f);
  std::sort(ranked.rbegin(), ranked.rend());
  for (std::size_t i = 0; i < 6 && i < ranked.size(); ++i)
    std::printf("  %-22s %.3f\n",
                features::flow_feature_names()[ranked[i].second].c_str(),
                ranked[i].first);
  std::puts("\nshape: one supervised model separates every attack family "
            "from benign traffic with high per-class F1 — the labelled "
            "store makes multi-task learning a query away. The residual "
            "syn_flood/port_scan confusion is inherent at flow "
            "granularity: a lone inbound SYN to a web port looks the "
            "same either way (per-packet register features, which the "
            "deployable pipeline uses, separate them by fanout).");
  return 0;
}

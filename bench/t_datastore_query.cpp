// T-STORE — §5: the data store is "linked and indexed to provide fast
// and flexible search capabilities".
//
// Three parts:
//   1. google-benchmark microbenches: ingest rate, and query latency by
//      host / port / label / time-range / full scan as the store grows
//      10^4 -> 10^6 flows. The claim to reproduce is the *shape*:
//      indexed queries stay roughly flat (per result) while scans grow
//      linearly.
//   2. A printed parallel-scan table: the same 10^6-flow (20-segment)
//      store swept across 1/2/4/8 scan threads. Segment-granular fan
//      out should scale near-linearly until segments/thread hits the
//      merge floor; the gate asserts >= 2x at 4 threads (set
//      CAMPUSLAB_BENCH_GATE=1 to turn a miss into exit 1).
//   3. A concurrent ingest+query table: query latency while a writer
//      ingests and evicts underneath — the price of snapshot isolation
//      is pinning, not blocking.
//   4. A storage-tier table: hot vs cold vs pinned-cache scans, the
//      per-column compression report, and the zone-map pruning rate
//      (gate: >= 90% pruned for a narrow window).
//   5. A distributed sweep: the same 10^6 flows behind 1/2/4-node
//      clusters (replication 2) at 1 and 4 scan threads per node,
//      then the StoreShard boundary tax — the identical workload
//      queried directly vs through LocalShard (gate: <= 1.15x).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <limits>
#include <thread>
#include <utility>

#include "campuslab/store/cluster.h"
#include "campuslab/store/datastore.h"
#include "campuslab/store/query_engine.h"
#include "campuslab/store/remote_shard.h"
#include "campuslab/store/segment_file.h"
#include "campuslab/store/shard.h"
#include "campuslab/store/shard_server.h"
#include "campuslab/util/rng.h"

using namespace campuslab;

namespace {

capture::FlowRecord random_flow(Rng& rng, double t_base) {
  capture::FlowRecord f;
  const packet::Ipv4Address src(
      static_cast<std::uint32_t>(0x0A010000 + rng.below(1024)));
  const packet::Ipv4Address dst(
      static_cast<std::uint32_t>(0x97650000 + rng.below(4096)));
  static constexpr std::uint16_t kPorts[] = {53, 80, 443, 22, 25, 8080};
  f.tuple = packet::FiveTuple{
      src, dst, static_cast<std::uint16_t>(1024 + rng.below(60000)),
      kPorts[rng.below(6)], static_cast<std::uint8_t>(
          rng.chance(0.7) ? 6 : 17)};
  f.first_ts = Timestamp::from_seconds(t_base + rng.uniform(0, 3600));
  f.last_ts = f.first_ts + Duration::from_seconds(rng.uniform(0.001, 60));
  f.packets = 1 + rng.below(1000);
  f.bytes = f.packets * (64 + rng.below(1400));
  const auto label = rng.chance(0.9)
                         ? packet::TrafficLabel::kBenign
                         : static_cast<packet::TrafficLabel>(
                               1 + rng.below(4));
  f.label_packets[static_cast<std::size_t>(label)] = f.packets;
  return f;
}

store::DataStore& store_of_size(std::int64_t n) {
  // One store per size, built once and reused across benchmarks.
  static std::map<std::int64_t, std::unique_ptr<store::DataStore>> cache;
  auto& slot = cache[n];
  if (!slot) {
    slot = std::make_unique<store::DataStore>();
    Rng rng(static_cast<std::uint64_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
      slot->ingest(random_flow(rng, 0));
  }
  return *slot;
}

void BM_Ingest(benchmark::State& state) {
  store::DataStore store;
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    const auto flow = random_flow(rng, 0);
    state.ResumeTiming();
    benchmark::DoNotOptimize(store.ingest(flow));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Ingest);

void BM_QueryByHost(benchmark::State& state) {
  auto& store = store_of_size(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    store::FlowQuery q;
    q.about_host(packet::Ipv4Address(
        static_cast<std::uint32_t>(0x0A010000 + rng.below(1024))));
    benchmark::DoNotOptimize(store.query(q));
  }
  state.SetLabel("indexed");
}
BENCHMARK(BM_QueryByHost)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_QueryByPort(benchmark::State& state) {
  auto& store = store_of_size(state.range(0));
  for (auto _ : state) {
    store::FlowQuery q;
    q.on_port(22).top(100);
    benchmark::DoNotOptimize(store.query(q));
  }
  state.SetLabel("indexed, limit 100");
}
BENCHMARK(BM_QueryByPort)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_QueryByLabel(benchmark::State& state) {
  auto& store = store_of_size(state.range(0));
  for (auto _ : state) {
    store::FlowQuery q;
    q.with_label(packet::TrafficLabel::kPortScan).top(100);
    benchmark::DoNotOptimize(store.query(q));
  }
  state.SetLabel("indexed, limit 100");
}
BENCHMARK(BM_QueryByLabel)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_QueryTimeRange(benchmark::State& state) {
  auto& store = store_of_size(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    store::FlowQuery q;
    const double start = rng.uniform(0, 3000);
    q.between(Timestamp::from_seconds(start),
              Timestamp::from_seconds(start + 5)).top(100);
    benchmark::DoNotOptimize(store.query(q));
  }
  state.SetLabel("segment-pruned scan, limit 100");
}
BENCHMARK(BM_QueryTimeRange)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_FullScan(benchmark::State& state) {
  auto& store = store_of_size(state.range(0));
  for (auto _ : state) {
    store::FlowQuery q;
    q.min_bytes = 1'000'000'000;  // matches ~nothing: pure scan cost
    benchmark::DoNotOptimize(store.query(q));
  }
  state.SetLabel("unindexed scan");
}
BENCHMARK(BM_FullScan)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_RetentionSweep(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    store::DataStoreConfig cfg;
    cfg.segment_flows = 10'000;
    cfg.retention = Duration::seconds(1800);
    store::DataStore store(cfg);
    Rng rng(4);
    for (int i = 0; i < 100'000; ++i)
      store.ingest(random_flow(rng, 0));
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        store.enforce_retention(Timestamp::from_seconds(7200)));
  }
  state.SetLabel("drop ~half of 100k flows");
}
BENCHMARK(BM_RetentionSweep)->Unit(benchmark::kMillisecond);

double time_best_of(int runs, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < runs; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

/// Part 2: scan-thread sweep over the 10^6-flow store (20 segments of
/// 50k at the default rotation). One task per segment, merged in
/// ingest order; parallel results are bit-identical to serial, so the
/// only question is wall clock. Returns the 4-thread full-scan speedup
/// for the gate.
double print_parallel_sweep_table() {
  auto& store = store_of_size(1'000'000);
  std::printf("\n== parallel scan sweep: 1M flows, %zu segments ==\n",
              store.catalog().segments);
  std::printf("%-9s%-15s%-11s%-15s%-11s\n", "threads", "full-scan ms",
              "speedup", "agg-host ms", "speedup");

  store::FlowQuery scan;
  scan.min_bytes = 1'000'000'000;  // matches ~nothing: pure scan cost
  double serial_scan = 0, serial_agg = 0, speedup_at_4 = 0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    store::ScanPool pool(threads);
    const double scan_ms = time_best_of(5, [&] {
      benchmark::DoNotOptimize(store.query(scan, pool));
    });
    const double agg_ms = time_best_of(5, [&] {
      benchmark::DoNotOptimize(
          store.aggregate(store::FlowQuery{}, store::GroupBy::kHost, 10,
                          pool));
    });
    if (threads == 1) { serial_scan = scan_ms; serial_agg = agg_ms; }
    const double scan_x = serial_scan / scan_ms;
    if (threads == 4) speedup_at_4 = scan_x;
    std::printf("%-9zu%-15.3f%-11.2f%-15.3f%-11.2f\n", threads, scan_ms,
                scan_x, agg_ms, serial_agg / agg_ms);
  }
  return speedup_at_4;
}

/// Part 3: the same queries while a writer ingests (and periodically
/// evicts) as fast as it can. Readers pin a snapshot in O(segments)
/// and never hold the store mutex while scanning, so query latency
/// should stay within small factors of the quiesced number.
void print_concurrent_ingest_query_table() {
  store::DataStoreConfig cfg;
  cfg.segment_flows = 50'000;
  cfg.retention = Duration::seconds(3600);
  store::DataStore store(cfg);
  Rng rng(9);
  for (int i = 0; i < 500'000; ++i) store.ingest(random_flow(rng, 0));

  store::ScanPool pool(4);
  store::FlowQuery scan;
  scan.min_bytes = 1'000'000'000;
  const double quiesced_ms =
      time_best_of(5, [&] { benchmark::DoNotOptimize(store.query(scan, pool)); });

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ingested{0};
  std::thread writer([&] {
    Rng wrng(10);
    double t = 3600;
    while (!stop.load(std::memory_order_acquire)) {
      store.ingest(random_flow(wrng, t));
      t += 0.001;
      const auto n = ingested.fetch_add(1, std::memory_order_relaxed);
      if ((n & 0xFFFF) == 0xFFFF)
        store.enforce_retention(Timestamp::from_seconds(t));
    }
  });

  const auto t0 = std::chrono::steady_clock::now();
  constexpr int kQueries = 20;
  double total_ms = 0, worst_ms = 0;
  for (int i = 0; i < kQueries; ++i) {
    const double ms = time_best_of(1, [&] {
      benchmark::DoNotOptimize(store.query(scan, pool));
    });
    total_ms += ms;
    worst_ms = std::max(worst_ms, ms);
  }
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  stop.store(true, std::memory_order_release);
  writer.join();

  std::printf("\n== concurrent ingest + query (4 scan threads) ==\n");
  std::printf("quiesced full scan:    %8.3f ms\n", quiesced_ms);
  std::printf("under ingest, mean:    %8.3f ms  worst: %.3f ms\n",
              total_ms / kQueries, worst_ms);
  std::printf("writer sustained:      %8.0f flows/s during the %d "
              "queries (%.1fs window)\n",
              static_cast<double>(ingested.load()) / elapsed, kQueries,
              elapsed);
  std::puts("shape: snapshot pinning is O(segments) under the mutex; "
            "scans run lock-free, so ingest neither stalls queries nor "
            "is starved by them.");
}

/// Part 4: the storage tiers. Same 200k-flow store scanned fully hot,
/// fully cold (every scan pays the decode), and cold with a pinned
/// result keeping the decoded segments cached. Then the per-column
/// compression report for one representative segment, and the zone-map
/// pruning rate for a narrow time window over time-ordered cold data —
/// the property that makes deep retention cheap. Returns the pruning
/// rate for the gate.
double print_storage_tier_table() {
  const std::string dir = "/tmp/campuslab_bench_tier";
  std::filesystem::remove_all(dir);
  store::DataStoreConfig cfg;
  cfg.segment_flows = 10'000;
  cfg.spill_directory = dir;
  cfg.hot_bytes_budget = std::numeric_limits<std::uint64_t>::max();
  store::DataStore store(cfg);
  Rng rng(11);
  // Time-ordered ingest (like live capture): segment zone maps tile
  // the time axis, which is what makes pruning effective. random_flow
  // spreads first_ts over an hour, so pin the timestamps down here.
  for (int i = 0; i < 200'000; ++i) {
    auto f = random_flow(rng, 0);
    f.first_ts = Timestamp::from_seconds(i * 0.01);
    f.last_ts = f.first_ts + Duration::from_seconds(0.05);
    store.ingest(f);
  }

  store::FlowQuery scan;
  scan.min_bytes = 1'000'000'000;  // matches ~nothing: pure scan cost
  const double hot_ms =
      time_best_of(5, [&] { benchmark::DoNotOptimize(store.query(scan)); });
  const std::uint64_t hot_bytes = store.hot_bytes();

  const std::size_t spilled = store.spill();
  std::uint64_t file_bytes = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    file_bytes += entry.file_size();

  // Cold, uncached: each query decodes every file (nothing pins the
  // segments between runs, so the weak cache is empty every time).
  const double cold_ms =
      time_best_of(5, [&] { benchmark::DoNotOptimize(store.query(scan)); });
  // Cold, cached: a held result pins every segment, so subsequent
  // queries share the already-decoded copies.
  const auto pin = store.query(store::FlowQuery{});
  const double cached_ms =
      time_best_of(5, [&] { benchmark::DoNotOptimize(store.query(scan)); });

  std::printf("\n== storage tiers: 200k flows, %zu segments ==\n", spilled);
  std::printf("%-22s%-13s%-14s\n", "tier", "scan ms", "resident bytes");
  std::printf("%-22s%-13.3f%-14llu\n", "hot (RAM)", hot_ms,
              static_cast<unsigned long long>(hot_bytes));
  std::printf("%-22s%-13.3f%-14llu\n", "cold (decode/scan)", cold_ms,
              static_cast<unsigned long long>(file_bytes));
  std::printf("%-22s%-13.3f%-14s\n", "cold (pinned cache)", cached_ms,
              "files + pins");
  std::printf("on-disk compression: %.2fx (%llu -> %llu bytes)\n",
              static_cast<double>(hot_bytes) /
                  static_cast<double>(std::max<std::uint64_t>(file_bytes, 1)),
              static_cast<unsigned long long>(hot_bytes),
              static_cast<unsigned long long>(file_bytes));

  // Per-column report for one representative segment.
  {
    store::Segment seg(cfg.segment_flows);
    Rng crng(12);
    std::uint64_t id = 1;
    for (std::size_t i = 0; i < cfg.segment_flows; ++i) {
      store::StoredFlow stored{id++, random_flow(crng, i * 0.01)};
      seg.min_ts = std::min(seg.min_ts, stored.flow.first_ts);
      seg.max_ts = std::max(seg.max_ts, stored.flow.last_ts);
      const auto off = static_cast<std::uint32_t>(seg.flows.size());
      seg.flows.push_back(stored);
      seg.by_host[stored.flow.tuple.src.value()].push_back(off);
      seg.by_host[stored.flow.tuple.dst.value()].push_back(off);
      seg.by_port[stored.flow.tuple.dst_port].push_back(off);
      seg.by_label[static_cast<std::size_t>(
                       stored.flow.majority_label())].push_back(off);
    }
    seg.sealed = true;
    store::SegmentFileInfo info;
    store::encode_segment(seg, &info);
    std::printf("\n== per-column compression (one %u-flow segment) ==\n",
                info.zone.flow_count);
    std::printf("%-16s%-12s%-14s%-8s\n", "column", "file bytes",
                "memory bytes", "ratio");
    for (const auto& col : info.columns)
      std::printf("%-16s%-12llu%-14llu%-8.2f\n", col.name.c_str(),
                  static_cast<unsigned long long>(col.file_bytes),
                  static_cast<unsigned long long>(col.memory_bytes),
                  col.file_bytes
                      ? static_cast<double>(col.memory_bytes) /
                            static_cast<double>(col.file_bytes)
                      : 0.0);
    std::printf("%-16s%-12llu%-14llu%-8.2f\n", "total",
                static_cast<unsigned long long>(info.file_bytes),
                static_cast<unsigned long long>(info.memory_bytes),
                static_cast<double>(info.memory_bytes) /
                    static_cast<double>(std::max<std::uint64_t>(
                        info.file_bytes, 1)));
  }

  // Zone-map pruning: a 20-second window out of ~2000 seconds of
  // time-ordered data should skip >= 90% of the cold files outright.
  store::FlowQuery narrow;
  narrow.between(Timestamp::from_seconds(900),
                 Timestamp::from_seconds(920));
  const auto r = store.query(narrow);
  const double considered =
      static_cast<double>(r.stats().cold_loaded + r.stats().cold_pruned);
  const double prune_rate =
      considered > 0
          ? static_cast<double>(r.stats().cold_pruned) / considered
          : 0.0;
  std::printf("\nzone-map pruning: 20s window, %zu loaded / %zu pruned "
              "of %zu cold segments (%.0f%% pruned)\n",
              r.stats().cold_loaded, r.stats().cold_pruned,
              r.stats().cold_loaded + r.stats().cold_pruned,
              prune_rate * 100.0);
  std::filesystem::remove_all(dir);
  return prune_rate;
}

/// Part 5: the distributed store. One million flows routed into
/// 1/2/4-node clusters (replication 2), scatter-gather scan and
/// aggregate latency at 1 and 4 scan threads per node store. Then the
/// StoreShard boundary tax: the same store queried directly vs
/// through the LocalShard message shapes — the indirection every node
/// pays even single-node — vs over a loopback socket through a
/// RemoteShard. Returns {in-process ratio, loopback ratio} for the
/// gates.
std::pair<double, double> print_cluster_sweep_table() {
  constexpr std::size_t kFlows = 1'000'000;
  std::vector<capture::FlowRecord> flows;
  flows.reserve(kFlows);
  {
    Rng rng(static_cast<std::uint64_t>(kFlows));
    for (std::size_t i = 0; i < kFlows; ++i)
      flows.push_back(random_flow(rng, 0));
  }

  store::FlowQuery scan;
  scan.min_bytes = 1'000'000'000;  // matches ~nothing: pure scan cost
  store::FlowQuery host;
  host.about_host(packet::Ipv4Address(0x0A010007));

  std::printf("\n== cluster sweep: 1M flows, replication 2 ==\n");
  std::printf("%-8s%-10s%-12s%-14s%-12s\n", "nodes", "threads", "scan ms",
              "host-q ms", "agg ms");
  for (const std::size_t nodes : {1u, 2u, 4u}) {
    for (const std::size_t threads : {1u, 4u}) {
      store::ClusterConfig cfg;
      cfg.nodes = nodes;
      cfg.node_store.segment_flows = 50'000;
      cfg.node_store.query_threads = threads;
      store::Cluster cluster(cfg);
      cluster.ingest(flows);
      const double scan_ms = time_best_of(
          3, [&] { benchmark::DoNotOptimize(cluster.query(scan)); });
      const double host_ms = time_best_of(
          3, [&] { benchmark::DoNotOptimize(cluster.query(host)); });
      const double agg_ms = time_best_of(3, [&] {
        benchmark::DoNotOptimize(
            cluster.aggregate(scan, store::GroupBy::kHost, 10));
      });
      std::printf("%-8zu%-10zu%-12.3f%-14.3f%-12.3f\n", nodes, threads,
                  scan_ms, host_ms, agg_ms);
    }
  }
  std::printf("scatter-gather overhead = N x (message + merge); the\n"
              "deterministic id merge keeps results bit-identical.\n");

  // Boundary tax: identical 1M-flow stores, one queried directly, one
  // through the LocalShard interface (a near-empty scan, so the cost
  // measured is the boundary, not row copying).
  auto& direct = store_of_size(static_cast<std::int64_t>(kFlows));
  store::LocalShard shard;
  {
    store::ShardIngestBatch batch;
    batch.rows.reserve(kFlows);
    for (const auto& f : flows)
      batch.rows.push_back(store::StoredFlow{0, f});
    benchmark::DoNotOptimize(shard.ingest(batch));
  }
  const double direct_ms = time_best_of(
      5, [&] { benchmark::DoNotOptimize(direct.query(scan)); });
  store::ShardQueryPlan plan;
  plan.query = scan;
  const double shard_ms = time_best_of(
      5, [&] { benchmark::DoNotOptimize(shard.query(plan)); });
  const double ratio = direct_ms > 0 ? shard_ms / direct_ms : 1.0;

  // Loopback column: the same shard behind a ShardServer, queried by a
  // RemoteShard over 127.0.0.1 — the boundary tax plus one CLRP01
  // frame round trip per pull. The near-empty scan keeps row encoding
  // out of the number, so this is the floor a socket cluster pays.
  store::ShardServer server;
  server.add_shard(0, shard);
  double loopback_ms = 0.0;
  if (server.start().ok()) {
    store::RemoteShardConfig remote_cfg;
    remote_cfg.port = server.port();
    store::RemoteShard remote(remote_cfg);
    (void)remote.ping();  // connect outside the timed region
    loopback_ms = time_best_of(
        5, [&] { benchmark::DoNotOptimize(remote.query(plan)); });
    server.stop();
  }
  const double loopback_ratio =
      direct_ms > 0 ? loopback_ms / direct_ms : 1.0;
  std::printf("\nStoreShard boundary: direct %.3f ms, via shard %.3f ms "
              "(%.2fx), loopback %.3f ms (%.2fx)\n",
              direct_ms, shard_ms, ratio, loopback_ms, loopback_ratio);
  return {ratio, loopback_ratio};
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  const double speedup_at_4 = print_parallel_sweep_table();
  print_concurrent_ingest_query_table();
  const double prune_rate = print_storage_tier_table();
  const auto [shard_ratio, loopback_ratio] = print_cluster_sweep_table();

  const unsigned cores = std::thread::hardware_concurrency();
  const bool gate = [] {
    const char* v = std::getenv("CAMPUSLAB_BENCH_GATE");
    return v && *v && *v != '0';
  }();
  std::printf("\nparallel query gate: %.2fx at 4 threads (target >= "
              "2.00x, %u cores) — %s\n",
              speedup_at_4, cores,
              cores < 4          ? "SKIPPED (fewer than 4 cores)"
              : speedup_at_4 >= 2.0 ? "OK"
                                    : "REGRESSION");
  std::printf("zone-map pruning gate: %.0f%% pruned (target >= 90%%) — "
              "%s\n",
              prune_rate * 100.0,
              prune_rate >= 0.9 ? "OK" : "REGRESSION");
  std::printf("shard boundary gate: %.2fx vs direct (target <= 1.15x) — "
              "%s\n",
              shard_ratio, shard_ratio <= 1.15 ? "OK" : "REGRESSION");
  std::printf("loopback boundary gate: %.2fx vs direct (target <= 2.00x) "
              "— %s\n",
              loopback_ratio, loopback_ratio <= 2.0 ? "OK" : "REGRESSION");
  int rc = 0;
  if (gate && cores >= 4 && speedup_at_4 < 2.0) rc = 1;
  if (gate && prune_rate < 0.9) rc = 1;
  if (gate && shard_ratio > 1.15) rc = 1;
  if (gate && loopback_ratio > 2.0) rc = 1;
  return rc;
}

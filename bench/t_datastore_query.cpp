// T-STORE — §5: the data store is "linked and indexed to provide fast
// and flexible search capabilities".
//
// Microbenches: ingest rate, and query latency by host / port / label /
// time-range / full scan as the store grows 10^4 -> 10^6 flows. The
// claim to reproduce is the *shape*: indexed queries stay roughly flat
// (per result) while scans grow linearly.
#include <benchmark/benchmark.h>

#include "campuslab/store/datastore.h"
#include "campuslab/util/rng.h"

using namespace campuslab;

namespace {

capture::FlowRecord random_flow(Rng& rng, double t_base) {
  capture::FlowRecord f;
  const packet::Ipv4Address src(
      static_cast<std::uint32_t>(0x0A010000 + rng.below(1024)));
  const packet::Ipv4Address dst(
      static_cast<std::uint32_t>(0x97650000 + rng.below(4096)));
  static constexpr std::uint16_t kPorts[] = {53, 80, 443, 22, 25, 8080};
  f.tuple = packet::FiveTuple{
      src, dst, static_cast<std::uint16_t>(1024 + rng.below(60000)),
      kPorts[rng.below(6)], static_cast<std::uint8_t>(
          rng.chance(0.7) ? 6 : 17)};
  f.first_ts = Timestamp::from_seconds(t_base + rng.uniform(0, 3600));
  f.last_ts = f.first_ts + Duration::from_seconds(rng.uniform(0.001, 60));
  f.packets = 1 + rng.below(1000);
  f.bytes = f.packets * (64 + rng.below(1400));
  const auto label = rng.chance(0.9)
                         ? packet::TrafficLabel::kBenign
                         : static_cast<packet::TrafficLabel>(
                               1 + rng.below(4));
  f.label_packets[static_cast<std::size_t>(label)] = f.packets;
  return f;
}

store::DataStore& store_of_size(std::int64_t n) {
  // One store per size, built once and reused across benchmarks.
  static std::map<std::int64_t, std::unique_ptr<store::DataStore>> cache;
  auto& slot = cache[n];
  if (!slot) {
    slot = std::make_unique<store::DataStore>();
    Rng rng(static_cast<std::uint64_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
      slot->ingest(random_flow(rng, 0));
  }
  return *slot;
}

void BM_Ingest(benchmark::State& state) {
  store::DataStore store;
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    const auto flow = random_flow(rng, 0);
    state.ResumeTiming();
    benchmark::DoNotOptimize(store.ingest(flow));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Ingest);

void BM_QueryByHost(benchmark::State& state) {
  auto& store = store_of_size(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    store::FlowQuery q;
    q.about_host(packet::Ipv4Address(
        static_cast<std::uint32_t>(0x0A010000 + rng.below(1024))));
    benchmark::DoNotOptimize(store.query(q));
  }
  state.SetLabel("indexed");
}
BENCHMARK(BM_QueryByHost)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_QueryByPort(benchmark::State& state) {
  auto& store = store_of_size(state.range(0));
  for (auto _ : state) {
    store::FlowQuery q;
    q.on_port(22).top(100);
    benchmark::DoNotOptimize(store.query(q));
  }
  state.SetLabel("indexed, limit 100");
}
BENCHMARK(BM_QueryByPort)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_QueryByLabel(benchmark::State& state) {
  auto& store = store_of_size(state.range(0));
  for (auto _ : state) {
    store::FlowQuery q;
    q.with_label(packet::TrafficLabel::kPortScan).top(100);
    benchmark::DoNotOptimize(store.query(q));
  }
  state.SetLabel("indexed, limit 100");
}
BENCHMARK(BM_QueryByLabel)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_QueryTimeRange(benchmark::State& state) {
  auto& store = store_of_size(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    store::FlowQuery q;
    const double start = rng.uniform(0, 3000);
    q.between(Timestamp::from_seconds(start),
              Timestamp::from_seconds(start + 5)).top(100);
    benchmark::DoNotOptimize(store.query(q));
  }
  state.SetLabel("segment-pruned scan, limit 100");
}
BENCHMARK(BM_QueryTimeRange)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_FullScan(benchmark::State& state) {
  auto& store = store_of_size(state.range(0));
  for (auto _ : state) {
    store::FlowQuery q;
    q.min_bytes = 1'000'000'000;  // matches ~nothing: pure scan cost
    benchmark::DoNotOptimize(store.query(q));
  }
  state.SetLabel("unindexed scan");
}
BENCHMARK(BM_FullScan)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_RetentionSweep(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    store::DataStoreConfig cfg;
    cfg.segment_flows = 10'000;
    cfg.retention = Duration::seconds(1800);
    store::DataStore store(cfg);
    Rng rng(4);
    for (int i = 0; i < 100'000; ++i)
      store.ingest(random_flow(rng, 0));
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        store.enforce_retention(Timestamp::from_seconds(7200)));
  }
  state.SetLabel("drop ~half of 100k flows");
}
BENCHMARK(BM_RetentionSweep)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

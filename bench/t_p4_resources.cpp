// T-P4 — Figure 2 step (iii): compile the deployable model for the
// switch and measure what it costs.
//
// Table 1: resource usage vs student depth for both compilation
// strategies (tree-walk stages vs TCAM rule expansion) against the
// Tofino-like budget — the max deployable depth falls out.
// Table 2 (ablation, design choice #2): native range matching vs
// range-to-prefix ternary expansion — the entry blowup factor.
// Microbench-style numbers: software-switch classification throughput
// vs running the full black-box forest per packet on the CPU.
#include <chrono>
#include <cstdio>

#include "campuslab/control/development_loop.h"
#include "campuslab/ml/metrics.h"
#include "campuslab/testbed/testbed.h"

using namespace campuslab;

namespace {

ml::Dataset collect_dataset() {
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = 901;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 1500})
          .rate(1500)
          .starting_at(Timestamp::from_seconds(5))
          .lasting(Duration::seconds(20)));
  cfg.collector.labeling.binary_target =
      packet::TrafficLabel::kDnsAmplification;
  cfg.collector.attack_sample_rate = 0.4;
  cfg.collector.seed = 902;
  testbed::Testbed bed(cfg);
  bed.run(Duration::seconds(30));
  return bed.harvest_dataset();
}

}  // namespace

int main() {
  const auto raw = collect_dataset();
  const auto quantizer = dataplane::Quantizer::fit(raw);
  const auto dataset = quantizer.quantize_dataset(raw);
  Rng rng(903);
  const auto [train, test] = dataset.stratified_split(0.3, rng);

  ml::ForestConfig fc;
  fc.n_trees = 40;
  fc.seed = 904;
  ml::RandomForest teacher(fc);
  teacher.fit(train);

  const auto budget = dataplane::ResourceBudget::tofino_like();
  std::vector<bool> mask(features::kPacketFeatureCount, false);
  for (std::size_t f = 0; f < mask.size(); ++f)
    mask[f] = features::is_register_feature(
        static_cast<features::PacketFeature>(f));
  std::vector<std::pair<double, double>> grid(
      features::kPacketFeatureCount,
      {0.0, static_cast<double>(dataplane::Quantizer::kMaxQ) + 1.0});
  const auto grid_q = dataplane::Quantizer::from_ranges(std::move(grid));

  std::puts("=== T-P4: switch resources vs student depth "
            "(budget: 12 stages, 24576 TCAM entries, 12 MiB SRAM) ===");
  std::printf("%-7s %-7s | %-8s %-10s %-6s | %-8s %-12s %-6s\n", "depth",
              "leaves", "tw.stage", "tw.sram_b", "fits", "tcam.stg",
              "tcam.entries", "fits");
  for (const int depth : {2, 3, 4, 5, 6, 8, 10, 12, 14}) {
    xai::ExtractConfig xc;
    xc.student_max_depth = depth;
    xc.min_samples_leaf = 5;
    xc.synthetic_samples = 8000;
    xc.seed = 910 + static_cast<std::uint64_t>(depth);
    const auto student =
        xai::ModelExtractor(xc).extract(teacher, train).student;

    const auto tree_prog =
        dataplane::TreeProgram::compile(student, grid_q, mask);
    const auto rules = xai::RuleList::from_tree(student);
    const auto tcam_prog = dataplane::RuleTcamProgram::compile(
        rules, grid_q, 1 << 22, mask);

    std::printf("%-7d %-7zu | ", depth, student.leaf_count());
    if (tree_prog.ok()) {
      const auto r = tree_prog.value().resources();
      std::printf("%-8d %-10zu %-6s | ", r.stages_used, r.sram_bits,
                  r.fits(budget) ? "yes" : "NO");
    } else {
      std::printf("%-27s | ", "compile failed");
    }
    if (tcam_prog.ok()) {
      const auto r = tcam_prog.value().resources();
      std::printf("%-8d %-12zu %-6s\n", r.stages_used, r.tcam_entries,
                  r.fits(budget) ? "yes" : "NO");
    } else {
      std::printf("exceeds %s\n", tcam_prog.error().code.c_str());
    }
  }

  // ---- Ablation: native ranges vs ternary expansion. -----------------
  std::puts("\n=== T-P4 ablation: range-to-ternary expansion factor ===");
  std::printf("%-7s %-8s %-14s %-10s\n", "depth", "rules",
              "tcam entries", "blowup");
  for (const int depth : {3, 5, 8}) {
    xai::ExtractConfig xc;
    xc.student_max_depth = depth;
    xc.synthetic_samples = 8000;
    xc.seed = 950 + static_cast<std::uint64_t>(depth);
    const auto student =
        xai::ModelExtractor(xc).extract(teacher, train).student;
    const auto rules = xai::RuleList::from_tree(student);
    const auto tcam = dataplane::RuleTcamProgram::compile(rules, grid_q,
                                                          1 << 22, mask);
    if (!tcam.ok()) continue;
    // A native range-capable target installs one entry per rule.
    const auto native = rules.rules().size();
    std::printf("%-7d %-8zu %-14zu %-10.1fx\n", depth, native,
                tcam.value().table().size(),
                static_cast<double>(tcam.value().table().size()) /
                    static_cast<double>(native));
  }

  // ---- Throughput: compiled pipeline vs CPU-side black box. ----------
  std::puts("\n=== T-P4: classification cost, compiled pipeline vs "
            "CPU black box ===");
  xai::ExtractConfig xc;
  xc.student_max_depth = 5;
  xc.seed = 980;
  const auto student =
      xai::ModelExtractor(xc).extract(teacher, train).student;
  const auto tree_prog =
      dataplane::TreeProgram::compile(student, grid_q, mask);
  if (!tree_prog.ok()) return 1;

  std::vector<std::vector<std::uint32_t>> qrows;
  for (std::size_t i = 0; i < test.n_rows(); ++i) {
    std::vector<std::uint32_t> q(test.n_features());
    for (std::size_t f = 0; f < q.size(); ++f)
      q[f] = static_cast<std::uint32_t>(test.row(i)[f]);
    qrows.push_back(std::move(q));
  }
  auto time_ns = [&](auto&& fn) {
    const std::size_t reps = 200'000 / std::max<std::size_t>(
                                           qrows.size(), 1) + 1;
    const auto t0 = std::chrono::steady_clock::now();
    int sink = 0;
    for (std::size_t r = 0; r < reps; ++r)
      for (std::size_t i = 0; i < qrows.size(); ++i) sink += fn(i);
    const auto t1 = std::chrono::steady_clock::now();
    asm volatile("" : : "r"(sink));
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(t1 -
                                                                    t0)
                   .count()) /
           static_cast<double>(reps * qrows.size());
  };
  const double pipeline_ns = time_ns(
      [&](std::size_t i) { return tree_prog.value().classify(qrows[i]).cls; });
  const double forest_ns =
      time_ns([&](std::size_t i) { return teacher.predict(test.row(i)); });
  std::printf(
      "compiled tree-walk: %7.1f ns/pkt (%.2f Mpps single-core)\n"
      "black-box forest  : %7.1f ns/pkt (%.2f Mpps single-core)\n"
      "speedup           : %7.1fx\n",
      pipeline_ns, 1e3 / pipeline_ns, forest_ns, 1e3 / forest_ns,
      forest_ns / pipeline_ns);
  std::puts("(a hardware pipeline runs the same walk at line rate; the "
            "point is the model *fits the machine model*)");
  return 0;
}

// T-XAI — Figure 2 step (ii): the deployability trade-off. "Replace
// the learning model with a deployable learning model ... lightweight
// and closely approximating the original."
//
// On one campus incident's packet dataset:
//   - black-box teachers: random forest and gradient-boosted trees
//   - baseline: logistic regression
//   - students: depth 2..10, distilled (XAI extraction) vs trained
//     directly on labels at equal depth (ablation, design choice #1)
//
// Reported per model: held-out accuracy, fidelity to the RF teacher,
// model size (nodes), and measured inference latency (ns/op). The
// shape to reproduce: the distilled student recovers teacher accuracy
// within a few points at 2-3 orders of magnitude fewer nodes and
// faster inference, and dominates the equal-depth direct tree.
#include <chrono>
#include <cstdio>

#include "campuslab/control/development_loop.h"
#include "campuslab/ml/boosting.h"
#include "campuslab/ml/linear.h"
#include "campuslab/ml/metrics.h"
#include "campuslab/testbed/testbed.h"

using namespace campuslab;

namespace {

double inference_ns(const ml::Classifier& model, const ml::Dataset& data) {
  const std::size_t reps = 50'000 / std::max<std::size_t>(data.n_rows(), 1)
                           + 1;
  const auto t0 = std::chrono::steady_clock::now();
  int sink = 0;
  for (std::size_t r = 0; r < reps; ++r)
    for (std::size_t i = 0; i < data.n_rows(); ++i)
      sink += model.predict(data.row(i));
  const auto t1 = std::chrono::steady_clock::now();
  asm volatile("" : : "r"(sink));
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                 .count()) /
         static_cast<double>(reps * data.n_rows());
}

void row(const char* name, const ml::Classifier& model, std::size_t nodes,
         const ml::Classifier& teacher, const ml::Dataset& test) {
  const auto cm = ml::evaluate(model, test);
  std::printf("%-24s %-10.4f %-10.4f %-10zu %-10.1f\n", name,
              cm.accuracy(), xai::fidelity(model, teacher, test), nodes,
              inference_ns(model, test));
}

}  // namespace

int main() {
  // One incident's labelled packet data (moderate intensity so the
  // problem is not degenerate).
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = 701;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 900})
          .rate(600)
          .starting_at(Timestamp::from_seconds(5))
          .lasting(Duration::seconds(20)));
  cfg.collector.labeling.binary_target =
      packet::TrafficLabel::kDnsAmplification;
  cfg.collector.seed = 702;
  testbed::Testbed bed(cfg);
  bed.run(Duration::seconds(30));
  const auto raw = bed.harvest_dataset();
  const auto quantizer = dataplane::Quantizer::fit(raw);
  const auto dataset = quantizer.quantize_dataset(raw);
  Rng rng(703);
  const auto [train, test] = dataset.stratified_split(0.3, rng);
  std::printf("dataset: %zu train / %zu test rows, %zu features\n\n",
              train.n_rows(), test.n_rows(), train.n_features());

  ml::ForestConfig rf_cfg;
  rf_cfg.n_trees = 50;
  rf_cfg.seed = 704;
  ml::RandomForest forest(rf_cfg);
  forest.fit(train);

  ml::BoostConfig gbt_cfg;
  gbt_cfg.seed = 705;
  ml::GradientBoosted gbt(gbt_cfg);
  gbt.fit(train);

  ml::LogisticRegression logit;
  logit.fit(train);

  std::puts("=== T-XAI: accuracy / fidelity / size / latency ===");
  std::printf("%-24s %-10s %-10s %-10s %-10s\n", "model", "accuracy",
              "fidelity", "nodes", "ns/op");
  row("RF teacher (50 trees)", forest, forest.total_nodes(), forest,
      test);
  row("GBT teacher (80 rnds)", gbt, gbt.total_nodes(), forest, test);
  row("logistic baseline", logit, train.n_features() + 1, forest, test);

  std::puts("--- students: distilled from RF vs direct CART ---");
  for (const int depth : {2, 3, 4, 5, 6, 8, 10}) {
    xai::ExtractConfig xc;
    xc.student_max_depth = depth;
    xc.synthetic_samples = 8000;
    xc.seed = 800 + static_cast<std::uint64_t>(depth);
    const auto distilled =
        xai::ModelExtractor(xc).extract(forest, train).student;
    char name[64];
    std::snprintf(name, sizeof name, "distilled depth %d", depth);
    row(name, distilled, distilled.node_count(), forest, test);

    ml::TreeConfig tc;
    tc.max_depth = depth;
    ml::DecisionTree direct(tc);
    direct.fit(train);
    std::snprintf(name, sizeof name, "direct CART depth %d", depth);
    row(name, direct, direct.node_count(), forest, test);
  }
  std::puts("\nshape: distilled recovers the teacher within a few points "
            "at ~100x fewer nodes; at equal depth it is never worse than "
            "direct CART (Bastani et al.'s extraction claim).");
  return 0;
}

// T-SCALE — §2's scale observation: modern data planes are "currently
// not capable of supporting this capability at scale; i.e., executing
// hundreds or thousands of such tasks concurrently and in real time".
//
// Measures exactly where the ceiling is for this target model:
//   Table 1: maximum concurrent tasks admitted by the Tofino-like
//            budget, per student depth and compile strategy (the
//            memory pool, not stage depth, is what runs out).
//   Table 2: per-packet inspection cost vs number of armed tasks in
//            the software pipeline (linear in tasks on a CPU; a real
//            RMT chip evaluates parallel tables at line rate — the
//            binding limit there is the admission table, not time).
#include <chrono>
#include <cstdio>

#include "campuslab/control/task_manager.h"
#include "campuslab/testbed/testbed.h"

using namespace campuslab;

namespace {

control::DeploymentPackage train(int depth,
                                 control::CompileStrategy strategy,
                                 std::uint64_t seed) {
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = seed;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .rate(1500)
          .starting_at(Timestamp::from_seconds(4))
          .lasting(Duration::seconds(16)));
  cfg.collector.labeling.binary_target =
      packet::TrafficLabel::kDnsAmplification;
  cfg.collector.attack_sample_rate = 0.3;
  cfg.collector.seed = seed + 1;
  testbed::Testbed bed(cfg);
  bed.run(Duration::seconds(24));

  control::DevelopmentConfig dev;
  dev.teacher.n_trees = 15;
  dev.teacher.seed = seed + 2;
  dev.extraction.student_max_depth = depth;
  dev.extraction.synthetic_samples = 4000;
  dev.extraction.seed = seed + 3;
  dev.strategy = strategy;
  auto result = control::DevelopmentLoop(dev).run(bed.harvest_dataset());
  if (!result.ok()) {
    std::fprintf(stderr, "train failed: %s\n",
                 result.error().message.c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  std::puts("=== T-SCALE: concurrent automation tasks vs the switch "
            "budget ===");
  std::printf("%-8s %-10s %-14s %-16s %-12s\n", "depth", "strategy",
              "task footprint", "max tasks fit", "binding limit");
  for (const int depth : {3, 5, 8}) {
    for (const auto strategy : {control::CompileStrategy::kTreeWalk,
                                control::CompileStrategy::kRuleTcam}) {
      const bool tcam = strategy == control::CompileStrategy::kRuleTcam;
      if (tcam && depth > 3) {
        // Expansion already exceeds the whole chip for one task
        // (see T-P4); record that and move on.
        std::printf("%-8d %-10s %-14s %-16s %-12s\n", depth, "tcam",
                    "> chip", "0", "tcam pool");
        continue;
      }
      const auto package = train(
          depth, strategy, 6000 + static_cast<std::uint64_t>(depth));
      control::TaskManager manager(
          dataplane::ResourceBudget::tofino_like());
      std::size_t fitted = 0;
      while (fitted < 5000) {
        if (!manager.deploy(package).ok()) break;
        ++fitted;
      }
      const auto combined = manager.combined_resources();
      const char* limit =
          combined.tcam_entries > 0 ? "tcam pool" : "sram pool";
      char footprint[64];
      std::snprintf(footprint, sizeof footprint, "%zub/%zue",
                    package.resources.sram_bits,
                    package.resources.tcam_entries);
      char fitted_str[32];
      if (fitted >= 5000) {
        std::snprintf(fitted_str, sizeof fitted_str, ">=5000 (cap)");
      } else {
        std::snprintf(fitted_str, sizeof fitted_str, "%zu", fitted);
      }
      std::printf("%-8d %-10s %-14s %-16s %-12s\n", depth,
                  tcam ? "tcam" : "tree", footprint, fitted_str, limit);
    }
  }

  // ---- Per-packet cost vs armed tasks (software pipeline). ----------
  std::puts("\n=== T-SCALE: software per-packet cost vs armed tasks ===");
  const auto package = train(5, control::CompileStrategy::kTreeWalk,
                             6100);
  std::printf("%-8s %-14s\n", "tasks", "ns/packet");
  for (const int n_tasks : {1, 2, 4, 8, 16, 32}) {
    control::TaskManager manager(dataplane::ResourceBudget::tofino_like());
    bool ok = true;
    for (int t = 0; t < n_tasks && ok; ++t)
      ok = manager.deploy(package).ok();
    if (!ok) {
      std::printf("%-8d (budget refused)\n", n_tasks);
      continue;
    }
    // A small replayable packet batch.
    std::vector<packet::Packet> batch;
    Rng rng(6200);
    using namespace packet;
    for (int i = 0; i < 512; ++i) {
      const Endpoint src{MacAddress::from_id(1),
                         Ipv4Address(8, 8, 8, 8), 53};
      const Endpoint dst{
          MacAddress::from_id(2),
          Ipv4Address(static_cast<std::uint32_t>(0x0A001000 +
                                                 rng.below(64))),
          static_cast<std::uint16_t>(1024 + rng.below(60000))};
      batch.push_back(PacketBuilder(Timestamp::from_nanos(i * 1000))
                          .udp(src, dst)
                          .payload_size(800)
                          .build());
    }
    const auto t0 = std::chrono::steady_clock::now();
    constexpr int kReps = 100;
    int sink = 0;
    for (int rep = 0; rep < kReps; ++rep)
      for (auto& pkt : batch) sink += manager.inspect(pkt) ? 1 : 0;
    const auto t1 = std::chrono::steady_clock::now();
    asm volatile("" : : "r"(sink));
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        (kReps * static_cast<double>(batch.size()));
    std::printf("%-8d %-14.1f\n", n_tasks, ns);
  }
  std::puts("\nshape: tree-walk tasks fit by the thousand (SRAM-bound); "
            "TCAM-compiled tasks exhaust the chip almost immediately — "
            "quantifying the paper's 'not at scale' observation and why "
            "compilation strategy decides task density.");
  return 0;
}

// T-ROAD — §5's reproducibility proposal: "open-sourcing the learning
// algorithms that university researchers will develop using their own
// campus network's data store ... training them with data from some
// other campus networks (each with its own data store) suggests a
// viable path for tackling the much-debated reproducibility problem".
//
// Five synthetic campuses (different sizes, loads, address plans, and
// attack intensities) each run the SAME open-sourced algorithm on
// their OWN data. Models cross-evaluate on every campus; the attack is
// kept low-rate so detection is non-trivial and the on-campus vs
// cross-campus gap is visible. The shape to reproduce: high diagonal,
// bounded off-diagonal drop — algorithms transfer, data never moves.
#include <cstdio>
#include <string>
#include <vector>

#include "campuslab/control/development_loop.h"
#include "campuslab/ml/metrics.h"
#include "campuslab/testbed/testbed.h"

using namespace campuslab;

namespace {

struct Campus {
  const char* name;
  std::uint64_t seed;
  int wired, wifi;
  double load;
  double attack_pps;
  std::size_t attack_bytes;
};

}  // namespace

int main() {
  const Campus campuses[] = {
      {"bigstate", 111, 220, 520, 1.4, 400, 900},
      {"tech    ", 222, 90, 160, 0.7, 250, 700},
      {"liberal ", 333, 40, 260, 0.5, 600, 1100},
      {"medical ", 444, 150, 100, 0.9, 300, 800},
      {"commuter", 555, 60, 380, 0.8, 500, 1000},
  };
  constexpr int kN = 5;

  std::vector<ml::Dataset> holdouts;
  std::vector<std::string> models;  // serialized students
  std::vector<double> own_acc;

  for (const auto& campus : campuses) {
    testbed::TestbedConfig cfg;
    cfg.scenario.campus.seed = campus.seed;
    cfg.scenario.campus.diurnal = false;
    cfg.scenario.campus.wired_clients = campus.wired;
    cfg.scenario.campus.wifi_clients = campus.wifi;
    cfg.scenario.campus.load_scale = campus.load;
    cfg.scenario.scenarios.push_back(
        sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
            .with(sim::DnsAmplificationShape{.response_bytes =
                                                 campus.attack_bytes})
            .rate(campus.attack_pps)
            .starting_at(Timestamp::from_seconds(6))
            .lasting(Duration::seconds(22)));
    cfg.collector.labeling.binary_target =
        packet::TrafficLabel::kDnsAmplification;
    cfg.collector.seed = campus.seed * 3;
    testbed::Testbed bed(cfg);
    bed.run(Duration::seconds(32));
    const auto raw = bed.harvest_dataset();

    // Each campus quantizes on a COMMON grid (part of the open-sourced
    // algorithm): fixed physical ranges, not per-campus statistics, so
    // exchanged models speak the same feature language.
    std::vector<std::pair<double, double>> ranges(
        features::kPacketFeatureCount);
    const auto& names = features::packet_feature_names();
    for (std::size_t f = 0; f < ranges.size(); ++f) {
      if (names[f] == "frame_bytes" || names[f] == "payload_bytes")
        ranges[f] = {0, 4000};
      else if (names[f] == "src_port" || names[f] == "dst_port")
        ranges[f] = {0, 65536};
      else if (names[f] == "dst_inbound_pps")
        ranges[f] = {0, 50'000};
      else if (names[f] == "dst_inbound_bps")
        ranges[f] = {0, 5e8};
      else if (names[f] == "dst_distinct_srcs" ||
               names[f] == "src_fanout")
        ranges[f] = {0, 1500};
      else
        ranges[f] = {0, 1};  // booleans
    }
    const auto grid = dataplane::Quantizer::from_ranges(std::move(ranges));
    const auto quantized = grid.quantize_dataset(raw);
    Rng rng(campus.seed + 9);
    auto [train, test] = quantized.stratified_split(0.3, rng);

    // The open-sourced algorithm: teacher + extraction, fixed config.
    ml::ForestConfig fc;
    fc.n_trees = 30;
    fc.seed = campus.seed;
    ml::RandomForest teacher(fc);
    teacher.fit(train);
    xai::ExtractConfig xc;
    xc.student_max_depth = 5;
    xc.seed = campus.seed + 1;
    const auto student =
        xai::ModelExtractor(xc).extract(teacher, train).student;

    own_acc.push_back(ml::evaluate(student, test).accuracy());
    models.push_back(student.serialize());
    holdouts.push_back(std::move(test));
    std::printf("campus %s: %6zu samples, own-holdout accuracy %.4f\n",
                campus.name, quantized.n_rows(), own_acc.back());
  }

  std::puts("\n=== T-ROAD: cross-campus accuracy matrix "
            "(row = trained on, col = evaluated on) ===");
  std::printf("            ");
  for (const auto& c : campuses) std::printf("%-10s", c.name);
  std::puts("");
  double diag = 0, off = 0;
  double worst_off = 1.0;
  for (int i = 0; i < kN; ++i) {
    const auto model =
        ml::DecisionTree::deserialize(models[static_cast<std::size_t>(i)]);
    if (!model.ok()) return 1;
    std::printf("  %s  ", campuses[i].name);
    for (int j = 0; j < kN; ++j) {
      const double acc =
          ml::evaluate(model.value(),
                       holdouts[static_cast<std::size_t>(j)])
              .accuracy();
      std::printf("%-10.4f", acc);
      if (i == j) diag += acc;
      else {
        off += acc;
        worst_off = std::min(worst_off, acc);
      }
    }
    std::puts("");
  }
  std::printf(
      "\nmean on-campus  : %.4f\nmean cross-campus: %.4f   "
      "(worst pair %.4f)\n",
      diag / kN, off / (kN * (kN - 1)), worst_off);
  std::puts("shape: the open-sourced algorithm reproduces across "
            "campuses (bounded off-diagonal drop) with zero data "
            "sharing — §5's reproducibility path.");
  return 0;
}

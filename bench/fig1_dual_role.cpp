// FIG1 — the paper's Figure 1, end to end: the campus network serving
// as data source AND testbed in one run.
//
//   campus traffic --> privacy-preserving collection --> data store
//        ^                                                  |
//        |                                                  v
//   deployable model <-- XAI extraction <-- learning algorithms
//
// One simulated run reports every stage's throughput and outcome: what
// crossed the wire, what capture kept, what the store indexed, what the
// learning pipeline produced, and how the resulting deployable model
// performed back on the same campus. This is the dual-role claim made
// measurable.
#include <cstdio>

#include "campuslab/control/fast_loop.h"
#include "campuslab/privacy/anonymize.h"
#include "campuslab/testbed/report.h"
#include "campuslab/testbed/safety.h"
#include "campuslab/testbed/testbed.h"

using namespace campuslab;

int main() {
  std::puts("=== FIG1: campus network as data source + testbed ===\n");

  // ---- Data-source phase: a campus hour slice with an incident. -----
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = 4242;
  cfg.scenario.campus.load_scale = 1.0;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 2200})
          .rate(1500)
          .starting_at(Timestamp::from_seconds(60))
          .lasting(Duration::seconds(60)));
  cfg.collector.labeling.binary_target =
      packet::TrafficLabel::kDnsAmplification;
  cfg.collector.attack_sample_rate = 0.3;
  cfg.collector.seed = 4243;
  testbed::Testbed bed(cfg);

  const double sim_seconds = 240;
  bed.run(Duration::from_seconds(sim_seconds));
  const auto dataset = bed.harvest_dataset();

  const auto& cap = bed.capture_engine().stats();
  const auto catalog = bed.store().catalog();
  std::puts("[stage 1] campus wire -> capture tap");
  std::printf("  %.0f simulated seconds, %llu frames on the wire "
              "(%.0f pps avg, %.2f Gbps avg)\n",
              sim_seconds, (unsigned long long)cap.offered,
              cap.offered / sim_seconds,
              cap.offered_bytes * 8.0 / sim_seconds / 1e9);
  std::printf("  lossless: %llu dropped (%.5f%%)\n",
              (unsigned long long)cap.dropped, 100 * cap.loss_rate());

  std::puts("[stage 2] capture -> data store (+ on-the-fly metadata)");
  std::printf("  %llu flow records indexed in %zu segments; "
              "%llu labelled attack flows\n",
              (unsigned long long)catalog.total_flows, catalog.segments,
              (unsigned long long)(catalog.total_flows -
                                   catalog.flows_per_label[0]));

  std::puts("[stage 3] store -> learning algorithms");
  const auto counts = dataset.class_counts();
  std::printf("  packet training set: %zu rows (%zu benign / %zu attack),"
              " %zu features\n",
              dataset.n_rows(), counts[0], counts[1],
              dataset.n_features());

  control::DevelopmentConfig dev;
  dev.teacher.n_trees = 30;
  dev.teacher.seed = 4244;
  dev.extraction.seed = 4245;
  const auto package = control::DevelopmentLoop(dev).run(dataset);
  if (!package.ok()) {
    std::printf("  development loop failed: %s\n",
                package.error().message.c_str());
    return 1;
  }
  std::printf("  teacher acc %.4f -> deployable tree acc %.4f "
              "(fidelity %.4f), %zu nodes, %s\n",
              package.value().teacher_holdout_accuracy,
              package.value().student_holdout_accuracy,
              package.value().holdout_fidelity,
              package.value().student.node_count(),
              package.value().resources.to_string().c_str());

  std::puts("[stage 4] deployable model -> back onto the campus "
            "(testbed role)");
  testbed::TestbedConfig replay = cfg;
  replay.scenario.campus.seed = 5151;  // a different day
  replay.scenario.scenarios.clear();
  replay.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 2200})
          .rate(1500)
          .starting_at(Timestamp::from_seconds(30))
          .lasting(Duration::seconds(60)));
  replay.collector.benign_sample_rate = 0.01;
  replay.collector.attack_sample_rate = 0.01;
  testbed::Testbed road(replay);
  auto loop = control::FastLoop::deploy(package.value());
  if (!loop.ok()) return 1;
  testbed::SafetyMonitor safety(*loop.value(), testbed::SafetyConfig{});
  safety.install(road.network());
  road.run(Duration::from_seconds(150));

  const auto& m = loop.value()->stats();
  std::printf("  inspected %llu packets at %.0f ns each\n",
              (unsigned long long)m.inspected,
              loop.value()->latency_ns().mean());
  std::printf("  attack blocked %.4f | drop precision %.4f | benign "
              "loss %.5f | safety %s\n",
              m.attack_block_rate(), m.drop_precision(),
              m.benign_loss_rate(),
              safety.rolled_back() ? "ROLLED BACK" : "held");
  std::puts("\nshape: one platform closes the loop from wire to "
            "deployed, explained, safe mitigation — the dual role of "
            "Figure 1.");
  return 0;
}

// T-DRIFT — continual learning on the live campus, extending the
// paper's §6 lineage ("learning-and-deployment platform Puffer ...
// continual learning improves Internet video streaming") to the
// security task.
//
// Scenario: a heavy amplification campaign trains the initial model;
// later the attacker adapts — low-rate, small-payload reflection from
// few reflectors, sitting inside the benign DNS envelope. Two arms run
// the identical campus:
//
//   static     deploy once, never retrain
//   continual  retrain every 15 s; promote on class-balanced accuracy
//
// Reported: per-phase attack delivered fraction for both arms, plus
// the continual loop's model-version history (the §5 "deployable
// learning models are versioned artifacts" story made concrete).
#include <cstdio>

#include "campuslab/testbed/continual.h"

using namespace campuslab;
using testbed::ContinualConfig;
using testbed::ContinualLoop;
using testbed::Testbed;
using testbed::TestbedConfig;

namespace {

TestbedConfig drift_scenario(std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.scenario.campus.seed = seed;
  cfg.scenario.campus.diurnal = false;
  sim::DnsAmplificationConfig phase1;
  phase1.start = Timestamp::from_seconds(4);
  phase1.duration = Duration::seconds(14);
  phase1.response_rate_pps = 1200;
  phase1.response_bytes = 2400;
  cfg.scenario.dns_amplification.push_back(phase1);
  sim::DnsAmplificationConfig phase2;
  phase2.start = Timestamp::from_seconds(45);
  phase2.duration = Duration::seconds(35);
  phase2.response_rate_pps = 60;
  phase2.response_bytes = 300;
  phase2.reflectors = 20;
  cfg.scenario.dns_amplification.push_back(phase2);
  cfg.collector.labeling.binary_target =
      packet::TrafficLabel::kDnsAmplification;
  cfg.collector.attack_sample_rate = 0.5;
  cfg.collector.seed = seed + 5;
  return cfg;
}

ContinualConfig loop_config(std::uint64_t seed) {
  ContinualConfig cfg;
  cfg.development.teacher.n_trees = 15;
  cfg.development.teacher.seed = seed;
  cfg.development.extraction.student_max_depth = 5;
  cfg.development.extraction.synthetic_samples = 3000;
  cfg.development.extraction.seed = seed + 1;
  cfg.development.seed = seed + 2;
  cfg.retrain_interval = Duration::seconds(15);
  return cfg;
}

double delivered_fraction(const sim::DeliveryAccounting& before,
                          const sim::DeliveryAccounting& after) {
  const auto idx =
      static_cast<std::size_t>(packet::TrafficLabel::kDnsAmplification);
  const auto delivered =
      after.delivered.frames[idx] - before.delivered.frames[idx];
  const auto filtered =
      after.filtered.frames[idx] - before.filtered.frames[idx];
  return static_cast<double>(delivered) /
         static_cast<double>(delivered + filtered + 1);
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 50001;

  std::puts("=== T-DRIFT: static deployment vs continual learning under "
            "attacker adaptation ===");
  std::puts("phase 1 (t=4..18):  1200 pps x 2400 B, 400 reflectors "
            "(training regime)");
  std::puts("phase 2 (t=45..80):   60 pps x  300 B,  20 reflectors "
            "(adapted: inside the benign DNS envelope)\n");

  double static_phase2 = 0;
  {
    Testbed bed(drift_scenario(kSeed));
    bed.run(Duration::seconds(20));
    control::DevelopmentLoop dev(loop_config(kSeed).development);
    auto package = dev.run(bed.harvest_dataset());
    if (!package.ok()) return 1;
    auto loop = control::FastLoop::deploy(package.value());
    if (!loop.ok()) return 1;
    loop.value()->install(bed.network());
    bed.run(Duration::seconds(24));
    const auto before = bed.network().accounting();
    bed.run(Duration::seconds(41));
    static_phase2 = delivered_fraction(before, bed.network().accounting());
  }

  double continual_phase2 = 0;
  {
    Testbed bed(drift_scenario(kSeed));
    bed.run(Duration::seconds(20));
    ContinualLoop loop(loop_config(kSeed), bed);
    if (!loop.start().ok()) return 1;
    bed.run(Duration::seconds(24));
    const auto before = bed.network().accounting();
    bed.run(Duration::seconds(41));
    continual_phase2 =
        delivered_fraction(before, bed.network().accounting());

    std::puts("continual loop model-version history:");
    for (const auto& v : loop.history()) {
      std::printf("  v%-3d t=%5.0fs  candidate %.4f vs incumbent %.4f "
                  "(balanced acc) -> %s\n",
                  v.version, v.trained_at.to_seconds(),
                  v.candidate_window_accuracy,
                  v.incumbent_window_accuracy, v.note.c_str());
    }
  }

  std::puts("\narm                    drifted-attack delivered fraction");
  std::printf("static deployment      %.4f\n", static_phase2);
  std::printf("continual learning     %.4f\n", continual_phase2);
  std::printf("improvement            %.1fx less attack traffic "
              "delivered\n",
              static_phase2 / std::max(continual_phase2, 1e-4));
  std::puts("\nshape: the statically deployed model decays when the "
            "attacker adapts; the campus-as-testbed loop retrains from "
            "its own labelled store and recovers within one window.");
  return 0;
}

// T-DRIFT — continual learning on the live campus, extending the
// paper's §6 lineage ("learning-and-deployment platform Puffer ...
// continual learning improves Internet video streaming") to the
// security task.
//
// Scenario: a heavy amplification campaign trains the initial model;
// later the attacker adapts — low-rate, small-payload reflection from
// few reflectors, sitting inside the benign DNS envelope. Two arms run
// the identical campus:
//
//   static     deploy once, never retrain
//   continual  retrain every 15 s; promote on class-balanced accuracy
//
// Reported: per-phase attack delivered fraction for both arms, plus
// the continual loop's model-version history (the §5 "deployable
// learning models are versioned artifacts" story made concrete).
//
// A third arm closes the loop (control/testbed automation_loop): no
// timer, no operator — a drift detector watches the live verdict
// stream and, when the adapted attack is loud enough to shift it,
// retrains, canaries, and hot-swaps through the versioned registry.
// That arm runs a louder adapted regime (same shape, 1200 pps) because
// supervision keys off the verdict distribution: an attack too quiet
// to move it is also too quiet to arm retraining — so its static
// baseline is re-run on the identical loud campus for a fair pair.
#include <cstdio>
#include <filesystem>

#include "campuslab/testbed/automation_loop.h"
#include "campuslab/testbed/continual.h"

using namespace campuslab;
using testbed::ContinualConfig;
using testbed::ContinualLoop;
using testbed::Testbed;
using testbed::TestbedConfig;

namespace {

TestbedConfig drift_scenario(std::uint64_t seed, double phase2_pps = 60) {
  TestbedConfig cfg;
  cfg.scenario.campus.seed = seed;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 2400})
          .rate(1200)
          .starting_at(Timestamp::from_seconds(4))
          .lasting(Duration::seconds(14)));
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 300,
                                           .reflectors = 20})
          .rate(phase2_pps)
          .starting_at(Timestamp::from_seconds(45))
          .lasting(Duration::seconds(35)));
  cfg.collector.labeling.binary_target =
      packet::TrafficLabel::kDnsAmplification;
  cfg.collector.attack_sample_rate = 0.5;
  cfg.collector.seed = seed + 5;
  return cfg;
}

ContinualConfig loop_config(std::uint64_t seed) {
  ContinualConfig cfg;
  cfg.development.teacher.n_trees = 15;
  cfg.development.teacher.seed = seed;
  cfg.development.extraction.student_max_depth = 5;
  cfg.development.extraction.synthetic_samples = 3000;
  cfg.development.extraction.seed = seed + 1;
  cfg.development.seed = seed + 2;
  cfg.retrain_interval = Duration::seconds(15);
  return cfg;
}

control::AutomationConfig automation_config(std::uint64_t seed,
                                            std::string registry_dir) {
  control::AutomationConfig cfg;
  cfg.development.teacher.n_trees = 15;
  cfg.development.teacher.seed = seed;
  cfg.development.extraction.student_max_depth = 5;
  cfg.development.extraction.synthetic_samples = 3000;
  cfg.development.extraction.seed = seed + 1;
  cfg.development.seed = seed + 2;
  cfg.registry_directory = std::move(registry_dir);
  cfg.drift.window = 1500;
  cfg.drift.bins = 32;
  cfg.drift.min_samples = 300;
  cfg.drift.trigger_threshold = 0.2;
  cfg.drift.clear_threshold = 0.1;
  cfg.drift.trigger_windows = 2;
  cfg.drift_check_interval = Duration::seconds(5);
  cfg.canary_duration = Duration::seconds(5);
  cfg.gate.min_precision = 0.6;
  cfg.gate.min_block_rate = 0.3;
  cfg.gate.max_benign_loss = 0.2;
  cfg.gate.min_observed = 500;
  cfg.min_window_rows = 200;
  cfg.seed = seed + 3;
  return cfg;
}

const char* outcome_name(control::CycleOutcome outcome) {
  switch (outcome) {
    case control::CycleOutcome::kPromoted:
      return "promoted";
    case control::CycleOutcome::kRolledBack:
      return "rolled back";
    case control::CycleOutcome::kAborted:
      return "aborted";
  }
  return "?";
}

double delivered_fraction(const sim::DeliveryAccounting& before,
                          const sim::DeliveryAccounting& after) {
  const auto idx =
      static_cast<std::size_t>(packet::TrafficLabel::kDnsAmplification);
  const auto delivered =
      after.delivered.frames[idx] - before.delivered.frames[idx];
  const auto filtered =
      after.filtered.frames[idx] - before.filtered.frames[idx];
  return static_cast<double>(delivered) /
         static_cast<double>(delivered + filtered + 1);
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 50001;
  // The supervised arm runs its own campus draw: drift supervision keys
  // off the verdict distribution, and this seed's adapted flood is
  // verdict-visible at the configured detector resolution.
  constexpr std::uint64_t kLoudSeed = 50002;

  std::puts("=== T-DRIFT: static deployment vs continual learning under "
            "attacker adaptation ===");
  std::puts("phase 1 (t=4..18):  1200 pps x 2400 B, 400 reflectors "
            "(training regime)");
  std::puts("phase 2 (t=45..80):   60 pps x  300 B,  20 reflectors "
            "(adapted: inside the benign DNS envelope)\n");

  double static_phase2 = 0;
  {
    Testbed bed(drift_scenario(kSeed));
    bed.run(Duration::seconds(20));
    control::DevelopmentLoop dev(loop_config(kSeed).development);
    auto package = dev.run(bed.harvest_dataset());
    if (!package.ok()) return 1;
    auto loop = control::FastLoop::deploy(package.value());
    if (!loop.ok()) return 1;
    loop.value()->install(bed.network());
    bed.run(Duration::seconds(24));
    const auto before = bed.network().accounting();
    bed.run(Duration::seconds(41));
    static_phase2 = delivered_fraction(before, bed.network().accounting());
  }

  double continual_phase2 = 0;
  {
    Testbed bed(drift_scenario(kSeed));
    bed.run(Duration::seconds(20));
    ContinualLoop loop(loop_config(kSeed), bed);
    if (!loop.start().ok()) return 1;
    bed.run(Duration::seconds(24));
    const auto before = bed.network().accounting();
    bed.run(Duration::seconds(41));
    continual_phase2 =
        delivered_fraction(before, bed.network().accounting());

    std::puts("continual loop model-version history:");
    for (const auto& v : loop.history()) {
      std::printf("  v%-3d t=%5.0fs  candidate %.4f vs incumbent %.4f "
                  "(balanced acc) -> %s\n",
                  v.version, v.trained_at.to_seconds(),
                  v.candidate_window_accuracy,
                  v.incumbent_window_accuracy, v.note.c_str());
    }
  }

  std::puts("\narm                    drifted-attack delivered fraction");
  std::printf("static deployment      %.4f\n", static_phase2);
  std::printf("continual learning     %.4f\n", continual_phase2);
  std::printf("improvement            %.1fx less attack traffic "
              "delivered\n",
              static_phase2 / std::max(continual_phase2, 1e-4));

  // Arm 3: the closed loop — drift-armed, canary-gated, hot-swapped
  // through the durable versioned registry. Loud adapted regime (1200
  // pps, same small-packet shape), with its own static baseline.
  std::puts("\n=== closed loop: drift-supervised automation (adapted "
            "regime at 1200 pps) ===");
  double static_loud = 0;
  {
    Testbed bed(drift_scenario(kLoudSeed, 1200));
    bed.run(Duration::seconds(20));
    control::DevelopmentLoop dev(loop_config(kLoudSeed).development);
    auto package = dev.run(bed.harvest_dataset());
    if (!package.ok()) return 1;
    auto loop = control::FastLoop::deploy(package.value());
    if (!loop.ok()) return 1;
    loop.value()->install(bed.network());
    bed.run(Duration::seconds(24));
    const auto before = bed.network().accounting();
    bed.run(Duration::seconds(41));
    static_loud = delivered_fraction(before, bed.network().accounting());
  }

  double automation_loud = 0;
  {
    const auto registry_dir =
        std::filesystem::temp_directory_path() / "t_drift_registry";
    std::filesystem::remove_all(registry_dir);
    std::filesystem::create_directories(registry_dir);
    Testbed bed(drift_scenario(kLoudSeed, 1200));
    bed.run(Duration::seconds(20));
    control::AutomationLoop loop(
        automation_config(kLoudSeed, registry_dir.string()), bed);
    if (!loop.start().ok()) return 1;
    bed.run(Duration::seconds(24));
    const auto before = bed.network().accounting();
    bed.run(Duration::seconds(41));
    automation_loud =
        delivered_fraction(before, bed.network().accounting());

    std::printf("drift detector: %llu windows judged, %llu triggers, "
                "last score distance %.4f, last rate delta %.4f\n",
                static_cast<unsigned long long>(
                    loop.drift().windows_judged()),
                static_cast<unsigned long long>(loop.drift().triggers()),
                loop.drift().last_score_distance(),
                loop.drift().last_rate_delta());
    std::puts("cycle log (drift-armed; every transition durable in the "
              "registry + audit log):");
    for (const auto& c : loop.cycles()) {
      std::printf("  cycle %llu  candidate v%-3u %-11s %s "
                  "(candidate %.4f vs incumbent %.4f on fresh window)\n",
                  static_cast<unsigned long long>(c.cycle),
                  c.candidate_version, outcome_name(c.outcome),
                  c.error_code.empty() ? "-" : c.error_code.c_str(),
                  c.candidate_accuracy, c.incumbent_accuracy);
    }
    std::printf("final: serving v%u (registry active v%u), health %s, "
                "%zu audit events, capture drops %llu\n",
                loop.handle().version(), loop.registry().active_version(),
                loop.health() == control::LoopHealth::kHealthy
                    ? "healthy"
                    : "degraded",
                loop.registry().audit_trail().size(),
                static_cast<unsigned long long>(
                    bed.capture_engine().stats().dropped));
    std::filesystem::remove_all(registry_dir);
  }

  std::puts("\narm                    drifted-attack delivered fraction "
            "(loud regime)");
  std::printf("static deployment      %.4f\n", static_loud);
  std::printf("automation loop        %.4f\n", automation_loud);

  std::puts("\nshape: the statically deployed model decays when the "
            "attacker adapts; the campus-as-testbed loop retrains from "
            "its own labelled store and recovers within one window. The "
            "closed loop needs no timer and no operator: the verdict "
            "stream itself arms retraining, the canary gates the swap, "
            "and every promotion survives a process kill.");
  return 0;
}

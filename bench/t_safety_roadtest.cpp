// T-SAFE — §4: operators need evidence of "correctness, robustness,
// and safety" before anything touches production. Four road-test arms
// against the same heavy incident PLUS a benign flash crowd aimed at a
// second host (the classic confounder: a sudden legitimate surge whose
// rate signature resembles an attack):
//
//   A  no mitigation            (what the flood does unopposed)
//   B  drop, no safety monitor  (raw model enforcement)
//   C  drop + safety monitor    (auto-rollback on benign collateral)
//   D  rate-limit + safety      (the softer action)
//
// And the same four arms for a POISONED model (labels flipped — a
// worst-case road-test candidate) where only the safety monitor stands
// between the campus and a self-inflicted outage.
#include <cstdio>

#include "campuslab/control/development_loop.h"
#include "campuslab/control/fast_loop.h"
#include "campuslab/testbed/safety.h"
#include "campuslab/testbed/testbed.h"

using namespace campuslab;

namespace {

testbed::TestbedConfig scenario(std::uint64_t seed) {
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = seed;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 2800})
          .rate(120'000)  // ~2.7 Gbps: congests the 2G access link
          .starting_at(Timestamp::from_seconds(6))
          .lasting(Duration::seconds(14)));
  cfg.collector.benign_sample_rate = 0.01;  // arms don't retrain
  cfg.collector.attack_sample_rate = 0.002;
  // The confounder: a legitimate 3 kpps surge toward one client while
  // the flood is in progress.
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kFlashCrowd)
          .rate(3000)
          .starting_at(Timestamp::from_seconds(10))
          .lasting(Duration::seconds(12)));
  return cfg;
}

control::DeploymentPackage train_package(bool poisoned) {
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = 7070;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .rate(2000)
          .starting_at(Timestamp::from_seconds(5))
          .lasting(Duration::seconds(20)));
  cfg.collector.labeling.binary_target =
      packet::TrafficLabel::kDnsAmplification;
  cfg.collector.attack_sample_rate = 0.25;
  cfg.collector.seed = 7071;
  testbed::Testbed bed(cfg);
  bed.run(Duration::seconds(30));
  auto dataset = bed.harvest_dataset();
  if (poisoned) {
    ml::Dataset flipped(dataset.feature_names(), dataset.class_names());
    for (std::size_t i = 0; i < dataset.n_rows(); ++i)
      flipped.add(dataset.row(i), 1 - dataset.label(i));
    dataset = std::move(flipped);
  }
  control::DevelopmentConfig dev;
  dev.teacher.n_trees = 25;
  dev.teacher.seed = 7072;
  dev.extraction.seed = 7073;
  auto package = control::DevelopmentLoop(dev).run(dataset);
  if (!package.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 package.error().message.c_str());
    std::exit(1);
  }
  return std::move(package).value();
}

struct ArmResult {
  double benign_delivered_frac = 0;
  double attack_delivered_frac = 0;
  bool rolled_back = false;
};

ArmResult run_arm(const control::DeploymentPackage* package,
                  control::MitigationAction action, bool with_safety,
                  std::uint64_t seed) {
  testbed::Testbed bed(scenario(seed));

  std::unique_ptr<control::FastLoop> loop;
  std::unique_ptr<testbed::SafetyMonitor> safety;
  control::DeploymentPackage local;
  if (package) {
    local = *package;
    local.task.action = action;
    local.task.rate_limit_pps = 100;
    auto deployed = control::FastLoop::deploy(local);
    if (!deployed.ok()) std::exit(1);
    loop = std::move(deployed).value();
    if (with_safety) {
      testbed::SafetyConfig scfg;
      scfg.max_benign_drop_fraction = 0.05;
      safety = std::make_unique<testbed::SafetyMonitor>(*loop, scfg);
      safety->install(bed.network());
    } else {
      loop->install(bed.network());
    }
  }
  bed.run(Duration::seconds(26));

  const auto& acc = bed.network().accounting();
  ArmResult r;
  const auto tapped_b = acc.tapped_in.benign_frames();
  const auto tapped_a = acc.tapped_in.attack_frames();
  r.benign_delivered_frac =
      tapped_b == 0 ? 0
                    : static_cast<double>(acc.delivered.benign_frames()) /
                          static_cast<double>(tapped_b);
  r.attack_delivered_frac =
      tapped_a == 0 ? 0
                    : static_cast<double>(acc.delivered.attack_frames()) /
                          static_cast<double>(tapped_a);
  r.rolled_back = safety && safety->rolled_back();
  return r;
}

void print_arm(const char* name, const ArmResult& r) {
  std::printf("%-28s benign delivered %6.4f | attack delivered %6.4f | "
              "%s\n",
              name, r.benign_delivered_frac, r.attack_delivered_frac,
              r.rolled_back ? "ROLLED BACK" : "held");
}

}  // namespace

int main() {
  std::puts("=== T-SAFE: road-testing under a flash-crowd confounder "
            "(120kpps flood + 3kpps benign surge) ===\n");

  std::puts("--- healthy model ---");
  const auto good = train_package(false);
  print_arm("A: no mitigation",
            run_arm(nullptr, control::MitigationAction::kDrop, false, 9001));
  print_arm("B: drop, no safety",
            run_arm(&good, control::MitigationAction::kDrop, false, 9002));
  print_arm("C: drop + safety",
            run_arm(&good, control::MitigationAction::kDrop, true, 9003));
  print_arm("D: rate-limit + safety",
            run_arm(&good, control::MitigationAction::kRateLimit, true,
                    9004));

  std::puts("\n--- poisoned model (worst-case road-test candidate) ---");
  const auto bad = train_package(true);
  print_arm("B': drop, no safety",
            run_arm(&bad, control::MitigationAction::kDrop, false, 9005));
  print_arm("C': drop + safety",
            run_arm(&bad, control::MitigationAction::kDrop, true, 9006));

  std::puts("\nshape: A loses benign traffic to congestion; B/C restore "
            "it by shedding the flood without touching the flash crowd; "
            "B' shows why un-monitored enforcement is dangerous and C' "
            "shows the safety monitor catching it.");
  return 0;
}

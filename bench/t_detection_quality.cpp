// T-DET — the paper's §2 automation rule: "drop attack traffic on
// ingress if confidence in detection is at least 90%".
//
// Sweeps DNS-amplification intensity (rate x response size) from
// barely-above-background to full booter volume; for each intensity
// (x3 seeds) the complete pipeline runs — collect labelled packets,
// train teacher, extract student — and the held-out operating point at
// the 90% confidence threshold is reported for both models. A second
// table ablates the confidence threshold itself (design choice #4 in
// DESIGN.md), motivating why the paper picks >= 90%.
// A final section trains a flow-level multi-class model on a mixed
// scenario (two attacks plus a flash crowd) and prints the confusion
// matrix broken down per scenario instance via the generation-time
// scenario-id column. Under CAMPUSLAB_BENCH_GATE=1 this is a gate:
// every attack scenario must land at least one true positive.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "campuslab/control/development_loop.h"
#include "campuslab/features/dataset_builder.h"
#include "campuslab/ml/metrics.h"
#include "campuslab/testbed/testbed.h"

using namespace campuslab;

namespace {

struct Intensity {
  double pps;
  std::size_t bytes;
  const char* note;
};

struct RunResult {
  double teacher_auc = 0;
  double student_auc = 0;
  ml::OperatingPoint student_at_90;
  ml::OperatingPoint teacher_at_90;
};

RunResult run_once(const Intensity& intensity, std::uint64_t seed) {
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = seed;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = intensity.bytes})
          .rate(intensity.pps)
          .starting_at(Timestamp::from_seconds(5))
          .lasting(Duration::seconds(20)));
  cfg.collector.labeling.binary_target =
      packet::TrafficLabel::kDnsAmplification;
  cfg.collector.attack_sample_rate =
      intensity.pps > 2000 ? 0.2 : 1.0;
  cfg.collector.seed = seed * 13;
  testbed::Testbed bed(cfg);
  bed.run(Duration::seconds(30));
  const auto dataset = bed.harvest_dataset();

  // Same split the development loop uses, but we need the teacher too,
  // so run the pieces explicitly.
  const auto quantizer = dataplane::Quantizer::fit(dataset);
  const auto quantized = quantizer.quantize_dataset(dataset);
  Rng rng(seed + 1);
  const auto [train, test] = quantized.stratified_split(0.3, rng);

  ml::ForestConfig teacher_cfg;
  teacher_cfg.n_trees = 25;
  teacher_cfg.seed = seed + 2;
  ml::RandomForest teacher(teacher_cfg);
  teacher.fit(train);

  xai::ExtractConfig extract_cfg;
  extract_cfg.student_max_depth = 5;
  extract_cfg.synthetic_samples = 5000;
  extract_cfg.seed = seed + 3;
  const auto student =
      xai::ModelExtractor(extract_cfg).extract(teacher, train).student;

  RunResult result;
  std::vector<double> teacher_scores, student_scores;
  std::vector<int> labels;
  for (std::size_t i = 0; i < test.n_rows(); ++i) {
    teacher_scores.push_back(teacher.predict_proba(test.row(i))[1]);
    student_scores.push_back(student.predict_proba(test.row(i))[1]);
    labels.push_back(test.label(i));
  }
  result.teacher_auc = ml::roc_auc(teacher_scores, labels);
  result.student_auc = ml::roc_auc(student_scores, labels);
  result.teacher_at_90 = ml::operating_point(teacher_scores, labels, 0.9);
  result.student_at_90 = ml::operating_point(student_scores, labels, 0.9);
  return result;
}

}  // namespace

int main() {
  const Intensity intensities[] = {
      {5, 400, "stealthy: inside benign DNS envelope"},
      {20, 500, "very low"},
      {100, 800, "low"},
      {1000, 1500, "moderate"},
      {10000, 2800, "full booter"},
  };
  const std::uint64_t seeds[] = {501, 502, 503};

  std::puts("=== T-DET: detection quality vs attack intensity "
            "(operating point: confidence >= 0.90) ===");
  std::printf("%-30s %-10s %-10s %-10s %-10s %-10s %-10s\n", "intensity",
              "AUC(bb)", "AUC(dep)", "P@.9(bb)", "R@.9(bb)", "P@.9(dep)",
              "R@.9(dep)");
  for (const auto& intensity : intensities) {
    double t_auc = 0, s_auc = 0, tp = 0, tr = 0, sp = 0, sr = 0;
    for (const auto seed : seeds) {
      const auto r = run_once(intensity, seed);
      t_auc += r.teacher_auc;
      s_auc += r.student_auc;
      tp += r.teacher_at_90.precision;
      tr += r.teacher_at_90.recall;
      sp += r.student_at_90.precision;
      sr += r.student_at_90.recall;
    }
    const double n = static_cast<double>(std::size(seeds));
    char label[64];
    std::snprintf(label, sizeof label, "%5.0fpps x %4zuB (%s)",
                  intensity.pps, intensity.bytes, intensity.note);
    std::printf("%-30s %-10.4f %-10.4f %-10.4f %-10.4f %-10.4f %-10.4f\n",
                label, t_auc / n, s_auc / n, tp / n, tr / n, sp / n,
                sr / n);
  }
  std::puts("(bb = black-box teacher, dep = deployable student)");

  // ---- Ablation: the confidence threshold (design choice #4). -------
  // Run at the stealthy end, where leaves are impure and the threshold
  // actually trades precision against recall.
  std::puts("\n=== T-DET ablation: confidence threshold sweep "
            "(stealthy intensity, deployable model) ===");
  std::printf("%-12s %-12s %-12s %-12s %-14s\n", "threshold", "precision",
              "recall", "FPR", "pkts dropped");
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = 601;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 450})
          .rate(8)
          .starting_at(Timestamp::from_seconds(5))
          .lasting(Duration::seconds(20)));
  cfg.collector.labeling.binary_target =
      packet::TrafficLabel::kDnsAmplification;
  cfg.collector.seed = 602;
  testbed::Testbed bed(cfg);
  bed.run(Duration::seconds(30));
  const auto dataset = bed.harvest_dataset();
  const auto quantizer = dataplane::Quantizer::fit(dataset);
  const auto quantized = quantizer.quantize_dataset(dataset);
  Rng rng(603);
  const auto [train, test] = quantized.stratified_split(0.3, rng);
  ml::ForestConfig fc;
  fc.n_trees = 25;
  fc.seed = 604;
  ml::RandomForest teacher(fc);
  teacher.fit(train);
  xai::ExtractConfig xc;
  xc.student_max_depth = 3;  // shallow: leaves stay impure
  xc.seed = 605;
  const auto student =
      xai::ModelExtractor(xc).extract(teacher, train).student;
  std::vector<double> scores;
  std::vector<int> labels;
  for (std::size_t i = 0; i < test.n_rows(); ++i) {
    scores.push_back(student.predict_proba(test.row(i))[1]);
    labels.push_back(test.label(i));
  }
  for (const double thr : {0.50, 0.70, 0.80, 0.90, 0.95, 0.99}) {
    const auto op = ml::operating_point(scores, labels, thr);
    std::printf("%-12.2f %-12.4f %-12.4f %-12.5f %-14llu\n", thr,
                op.precision, op.recall, op.fpr,
                (unsigned long long)op.predicted_positive);
  }
  std::puts(
      "shape: on stealthy attacks the model is only ~0.8 confident; "
      "below the 90% bar it acts with perfect precision and partial "
      "recall, at/above it it declines to act at all. The paper's rule "
      "buys 'never drop benign' at the price of ignoring attacks the "
      "model cannot be sure about -- the intended trade.");

  // ---- Per-scenario confusion matrix (flow level). ------------------
  // A mixed incident: two attack families plus a benign flash crowd,
  // classified by one flow-level model; rows are attributed back to
  // the scenario instance that generated them.
  std::puts("\n=== T-DET: per-scenario confusion matrix "
            "(mixed incident, flow level) ===");
  testbed::TestbedConfig mix;
  mix.scenario.campus.seed = 701;
  mix.scenario.campus.diurnal = false;
  mix.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 1500})
          .rate(800)
          .starting_at(Timestamp::from_seconds(4))
          .lasting(Duration::seconds(18)));
  mix.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kSshBruteForce)
          .rate(14)
          .starting_at(Timestamp::from_seconds(6))
          .lasting(Duration::seconds(18)));
  mix.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kFlashCrowd)
          .rate(500)
          .starting_at(Timestamp::from_seconds(10))
          .lasting(Duration::seconds(12)));
  mix.collector.benign_sample_rate = 0.01;
  mix.collector.attack_sample_rate = 0.01;
  testbed::Testbed incident(mix);
  incident.run(Duration::seconds(30));
  incident.flush_flows();

  std::vector<std::uint32_t> scenario_ids;
  const auto flow_data =
      features::build_flow_dataset(incident.store(), {}, scenario_ids);
  Rng split_rng(702);
  ml::Dataset flow_train(flow_data.feature_names(),
                         flow_data.class_names());
  ml::Dataset flow_test(flow_data.feature_names(), flow_data.class_names());
  std::vector<std::uint32_t> test_ids;
  for (std::size_t i = 0; i < flow_data.n_rows(); ++i) {
    if (split_rng.chance(0.3)) {
      flow_test.add(flow_data.row(i), flow_data.label(i));
      test_ids.push_back(scenario_ids[i]);
    } else {
      flow_train.add(flow_data.row(i), flow_data.label(i));
    }
  }
  ml::ForestConfig flow_fc;
  flow_fc.n_trees = 25;
  flow_fc.seed = 703;
  ml::RandomForest flow_model(flow_fc);
  flow_model.fit(flow_train);

  std::printf("%-4s %-18s %-8s %-8s %-8s %-8s\n", "id", "scenario",
              "flows", "TP", "missed", "recall");
  bool all_attacks_detected = true;
  double crowd_collateral = -1.0;
  for (const auto& inst : incident.simulator().scenario_instances()) {
    const int want = features::dataset_label(inst.label, {});
    std::uint64_t rows = 0, hit = 0, flagged = 0;
    for (std::size_t i = 0; i < flow_test.n_rows(); ++i) {
      if (test_ids[i] != inst.id) continue;
      ++rows;
      const int got = flow_model.predict(flow_test.row(i));
      if (got == want) ++hit;
      if (got != 0) ++flagged;
    }
    if (inst.label == packet::TrafficLabel::kBenign) {
      crowd_collateral =
          rows ? static_cast<double>(flagged) / static_cast<double>(rows)
               : 0.0;
      std::printf("%-4u %-18s %-8llu %-8s %-8s collateral %.4f\n",
                  inst.id, inst.phase.c_str(), (unsigned long long)rows,
                  "-", "-", crowd_collateral);
      continue;
    }
    const double recall =
        rows ? static_cast<double>(hit) / static_cast<double>(rows) : 0.0;
    std::printf("%-4u %-18s %-8llu %-8llu %-8llu %.4f\n", inst.id,
                inst.phase.c_str(), (unsigned long long)rows,
                (unsigned long long)hit, (unsigned long long)(rows - hit),
                recall);
    if (hit == 0) all_attacks_detected = false;
  }
  const bool bench_gate = [] {
    const char* v = std::getenv("CAMPUSLAB_BENCH_GATE");
    return v && *v && *v != '0';
  }();
  std::printf("per-scenario gate: every attack scenario >= 1 true "
              "positive — %s; flash-crowd collateral %.4f (reported, "
              "not gated)\n",
              all_attacks_detected ? "OK" : "REGRESSION",
              crowd_collateral);
  return bench_gate && !all_attacks_detected ? 1 : 0;
}

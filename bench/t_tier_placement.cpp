// T-TIER — §2: "the allocation of compute resources that are available
// in the network for performing any of these activities for a given
// task (e.g., data plane, control plane, cloud) will depend on how fast
// and with what accuracy that task has to be performed."
//
// Quantifies that design space on one detection task. Each tier runs a
// model the tier can realistically host, and pays the tier's transport
// cost to reach the verdict:
//
//   data plane    compiled student tree, in-switch      (+0 transport)
//   control plane full student in software on the local  (+~50 us PCIe/
//                 controller                              kernel punt)
//   cloud         full black-box forest                  (+~2x8 ms WAN RTT)
//
// Reported per tier: holdout accuracy, per-verdict latency (compute +
// transport), and the max event rate one instance sustains. The shape:
// accuracy differences are small for this task family, latency spans
// ~5 orders of magnitude — which is why the paper's roadmap pushes the
// *deployable* model down and keeps the heavyweight model offline.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <limits>

#include "campuslab/control/development_loop.h"
#include "campuslab/ml/metrics.h"
#include "campuslab/store/datastore.h"
#include "campuslab/testbed/testbed.h"

using namespace campuslab;

namespace {

double measure_ns(const std::function<int(std::size_t)>& fn,
                  std::size_t n_rows) {
  const std::size_t reps = 100'000 / std::max<std::size_t>(n_rows, 1) + 1;
  const auto t0 = std::chrono::steady_clock::now();
  int sink = 0;
  for (std::size_t r = 0; r < reps; ++r)
    for (std::size_t i = 0; i < n_rows; ++i) sink += fn(i);
  const auto t1 = std::chrono::steady_clock::now();
  asm volatile("" : : "r"(sink));
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                 .count()) /
         static_cast<double>(reps * n_rows);
}

void row(const char* tier, double accuracy, double compute_ns,
         double transport_ns) {
  const double total = compute_ns + transport_ns;
  std::printf("%-14s %-10.4f %-14.1f %-14.1f %-14.3g %-12.3g\n", tier,
              accuracy, compute_ns, transport_ns, total, 1e9 / total);
}

}  // namespace

int main() {
  // A low-rate incident so tiers can actually differ in accuracy.
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = 12001;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 700})
          .rate(60)
          .starting_at(Timestamp::from_seconds(5))
          .lasting(Duration::seconds(20)));
  cfg.collector.labeling.binary_target =
      packet::TrafficLabel::kDnsAmplification;
  cfg.collector.seed = 12002;
  testbed::Testbed bed(cfg);
  bed.run(Duration::seconds(30));
  const auto raw = bed.harvest_dataset();
  const auto quantizer = dataplane::Quantizer::fit(raw);
  const auto dataset = quantizer.quantize_dataset(raw);
  Rng rng(12003);
  const auto [train, test] = dataset.stratified_split(0.3, rng);

  ml::ForestConfig fc;
  fc.n_trees = 50;
  fc.seed = 12004;
  ml::RandomForest forest(fc);
  forest.fit(train);
  xai::ExtractConfig xc;
  xc.student_max_depth = 5;
  xc.seed = 12005;
  const auto student =
      xai::ModelExtractor(xc).extract(forest, train).student;

  std::vector<bool> mask(features::kPacketFeatureCount, false);
  for (std::size_t f = 0; f < mask.size(); ++f)
    mask[f] = features::is_register_feature(
        static_cast<features::PacketFeature>(f));
  std::vector<std::pair<double, double>> grid(
      features::kPacketFeatureCount,
      {0.0, static_cast<double>(dataplane::Quantizer::kMaxQ) + 1.0});
  const auto program = dataplane::TreeProgram::compile(
      student, dataplane::Quantizer::from_ranges(std::move(grid)), mask);
  if (!program.ok()) return 1;

  // Quantized integer rows for the dataplane tier.
  std::vector<std::vector<std::uint32_t>> qrows;
  for (std::size_t i = 0; i < test.n_rows(); ++i) {
    std::vector<std::uint32_t> q(test.n_features());
    for (std::size_t f = 0; f < q.size(); ++f)
      q[f] = static_cast<std::uint32_t>(test.row(i)[f]);
    qrows.push_back(std::move(q));
  }

  const double dp_compute = measure_ns(
      [&](std::size_t i) { return program.value().classify(qrows[i]).cls; },
      qrows.size());
  const double cp_compute = measure_ns(
      [&](std::size_t i) { return student.predict(test.row(i)); },
      test.n_rows());
  const double cloud_compute = measure_ns(
      [&](std::size_t i) { return forest.predict(test.row(i)); },
      test.n_rows());

  const double student_acc = ml::evaluate(student, test).accuracy();
  const double forest_acc = ml::evaluate(forest, test).accuracy();

  std::puts("=== T-TIER: where should the inference live? "
            "(60pps stealthy-ish amplification task) ===");
  std::printf("%-14s %-10s %-14s %-14s %-14s %-12s\n", "tier",
              "accuracy", "compute ns", "transport ns", "total ns",
              "max verdicts/s");
  // Transport: in-switch 0; controller punt ~50 us; cloud ~2x8 ms WAN.
  row("data plane", student_acc, dp_compute, 0.0);
  row("control plane", student_acc, cp_compute, 50e3);
  row("cloud", forest_acc, cloud_compute, 16e6);

  std::printf(
      "\naccuracy gap cloud vs data plane: %+.4f\n"
      "latency gap  cloud vs data plane: %.0fx\n",
      forest_acc - student_acc,
      (cloud_compute + 16e6) / std::max(dp_compute, 1.0));
  std::puts(
      "shape: the heavyweight model buys little or no accuracy on this "
      "task but costs ~5 orders of magnitude in reaction time — per-"
      "packet reaction must live in the data plane, which is exactly "
      "what Figure 2's split (offline development, online control) "
      "encodes. The cloud tier is where the *development loop* belongs.");

  // The same placement question for data at rest: recent segments stay
  // hot in the store's RAM tier for interactive queries; older ones
  // spill to columnar files and are decoded only when a query's time
  // window actually reaches them. The table prices that trade.
  {
    const std::string dir = "/tmp/campuslab_tier_placement_store";
    std::filesystem::remove_all(dir);
    store::DataStoreConfig scfg;
    scfg.segment_flows = 5'000;
    scfg.spill_directory = dir;
    scfg.hot_bytes_budget = std::numeric_limits<std::uint64_t>::max();
    store::DataStore flows(scfg);
    Rng srng(12006);
    capture::FlowRecord f;
    for (int i = 0; i < 50'000; ++i) {
      f.tuple = packet::FiveTuple{
          packet::Ipv4Address(
              static_cast<std::uint32_t>(0x0A020000 + srng.below(256))),
          packet::Ipv4Address(0xC0000201), 40'000,
          static_cast<std::uint16_t>(srng.chance(0.1) ? 53 : 443), 6};
      f.first_ts = Timestamp::from_seconds(i * 0.01);
      f.last_ts = f.first_ts + Duration::from_seconds(0.05);
      f.packets = 1 + srng.below(100);
      f.bytes = f.packets * 800;
      flows.ingest(f);
    }
    store::FlowQuery scan;
    scan.min_bytes = 1ULL << 40;  // matches nothing: pure scan cost
    auto scan_ns = [&] {
      double best = 1e300;
      for (int r = 0; r < 5; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto res = flows.query(scan);
        const auto t1 = std::chrono::steady_clock::now();
        asm volatile("" : : "r"(res.size()));
        best = std::min(
            best, static_cast<double>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          t1 - t0)
                          .count()) /
                      50'000.0);
      }
      return best;
    };
    const double hot_ns = scan_ns();
    const std::uint64_t hot_bytes = flows.hot_bytes();
    const std::size_t spilled = flows.spill();
    std::uint64_t disk_bytes = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir))
      disk_bytes += e.file_size();
    const double cold_ns = scan_ns();

    std::printf("\n=== storage tier of the same store "
                "(50k flows, %zu segments) ===\n", spilled);
    std::printf("%-14s %-16s %-14s\n", "tier", "scan ns/flow",
                "bytes/flow");
    std::printf("%-14s %-16.1f %-14.1f\n", "hot (RAM)", hot_ns,
                static_cast<double>(hot_bytes) / 50'000.0);
    std::printf("%-14s %-16.1f %-14.1f\n", "cold (disk)", cold_ns,
                static_cast<double>(disk_bytes) / 50'000.0);
    std::printf(
        "shape: the cold tier trades a one-time decode (%.0fx the hot "
        "scan) for a %.1fx smaller resident footprint — so retention "
        "depth is priced in cheap disk, and zone maps keep most "
        "historical queries from ever paying the decode.\n",
        cold_ns / std::max(hot_ns, 1.0),
        static_cast<double>(hot_bytes) /
            static_cast<double>(std::max<std::uint64_t>(disk_bytes, 1)));
    std::filesystem::remove_all(dir);
  }
  return 0;
}

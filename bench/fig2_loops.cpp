// FIG2 — the paper's Figure 2: "a (slow, offline) development loop ...
// obtains a deployable learning model that performs the (fast, online)
// control loop capable of sensing, inferring, and reacting in real
// time".
//
// Measures both loops on the same task and prints the contrast:
// development-loop step wall-clocks (train / extract / compile) vs the
// fast loop's per-packet sense-infer-react latency. The shape to
// reproduce: the loops are separated by >= 4 orders of magnitude, which
// is exactly why the split architecture works.
#include <cstdio>

#include "campuslab/control/development_loop.h"
#include "campuslab/control/fast_loop.h"
#include "campuslab/testbed/testbed.h"

using namespace campuslab;

int main() {
  // Labelled data from a 30s incident window.
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = 2e3;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .rate(2000)
          .starting_at(Timestamp::from_seconds(5))
          .lasting(Duration::seconds(20)));
  cfg.collector.labeling.binary_target =
      packet::TrafficLabel::kDnsAmplification;
  cfg.collector.attack_sample_rate = 0.25;
  cfg.collector.seed = 2001;
  testbed::Testbed bed(cfg);
  bed.run(Duration::seconds(30));
  const auto dataset = bed.harvest_dataset();
  std::printf("training data: %zu labelled packet samples\n\n",
              dataset.n_rows());

  // ---- Slow loop. -----------------------------------------------------
  control::DevelopmentConfig dev;
  dev.teacher.n_trees = 40;
  dev.teacher.seed = 2002;
  dev.extraction.seed = 2003;
  const auto package = control::DevelopmentLoop(dev).run(dataset);
  if (!package.ok()) {
    std::printf("development failed: %s\n",
                package.error().message.c_str());
    return 1;
  }
  const auto& t = package.value().timings;
  std::puts("=== FIG2 upper loop: development (slow, offline) ===");
  std::printf("  (i)   train black-box teacher : %10.2f ms\n",
              t.train_us / 1e3);
  std::printf("  (ii)  extract deployable model: %10.2f ms\n",
              t.extract_us / 1e3);
  std::printf("  (iii) compile to target       : %10.2f ms\n",
              t.compile_us / 1e3);
  std::printf("  total                          : %10.2f ms\n",
              t.total_us / 1e3);

  // ---- Fast loop. -----------------------------------------------------
  testbed::TestbedConfig replay = cfg;
  replay.scenario.campus.seed = 2004;
  replay.collector.benign_sample_rate = 0.01;
  replay.collector.attack_sample_rate = 0.01;
  testbed::Testbed road(replay);
  auto loop = control::FastLoop::deploy(package.value());
  if (!loop.ok()) return 1;
  loop.value()->install(road.network());
  road.run(Duration::seconds(30));

  const auto& lat = loop.value()->latency_ns();
  std::puts("\n=== FIG2 lower loop: control (fast, online) ===");
  std::printf("  sense+infer+react per packet  : %10.1f ns mean "
              "(%llu packets, max %.0f ns)\n",
              lat.mean(), (unsigned long long)lat.count(), lat.max());
  std::printf("  attack block rate %.4f at drop precision %.4f\n",
              loop.value()->stats().attack_block_rate(),
              loop.value()->stats().drop_precision());

  const double ratio = (t.total_us * 1e3) / lat.mean();
  std::printf("\nloop separation: development / per-packet = %.1e "
              "(%.1f orders of magnitude)\n",
              ratio, std::log10(ratio));
  std::puts("shape: the offline loop is free to be heavyweight because "
            "the online loop never waits for it.");
  return 0;
}

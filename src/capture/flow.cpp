#include "campuslab/capture/flow.h"

#include <algorithm>

#include "campuslab/obs/registry.h"
#include "campuslab/obs/stage_timer.h"
#include "campuslab/resilience/fault.h"

namespace campuslab::capture {

using packet::PacketView;
using packet::TcpFlags;
using packet::TrafficLabel;

namespace {

// Shared across every FlowMeter in the process (per-shard meters
// aggregate; per-shard table sizes are exported separately by
// features::ShardedFlowCollector as labelled gauges).
struct FlowMetrics {
  obs::Counter& created =
      obs::Registry::global().counter("flow.flows_created");
  obs::Counter& evicted_idle =
      obs::Registry::global().counter("flow.evicted_idle");
  obs::Counter& evicted_active =
      obs::Registry::global().counter("flow.evicted_active");
  obs::Counter& evicted_capacity =
      obs::Registry::global().counter("flow.evicted_capacity");
  obs::Histogram& update_ns = obs::stage_histogram("flow_update");

  static FlowMetrics& get() {
    static FlowMetrics m;
    return m;
  }
};

}  // namespace

packet::TrafficLabel FlowRecord::majority_label() const noexcept {
  // Attack-if-any: argmax over the attack labels only; benign wins only
  // when no attack packet touched the flow.
  std::size_t best = 1;
  for (std::size_t i = 2; i < label_packets.size(); ++i)
    if (label_packets[i] > label_packets[best]) best = i;
  return label_packets[best] > 0 ? static_cast<TrafficLabel>(best)
                                 : TrafficLabel::kBenign;
}

bool flow_export_before(const FlowRecord& a, const FlowRecord& b) noexcept {
  if (a.first_ts != b.first_ts) return a.first_ts < b.first_ts;
  if (a.last_ts != b.last_ts) return a.last_ts < b.last_ts;
  return a.tuple < b.tuple;
}

FlowMeter::FlowMeter(FlowMeterConfig config) : config_(config) {}

void FlowMeter::offer(const packet::Packet& pkt, const PacketView& view,
                      sim::Direction dir) {
  auto& metrics = FlowMetrics::get();
  obs::StageTimer stage_timer(metrics.update_ns);
  resilience::fault_point("flow.update");
  ++stats_.packets_seen;
  if (!view.valid() || !view.is_ipv4()) {
    ++stats_.non_ip_packets;
    return;
  }
  const auto tuple = *view.five_tuple();
  const auto key = tuple.bidirectional();

  auto it = table_.find(key);
  if (it == table_.end()) {
    if (table_.size() >= config_.max_flows) {
      // Capacity pressure: sampled eviction (as hardware NetFlow caches
      // do) — probe a few random buckets and evict the idlest of the
      // sampled entries. O(1) amortized even under flood-driven table
      // churn, where a full scan would be quadratic.
      auto victim = table_.end();
      int sampled = 0;
      std::size_t guard = 0;
      const std::size_t buckets = table_.bucket_count();
      while (sampled < 4 && guard < buckets * 2) {
        const std::size_t b =
            static_cast<std::size_t>(evict_cursor_++ *
                                     0x9E3779B97F4A7C15ULL % buckets);
        ++guard;
        const auto local = table_.begin(b);
        if (local == table_.end(b)) continue;
        const auto cand = table_.find(local->first);
        ++sampled;
        if (victim == table_.end() ||
            cand->second.last_activity < victim->second.last_activity)
          victim = cand;
      }
      if (victim == table_.end()) victim = table_.begin();
      ++stats_.flows_evicted_capacity;
      metrics.evicted_capacity.increment();
      evict(victim->first, victim->second);
      table_.erase(victim);
      publish_size();
    }
    FlowState state;
    state.record.tuple = tuple;
    state.record.initial_direction = dir;
    state.record.first_ts = pkt.ts;
    ++stats_.flows_created;
    metrics.created.increment();
    it = table_.emplace(key, std::move(state)).first;
    publish_size();
  }

  auto& rec = it->second.record;
  rec.last_ts = pkt.ts;
  it->second.last_activity = pkt.ts;
  ++rec.packets;
  rec.bytes += pkt.size();
  rec.payload_bytes += view.payload().size();
  const bool forward = (tuple == rec.tuple);
  (forward ? rec.fwd_packets : rec.rev_packets)++;
  if (view.is_tcp()) {
    const auto& t = view.tcp();
    if (t.syn() && !t.ack_flag()) ++rec.syn_count;
    if (t.syn() && t.ack_flag()) ++rec.synack_count;
    if (t.fin()) ++rec.fin_count;
    if (t.rst()) ++rec.rst_count;
    if (t.flags & TcpFlags::kPsh) ++rec.psh_count;
  }
  if (view.is_dns()) rec.saw_dns = true;
  ++rec.label_packets[static_cast<std::size_t>(pkt.label)];
  if (rec.scenario_id == 0) rec.scenario_id = pkt.scenario_id;

  // Active timeout applies even to busy flows (long transfers are cut
  // into multiple records, as NetFlow does).
  if (rec.last_ts - rec.first_ts >= config_.active_timeout) {
    ++stats_.flows_evicted_active;
    metrics.evicted_active.increment();
    evict(key, it->second);
    table_.erase(it);
    publish_size();
  }

  maybe_periodic_sweep(pkt.ts);
}

void FlowMeter::sweep(Timestamp now) {
  for (auto it = table_.begin(); it != table_.end();) {
    if (now - it->second.last_activity >= config_.idle_timeout) {
      ++stats_.flows_evicted_idle;
      FlowMetrics::get().evicted_idle.increment();
      evict(it->first, it->second);
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  publish_size();
  last_sweep_ = now;
}

void FlowMeter::flush() {
  for (auto& [key, state] : table_) evict(key, state);
  table_.clear();
  publish_size();
}

void FlowMeter::evict(const packet::FiveTuple&, FlowState& state) {
  if (sink_) sink_(state.record);
}

void FlowMeter::maybe_periodic_sweep(Timestamp now) {
  // Amortized sweep once per idle_timeout of virtual time.
  if (now - last_sweep_ >= config_.idle_timeout) sweep(now);
}

}  // namespace campuslab::capture

// SpscRing — a bounded, lock-free single-producer/single-consumer ring.
//
// This is the decoupling buffer between the capture tap (producer, on
// the simulated "wire" clock) and the storage/metering consumer. Its
// capacity is what stands between "lossless full packet capture" and
// drops under burst — the T-CAP experiment sweeps exactly this.
//
// Memory ordering follows the classic Lamport queue: the producer
// publishes with a release store of head_, the consumer with a release
// store of tail_; each side reads the other's index with acquire.
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace campuslab::capture {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two; usable slots = capacity.
  explicit SpscRing(std::size_t capacity)
      : mask_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false (and leaves `value` untouched) when
  /// the ring is full.
  bool try_push(T&& value) {
    const auto head = head_.load(std::memory_order_relaxed);
    const auto tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;  // full
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool try_pop(T& out) {
    const auto tail = tail_.load(std::memory_order_relaxed);
    const auto head = head_.load(std::memory_order_acquire);
    if (tail == head) return false;  // empty
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy (exact when called from either endpoint's
  /// own thread between operations).
  std::size_t size() const noexcept {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }
  bool empty() const noexcept { return size() == 0; }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // next write index
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // next read index
};

}  // namespace campuslab::capture

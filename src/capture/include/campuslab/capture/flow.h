// FlowMeter — 5-tuple flow construction from the packet stream.
//
// This is the "on-the-fly generated metadata" layer of the paper's
// monitoring solution: every packet updates a bidirectional flow entry;
// idle and active timeouts (NetFlow-style) evict entries as finished
// FlowRecords, which are what the data store indexes and the feature
// pipeline consumes. Ground-truth labels are aggregated per flow so the
// learning pipeline gets labelled flow data for free.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "campuslab/capture/decoded.h"
#include "campuslab/packet/view.h"
#include "campuslab/sim/campus.h"

namespace campuslab::capture {

/// A completed (evicted) flow.
struct FlowRecord {
  packet::FiveTuple tuple;           // direction of the first packet seen
  sim::Direction initial_direction = sim::Direction::kInbound;
  Timestamp first_ts;
  Timestamp last_ts;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;           // frame bytes
  std::uint64_t payload_bytes = 0;   // L4 payload only
  std::uint64_t fwd_packets = 0;     // in the initial direction
  std::uint64_t rev_packets = 0;
  std::uint32_t syn_count = 0;
  std::uint32_t synack_count = 0;
  std::uint32_t fin_count = 0;
  std::uint32_t rst_count = 0;
  std::uint32_t psh_count = 0;
  bool saw_dns = false;
  std::array<std::uint64_t, packet::kTrafficLabelCount> label_packets{};
  /// Scenario instance that first touched this flow (0 = background
  /// traffic only). First-nonzero-wins: a flow is attributed to the
  /// scenario that opened it into attack territory, even if benign
  /// response frames arrive afterwards.
  std::uint32_t scenario_id = 0;

  Duration duration() const noexcept { return last_ts - first_ts; }

  /// Ground-truth label, attack-if-any: a flow containing any attack
  /// packets is labelled with its most common attack label; only pure
  /// benign flows are benign. (Standard IDS-dataset practice — the
  /// victim's own responses inside an attack conversation must not
  /// vote the flow back to benign.)
  packet::TrafficLabel majority_label() const noexcept;

  double mean_packet_bytes() const noexcept {
    return packets == 0 ? 0.0
                        : static_cast<double>(bytes) /
                              static_cast<double>(packets);
  }
};

/// Deterministic cross-shard ordering for merged flow exports: by
/// first activity, then last activity, then tuple. Gives a stable
/// merged stream regardless of which shard evicted which flow first.
bool flow_export_before(const FlowRecord& a, const FlowRecord& b) noexcept;

struct FlowMeterConfig {
  Duration idle_timeout = Duration::seconds(15);
  Duration active_timeout = Duration::seconds(60);
  std::size_t max_flows = 1 << 20;  // hard cap; oldest-idle evicted past it
};

struct FlowMeterStats {
  std::uint64_t packets_seen = 0;
  std::uint64_t non_ip_packets = 0;
  std::uint64_t flows_created = 0;
  std::uint64_t flows_evicted_idle = 0;
  std::uint64_t flows_evicted_active = 0;
  std::uint64_t flows_evicted_capacity = 0;
};

class FlowMeter {
 public:
  using FlowSink = std::function<void(const FlowRecord&)>;

  explicit FlowMeter(FlowMeterConfig config = {});

  void set_sink(FlowSink sink) { sink_ = std::move(sink); }

  /// Update flow state with one packet. Non-IPv4 frames are counted and
  /// skipped. Eviction checks run opportunistically against the
  /// packet's timestamp (virtual time).
  ///
  /// The three-argument form is the parse-once path: `view` must be a
  /// decode of `pkt`'s bytes (DecodedPacket guarantees this). The
  /// two-argument form re-parses and exists for callers outside the
  /// capture pipeline; both run the identical update.
  void offer(const packet::Packet& pkt, const packet::PacketView& view,
             sim::Direction dir);
  void offer(const packet::Packet& pkt, sim::Direction dir) {
    offer(pkt, packet::PacketView(pkt), dir);
  }
  void offer(const DecodedPacket& decoded) {
    offer(decoded.pkt, decoded.view, decoded.dir);
  }

  /// Evict every flow idle/active-expired as of `now`.
  void sweep(Timestamp now);

  /// Evict everything unconditionally (end of capture).
  void flush();

  std::size_t active_flows() const noexcept { return table_.size(); }

  /// Table size safe to read from ANY thread while the owning worker is
  /// still metering (relaxed atomic mirror of table_.size()); this is
  /// what live obs gauges sample. May lag active_flows() by the update
  /// in flight.
  std::size_t approx_active_flows() const noexcept {
    return approx_size_.load(std::memory_order_relaxed);
  }

  const FlowMeterStats& stats() const noexcept { return stats_; }

 private:
  struct FlowState {
    FlowRecord record;
    Timestamp last_activity;
  };

  void evict(const packet::FiveTuple& key, FlowState& state);
  void maybe_periodic_sweep(Timestamp now);

  /// Refresh approx_size_ after any table mutation.
  void publish_size() noexcept {
    approx_size_.store(table_.size(), std::memory_order_relaxed);
  }

  FlowMeterConfig config_;
  FlowSink sink_;
  std::unordered_map<packet::FiveTuple, FlowState> table_;
  std::atomic<std::size_t> approx_size_{0};
  FlowMeterStats stats_;
  Timestamp last_sweep_{};
  std::uint64_t evict_cursor_ = 1;  // bucket-probe state for sampling
};

}  // namespace campuslab::capture

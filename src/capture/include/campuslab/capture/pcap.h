// Classic libpcap file format reader/writer (nanosecond variant).
//
// The data store's raw-packet segments are standard .pcap files, so
// anything captured by CampusLab can be opened in Wireshark/tcpdump and
// vice versa. Writer and reader implement the format from scratch:
// 24-byte global header (magic 0xA1B23C4D for nanosecond timestamps,
// LINKTYPE_ETHERNET) followed by 16-byte-headed records.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "campuslab/packet/view.h"
#include "campuslab/util/result.h"

namespace campuslab::capture {

class PcapWriter {
 public:
  static constexpr std::uint32_t kMagicNanos = 0xA1B23C4D;
  static constexpr std::uint32_t kLinkTypeEthernet = 1;

  /// Open (truncate) `path` and write the global header.
  static Result<PcapWriter> open(const std::string& path,
                                 std::uint32_t snaplen = 262144);

  PcapWriter(PcapWriter&&) noexcept;
  PcapWriter& operator=(PcapWriter&&) noexcept;
  ~PcapWriter();

  /// Append one record. Frames longer than snaplen are truncated on
  /// disk with the original length recorded, per the format.
  Status write(const packet::Packet& pkt);

  Status flush();

  std::uint64_t records_written() const noexcept { return records_; }
  std::uint64_t bytes_written() const noexcept { return bytes_; }

 private:
  struct Impl;
  explicit PcapWriter(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
  std::uint32_t snaplen_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
};

class PcapReader {
 public:
  /// Open `path`, validating the global header. Accepts both the
  /// microsecond (0xA1B2C3D4) and nanosecond magics, either endianness.
  static Result<PcapReader> open(const std::string& path);

  PcapReader(PcapReader&&) noexcept;
  PcapReader& operator=(PcapReader&&) noexcept;
  ~PcapReader();

  /// Read the next record; nullopt at clean EOF; error on corruption.
  Result<std::optional<packet::Packet>> next();

  /// Drain the remaining records.
  Result<std::vector<packet::Packet>> read_all();

  std::uint32_t snaplen() const noexcept { return snaplen_; }
  bool nanosecond_resolution() const noexcept { return nanos_; }

 private:
  struct Impl;
  explicit PcapReader(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
  std::uint32_t snaplen_ = 0;
  bool nanos_ = false;
  bool swapped_ = false;
};

}  // namespace campuslab::capture

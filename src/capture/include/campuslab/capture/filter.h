// FilterExpr — a BPF/tcpdump-style filter language over captured
// frames, the lingua franca of every packet store's "flexible search"
// (§5). Compiled once, evaluated per packet.
//
// Grammar (case-sensitive keywords, '#' starts nothing — no comments):
//
//   expr      := or
//   or        := and ( "or" and )*
//   and       := unary ( "and" unary )*
//   unary     := "not" unary | "(" expr ")" | predicate
//   predicate := "tcp" | "udp" | "icmp" | "ip"
//              | [dir] "port" NUMBER
//              | [dir] "host" IPV4
//              | [dir] "net" IPV4 "/" PREFIXLEN
//              | "less" NUMBER | "greater" NUMBER     (frame bytes)
//              | "dns"                                 (udp port 53)
//              | "syn"                                 (tcp SYN, no ACK)
//   dir       := "src" | "dst"
//
// Directionless port/host/net match either side. Precedence follows
// tcpdump: not > and > or.
#pragma once

#include <memory>
#include <string>

#include "campuslab/packet/view.h"
#include "campuslab/util/result.h"

namespace campuslab::capture {

class FilterExpr {
 public:
  /// Compile a filter string. Errors carry position + expectation.
  static Result<FilterExpr> parse(const std::string& text);

  /// Evaluate against one frame. Non-IPv4 frames match only pure
  /// size predicates ("less"/"greater") and negations thereof.
  bool matches(const packet::PacketView& view) const;
  bool matches(const packet::Packet& pkt) const {
    return matches(packet::PacketView(pkt));
  }

  const std::string& source() const noexcept { return source_; }

  // Value-type plumbing over an immutable AST.
  FilterExpr(const FilterExpr&) = default;
  FilterExpr(FilterExpr&&) noexcept = default;
  FilterExpr& operator=(const FilterExpr&) = default;
  FilterExpr& operator=(FilterExpr&&) noexcept = default;
  ~FilterExpr() = default;

  struct Node;  // opaque AST

 private:
  FilterExpr(std::shared_ptr<const Node> root, std::string source)
      : root_(std::move(root)), source_(std::move(source)) {}

  std::shared_ptr<const Node> root_;
  std::string source_;
};

}  // namespace campuslab::capture

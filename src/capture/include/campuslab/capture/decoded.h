// DecodedPacket — the parse-once ring element.
//
// The tap decodes each frame exactly once (an eager L2-L4 PacketView)
// and every downstream stage — shard spreader, FlowMeter, dataset
// collector, fast loop, archive filter — consumes the cached view
// instead of re-parsing the same bytes. This is only sound because the
// frame bytes live in a refcounted pool buffer (packet/buffer.h): they
// stay at a stable address no matter how often the handle is copied or
// moved, so the view's spans survive ring hops and sink fan-out.
//
// Treat a DecodedPacket as immutable. Mutating `pkt` through its
// copy-on-write accessors would re-seat the bytes and strand `view`;
// a stage that needs to rewrite a frame (e.g. archive redaction) must
// take its own Packet copy (a refcount bump) and mutate that.
#pragma once

#include <utility>

#include "campuslab/packet/view.h"
#include "campuslab/sim/campus.h"

namespace campuslab::capture {

/// A captured frame, its border direction, and the single eager decode.
struct DecodedPacket {
  packet::Packet pkt;
  sim::Direction dir = sim::Direction::kInbound;
  packet::PacketView view;

  DecodedPacket() noexcept = default;
  DecodedPacket(packet::Packet p, sim::Direction d)
      : pkt(std::move(p)), dir(d), view(pkt.bytes()) {}
};

/// PR-1 name for the ring element; existing sinks keep compiling.
using TaggedPacket = DecodedPacket;

}  // namespace campuslab::capture

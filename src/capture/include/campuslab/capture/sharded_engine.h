// ShardedCaptureEngine — the multi-worker lossless capture pipeline.
//
// One tap thread cannot meter and ingest 10-20 Gbps of campus traffic,
// let alone the paper's "up to 100 Gbps" (§5). This engine spreads the
// tap across N single-producer/single-consumer rings with an RSS-style
// 5-tuple hash: both directions of a conversation hash to the same
// shard (the spreader keys on the bidirectional tuple), so each worker
// can run its own FlowMeter and data-store ingester with no locks and
// no cross-shard flow state.
//
//        tap (1 producer thread)
//              |  shard_of(pkt) = h(bidirectional 5-tuple) % N
//      +-------+-------+ ... +
//      v       v       v
//   ring[0] ring[1] ring[N-1]      bounded SpscRings
//      |       |       |
//   worker0 worker1 workerN-1      each: sinks -> FlowMeter -> ingester
//
// Losslessness stays *measured*: every shard keeps its own
// ConcurrentCaptureStats (drops attributable per shard), and stop()
// drains every ring before joining so "accepted == consumed" is an
// exit invariant, not an assumption. Merged stats are the sum of the
// shard snapshots.
//
// Thread contract:
//   - offer() is called by exactly one producer thread at a time.
//   - Between start() and stop(), each shard's ring is drained only by
//     its own worker; per-shard sinks run on that worker's thread.
//   - Without start(), poll_shard()/drain() consume on the caller's
//     thread (simulation mode — used by the determinism regression).
//   - stats()/shard_stats() are safe from any thread, any time.
//
// Supervision (resilience): each worker thread runs under an in-thread
// supervisor. An exception escaping a sink does not kill the process —
// the frame in flight still counts as consumed, the death is recorded
// (resilience.worker_restarts_total{shard=N}), and the worker restarts
// with its ring intact. Past `max_worker_restarts` the shard is
// quarantined: its remaining ring contents are abandoned (counted) and
// the producer reroutes its 5-tuple slice to surviving shards
// (resilience.rerouted_packets_total) — conversations that straddle the
// quarantine boundary may export as two flow records, which the
// deterministic merge tolerates. stop() drains each ring under
// `stop_drain_deadline` so a wedged sink cannot hang shutdown; frames
// past the deadline are abandoned, never silently lost:
//     offered == accepted + dropped,  accepted == consumed + abandoned.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "campuslab/capture/engine.h"
#include "campuslab/obs/registry.h"
#include "campuslab/util/time.h"

namespace campuslab::capture {

struct ShardedCaptureConfig {
  std::size_t shards = 4;
  std::size_t ring_capacity = 1 << 14;  // per shard
  std::size_t poll_batch = 256;         // worker drain granularity
  /// Worker deaths (escaped sink exceptions) tolerated per shard before
  /// the supervisor quarantines it and reroutes its traffic slice.
  std::size_t max_worker_restarts = 8;
  /// Wall-clock bound on the per-shard shutdown drain. A wedged or
  /// pathologically slow sink cannot hang stop() past this; frames
  /// still in the ring at the deadline are abandoned (counted).
  /// Zero means drain to empty, unbounded.
  Duration stop_drain_deadline = Duration::millis(500);
};

class ShardedCaptureEngine {
 public:
  using Sink = CaptureEngine::Sink;
  /// Builds the per-shard consumer: called once per shard so each
  /// worker gets its own (unshared) flow meter / ingester state.
  using SinkFactory = std::function<Sink(std::size_t shard)>;

  explicit ShardedCaptureEngine(ShardedCaptureConfig config = {});
  ~ShardedCaptureEngine();

  ShardedCaptureEngine(const ShardedCaptureEngine&) = delete;
  ShardedCaptureEngine& operator=(const ShardedCaptureEngine&) = delete;

  /// Instantiate `factory` for every shard and register the result as
  /// that shard's sink. Call before traffic starts; repeated calls add
  /// additional sinks (all sinks of a shard see every consumed frame).
  void add_sink_factory(const SinkFactory& factory);

  std::size_t shards() const noexcept { return shards_.size(); }

  /// The RSS-style spreader. Symmetric: a packet and its reverse map
  /// to the same shard. Frames without an IPv4 5-tuple (ARP, junk,
  /// truncated) spread by a byte hash of the frame prefix instead of
  /// all pinning shard 0, so non-IP load cannot hot-spot one worker.
  std::size_t shard_of(const packet::PacketView& view) const noexcept;
  std::size_t shard_of(const packet::Packet& pkt) const noexcept {
    return shard_of(packet::PacketView(pkt));
  }

  /// Producer side: hash-spread one frame. Returns false when the
  /// owning shard's ring was full and the frame was dropped (counted
  /// against that shard). Frames whose home shard is quarantined are
  /// rerouted to the next live shard (deterministic walk, counted in
  /// rerouted_packets()); if every shard is quarantined the frame is
  /// dropped against its home shard.
  bool offer(const packet::Packet& pkt, sim::Direction dir);
  bool offer(packet::Packet&& pkt, sim::Direction dir);

  /// Spawn one worker thread per shard. Workers poll their ring and
  /// dispatch to their shard's sinks until stop().
  void start();

  /// Signal workers, let each drain its ring (drain-on-shutdown,
  /// bounded by stop_drain_deadline), and join. Idempotent. After
  /// stop(), for every shard: accepted == consumed + abandoned.
  void stop();

  bool running() const noexcept { return running_; }

  /// Supervisor accounting: worker deaths recovered by restart (total /
  /// per shard), shards quarantined past the restart budget, and frames
  /// rerouted away from quarantined shards by the producer.
  std::uint64_t worker_restarts() const noexcept;
  std::uint64_t worker_restarts(std::size_t shard) const noexcept;
  bool shard_quarantined(std::size_t shard) const noexcept;
  std::size_t quarantined_shards() const noexcept;
  std::uint64_t rerouted_packets() const noexcept {
    return rerouted_.load(std::memory_order_relaxed);
  }

  /// Simulation mode (no workers): consume up to `max_batch` frames of
  /// one shard on the calling thread.
  std::size_t poll_shard(std::size_t shard, std::size_t max_batch = 256);

  /// Simulation mode: drain every shard until all rings are empty.
  std::size_t drain();

  /// Merged accounting across shards (safe to sample live; the
  /// per-snapshot inequalities of ConcurrentCaptureStats hold for the
  /// sum as well). `buffer_pool` is the shared-pool gauge, set once on
  /// the merged snapshot rather than summed per shard.
  CaptureStats stats() const;
  CaptureStats shard_stats(std::size_t shard) const;
  std::size_t ring_occupancy(std::size_t shard) const noexcept;

 private:
  struct Shard {
    explicit Shard(std::size_t ring_capacity) : ring(ring_capacity) {}
    SpscRing<TaggedPacket> ring;
    std::vector<Sink> sinks;
    ConcurrentCaptureStats stats;
    std::thread worker;
    // Quarantined shards accept no new frames (producer reroutes) and
    // their workers have exited. Set with release by the worker, read
    // with acquire by the producer.
    std::atomic<bool> quarantined{false};
    std::atomic<std::uint64_t> restarts{0};
    // Per-shard obs mirrors (labels "shard=N"), resolved at engine
    // construction so the packet path never touches the registry lock.
    obs::Counter* obs_offered = nullptr;
    obs::Counter* obs_dropped = nullptr;
    obs::Counter* obs_consumed = nullptr;
    obs::Counter* obs_restarts = nullptr;
    obs::Counter* obs_abandoned = nullptr;
  };

  std::size_t consume_batch(Shard& shard, std::size_t max_batch);
  void worker_loop(Shard& shard);
  void run_worker(Shard& shard);
  void abandon_ring(Shard& shard);
  void quarantine(Shard& shard);

  ShardedCaptureConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Live ring-occupancy gauges (capture.ring_occupancy{shard=N});
  // handles unregister before shards_ dies.
  std::vector<obs::Registry::CallbackHandle> obs_handles_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> rerouted_{0};
  bool running_ = false;
};

}  // namespace campuslab::capture

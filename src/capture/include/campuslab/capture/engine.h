// CaptureEngine — the lossless full-packet-capture appliance.
//
// Mirrors the architecture of the commercial systems the paper cites
// (§5, NIKSUN-style): a tap thread pushes every frame into a bounded
// lock-free ring; a consumer drains the ring in batches and dispatches
// to sinks (pcap segments, the flow meter, the data store ingester).
// "Losslessness" is not asserted but *measured*: any frame that finds
// the ring full increments a drop counter, and the T-CAP experiment
// reports the offered-load knee where drops begin.
//
// The engine is single-producer/single-consumer. In simulation both
// sides usually run on one thread (offer(), then poll()); the capture
// benchmark runs them on two real threads to measure sustained rate.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "campuslab/capture/spsc_ring.h"
#include "campuslab/packet/view.h"
#include "campuslab/sim/campus.h"

namespace campuslab::capture {

/// A captured frame with its border direction.
struct TaggedPacket {
  packet::Packet pkt;
  sim::Direction dir = sim::Direction::kInbound;
};

struct CaptureConfig {
  std::size_t ring_capacity = 1 << 16;
};

/// Thread contract: offered/accepted/dropped/*_bytes are written only by
/// the producer thread, `consumed` only by the consumer thread. Read
/// stats from a third thread only after both sides have quiesced (e.g.
/// post-join in the capture benchmark).
struct CaptureStats {
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t dropped = 0;   // ring-full losses
  std::uint64_t consumed = 0;
  std::uint64_t offered_bytes = 0;
  std::uint64_t dropped_bytes = 0;

  double loss_rate() const noexcept {
    return offered == 0 ? 0.0
                        : static_cast<double>(dropped) /
                              static_cast<double>(offered);
  }
};

class CaptureEngine {
 public:
  using Sink = std::function<void(const TaggedPacket&)>;

  explicit CaptureEngine(CaptureConfig config = {});

  /// Register a consumer-side sink. All sinks see every consumed frame
  /// in order. Call before traffic starts.
  void add_sink(Sink sink) { sinks_.push_back(std::move(sink)); }

  /// Producer side: offer one frame. Returns false when the ring was
  /// full and the frame was dropped (counted).
  bool offer(const packet::Packet& pkt, sim::Direction dir);
  bool offer(packet::Packet&& pkt, sim::Direction dir);

  /// Consumer side: drain up to `max_batch` frames through the sinks.
  /// Returns frames consumed.
  std::size_t poll(std::size_t max_batch = 256);

  /// Drain until empty.
  std::size_t drain();

  const CaptureStats& stats() const noexcept { return stats_; }
  std::size_t ring_occupancy() const noexcept { return ring_.size(); }

 private:
  SpscRing<TaggedPacket> ring_;
  std::vector<Sink> sinks_;
  CaptureStats stats_;
};

}  // namespace campuslab::capture

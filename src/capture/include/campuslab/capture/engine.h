// CaptureEngine — the lossless full-packet-capture appliance.
//
// Mirrors the architecture of the commercial systems the paper cites
// (§5, NIKSUN-style): a tap thread pushes every frame into a bounded
// lock-free ring; a consumer drains the ring in batches and dispatches
// to sinks (pcap segments, the flow meter, the data store ingester).
// "Losslessness" is not asserted but *measured*: any frame that finds
// the ring full increments a drop counter, and the T-CAP experiment
// reports the offered-load knee where drops begin.
//
// The engine is single-producer/single-consumer. In simulation both
// sides usually run on one thread (offer(), then poll()); the capture
// benchmark runs them on two real threads to measure sustained rate.
// For the multi-worker pipeline see sharded_engine.h.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "campuslab/capture/decoded.h"
#include "campuslab/capture/spsc_ring.h"
#include "campuslab/packet/buffer.h"
#include "campuslab/packet/view.h"
#include "campuslab/sim/campus.h"

namespace campuslab::capture {

struct CaptureConfig {
  std::size_t ring_capacity = 1 << 16;
};

/// A point-in-time snapshot of capture accounting. Produced by
/// ConcurrentCaptureStats::snapshot(); plain integers, freely copyable.
struct CaptureStats {
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t dropped = 0;   // ring-full losses
  std::uint64_t consumed = 0;
  /// Of `consumed`, frames consumed during the shutdown drain (after
  /// stop was requested). drained_on_stop <= consumed.
  std::uint64_t drained_on_stop = 0;
  /// Accepted frames discarded unconsumed: the bounded shutdown drain
  /// hit its deadline (wedged sink) or the shard was quarantined.
  /// Quiesced identity: accepted == consumed + abandoned.
  std::uint64_t abandoned = 0;
  std::uint64_t offered_bytes = 0;
  std::uint64_t dropped_bytes = 0;

  /// Gauge snapshot of the process-wide packet buffer pool at stats()
  /// time. Every engine draws from the same pool, so operator+= keeps
  /// the left-hand side's snapshot instead of summing (summing would
  /// double-count the shared pool).
  packet::BufferPoolStats buffer_pool;

  double loss_rate() const noexcept {
    return offered == 0 ? 0.0
                        : static_cast<double>(dropped) /
                              static_cast<double>(offered);
  }

  CaptureStats& operator+=(const CaptureStats& o) noexcept {
    offered += o.offered;
    accepted += o.accepted;
    dropped += o.dropped;
    consumed += o.consumed;
    drained_on_stop += o.drained_on_stop;
    abandoned += o.abandoned;
    offered_bytes += o.offered_bytes;
    dropped_bytes += o.dropped_bytes;
    return *this;
  }
};

/// Capture counters that are safe to sample from any thread while the
/// producer and consumer run. Producer-side counters (offered /
/// accepted / dropped / byte totals) and the consumer-side counter
/// (consumed) live on separate cache lines so neither side's increments
/// bounce the other's line.
///
/// snapshot() guarantees, even mid-flight:
///   consumed <= offered          and
///   accepted + dropped <= offered
/// It reads consumed first and offered last (acquire), and the writers
/// publish `offered` before the matching accepted/dropped increment
/// (release), so a sampled snapshot can never show an effect before its
/// cause. Exact equalities (offered == accepted + dropped,
/// accepted == consumed) hold once both sides have quiesced.
class ConcurrentCaptureStats {
 public:
  void record_offer(std::uint64_t bytes) noexcept {
    offered_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    offered_.fetch_add(1, std::memory_order_release);
  }
  void record_accept() noexcept {
    accepted_.fetch_add(1, std::memory_order_release);
  }
  void record_drop(std::uint64_t bytes) noexcept {
    dropped_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    dropped_.fetch_add(1, std::memory_order_release);
  }
  void record_consumed(std::uint64_t n) noexcept {
    consumed_.fetch_add(n, std::memory_order_release);
  }
  /// Shutdown-drain accounting (consumer side): `drained` frames were
  /// consumed after stop was requested (a sub-count of consumed);
  /// `abandoned` frames were discarded unconsumed (deadline expiry or
  /// shard quarantine).
  void record_drained(std::uint64_t n) noexcept {
    drained_.fetch_add(n, std::memory_order_release);
  }
  void record_abandoned(std::uint64_t n) noexcept {
    abandoned_.fetch_add(n, std::memory_order_release);
  }

  CaptureStats snapshot() const noexcept {
    CaptureStats s;
    // Order matters: consumed before accepted/dropped before offered,
    // so the documented inequalities hold for live samples.
    // drained is recorded after the consumed frames it sub-counts, so
    // read it before consumed (effect before cause keeps drained <=
    // consumed in live samples).
    s.drained_on_stop = drained_.load(std::memory_order_acquire);
    s.consumed = consumed_.load(std::memory_order_acquire);
    s.abandoned = abandoned_.load(std::memory_order_acquire);
    s.accepted = accepted_.load(std::memory_order_acquire);
    s.dropped = dropped_.load(std::memory_order_acquire);
    s.dropped_bytes = dropped_bytes_.load(std::memory_order_acquire);
    s.offered = offered_.load(std::memory_order_acquire);
    s.offered_bytes = offered_bytes_.load(std::memory_order_acquire);
    return s;
  }

 private:
  alignas(64) std::atomic<std::uint64_t> offered_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> offered_bytes_{0};
  std::atomic<std::uint64_t> dropped_bytes_{0};
  alignas(64) std::atomic<std::uint64_t> consumed_{0};
  std::atomic<std::uint64_t> drained_{0};
  std::atomic<std::uint64_t> abandoned_{0};
};

class CaptureEngine {
 public:
  using Sink = std::function<void(const TaggedPacket&)>;

  explicit CaptureEngine(CaptureConfig config = {});

  /// Register a consumer-side sink. All sinks see every consumed frame
  /// in order. Call before traffic starts.
  void add_sink(Sink sink) { sinks_.push_back(std::move(sink)); }

  /// Producer side: offer one frame. Returns false when the ring was
  /// full and the frame was dropped (counted).
  bool offer(const packet::Packet& pkt, sim::Direction dir);
  bool offer(packet::Packet&& pkt, sim::Direction dir);

  /// Consumer side: drain up to `max_batch` frames through the sinks.
  /// Returns frames consumed.
  std::size_t poll(std::size_t max_batch = 256);

  /// Drain until empty.
  std::size_t drain();

  /// Safe to call from any thread at any time (see
  /// ConcurrentCaptureStats for the mid-flight guarantees).
  CaptureStats stats() const {
    CaptureStats s = stats_.snapshot();
    s.buffer_pool = packet::default_buffer_pool().stats();
    return s;
  }
  std::size_t ring_occupancy() const noexcept { return ring_.size(); }

 private:
  SpscRing<TaggedPacket> ring_;
  std::vector<Sink> sinks_;
  ConcurrentCaptureStats stats_;
};

}  // namespace campuslab::capture

#include "campuslab/capture/pcap.h"

#include <fstream>
#include <optional>

namespace campuslab::capture {

namespace {

constexpr std::uint32_t kMagicMicros = 0xA1B2C3D4;
constexpr std::uint32_t kMagicMicrosSwapped = 0xD4C3B2A1;
constexpr std::uint32_t kMagicNanosSwapped = 0x4D3CB2A1;

std::uint32_t swap32(std::uint32_t v) noexcept {
  return ((v & 0x000000FF) << 24) | ((v & 0x0000FF00) << 8) |
         ((v & 0x00FF0000) >> 8) | ((v & 0xFF000000) >> 24);
}

void put32(std::ofstream& out, std::uint32_t v) {
  // pcap headers are written in this host's byte order; the reader
  // detects foreign order from the magic. We write little-endian
  // explicitly so files are byte-identical across platforms.
  const std::uint8_t b[4] = {static_cast<std::uint8_t>(v),
                             static_cast<std::uint8_t>(v >> 8),
                             static_cast<std::uint8_t>(v >> 16),
                             static_cast<std::uint8_t>(v >> 24)};
  out.write(reinterpret_cast<const char*>(b), 4);
}

void put16(std::ofstream& out, std::uint16_t v) {
  const std::uint8_t b[2] = {static_cast<std::uint8_t>(v),
                             static_cast<std::uint8_t>(v >> 8)};
  out.write(reinterpret_cast<const char*>(b), 2);
}

std::optional<std::uint32_t> get32(std::ifstream& in, bool swapped) {
  std::uint8_t b[4];
  in.read(reinterpret_cast<char*>(b), 4);
  if (in.gcount() != 4) return std::nullopt;
  const std::uint32_t v = static_cast<std::uint32_t>(b[0]) |
                          (static_cast<std::uint32_t>(b[1]) << 8) |
                          (static_cast<std::uint32_t>(b[2]) << 16) |
                          (static_cast<std::uint32_t>(b[3]) << 24);
  return swapped ? swap32(v) : v;
}

}  // namespace

// ---------------------------------------------------------------- Writer

struct PcapWriter::Impl {
  std::ofstream out;
};

PcapWriter::PcapWriter(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
PcapWriter::PcapWriter(PcapWriter&&) noexcept = default;
PcapWriter& PcapWriter::operator=(PcapWriter&&) noexcept = default;
PcapWriter::~PcapWriter() = default;

Result<PcapWriter> PcapWriter::open(const std::string& path,
                                    std::uint32_t snaplen) {
  auto impl = std::make_unique<Impl>();
  impl->out.open(path, std::ios::binary | std::ios::trunc);
  if (!impl->out) {
    return Error::make("io", "cannot open for writing: " + path);
  }
  put32(impl->out, kMagicNanos);
  put16(impl->out, 2);  // version major
  put16(impl->out, 4);  // version minor
  put32(impl->out, 0);  // thiszone
  put32(impl->out, 0);  // sigfigs
  put32(impl->out, snaplen);
  put32(impl->out, kLinkTypeEthernet);
  PcapWriter w(std::move(impl));
  w.snaplen_ = snaplen;
  if (!w.impl_->out) return Error::make("io", "header write failed");
  return w;
}

Status PcapWriter::write(const packet::Packet& pkt) {
  const auto ns_total = pkt.ts.nanos();
  const auto secs = static_cast<std::uint32_t>(ns_total / 1'000'000'000);
  const auto nanos = static_cast<std::uint32_t>(ns_total % 1'000'000'000);
  const auto orig_len = static_cast<std::uint32_t>(pkt.size());
  const auto incl_len = std::min(orig_len, snaplen_);

  auto& out = impl_->out;
  put32(out, secs);
  put32(out, nanos);
  put32(out, incl_len);
  put32(out, orig_len);
  out.write(reinterpret_cast<const char*>(pkt.bytes().data()), incl_len);
  if (!out) return Error::make("io", "record write failed");
  ++records_;
  bytes_ += incl_len + 16;
  return Status::success();
}

Status PcapWriter::flush() {
  impl_->out.flush();
  if (!impl_->out) return Error::make("io", "flush failed");
  return Status::success();
}

// ---------------------------------------------------------------- Reader

struct PcapReader::Impl {
  std::ifstream in;
};

PcapReader::PcapReader(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
PcapReader::PcapReader(PcapReader&&) noexcept = default;
PcapReader& PcapReader::operator=(PcapReader&&) noexcept = default;
PcapReader::~PcapReader() = default;

Result<PcapReader> PcapReader::open(const std::string& path) {
  auto impl = std::make_unique<Impl>();
  impl->in.open(path, std::ios::binary);
  if (!impl->in) return Error::make("io", "cannot open: " + path);

  const auto magic = get32(impl->in, false);
  if (!magic) return Error::make("truncated", "missing pcap header");
  bool nanos = false, swapped = false;
  switch (*magic) {
    case PcapWriter::kMagicNanos: nanos = true; break;
    case kMagicMicros: break;
    case kMagicNanosSwapped: nanos = true; swapped = true; break;
    case kMagicMicrosSwapped: swapped = true; break;
    default:
      return Error::make("format", "not a pcap file");
  }
  // Skip version (2+2), thiszone (4) and sigfigs (4), then read
  // snaplen and linktype.
  impl->in.seekg(12, std::ios::cur);
  const auto snaplen = get32(impl->in, swapped);
  const auto linktype = get32(impl->in, swapped);
  if (!snaplen || !linktype)
    return Error::make("truncated", "short pcap header");
  if (*linktype != PcapWriter::kLinkTypeEthernet)
    return Error::make("format", "unsupported link type");

  PcapReader r(std::move(impl));
  r.snaplen_ = *snaplen;
  r.nanos_ = nanos;
  r.swapped_ = swapped;
  return r;
}

Result<std::optional<packet::Packet>> PcapReader::next() {
  auto& in = impl_->in;
  const auto secs = get32(in, swapped_);
  if (!secs) {
    if (in.eof()) return std::optional<packet::Packet>{};  // clean EOF
    return Error::make("io", "read failed");
  }
  const auto frac = get32(in, swapped_);
  const auto incl = get32(in, swapped_);
  const auto orig = get32(in, swapped_);
  if (!frac || !incl || !orig)
    return Error::make("truncated", "short record header");
  if (*incl > snaplen_ + 65536)
    return Error::make("format", "implausible record length");

  packet::Packet pkt;
  const std::int64_t frac_ns =
      nanos_ ? static_cast<std::int64_t>(*frac)
             : static_cast<std::int64_t>(*frac) * 1000;
  pkt.ts = Timestamp::from_nanos(
      static_cast<std::int64_t>(*secs) * 1'000'000'000 + frac_ns);
  pkt.resize(*incl);  // fresh pool buffer: mutable_bytes() won't clone
  in.read(reinterpret_cast<char*>(pkt.mutable_bytes().data()),
          static_cast<std::streamsize>(*incl));
  if (in.gcount() != static_cast<std::streamsize>(*incl))
    return Error::make("truncated", "short record body");
  return std::optional<packet::Packet>(std::move(pkt));
}

Result<std::vector<packet::Packet>> PcapReader::read_all() {
  std::vector<packet::Packet> out;
  while (true) {
    auto r = next();
    if (!r.ok()) return r.error();
    if (!r.value().has_value()) break;
    out.push_back(std::move(*r.value()));
  }
  return out;
}

}  // namespace campuslab::capture

#include "campuslab/capture/engine.h"

#include "campuslab/obs/registry.h"
#include "campuslab/obs/stage_timer.h"

namespace campuslab::capture {

namespace {

// Process-wide obs wiring, resolved once. Every CaptureEngine in the
// process aggregates into the same series (registry semantics); the
// per-stage histograms are shared with the sharded engine so one
// latency table covers both paths.
struct EngineMetrics {
  obs::Counter& offered = obs::Registry::global().counter("capture.offered");
  obs::Counter& dropped = obs::Registry::global().counter("capture.dropped");
  obs::Counter& consumed =
      obs::Registry::global().counter("capture.consumed");
  obs::Histogram& decode_ns = obs::stage_histogram("tap_decode");
  obs::Histogram& enqueue_ns = obs::stage_histogram("ring_enqueue");
  obs::Histogram& dequeue_ns = obs::stage_histogram("ring_dequeue");
  obs::Histogram& dispatch_ns = obs::stage_histogram("sink_dispatch");

  static EngineMetrics& get() {
    static EngineMetrics m;
    return m;
  }
};

}  // namespace

CaptureEngine::CaptureEngine(CaptureConfig config)
    : ring_(config.ring_capacity) {
  (void)EngineMetrics::get();  // resolve outside the packet path
}

bool CaptureEngine::offer(const packet::Packet& pkt, sim::Direction dir) {
  // A Packet copy is a refcount bump on the pooled buffer — a dropped
  // frame no longer pays an allocation + memcpy for nothing.
  return offer(packet::Packet(pkt), dir);
}

bool CaptureEngine::offer(packet::Packet&& pkt, sim::Direction dir) {
  auto& metrics = EngineMetrics::get();
  const auto size = pkt.size();
  stats_.record_offer(size);
  metrics.offered.increment();
  // Parse-once: the eager decode happens here at the tap; every sink
  // downstream reads the cached view. A ring-full drop wastes only the
  // bounded header reads, never an allocation.
  DecodedPacket decoded;
  {
    obs::StageTimer timer(metrics.decode_ns);
    decoded = DecodedPacket(std::move(pkt), dir);
  }
  bool pushed;
  {
    obs::StageTimer timer(metrics.enqueue_ns);
    pushed = ring_.try_push(std::move(decoded));
  }
  if (!pushed) {
    stats_.record_drop(size);
    metrics.dropped.increment();
    return false;
  }
  stats_.record_accept();
  return true;
}

std::size_t CaptureEngine::poll(std::size_t max_batch) {
  auto& metrics = EngineMetrics::get();
  std::size_t consumed = 0;
  TaggedPacket tagged;
  while (consumed < max_batch) {
    bool popped;
    {
      obs::StageTimer timer(metrics.dequeue_ns);
      popped = ring_.try_pop(tagged);
      if (!popped) timer.cancel();  // empty-ring probes are not latency
    }
    if (!popped) break;
    {
      obs::StageTimer timer(metrics.dispatch_ns);
      for (const auto& sink : sinks_) sink(tagged);
    }
    ++consumed;
  }
  if (consumed > 0) {
    stats_.record_consumed(consumed);
    metrics.consumed.add(consumed);
  }
  return consumed;
}

std::size_t CaptureEngine::drain() {
  std::size_t total = 0;
  while (const auto n = poll(1024)) total += n;
  return total;
}

}  // namespace campuslab::capture

#include "campuslab/capture/engine.h"

namespace campuslab::capture {

CaptureEngine::CaptureEngine(CaptureConfig config)
    : ring_(config.ring_capacity) {}

bool CaptureEngine::offer(const packet::Packet& pkt, sim::Direction dir) {
  packet::Packet copy = pkt;
  return offer(std::move(copy), dir);
}

bool CaptureEngine::offer(packet::Packet&& pkt, sim::Direction dir) {
  ++stats_.offered;
  stats_.offered_bytes += pkt.size();
  const auto size = pkt.size();
  if (!ring_.try_push(TaggedPacket{std::move(pkt), dir})) {
    ++stats_.dropped;
    stats_.dropped_bytes += size;
    return false;
  }
  ++stats_.accepted;
  return true;
}

std::size_t CaptureEngine::poll(std::size_t max_batch) {
  std::size_t consumed = 0;
  TaggedPacket tagged;
  while (consumed < max_batch && ring_.try_pop(tagged)) {
    for (const auto& sink : sinks_) sink(tagged);
    ++consumed;
  }
  stats_.consumed += consumed;
  return consumed;
}

std::size_t CaptureEngine::drain() {
  std::size_t total = 0;
  while (const auto n = poll(1024)) total += n;
  return total;
}

}  // namespace campuslab::capture

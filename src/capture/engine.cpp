#include "campuslab/capture/engine.h"

namespace campuslab::capture {

CaptureEngine::CaptureEngine(CaptureConfig config)
    : ring_(config.ring_capacity) {}

bool CaptureEngine::offer(const packet::Packet& pkt, sim::Direction dir) {
  // A Packet copy is a refcount bump on the pooled buffer — a dropped
  // frame no longer pays an allocation + memcpy for nothing.
  return offer(packet::Packet(pkt), dir);
}

bool CaptureEngine::offer(packet::Packet&& pkt, sim::Direction dir) {
  const auto size = pkt.size();
  stats_.record_offer(size);
  // Parse-once: the eager decode happens here at the tap; every sink
  // downstream reads the cached view. A ring-full drop wastes only the
  // bounded header reads, never an allocation.
  if (!ring_.try_push(DecodedPacket(std::move(pkt), dir))) {
    stats_.record_drop(size);
    return false;
  }
  stats_.record_accept();
  return true;
}

std::size_t CaptureEngine::poll(std::size_t max_batch) {
  std::size_t consumed = 0;
  TaggedPacket tagged;
  while (consumed < max_batch && ring_.try_pop(tagged)) {
    for (const auto& sink : sinks_) sink(tagged);
    ++consumed;
  }
  if (consumed > 0) stats_.record_consumed(consumed);
  return consumed;
}

std::size_t CaptureEngine::drain() {
  std::size_t total = 0;
  while (const auto n = poll(1024)) total += n;
  return total;
}

}  // namespace campuslab::capture

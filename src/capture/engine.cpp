#include "campuslab/capture/engine.h"

namespace campuslab::capture {

CaptureEngine::CaptureEngine(CaptureConfig config)
    : ring_(config.ring_capacity) {}

bool CaptureEngine::offer(const packet::Packet& pkt, sim::Direction dir) {
  packet::Packet copy = pkt;
  return offer(std::move(copy), dir);
}

bool CaptureEngine::offer(packet::Packet&& pkt, sim::Direction dir) {
  const auto size = pkt.size();
  stats_.record_offer(size);
  if (!ring_.try_push(TaggedPacket{std::move(pkt), dir})) {
    stats_.record_drop(size);
    return false;
  }
  stats_.record_accept();
  return true;
}

std::size_t CaptureEngine::poll(std::size_t max_batch) {
  std::size_t consumed = 0;
  TaggedPacket tagged;
  while (consumed < max_batch && ring_.try_pop(tagged)) {
    for (const auto& sink : sinks_) sink(tagged);
    ++consumed;
  }
  if (consumed > 0) stats_.record_consumed(consumed);
  return consumed;
}

std::size_t CaptureEngine::drain() {
  std::size_t total = 0;
  while (const auto n = poll(1024)) total += n;
  return total;
}

}  // namespace campuslab::capture

#include "campuslab/capture/sharded_engine.h"

#include <algorithm>
#include <exception>
#include <string>

#include "campuslab/obs/stage_timer.h"
#include "campuslab/resilience/fault.h"
#include "campuslab/util/hash.h"

namespace campuslab::capture {
namespace {

struct ShardedMetrics {
  obs::Histogram& decode_ns = obs::stage_histogram("tap_decode");
  obs::Histogram& enqueue_ns = obs::stage_histogram("ring_enqueue");
  obs::Histogram& dequeue_ns = obs::stage_histogram("ring_dequeue");
  obs::Histogram& dispatch_ns = obs::stage_histogram("sink_dispatch");
  // Supervisor: time from catching a worker death to the worker loop
  // re-entering its poll loop.
  obs::Histogram& restart_ns =
      obs::Registry::global().histogram("resilience.restart_ns");
  obs::Counter& quarantined =
      obs::Registry::global().counter("resilience.shard_quarantined_total");
  obs::Counter& rerouted =
      obs::Registry::global().counter("resilience.rerouted_packets_total");

  static ShardedMetrics& get() {
    static ShardedMetrics m;
    return m;
  }
};

/// FNV-1a over the frame prefix + length: a cheap deterministic spread
/// for frames that have no 5-tuple to hash. Uses the compat basis so
/// shard placement is unchanged from before the hash dedup (pinned by
/// ShardedCaptureEngine.SpreaderOutputPinned).
std::uint64_t prefix_hash(std::span<const std::uint8_t> bytes) noexcept {
  const std::size_t n = std::min<std::size_t>(bytes.size(), 32);
  const std::uint64_t h =
      util::fnv1a(bytes.first(n), util::kFnvCompatBasis);
  return util::fnv1a_step(h, bytes.size());
}

}  // namespace

ShardedCaptureEngine::ShardedCaptureEngine(ShardedCaptureConfig config)
    : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.poll_batch == 0) config_.poll_batch = 1;
  shards_.reserve(config_.shards);
  auto& registry = obs::Registry::global();
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>(config_.ring_capacity);
    const std::string label = "shard=" + std::to_string(i);
    shard->obs_offered = &registry.counter("capture.shard.offered", label);
    shard->obs_dropped = &registry.counter("capture.shard.dropped", label);
    shard->obs_consumed = &registry.counter("capture.shard.consumed", label);
    shard->obs_restarts =
        &registry.counter("resilience.worker_restarts_total", label);
    shard->obs_abandoned = &registry.counter("capture.shard.abandoned", label);
    obs_handles_.push_back(registry.register_callback(
        "capture.ring_occupancy", label, [ring = &shard->ring] {
          return static_cast<double>(ring->size());
        }));
    shards_.push_back(std::move(shard));
  }
  (void)ShardedMetrics::get();  // resolve stage histograms up front
}

ShardedCaptureEngine::~ShardedCaptureEngine() { stop(); }

void ShardedCaptureEngine::add_sink_factory(const SinkFactory& factory) {
  for (std::size_t i = 0; i < shards_.size(); ++i)
    shards_[i]->sinks.push_back(factory(i));
}

std::size_t ShardedCaptureEngine::shard_of(
    const packet::PacketView& view) const noexcept {
  if (shards_.size() == 1) return 0;
  if (view.valid() && view.is_ipv4()) {
    if (const auto tuple = view.five_tuple()) {
      // Bidirectional key: both directions of a conversation must land
      // on the same shard, or flow metering would split every
      // conversation.
      return static_cast<std::size_t>(tuple->bidirectional().hash()) %
             shards_.size();
    }
  }
  // No tuple to key on: spread by a byte hash so junk/non-IP bursts
  // don't all pile onto one shard.
  return static_cast<std::size_t>(prefix_hash(view.frame())) %
         shards_.size();
}

bool ShardedCaptureEngine::offer(const packet::Packet& pkt,
                                 sim::Direction dir) {
  // Refcount bump, not a deep copy — dropped frames cost nothing extra.
  return offer(packet::Packet(pkt), dir);
}

bool ShardedCaptureEngine::offer(packet::Packet&& pkt, sim::Direction dir) {
  auto& metrics = ShardedMetrics::get();
  // Decode once at the tap; the same view picks the shard and rides the
  // ring so no worker ever re-parses the frame.
  DecodedPacket decoded;
  {
    obs::StageTimer timer(metrics.decode_ns);
    decoded = DecodedPacket(std::move(pkt), dir);
  }
  std::size_t idx = shard_of(decoded.view);
  if (shards_[idx]->quarantined.load(std::memory_order_acquire)) {
    // Deterministic reroute walk: the slice of a quarantined shard goes
    // to the next live shard, so the mapping stays a pure function of
    // (tuple, quarantine set) and both directions still co-locate.
    std::size_t live = shards_.size();
    for (std::size_t k = 1; k < shards_.size(); ++k) {
      const std::size_t candidate = (idx + k) % shards_.size();
      if (!shards_[candidate]->quarantined.load(std::memory_order_acquire)) {
        live = candidate;
        break;
      }
    }
    if (live == shards_.size()) {
      // Every shard quarantined: account the loss against the home
      // shard so offered == accepted + dropped still holds.
      Shard& home = *shards_[idx];
      home.stats.record_offer(decoded.pkt.size());
      home.obs_offered->increment();
      home.stats.record_drop(decoded.pkt.size());
      home.obs_dropped->increment();
      return false;
    }
    idx = live;
    rerouted_.fetch_add(1, std::memory_order_relaxed);
    metrics.rerouted.increment();
  }
  Shard& shard = *shards_[idx];
  const auto size = decoded.pkt.size();
  shard.stats.record_offer(size);
  shard.obs_offered->increment();
  bool pushed;
  {
    obs::StageTimer timer(metrics.enqueue_ns);
    pushed = shard.ring.try_push(std::move(decoded));
  }
  if (!pushed) {
    shard.stats.record_drop(size);
    shard.obs_dropped->increment();
    return false;
  }
  shard.stats.record_accept();
  return true;
}

std::size_t ShardedCaptureEngine::consume_batch(Shard& shard,
                                                std::size_t max_batch) {
  auto& metrics = ShardedMetrics::get();
  std::size_t consumed = 0;
  TaggedPacket tagged;
  try {
    while (consumed < max_batch) {
      bool popped;
      {
        obs::StageTimer timer(metrics.dequeue_ns);
        popped = shard.ring.try_pop(tagged);
        if (!popped) timer.cancel();  // empty-ring probes are not latency
      }
      if (!popped) break;
      // The frame left the ring: it is consumed no matter what the
      // sinks do with it. Counting before dispatch keeps
      // offered == consumed + dropped exact across worker deaths —
      // an injected sink exception loses zero packets from accounting.
      ++consumed;
      {
        obs::StageTimer timer(metrics.dispatch_ns);
        resilience::fault_point("capture.sink_dispatch");
        for (const auto& sink : shard.sinks) sink(tagged);
      }
    }
  } catch (...) {
    if (consumed > 0) {
      shard.stats.record_consumed(consumed);
      shard.obs_consumed->add(consumed);
    }
    throw;
  }
  if (consumed > 0) {
    shard.stats.record_consumed(consumed);
    shard.obs_consumed->add(consumed);
  }
  return consumed;
}

void ShardedCaptureEngine::run_worker(Shard& shard) {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    resilience::fault_point("capture.worker");
    if (consume_batch(shard, config_.poll_batch) == 0)
      std::this_thread::yield();
  }
  // Drain-on-shutdown, bounded: the producer has stopped offering by
  // the time stop() is called, so draining to empty loses nothing —
  // unless a sink has wedged, in which case the deadline fires and the
  // remainder is abandoned (counted) instead of hanging stop().
  const std::uint64_t deadline =
      config_.stop_drain_deadline.count_nanos() > 0
          ? obs::monotonic_ns() + static_cast<std::uint64_t>(
                                      config_.stop_drain_deadline.count_nanos())
          : 0;
  std::size_t n;
  while ((n = consume_batch(shard, config_.poll_batch)) > 0) {
    shard.stats.record_drained(n);
    if (deadline != 0 && obs::monotonic_ns() >= deadline) {
      abandon_ring(shard);
      return;
    }
  }
}

void ShardedCaptureEngine::worker_loop(Shard& shard) {
  auto& metrics = ShardedMetrics::get();
  for (;;) {
    try {
      run_worker(shard);
      return;
    } catch (const std::exception&) {
      // Supervisor: the worker died mid-dispatch. The in-flight frame
      // is already counted consumed; record the death and restart with
      // the ring intact, or quarantine past the budget.
      const std::uint64_t t0 = obs::monotonic_ns();
      const std::uint64_t deaths =
          shard.restarts.fetch_add(1, std::memory_order_relaxed) + 1;
      shard.obs_restarts->increment();
      if (deaths > config_.max_worker_restarts) {
        quarantine(shard);
        return;
      }
      metrics.restart_ns.observe(obs::monotonic_ns() - t0);
    }
  }
}

void ShardedCaptureEngine::abandon_ring(Shard& shard) {
  TaggedPacket tagged;
  std::uint64_t n = 0;
  while (shard.ring.try_pop(tagged)) ++n;
  if (n > 0) {
    shard.stats.record_abandoned(n);
    shard.obs_abandoned->add(n);
  }
}

void ShardedCaptureEngine::quarantine(Shard& shard) {
  shard.quarantined.store(true, std::memory_order_release);
  ShardedMetrics::get().quarantined.increment();
  // Frames the dead worker never got to are abandoned, not lost
  // silently. The producer may still push a few frames racing the flag;
  // stop() sweeps quarantined rings once more after joining so the
  // accounting identity is exact at shutdown.
  abandon_ring(shard);
}

void ShardedCaptureEngine::start() {
  if (running_) return;
  stop_requested_.store(false, std::memory_order_release);
  for (auto& shard : shards_) {
    if (shard->quarantined.load(std::memory_order_acquire)) continue;
    shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
  }
  running_ = true;
}

void ShardedCaptureEngine::stop() {
  if (!running_) return;
  stop_requested_.store(true, std::memory_order_release);
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
  // A producer racing the quarantine flag may have pushed a few frames
  // after the dead worker's final sweep. With all workers joined the
  // rings are single-owner again; sweep quarantined shards once more so
  // accepted == consumed + abandoned is exact, not approximate.
  for (auto& shard : shards_)
    if (shard->quarantined.load(std::memory_order_acquire))
      abandon_ring(*shard);
  running_ = false;
}

std::size_t ShardedCaptureEngine::poll_shard(std::size_t shard,
                                             std::size_t max_batch) {
  return consume_batch(*shards_[shard], max_batch);
}

std::size_t ShardedCaptureEngine::drain() {
  std::size_t total = 0;
  for (auto& shard : shards_)
    while (const auto n = consume_batch(*shard, 1024)) total += n;
  return total;
}

CaptureStats ShardedCaptureEngine::stats() const {
  CaptureStats merged;
  for (const auto& shard : shards_) merged += shard->stats.snapshot();
  merged.buffer_pool = packet::default_buffer_pool().stats();
  return merged;
}

CaptureStats ShardedCaptureEngine::shard_stats(std::size_t shard) const {
  return shards_[shard]->stats.snapshot();
}

std::size_t ShardedCaptureEngine::ring_occupancy(
    std::size_t shard) const noexcept {
  return shards_[shard]->ring.size();
}

std::uint64_t ShardedCaptureEngine::worker_restarts() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_)
    total += shard->restarts.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t ShardedCaptureEngine::worker_restarts(
    std::size_t shard) const noexcept {
  return shards_[shard]->restarts.load(std::memory_order_relaxed);
}

bool ShardedCaptureEngine::shard_quarantined(
    std::size_t shard) const noexcept {
  return shards_[shard]->quarantined.load(std::memory_order_acquire);
}

std::size_t ShardedCaptureEngine::quarantined_shards() const noexcept {
  std::size_t n = 0;
  for (const auto& shard : shards_)
    n += shard->quarantined.load(std::memory_order_acquire) ? 1 : 0;
  return n;
}

}  // namespace campuslab::capture

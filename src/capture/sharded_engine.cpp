#include "campuslab/capture/sharded_engine.h"

#include <algorithm>

namespace campuslab::capture {
namespace {

/// FNV-1a over the frame prefix + length: a cheap deterministic spread
/// for frames that have no 5-tuple to hash.
std::uint64_t prefix_hash(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  const std::size_t n = std::min<std::size_t>(bytes.size(), 32);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  h ^= bytes.size();
  h *= 1099511628211ull;
  return h;
}

}  // namespace

ShardedCaptureEngine::ShardedCaptureEngine(ShardedCaptureConfig config)
    : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.poll_batch == 0) config_.poll_batch = 1;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i)
    shards_.push_back(std::make_unique<Shard>(config_.ring_capacity));
}

ShardedCaptureEngine::~ShardedCaptureEngine() { stop(); }

void ShardedCaptureEngine::add_sink_factory(const SinkFactory& factory) {
  for (std::size_t i = 0; i < shards_.size(); ++i)
    shards_[i]->sinks.push_back(factory(i));
}

std::size_t ShardedCaptureEngine::shard_of(
    const packet::PacketView& view) const noexcept {
  if (shards_.size() == 1) return 0;
  if (view.valid() && view.is_ipv4()) {
    if (const auto tuple = view.five_tuple()) {
      // Bidirectional key: both directions of a conversation must land
      // on the same shard, or flow metering would split every
      // conversation.
      return static_cast<std::size_t>(tuple->bidirectional().hash()) %
             shards_.size();
    }
  }
  // No tuple to key on: spread by a byte hash so junk/non-IP bursts
  // don't all pile onto one shard.
  return static_cast<std::size_t>(prefix_hash(view.frame())) %
         shards_.size();
}

bool ShardedCaptureEngine::offer(const packet::Packet& pkt,
                                 sim::Direction dir) {
  // Refcount bump, not a deep copy — dropped frames cost nothing extra.
  return offer(packet::Packet(pkt), dir);
}

bool ShardedCaptureEngine::offer(packet::Packet&& pkt, sim::Direction dir) {
  // Decode once at the tap; the same view picks the shard and rides the
  // ring so no worker ever re-parses the frame.
  DecodedPacket decoded(std::move(pkt), dir);
  Shard& shard = *shards_[shard_of(decoded.view)];
  const auto size = decoded.pkt.size();
  shard.stats.record_offer(size);
  if (!shard.ring.try_push(std::move(decoded))) {
    shard.stats.record_drop(size);
    return false;
  }
  shard.stats.record_accept();
  return true;
}

std::size_t ShardedCaptureEngine::consume_batch(Shard& shard,
                                                std::size_t max_batch) {
  std::size_t consumed = 0;
  TaggedPacket tagged;
  while (consumed < max_batch && shard.ring.try_pop(tagged)) {
    for (const auto& sink : shard.sinks) sink(tagged);
    ++consumed;
  }
  if (consumed > 0) shard.stats.record_consumed(consumed);
  return consumed;
}

void ShardedCaptureEngine::worker_loop(Shard& shard) {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    if (consume_batch(shard, config_.poll_batch) == 0)
      std::this_thread::yield();
  }
  // Drain-on-shutdown: the producer has stopped offering by the time
  // stop() is called, so one final sweep to empty loses nothing.
  while (consume_batch(shard, config_.poll_batch) > 0) {
  }
}

void ShardedCaptureEngine::start() {
  if (running_) return;
  stop_requested_.store(false, std::memory_order_release);
  for (auto& shard : shards_)
    shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
  running_ = true;
}

void ShardedCaptureEngine::stop() {
  if (!running_) return;
  stop_requested_.store(true, std::memory_order_release);
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
  running_ = false;
}

std::size_t ShardedCaptureEngine::poll_shard(std::size_t shard,
                                             std::size_t max_batch) {
  return consume_batch(*shards_[shard], max_batch);
}

std::size_t ShardedCaptureEngine::drain() {
  std::size_t total = 0;
  for (auto& shard : shards_)
    while (const auto n = consume_batch(*shard, 1024)) total += n;
  return total;
}

CaptureStats ShardedCaptureEngine::stats() const {
  CaptureStats merged;
  for (const auto& shard : shards_) merged += shard->stats.snapshot();
  merged.buffer_pool = packet::default_buffer_pool().stats();
  return merged;
}

CaptureStats ShardedCaptureEngine::shard_stats(std::size_t shard) const {
  return shards_[shard]->stats.snapshot();
}

std::size_t ShardedCaptureEngine::ring_occupancy(
    std::size_t shard) const noexcept {
  return shards_[shard]->ring.size();
}

}  // namespace campuslab::capture

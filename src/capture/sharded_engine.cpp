#include "campuslab/capture/sharded_engine.h"

#include <algorithm>
#include <string>

#include "campuslab/obs/stage_timer.h"

namespace campuslab::capture {
namespace {

struct ShardedMetrics {
  obs::Histogram& decode_ns = obs::stage_histogram("tap_decode");
  obs::Histogram& enqueue_ns = obs::stage_histogram("ring_enqueue");
  obs::Histogram& dequeue_ns = obs::stage_histogram("ring_dequeue");
  obs::Histogram& dispatch_ns = obs::stage_histogram("sink_dispatch");

  static ShardedMetrics& get() {
    static ShardedMetrics m;
    return m;
  }
};

/// FNV-1a over the frame prefix + length: a cheap deterministic spread
/// for frames that have no 5-tuple to hash.
std::uint64_t prefix_hash(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  const std::size_t n = std::min<std::size_t>(bytes.size(), 32);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  h ^= bytes.size();
  h *= 1099511628211ull;
  return h;
}

}  // namespace

ShardedCaptureEngine::ShardedCaptureEngine(ShardedCaptureConfig config)
    : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.poll_batch == 0) config_.poll_batch = 1;
  shards_.reserve(config_.shards);
  auto& registry = obs::Registry::global();
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>(config_.ring_capacity);
    const std::string label = "shard=" + std::to_string(i);
    shard->obs_offered = &registry.counter("capture.shard.offered", label);
    shard->obs_dropped = &registry.counter("capture.shard.dropped", label);
    shard->obs_consumed = &registry.counter("capture.shard.consumed", label);
    obs_handles_.push_back(registry.register_callback(
        "capture.ring_occupancy", label, [ring = &shard->ring] {
          return static_cast<double>(ring->size());
        }));
    shards_.push_back(std::move(shard));
  }
  (void)ShardedMetrics::get();  // resolve stage histograms up front
}

ShardedCaptureEngine::~ShardedCaptureEngine() { stop(); }

void ShardedCaptureEngine::add_sink_factory(const SinkFactory& factory) {
  for (std::size_t i = 0; i < shards_.size(); ++i)
    shards_[i]->sinks.push_back(factory(i));
}

std::size_t ShardedCaptureEngine::shard_of(
    const packet::PacketView& view) const noexcept {
  if (shards_.size() == 1) return 0;
  if (view.valid() && view.is_ipv4()) {
    if (const auto tuple = view.five_tuple()) {
      // Bidirectional key: both directions of a conversation must land
      // on the same shard, or flow metering would split every
      // conversation.
      return static_cast<std::size_t>(tuple->bidirectional().hash()) %
             shards_.size();
    }
  }
  // No tuple to key on: spread by a byte hash so junk/non-IP bursts
  // don't all pile onto one shard.
  return static_cast<std::size_t>(prefix_hash(view.frame())) %
         shards_.size();
}

bool ShardedCaptureEngine::offer(const packet::Packet& pkt,
                                 sim::Direction dir) {
  // Refcount bump, not a deep copy — dropped frames cost nothing extra.
  return offer(packet::Packet(pkt), dir);
}

bool ShardedCaptureEngine::offer(packet::Packet&& pkt, sim::Direction dir) {
  auto& metrics = ShardedMetrics::get();
  // Decode once at the tap; the same view picks the shard and rides the
  // ring so no worker ever re-parses the frame.
  DecodedPacket decoded;
  {
    obs::StageTimer timer(metrics.decode_ns);
    decoded = DecodedPacket(std::move(pkt), dir);
  }
  Shard& shard = *shards_[shard_of(decoded.view)];
  const auto size = decoded.pkt.size();
  shard.stats.record_offer(size);
  shard.obs_offered->increment();
  bool pushed;
  {
    obs::StageTimer timer(metrics.enqueue_ns);
    pushed = shard.ring.try_push(std::move(decoded));
  }
  if (!pushed) {
    shard.stats.record_drop(size);
    shard.obs_dropped->increment();
    return false;
  }
  shard.stats.record_accept();
  return true;
}

std::size_t ShardedCaptureEngine::consume_batch(Shard& shard,
                                                std::size_t max_batch) {
  auto& metrics = ShardedMetrics::get();
  std::size_t consumed = 0;
  TaggedPacket tagged;
  while (consumed < max_batch) {
    bool popped;
    {
      obs::StageTimer timer(metrics.dequeue_ns);
      popped = shard.ring.try_pop(tagged);
      if (!popped) timer.cancel();  // empty-ring probes are not latency
    }
    if (!popped) break;
    {
      obs::StageTimer timer(metrics.dispatch_ns);
      for (const auto& sink : shard.sinks) sink(tagged);
    }
    ++consumed;
  }
  if (consumed > 0) {
    shard.stats.record_consumed(consumed);
    shard.obs_consumed->add(consumed);
  }
  return consumed;
}

void ShardedCaptureEngine::worker_loop(Shard& shard) {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    if (consume_batch(shard, config_.poll_batch) == 0)
      std::this_thread::yield();
  }
  // Drain-on-shutdown: the producer has stopped offering by the time
  // stop() is called, so one final sweep to empty loses nothing.
  while (consume_batch(shard, config_.poll_batch) > 0) {
  }
}

void ShardedCaptureEngine::start() {
  if (running_) return;
  stop_requested_.store(false, std::memory_order_release);
  for (auto& shard : shards_)
    shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
  running_ = true;
}

void ShardedCaptureEngine::stop() {
  if (!running_) return;
  stop_requested_.store(true, std::memory_order_release);
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
  running_ = false;
}

std::size_t ShardedCaptureEngine::poll_shard(std::size_t shard,
                                             std::size_t max_batch) {
  return consume_batch(*shards_[shard], max_batch);
}

std::size_t ShardedCaptureEngine::drain() {
  std::size_t total = 0;
  for (auto& shard : shards_)
    while (const auto n = consume_batch(*shard, 1024)) total += n;
  return total;
}

CaptureStats ShardedCaptureEngine::stats() const {
  CaptureStats merged;
  for (const auto& shard : shards_) merged += shard->stats.snapshot();
  merged.buffer_pool = packet::default_buffer_pool().stats();
  return merged;
}

CaptureStats ShardedCaptureEngine::shard_stats(std::size_t shard) const {
  return shards_[shard]->stats.snapshot();
}

std::size_t ShardedCaptureEngine::ring_occupancy(
    std::size_t shard) const noexcept {
  return shards_[shard]->ring.size();
}

}  // namespace campuslab::capture

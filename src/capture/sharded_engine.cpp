#include "campuslab/capture/sharded_engine.h"

namespace campuslab::capture {

ShardedCaptureEngine::ShardedCaptureEngine(ShardedCaptureConfig config)
    : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.poll_batch == 0) config_.poll_batch = 1;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i)
    shards_.push_back(std::make_unique<Shard>(config_.ring_capacity));
}

ShardedCaptureEngine::~ShardedCaptureEngine() { stop(); }

void ShardedCaptureEngine::add_sink_factory(const SinkFactory& factory) {
  for (std::size_t i = 0; i < shards_.size(); ++i)
    shards_[i]->sinks.push_back(factory(i));
}

std::size_t ShardedCaptureEngine::shard_of(
    const packet::Packet& pkt) const noexcept {
  if (shards_.size() == 1) return 0;
  const packet::PacketView view(pkt);
  if (!view.valid() || !view.is_ipv4()) return 0;
  const auto tuple = view.five_tuple();
  if (!tuple) return 0;
  // Bidirectional key: both directions of a conversation must land on
  // the same shard, or flow metering would split every conversation.
  return static_cast<std::size_t>(tuple->bidirectional().hash()) %
         shards_.size();
}

bool ShardedCaptureEngine::offer(const packet::Packet& pkt,
                                 sim::Direction dir) {
  packet::Packet copy = pkt;
  return offer(std::move(copy), dir);
}

bool ShardedCaptureEngine::offer(packet::Packet&& pkt, sim::Direction dir) {
  Shard& shard = *shards_[shard_of(pkt)];
  const auto size = pkt.size();
  shard.stats.record_offer(size);
  if (!shard.ring.try_push(TaggedPacket{std::move(pkt), dir})) {
    shard.stats.record_drop(size);
    return false;
  }
  shard.stats.record_accept();
  return true;
}

std::size_t ShardedCaptureEngine::consume_batch(Shard& shard,
                                                std::size_t max_batch) {
  std::size_t consumed = 0;
  TaggedPacket tagged;
  while (consumed < max_batch && shard.ring.try_pop(tagged)) {
    for (const auto& sink : shard.sinks) sink(tagged);
    ++consumed;
  }
  if (consumed > 0) shard.stats.record_consumed(consumed);
  return consumed;
}

void ShardedCaptureEngine::worker_loop(Shard& shard) {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    if (consume_batch(shard, config_.poll_batch) == 0)
      std::this_thread::yield();
  }
  // Drain-on-shutdown: the producer has stopped offering by the time
  // stop() is called, so one final sweep to empty loses nothing.
  while (consume_batch(shard, config_.poll_batch) > 0) {
  }
}

void ShardedCaptureEngine::start() {
  if (running_) return;
  stop_requested_.store(false, std::memory_order_release);
  for (auto& shard : shards_)
    shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
  running_ = true;
}

void ShardedCaptureEngine::stop() {
  if (!running_) return;
  stop_requested_.store(true, std::memory_order_release);
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
  running_ = false;
}

std::size_t ShardedCaptureEngine::poll_shard(std::size_t shard,
                                             std::size_t max_batch) {
  return consume_batch(*shards_[shard], max_batch);
}

std::size_t ShardedCaptureEngine::drain() {
  std::size_t total = 0;
  for (auto& shard : shards_)
    while (const auto n = consume_batch(*shard, 1024)) total += n;
  return total;
}

CaptureStats ShardedCaptureEngine::stats() const noexcept {
  CaptureStats merged;
  for (const auto& shard : shards_) merged += shard->stats.snapshot();
  return merged;
}

CaptureStats ShardedCaptureEngine::shard_stats(
    std::size_t shard) const noexcept {
  return shards_[shard]->stats.snapshot();
}

std::size_t ShardedCaptureEngine::ring_occupancy(
    std::size_t shard) const noexcept {
  return shards_[shard]->ring.size();
}

}  // namespace campuslab::capture

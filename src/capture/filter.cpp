#include "campuslab/capture/filter.h"

#include <cctype>
#include <optional>
#include <vector>

namespace campuslab::capture {

using packet::Ipv4Address;
using packet::PacketView;

// ----------------------------------------------------------------- AST

struct FilterExpr::Node {
  enum class Kind {
    kAnd,
    kOr,
    kNot,
    kProto,   // value = IpProto number; 0 = any IPv4
    kPort,    // value = port, dir
    kHost,    // addr, dir
    kNet,     // addr, prefix_len, dir
    kLess,    // value = frame bytes
    kGreater,
    kDns,
    kSyn,
  };
  enum class Dir { kEither, kSrc, kDst };

  Kind kind;
  Dir dir = Dir::kEither;
  std::uint32_t value = 0;
  Ipv4Address addr{};
  int prefix_len = 0;
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;
};

namespace {

using Node = FilterExpr::Node;
using Kind = Node::Kind;
using Dir = Node::Dir;

bool eval(const Node& node, const PacketView& view) {
  switch (node.kind) {
    case Kind::kAnd:
      return eval(*node.left, view) && eval(*node.right, view);
    case Kind::kOr:
      return eval(*node.left, view) || eval(*node.right, view);
    case Kind::kNot:
      return !eval(*node.left, view);
    case Kind::kLess:
      return view.frame_size() <= node.value;
    case Kind::kGreater:
      return view.frame_size() >= node.value;
    default:
      break;
  }
  // Everything below needs a parsed IPv4 layer.
  if (!view.valid() || !view.is_ipv4()) return false;
  const auto tuple = view.five_tuple();
  switch (node.kind) {
    case Kind::kProto:
      return node.value == 0 || view.ipv4().protocol == node.value;
    case Kind::kPort: {
      if (!tuple) return false;
      const bool src = tuple->src_port == node.value;
      const bool dst = tuple->dst_port == node.value;
      return node.dir == Dir::kSrc ? src
             : node.dir == Dir::kDst ? dst
                                     : (src || dst);
    }
    case Kind::kHost: {
      const bool src = view.ipv4().src == node.addr;
      const bool dst = view.ipv4().dst == node.addr;
      return node.dir == Dir::kSrc ? src
             : node.dir == Dir::kDst ? dst
                                     : (src || dst);
    }
    case Kind::kNet: {
      const bool src = view.ipv4().src.in_prefix(node.addr,
                                                 node.prefix_len);
      const bool dst = view.ipv4().dst.in_prefix(node.addr,
                                                 node.prefix_len);
      return node.dir == Dir::kSrc ? src
             : node.dir == Dir::kDst ? dst
                                     : (src || dst);
    }
    case Kind::kDns:
      return view.is_dns();
    case Kind::kSyn:
      return view.is_tcp() && view.tcp().syn() && !view.tcp().ack_flag();
    default:
      return false;
  }
}

// ---------------------------------------------------------------- Parser

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<std::shared_ptr<const Node>> parse() {
    auto expr = parse_or();
    if (!expr.ok()) return expr;
    skip_ws();
    if (pos_ != text_.size())
      return fail("unexpected trailing input");
    return expr;
  }

 private:
  Error make_error(const std::string& what) const {
    return Error::make("filter_syntax",
                       what + " at position " + std::to_string(pos_) +
                           " in '" + text_ + "'");
  }
  Result<std::shared_ptr<const Node>> fail(const std::string& what) const {
    return make_error(what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  /// Peek the next word without consuming.
  std::string peek_word() {
    skip_ws();
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '.' || text_[end] == '/'))
      ++end;
    return text_.substr(pos_, end - pos_);
  }

  bool consume_word(const std::string& word) {
    if (peek_word() != word) return false;
    skip_ws();
    pos_ += word.size();
    return true;
  }

  std::optional<std::uint32_t> consume_number() {
    const auto word = peek_word();
    if (word.empty()) return std::nullopt;
    std::uint64_t value = 0;
    for (const char c : word) {
      if (!std::isdigit(static_cast<unsigned char>(c)))
        return std::nullopt;
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
      if (value > 0xFFFFFFFFULL) return std::nullopt;
    }
    skip_ws();
    pos_ += word.size();
    return static_cast<std::uint32_t>(value);
  }

  Result<std::shared_ptr<const Node>> parse_or() {
    auto left = parse_and();
    if (!left.ok()) return left;
    while (consume_word("or")) {
      auto right = parse_and();
      if (!right.ok()) return right;
      auto node = std::make_shared<Node>();
      node->kind = Kind::kOr;
      node->left = left.value();
      node->right = right.value();
      left = std::shared_ptr<const Node>(std::move(node));
    }
    return left;
  }

  Result<std::shared_ptr<const Node>> parse_and() {
    auto left = parse_unary();
    if (!left.ok()) return left;
    while (consume_word("and")) {
      auto right = parse_unary();
      if (!right.ok()) return right;
      auto node = std::make_shared<Node>();
      node->kind = Kind::kAnd;
      node->left = left.value();
      node->right = right.value();
      left = std::shared_ptr<const Node>(std::move(node));
    }
    return left;
  }

  Result<std::shared_ptr<const Node>> parse_unary() {
    if (consume_word("not")) {
      auto inner = parse_unary();
      if (!inner.ok()) return inner;
      auto node = std::make_shared<Node>();
      node->kind = Kind::kNot;
      node->left = inner.value();
      return std::shared_ptr<const Node>(std::move(node));
    }
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '(') {
      ++pos_;
      auto inner = parse_or();
      if (!inner.ok()) return inner;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ')')
        return fail("expected ')'");
      ++pos_;
      return inner;
    }
    return parse_predicate();
  }

  Result<std::shared_ptr<const Node>> parse_predicate() {
    auto node = std::make_shared<Node>();

    // Optional direction qualifier.
    Dir dir = Dir::kEither;
    if (consume_word("src")) dir = Dir::kSrc;
    else if (consume_word("dst")) dir = Dir::kDst;
    node->dir = dir;

    if (consume_word("port")) {
      const auto number = consume_number();
      if (!number) return fail("expected port number");
      if (*number > 65535) return fail("port out of range");
      node->kind = Kind::kPort;
      node->value = *number;
      return std::shared_ptr<const Node>(std::move(node));
    }
    if (consume_word("host")) {
      const auto word = peek_word();
      const auto addr = Ipv4Address::parse(word);
      if (!addr) return fail("expected IPv4 address");
      skip_ws();
      pos_ += word.size();
      node->kind = Kind::kHost;
      node->addr = *addr;
      return std::shared_ptr<const Node>(std::move(node));
    }
    if (consume_word("net")) {
      const auto word = peek_word();
      const auto slash = word.find('/');
      if (slash == std::string::npos)
        return fail("expected addr/len network");
      const auto addr = Ipv4Address::parse(word.substr(0, slash));
      if (!addr) return fail("expected IPv4 network address");
      int len = 0;
      const auto len_text = word.substr(slash + 1);
      if (len_text.empty() || len_text.size() > 2)
        return fail("expected prefix length");
      for (const char c : len_text) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
          return fail("expected prefix length");
        len = len * 10 + (c - '0');
      }
      if (len > 32) return fail("prefix length out of range");
      skip_ws();
      pos_ += word.size();
      node->kind = Kind::kNet;
      node->addr = *addr;
      node->prefix_len = len;
      return std::shared_ptr<const Node>(std::move(node));
    }
    if (dir != Dir::kEither)
      return fail("expected 'port', 'host' or 'net' after direction");

    if (consume_word("tcp")) {
      node->kind = Kind::kProto;
      node->value = 6;
      return std::shared_ptr<const Node>(std::move(node));
    }
    if (consume_word("udp")) {
      node->kind = Kind::kProto;
      node->value = 17;
      return std::shared_ptr<const Node>(std::move(node));
    }
    if (consume_word("icmp")) {
      node->kind = Kind::kProto;
      node->value = 1;
      return std::shared_ptr<const Node>(std::move(node));
    }
    if (consume_word("ip")) {
      node->kind = Kind::kProto;
      node->value = 0;
      return std::shared_ptr<const Node>(std::move(node));
    }
    if (consume_word("dns")) {
      node->kind = Kind::kDns;
      return std::shared_ptr<const Node>(std::move(node));
    }
    if (consume_word("syn")) {
      node->kind = Kind::kSyn;
      return std::shared_ptr<const Node>(std::move(node));
    }
    if (consume_word("less")) {
      const auto number = consume_number();
      if (!number) return fail("expected byte count");
      node->kind = Kind::kLess;
      node->value = *number;
      return std::shared_ptr<const Node>(std::move(node));
    }
    if (consume_word("greater")) {
      const auto number = consume_number();
      if (!number) return fail("expected byte count");
      node->kind = Kind::kGreater;
      node->value = *number;
      return std::shared_ptr<const Node>(std::move(node));
    }
    return fail("expected a predicate");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<FilterExpr> FilterExpr::parse(const std::string& text) {
  Parser parser(text);
  auto root = parser.parse();
  if (!root.ok()) return root.error();
  return FilterExpr(std::move(root).value(), text);
}

bool FilterExpr::matches(const PacketView& view) const {
  return eval(*root_, view);
}

}  // namespace campuslab::capture

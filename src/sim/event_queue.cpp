#include "campuslab/sim/event_queue.h"

#include <utility>

namespace campuslab::sim {

void EventQueue::schedule_at(Timestamp at, Handler fn) {
  if (at < now_) at = now_;
  heap_.push(Entry{at, next_seq_++, std::move(fn)});
}

bool EventQueue::run_one() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the handler must be moved out before
  // pop, so copy the cheap fields and move the function via const_cast —
  // contained objects are never const-qualified in the underlying vector.
  auto& top = const_cast<Entry&>(heap_.top());
  Handler fn = std::move(top.fn);
  now_ = top.at;
  heap_.pop();
  fn();
  return true;
}

std::size_t EventQueue::run_until(Timestamp end) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.top().at <= end) {
    run_one();
    ++executed;
  }
  if (now_ < end) now_ = end;
  return executed;
}

std::size_t EventQueue::run_all() {
  std::size_t executed = 0;
  while (run_one()) ++executed;
  return executed;
}

}  // namespace campuslab::sim

#include "campuslab/sim/link.h"

#include <cassert>

namespace campuslab::sim {

Link::Link(double rate_bps, Duration propagation, std::size_t queue_bytes)
    : rate_bps_(rate_bps), propagation_(propagation),
      queue_bytes_(queue_bytes) {
  assert(rate_bps > 0.0);
}

std::optional<Timestamp> Link::transmit(std::size_t frame_bytes,
                                        Timestamp now) {
  // The frame currently serializing does not occupy buffer space; admit
  // a new frame while the waiting backlog is within capacity.
  const std::size_t backlog = backlog_bytes(now);
  if (backlog > queue_bytes_) {
    ++stats_.frames_dropped;
    stats_.bytes_dropped += frame_bytes;
    return std::nullopt;
  }
  const Timestamp start = busy_until_ > now ? busy_until_ : now;
  const Timestamp done = start + serialization_time(frame_bytes);
  busy_until_ = done;
  ++stats_.frames_forwarded;
  stats_.bytes_forwarded += frame_bytes;
  return done + propagation_ + extra_delay_;
}

std::size_t Link::backlog_bytes(Timestamp now) const noexcept {
  if (busy_until_ <= now) return 0;
  const Duration wait = busy_until_ - now;
  return static_cast<std::size_t>(wait.to_seconds() * rate_bps_ / 8.0);
}

Duration Link::queuing_delay(Timestamp now) const noexcept {
  return busy_until_ > now ? busy_until_ - now : Duration{};
}

}  // namespace campuslab::sim

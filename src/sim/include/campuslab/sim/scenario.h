// Composable scenario DSL: an attack is behavior × intensity × timing
// × victim set.
//
// The five legacy attack classes were closed one-off structs; this layer
// replaces them with an open algebra:
//
//   behavior   — a parameterized emitter (DNS amplification with
//                reflector churn, SYN flood with spoof-pool shapes,
//                sweep/horizontal/vertical/stealth port scans, a
//                stateful self-propagating worm, low-and-slow
//                exfiltration, flash crowds)
//   intensity  — an envelope over the phase window (constant, ramp,
//                square-wave burst, diurnal-modulated)
//   timing     — phase windows composed sequentially (`then`),
//                overlapping (`alongside`) or offset from a trigger
//                (`triggered`)
//   victim set — a selector over the topology (single host, role
//                filter, random-k, worm-reachable surface)
//
// A Scenario is a value: a list of AttackPhases assembled by the
// ref-qualified fluent ScenarioBuilder,
//
//   Scenario s = Scenario::attack(BehaviorKind::kSynFlood)
//                    .intensity(IntensityEnvelope::ramp(100, 5000))
//                    .during(Timestamp::from_seconds(10),
//                            Timestamp::from_seconds(70))
//                    .against(victims().role(HostRole::kWebServer))
//                    .with_seed(7);
//
// and CampusSimulator arms it directly. Every emitted frame carries its
// ground-truth TrafficLabel plus the arming scenario-instance id, so
// datasets stay labeled for free and evaluation can be broken down per
// scenario. Emission is seed-deterministic: the same scenario + seed
// reproduces a byte-identical frame stream.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "campuslab/sim/campus.h"
#include "campuslab/util/result.h"

namespace campuslab::sim {

// ---------------------------------------------------------------------------
// Behaviors

enum class BehaviorKind : std::uint8_t {
  kDnsAmplification = 0,
  kSynFlood = 1,
  kPortScan = 2,
  kSshBruteForce = 3,
  kFlashCrowd = 4,  // benign but attack-shaped (collateral-damage probe)
  kWorm = 5,
  kExfiltration = 6,
};
inline constexpr std::size_t kBehaviorKindCount = 7;

std::string_view to_string(BehaviorKind kind) noexcept;

/// DNS amplification / reflection flood (paper §2 running example).
struct DnsAmplificationShape {
  std::size_t response_bytes = 3000;  // DNS payload size per response
  int reflectors = 400;               // live open-resolver pool size
  /// Reflectors entering/leaving the pool per second (0 = static pool,
  /// the legacy behavior). Churn widens the observed source set.
  double reflector_churn_per_s = 0.0;
  /// Spread of the response-size family as a fraction of response_bytes.
  /// 0 keeps the legacy 5-point family {0.55, 0.75, 1.0, 1.2, 1.45}.
  double payload_spread = 0.0;
};

/// Spoofed-source SYN flood against a campus server.
struct SynFloodShape {
  std::uint16_t target_port = 443;
  /// 0 = fully random spoofing from the public space (legacy). > 0 = a
  /// botnet of this many fixed sources, the other classic flood shape.
  int spoof_pool = 0;
};

enum class ScanStyle : std::uint8_t {
  kSweep,       // host-major walk over hosts × top ports (legacy shape)
  kHorizontal,  // one port across every victim host
  kVertical,    // every port against few hosts
  kStealth,     // randomized FIN probes, no responses elicited
};

struct PortScanShape {
  ScanStyle style = ScanStyle::kSweep;
  int ports_per_host = 12;             // sweep/vertical port budget
  std::uint16_t horizontal_port = 22;  // the port a horizontal scan hits
  /// Fraction of probes that hit something that answers (sweep /
  /// horizontal / vertical; stealth probes never elicit answers).
  double responder_fraction = 0.2;
};

/// Repeated SSH login attempts against the bastion.
struct SshBruteForceShape {};

/// Benign flash crowd — not an attack, but the attack-shaped event that
/// stress-tests mitigation safety: labels stay kBenign, so any
/// mitigation that sheds it is measurable collateral damage.
struct FlashCrowdShape {
  std::size_t payload_bytes = 1200;
  int sources = 40;  // CDN edge nodes serving the event
};

/// Self-propagating worm: external bots scan the campus service port;
/// a successful exploit of a susceptible host starts an incubation
/// timer, after which the host turns Spreading and scans outward
/// itself (per-host Susceptible → Incubating → Spreading machines).
struct WormShape {
  std::uint16_t service_port = 445;
  double infect_probability = 0.4;  // per probe of a susceptible host
  Duration incubation = Duration::seconds(2);
  int initial_bots = 4;             // infected external population at t0
  std::size_t exploit_bytes = 360;  // exploit payload on infection
  /// Chance an outbound probe from a spreading campus host recruits a
  /// fresh external bot (spread beyond the border grows the botnet).
  double external_hit_fraction = 0.25;
  int max_external_bots = 4096;
};

/// Low-and-slow exfiltration: a compromised campus host beacons to an
/// external C2 on a jittered period; every chunk_every-th beacon rides
/// a data chunk out.
struct ExfiltrationShape {
  double beacon_jitter = 0.3;     // ± fraction on the beacon period
  std::size_t beacon_bytes = 96;  // heartbeat payload
  std::size_t chunk_bytes = 900;  // data chunk payload
  int chunk_every = 4;            // beacons per data chunk
  std::uint16_t c2_port = 443;
};

using BehaviorShape =
    std::variant<DnsAmplificationShape, SynFloodShape, PortScanShape,
                 SshBruteForceShape, FlashCrowdShape, WormShape,
                 ExfiltrationShape>;

// ---------------------------------------------------------------------------
// Intensity envelopes

/// Instantaneous emission rate over a phase window, in packets (or
/// events) per second. Envelopes are pure values; `rate_at` evaluates
/// the curve at a point in the window.
class IntensityEnvelope {
 public:
  enum class Kind : std::uint8_t { kConstant, kRamp, kSquareWave, kDiurnal };

  /// Legacy-equivalent flat rate.
  static IntensityEnvelope constant(double pps) noexcept;
  /// Linear ramp from `from_pps` at phase start to `to_pps` at phase end.
  static IntensityEnvelope ramp(double from_pps, double to_pps) noexcept;
  /// Bursts of `on_pps` for `duty`·period, `off_pps` in between.
  static IntensityEnvelope square_wave(double on_pps, Duration period,
                                       double duty = 0.5,
                                       double off_pps = 0.0) noexcept;
  /// `peak_pps` scaled by the campus time-of-day curve. Unlike benign
  /// load, the modulation always applies — it does not depend on
  /// CampusConfig::diurnal — so an attack can follow the day shape even
  /// in a flat-load sim.
  static IntensityEnvelope diurnal(double peak_pps) noexcept;

  Kind kind() const noexcept { return kind_; }
  /// Highest rate the envelope can reach (for capacity reasoning).
  double peak() const noexcept;

  /// Error code "scenario_bad_intensity" on non-positive / non-finite
  /// rates, periods or duty cycles outside (0, 1].
  Status validate() const;

  /// Rate at `now` for a phase spanning [start, start + window].
  double rate_at(Timestamp now, Timestamp start, Duration window,
                 const CampusConfig& campus) const noexcept;

  /// Earliest offset ≥ `elapsed` (from phase start) with nonzero rate;
  /// nullopt when the envelope never reactivates (rate_at stays 0).
  std::optional<Duration> next_active(Duration elapsed) const noexcept;

 private:
  Kind kind_ = Kind::kConstant;
  double a_ = 0.0;  // constant rate / ramp start / on rate / peak
  double b_ = 0.0;  // ramp end / off rate
  Duration period_{};
  double duty_ = 0.5;
};

// ---------------------------------------------------------------------------
// Victim-set selectors

/// A declarative victim set over the topology, resolved when the phase
/// is armed. Resolution is strict: an empty result or an out-of-range
/// index is an error with code "scenario_bad_victim" — never a silent
/// clamp (the legacy FlashCrowdConfig::client_index footgun).
class VictimSelector {
 public:
  /// Default base set: every campus host, clients before servers (the
  /// order the legacy sweep scan walked).
  VictimSelector() = default;

  /// Keep only hosts with role `r`.
  VictimSelector role(HostRole r) const;
  /// Sample `k` distinct hosts from the selected set (seeded by the
  /// phase seed, so the draw replays).
  VictimSelector pick(std::size_t k) const;
  /// Exactly the host owning `ip` (error when no campus host has it).
  VictimSelector host(packet::Ipv4Address ip) const;
  /// Exactly clients()[i] (error when i is out of range).
  VictimSelector client_index(std::size_t i) const;
  /// The first campus client (the legacy DNS-amplification default).
  VictimSelector first_client() const;
  /// The worm-susceptible surface: client hosts plus the storage
  /// server (hosts plausibly running the vulnerable service).
  VictimSelector worm_reachable() const;

  /// Resolve against a topology. `rng` drives pick(); selectors without
  /// pick() consume no randomness.
  Result<std::vector<Host>> resolve(const Topology& topology,
                                    Rng& rng) const;

 private:
  enum class Base : std::uint8_t {
    kAllHosts,
    kFirstClient,
    kClientIndex,
    kAddress,
    kWormSurface,
  };

  Base base_ = Base::kAllHosts;
  std::optional<HostRole> role_{};
  std::optional<std::size_t> pick_{};
  std::size_t client_index_ = 0;
  packet::Ipv4Address address_{};
};

/// Entry point for selector chains: `victims().role(...).pick(3)`.
inline VictimSelector victims() { return VictimSelector{}; }

// ---------------------------------------------------------------------------
// Phases and scenarios

/// One armed behavior over one time window. Usually built through
/// ScenarioBuilder rather than by hand.
struct AttackPhase {
  BehaviorKind kind = BehaviorKind::kDnsAmplification;
  BehaviorShape shape{DnsAmplificationShape{}};
  IntensityEnvelope intensity;  // defaulted per kind by the builder
  Timestamp start;
  Duration duration{};          // defaulted per kind by the builder
  VictimSelector victim_set;
  /// Explicit emission seed; unset phases get a deterministic seed from
  /// the simulator (campus.seed + a per-arming salt).
  std::optional<std::uint64_t> seed{};
  std::string name;  // defaults to to_string(kind)
};

class ScenarioBuilder;

/// A scenario value: an ordered list of phases. Compose with `then`
/// (sequential: the continuation starts when this scenario ends),
/// `alongside` (overlapping: both phase lists merge unshifted) and
/// `triggered` (the continuation starts a fixed delay after this
/// scenario begins).
class Scenario {
 public:
  Scenario() = default;

  /// Start a fluent phase definition.
  static ScenarioBuilder attack(BehaviorKind kind);

  const std::vector<AttackPhase>& phases() const noexcept {
    return phases_;
  }
  bool empty() const noexcept { return phases_.empty(); }

  /// Earliest phase start (epoch when empty).
  Timestamp begin() const noexcept;
  /// Latest phase end (epoch when empty).
  Timestamp end() const noexcept;

  /// Sequential composition: `next` shifted so its earliest phase
  /// starts at this scenario's end.
  Scenario then(Scenario next) const;
  /// Overlapping composition: phases merged with their own timing.
  Scenario alongside(Scenario other) const;
  /// Triggered composition: `next` shifted to start `delay` after this
  /// scenario's begin (e.g. exfil triggered 30s into a worm outbreak).
  Scenario triggered(Scenario next, Duration delay) const;

  std::string name;

 private:
  friend class ScenarioBuilder;
  std::vector<AttackPhase> phases_;
};

/// Fluent, const-correct single-phase builder. Every mutator is
/// ref-qualified: `&` chains on lvalues, `&&` moves through temporaries,
/// so `Scenario::attack(k).rate(100).lasting(…)` never copies the
/// accumulated state. Implicitly converts to Scenario.
class ScenarioBuilder {
 public:
  explicit ScenarioBuilder(BehaviorKind kind);

  ScenarioBuilder& intensity(IntensityEnvelope envelope) &;
  ScenarioBuilder&& intensity(IntensityEnvelope envelope) &&;
  /// Shorthand for intensity(IntensityEnvelope::constant(pps)).
  ScenarioBuilder& rate(double pps) &;
  ScenarioBuilder&& rate(double pps) &&;

  ScenarioBuilder& starting_at(Timestamp t) &;
  ScenarioBuilder&& starting_at(Timestamp t) &&;
  ScenarioBuilder& lasting(Duration d) &;
  ScenarioBuilder&& lasting(Duration d) &&;
  /// Window [t0, t1): equivalent to starting_at(t0).lasting(t1 - t0).
  ScenarioBuilder& during(Timestamp t0, Timestamp t1) &;
  ScenarioBuilder&& during(Timestamp t0, Timestamp t1) &&;

  ScenarioBuilder& against(VictimSelector selector) &;
  ScenarioBuilder&& against(VictimSelector selector) &&;

  /// Replace the behavior parameters. The shape must match the phase's
  /// kind when armed (error code "scenario_shape_mismatch").
  ScenarioBuilder& with(BehaviorShape shape) &;
  ScenarioBuilder&& with(BehaviorShape shape) &&;

  ScenarioBuilder& with_seed(std::uint64_t seed) &;
  ScenarioBuilder&& with_seed(std::uint64_t seed) &&;
  ScenarioBuilder& named(std::string phase_name) &;
  ScenarioBuilder&& named(std::string phase_name) &&;

  Scenario build() const&;
  Scenario build() &&;
  operator Scenario() const& { return build(); }  // NOLINT
  operator Scenario() && { return std::move(*this).build(); }  // NOLINT

 private:
  AttackPhase phase_;
};

// ---------------------------------------------------------------------------
// Emitters

/// Identity of one armed phase, assigned by the simulator.
struct EmitContext {
  std::uint64_t seed = 0;
  std::uint32_t scenario_id = 0;  // stamped onto every emitted frame
};

/// One campus-host infection event in a worm outbreak.
struct WormInfection {
  std::uint32_t host_id = 0;  // the newly infected campus host
  Timestamp at;
  /// Id of the infecting source: campus host id, or 0 for one of the
  /// external bots (the campus view cannot tell external bots apart).
  std::uint32_t source_host_id = 0;
};

/// Uniform emission interface. start() validates the phase and arms
/// its emission events on `net`'s queue; it returns an error Status —
/// never a silently clamped config — with stable codes:
///
///   scenario_bad_victim     empty/out-of-range victim set
///   scenario_empty_window   non-positive phase duration
///   scenario_bad_intensity  non-positive or malformed envelope
///   scenario_shape_mismatch shape variant does not match the kind
///
/// The emitter must outlive the event queue's run (the scheduled
/// closures reference it), which the simulator guarantees by owning
/// armed emitters for its lifetime.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual Status start(CampusNetwork& net, const EmitContext& ctx) = 0;
  virtual std::uint64_t packets_emitted() const noexcept = 0;
  virtual packet::TrafficLabel label() const noexcept = 0;
  virtual BehaviorKind kind() const noexcept = 0;
  /// Worm emitters expose their infection chain; empty elsewhere.
  virtual std::span<const WormInfection> infections() const noexcept {
    return {};
  }
};

/// Instantiate the emitter for a phase (registry dispatch on kind).
std::unique_ptr<Emitter> make_emitter(const AttackPhase& phase);

// ---------------------------------------------------------------------------
// Behavior registry

/// Static description of one behavior kind: its label, legacy-faithful
/// defaults, and emitter factory. ScenarioBuilder pulls defaults from
/// here; the simulator dispatches arming through `make`.
struct ScenarioSpec {
  BehaviorKind kind;
  std::string_view name;
  packet::TrafficLabel label;
  double default_rate_pps;
  Duration default_duration;
  BehaviorShape (*default_shape)();
  VictimSelector (*default_victims)();
  std::unique_ptr<Emitter> (*make)(const AttackPhase&);
};

/// Spec for one kind. Total: every BehaviorKind has a spec.
const ScenarioSpec& scenario_spec(BehaviorKind kind) noexcept;
/// All specs, indexed by kind.
std::span<const ScenarioSpec> scenario_specs() noexcept;

}  // namespace campuslab::sim

// Link — a rate-limited, delay-and-queue model of one direction of a
// physical link (the campus upstream, in our topology).
//
// The transmitter serializes frames at `rate_bps`; frames arriving while
// it is busy wait in a byte-bounded FIFO (modelled analytically via the
// busy-until horizon), and frames that would overflow the buffer are
// tail-dropped. This is what turns an attack from "more packets" into
// real collateral damage: benign packets queue behind and drown in the
// flood, exactly the harm the mitigation loop is meant to remove.
#pragma once

#include <cstdint>
#include <optional>

#include "campuslab/util/time.h"

namespace campuslab::sim {

struct LinkStats {
  std::uint64_t frames_forwarded = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t bytes_forwarded = 0;
  std::uint64_t bytes_dropped = 0;

  double drop_rate() const noexcept {
    const auto total = frames_forwarded + frames_dropped;
    return total == 0 ? 0.0
                      : static_cast<double>(frames_dropped) /
                            static_cast<double>(total);
  }
};

class Link {
 public:
  /// rate_bps: serialization rate in bits/second (> 0).
  /// propagation: one-way latency added after serialization.
  /// queue_bytes: transmit buffer; 0 means drop anything that must wait.
  Link(double rate_bps, Duration propagation, std::size_t queue_bytes);

  /// Offer a frame of `frame_bytes` at time `now`. Returns the delivery
  /// timestamp at the far end, or nullopt if the frame was tail-dropped.
  std::optional<Timestamp> transmit(std::size_t frame_bytes, Timestamp now);

  /// Bytes currently waiting or in serialization at time `now`.
  std::size_t backlog_bytes(Timestamp now) const noexcept;

  /// Queueing + serialization delay a frame offered at `now` would see.
  Duration queuing_delay(Timestamp now) const noexcept;

  const LinkStats& stats() const noexcept { return stats_; }
  double rate_bps() const noexcept { return rate_bps_; }
  Duration propagation() const noexcept { return propagation_; }

  /// Add/remove extra propagation delay (e.g. to emulate an upstream
  /// provider problem in the performance-diagnosis scenario).
  void set_extra_delay(Duration d) noexcept { extra_delay_ = d; }
  Duration extra_delay() const noexcept { return extra_delay_; }

  void reset_stats() noexcept { stats_ = LinkStats{}; }

 private:
  Duration serialization_time(std::size_t bytes) const noexcept {
    return Duration::nanos(static_cast<std::int64_t>(
        static_cast<double>(bytes) * 8.0 / rate_bps_ * 1e9));
  }

  double rate_bps_;
  Duration propagation_;
  Duration extra_delay_{};
  std::size_t queue_bytes_;
  Timestamp busy_until_{};
  LinkStats stats_;
};

}  // namespace campuslab::sim

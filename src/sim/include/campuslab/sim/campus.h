// CampusNetwork — the border of the simulated campus.
//
// Every simulated packet crosses the campus border exactly once, in one
// of two directions. The border is where the paper's whole proposal
// lives: the capture tap that feeds the data store sits on the upstream
// wire, and the deployable model's mitigation filter runs at ingress
// ("drop attack traffic on ingress if confidence ... at least 90%").
//
// Inbound path:  internet --[upstream link]--> TAP --> INGRESS FILTER
//                 --> (client subnets via access link | server DMZ)
// Outbound path: campus --[upstream link]--> TAP --> internet
//
// The tap observes everything that survives the upstream wire (a flood
// that overflows the provider-side queue is lost before any local
// equipment can see it — faithfully modelling why upstream saturation
// cannot be fixed at the campus border). Per-label delivery accounting
// at each stage is the ground truth that road-test reports are scored
// against.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "campuslab/packet/view.h"
#include "campuslab/sim/event_queue.h"
#include "campuslab/sim/link.h"
#include "campuslab/sim/topology.h"
#include "campuslab/util/rng.h"

namespace campuslab::sim {

enum class Direction : std::uint8_t { kInbound, kOutbound };

/// Per-label frame/byte counters for one pipeline stage.
struct StageCounters {
  std::array<std::uint64_t, packet::kTrafficLabelCount> frames{};
  std::array<std::uint64_t, packet::kTrafficLabelCount> bytes{};

  void count(const packet::Packet& p) noexcept {
    const auto i = static_cast<std::size_t>(p.label);
    ++frames[i];
    bytes[i] += p.size();
  }
  std::uint64_t total_frames() const noexcept {
    std::uint64_t t = 0;
    for (auto f : frames) t += f;
    return t;
  }
  std::uint64_t attack_frames() const noexcept {
    return total_frames() - frames[0];
  }
  std::uint64_t benign_frames() const noexcept { return frames[0]; }
};

/// End-to-end accounting across the inbound pipeline stages.
struct DeliveryAccounting {
  StageCounters offered_in;       // injected toward the campus
  StageCounters lost_upstream;    // dropped in the provider-side queue
  StageCounters tapped_in;        // seen by the capture tap (inbound)
  StageCounters filtered;         // dropped by the deployed ingress filter
  StageCounters lost_access;      // dropped on the internal access link
  StageCounters delivered;        // reached the campus destination
  StageCounters offered_out;      // injected toward the internet
  StageCounters delivered_out;    // made it onto the upstream wire
};

/// Frame/byte fates for one scenario instance (frames stamped with a
/// nonzero scenario_id). Direction-agnostic: "delivered" means the
/// frame reached its destination side of the border.
struct ScenarioCounters {
  std::uint64_t offered = 0;
  std::uint64_t tapped = 0;
  std::uint64_t filtered = 0;
  std::uint64_t lost = 0;       // upstream / egress / access-link drops
  std::uint64_t delivered = 0;
  std::uint64_t bytes_offered = 0;
};

class CampusNetwork {
 public:
  /// Tap callback: every packet on the border wire, with its direction.
  using Tap = std::function<void(const packet::Packet&, Direction)>;
  /// Ingress filter: return true to DROP the packet at the border.
  using IngressFilter = std::function<bool(const packet::Packet&)>;

  CampusNetwork(EventQueue& events, const CampusConfig& config);

  EventQueue& events() noexcept { return *events_; }
  const Topology& topology() const noexcept { return topology_; }
  const CampusConfig& config() const noexcept { return config_; }

  /// Offer a packet to the border at the current simulation time.
  /// Ownership moves into the network; delivery (tap, filter, final
  /// destination) happens via scheduled events.
  void inject(Direction dir, packet::Packet pkt);

  void set_tap(Tap tap) { tap_ = std::move(tap); }
  void set_ingress_filter(IngressFilter f) { filter_ = std::move(f); }
  void clear_ingress_filter() { filter_ = nullptr; }

  const DeliveryAccounting& accounting() const noexcept {
    return accounting_;
  }
  /// Per-scenario-instance fates, keyed by scenario_id (ordered, so
  /// reports iterate deterministically). Frames with scenario_id 0
  /// (background traffic) are not tracked here.
  const std::map<std::uint32_t, ScenarioCounters>& scenario_accounting()
      const noexcept {
    return scenario_accounting_;
  }
  const Link& upstream_in() const noexcept { return upstream_in_; }
  const Link& upstream_out() const noexcept { return upstream_out_; }
  const Link& client_access() const noexcept { return client_access_; }

  /// Emulate an upstream-provider problem (performance diagnosis
  /// scenario): extra one-way delay on the inbound wire.
  void set_upstream_extra_delay(Duration d) {
    upstream_in_.set_extra_delay(d);
  }

  /// Load multiplier in [~0.2, 1] for the time of day at `t`
  /// (peaks mid-afternoon); 1.0 when the config disables diurnal shape.
  double diurnal_factor(Timestamp t) const noexcept;

 private:
  void deliver_inbound(packet::Packet pkt);
  ScenarioCounters* scenario_slot(const packet::Packet& pkt) {
    if (pkt.scenario_id == 0) return nullptr;
    return &scenario_accounting_[pkt.scenario_id];
  }

  EventQueue* events_;
  CampusConfig config_;
  Topology topology_;
  Link upstream_in_;
  Link upstream_out_;
  Link client_access_;
  Tap tap_;
  IngressFilter filter_;
  DeliveryAccounting accounting_;
  std::map<std::uint32_t, ScenarioCounters> scenario_accounting_;
};

}  // namespace campuslab::sim

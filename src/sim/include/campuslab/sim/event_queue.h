// Discrete-event simulation core.
//
// A single-threaded calendar queue: events fire in timestamp order, ties
// broken by insertion order so runs are exactly reproducible. All of
// CampusLab's virtual world — traffic sessions, link deliveries, flow
// timeouts, control-loop windows — runs on one EventQueue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "campuslab/util/time.h"

namespace campuslab::sim {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  Timestamp now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `at`. Events scheduled in the past
  /// fire "immediately" (at current time, after already-pending events
  /// for that time).
  void schedule_at(Timestamp at, Handler fn);

  /// Schedule `fn` after a relative delay from now.
  void schedule_in(Duration delay, Handler fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Pop and run the earliest event. Returns false when empty.
  bool run_one();

  /// Run all events with timestamp <= `end`; afterwards now() == end
  /// (even if the queue drained early). Returns events executed.
  std::size_t run_until(Timestamp end);

  /// Drain the queue completely. Returns events executed.
  std::size_t run_all();

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }

 private:
  struct Entry {
    Timestamp at;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;  // FIFO within a timestamp
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  Timestamp now_{};
  std::uint64_t next_seq_ = 0;
};

}  // namespace campuslab::sim

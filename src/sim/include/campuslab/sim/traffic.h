// Application traffic generators — the campus's benign workload.
//
// Sessions arrive per application as Poisson processes (modulated by the
// diurnal curve) and unroll into real wire-format packet exchanges:
// handshakes, requests, paced data transfers with ACK clocking, and
// teardown. Six application families cover the mix the paper attributes
// to a campus ("a range of actual applications and services"):
//
//   web        campus clients fetching from CDNs (outbound-originated)
//   web_in     the Internet fetching from the campus web server
//   video      streaming into campus (the volumetric heavyweight)
//   dns        client lookups to public resolvers + inbound queries to
//              the campus authoritative server
//   ssh        interactive remote sessions through the bastion
//   mail       SMTP in and out of the campus mail server
//   bulk       research-data / backup transfers from the storage server
//
// All generated packets are labelled kBenign; attacks (attacks.h) are
// the only source of other labels.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "campuslab/sim/campus.h"

namespace campuslab::sim {

/// Campus-wide session arrival rates (sessions/second at peak load,
/// before load_scale and diurnal modulation).
struct AppRates {
  double web = 20.0;
  double web_in = 10.0;
  double video = 0.10;
  double dns = 25.0;
  double dns_in = 8.0;
  double ssh = 0.5;
  double mail = 2.0;
  double bulk = 0.05;
};

/// Per-application counters.
struct TrafficStats {
  std::uint64_t sessions = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  /// Packets an injected sim.emit fault suppressed at the source —
  /// chaos runs model flaky senders without touching capture
  /// accounting (a never-sent packet is never offered).
  std::uint64_t faulted_packets = 0;
};

class TrafficGenerator {
 public:
  /// The generator must outlive the event queue run; it schedules
  /// self-renewing arrival events that capture `this`.
  TrafficGenerator(CampusNetwork& net, AppRates rates, std::uint64_t seed);

  /// Arm the arrival processes. Call once, before running the queue.
  void start();

  /// Stop scheduling new sessions (already-scheduled packets still fire).
  void stop() noexcept { stopped_ = true; }

  const TrafficStats& stats(const std::string& app) const;
  std::uint64_t total_packets() const noexcept;

 private:
  struct App {
    std::string name;
    double rate;  // sessions/s at peak
    std::function<void()> spawn;
    Rng rng;
    TrafficStats stats;
  };

  void arm(App& app);
  void emit(Direction dir, packet::Packet pkt, App& app);

  // Session bodies.
  void web_session(App& app);
  void web_inbound_session(App& app);
  void video_session(App& app);
  void dns_session(App& app);
  void dns_inbound_session(App& app);
  void ssh_session(App& app);
  void mail_session(App& app);
  void bulk_session(App& app);

  /// Schedule a paced TCP payload transfer from `sender` to `receiver`,
  /// with ACK clocking in the reverse direction and FIN teardown.
  /// `sender_dir` is the border direction of the sender's packets.
  void transfer(App& app, packet::Endpoint sender, Direction sender_dir,
                packet::Endpoint receiver, std::uint64_t payload_bytes,
                double pace_bps, Duration start_after);

  CampusNetwork* net_;
  AppRates rates_;
  Rng rng_;
  std::array<App, 8> apps_;
  bool stopped_ = false;
};

}  // namespace campuslab::sim

// Campus topology and address plan.
//
// The simulated campus follows the shape the paper sketches: a
// small-to-moderate enterprise with a professional address plan, a
// server DMZ, wired labs/offices and a large WiFi population, connected
// to the Internet through one 10-20 Gbps upstream — the vantage point
// where the paper proposes to capture "every packet that enters or
// leaves the enterprise".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campuslab/packet/addr.h"
#include "campuslab/packet/builder.h"
#include "campuslab/util/rng.h"
#include "campuslab/util/time.h"

namespace campuslab::sim {

/// Host roles drive which traffic mixes a host participates in.
enum class HostRole : std::uint8_t {
  kWiredClient,   // labs, offices
  kWifiClient,    // student WiFi
  kWebServer,     // campus web presence
  kDnsServer,     // campus resolver / authoritative
  kMailServer,
  kSshGateway,    // remote-access bastion
  kStorageServer, // backup / research data
};

struct Host {
  std::uint32_t id = 0;
  HostRole role = HostRole::kWiredClient;
  packet::Endpoint endpoint;  // MAC + IP (port filled per flow)
};

/// Campus sizing and upstream provisioning.
struct CampusConfig {
  std::uint64_t seed = 1;
  int wired_clients = 120;
  int wifi_clients = 300;
  double upstream_gbps = 10.0;          // per direction
  Duration upstream_delay = Duration::millis(8);
  std::size_t upstream_queue_bytes = 3'000'000;  // ~2.4ms at 10G
  double load_scale = 1.0;  // multiplies all session arrival rates
  bool diurnal = true;      // modulate load by time of day
  double day_phase_hours = 10.0;  // sim t=0 corresponds to 10:00
};

/// The address plan + host inventory. All addresses are deterministic
/// functions of (config, host id), so two topologies built from the same
/// config are identical.
class Topology {
 public:
  explicit Topology(const CampusConfig& config);

  /// Campus prefix (10.x.0.0/16, x derived from the seed so distinct
  /// campuses in the reproducibility study get distinct address space).
  packet::Ipv4Address campus_prefix() const noexcept { return prefix_; }
  static constexpr int kCampusPrefixLen = 16;

  bool is_campus(packet::Ipv4Address a) const noexcept {
    return a.in_prefix(prefix_, kCampusPrefixLen);
  }

  const std::vector<Host>& hosts() const noexcept { return hosts_; }
  const std::vector<Host>& servers() const noexcept { return servers_; }
  const Host& web_server() const noexcept { return *web_server_; }
  const Host& dns_server() const noexcept { return *dns_server_; }
  const Host& mail_server() const noexcept { return *mail_server_; }
  const Host& ssh_gateway() const noexcept { return *ssh_gateway_; }
  const Host& storage_server() const noexcept { return *storage_server_; }

  /// All client hosts (wired + wifi).
  const std::vector<Host>& clients() const noexcept { return clients_; }

  /// Uniformly random campus client.
  const Host& random_client(Rng& rng) const;

  /// Deterministic external endpoints for Internet-side services.
  /// `kind` selects a service family (CDN, video, DNS resolver, ...) and
  /// `index` one of several instances.
  static packet::Endpoint external_host(std::uint32_t kind,
                                        std::uint32_t index,
                                        std::uint16_t port);

  /// A plausible spoofed/botnet source address (outside the campus).
  static packet::Ipv4Address random_external_address(Rng& rng);

 private:
  packet::Ipv4Address prefix_;
  std::vector<Host> hosts_;
  std::vector<Host> clients_;
  std::vector<Host> servers_;
  const Host* web_server_ = nullptr;
  const Host* dns_server_ = nullptr;
  const Host* mail_server_ = nullptr;
  const Host* ssh_gateway_ = nullptr;
  const Host* storage_server_ = nullptr;
};

}  // namespace campuslab::sim

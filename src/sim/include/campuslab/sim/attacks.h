// Attack injectors — labelled malicious traffic.
//
// Each injector emits real wire-format packets carrying its ground-truth
// TrafficLabel. The DNS amplification attack is the paper's running
// example (§2): reflectors return large DNS responses (UDP source port
// 53) to a spoofed victim inside the campus, so the campus border sees a
// high-rate inbound flood of large packets from moderately many sources.
#pragma once

#include <cstdint>
#include <vector>

#include "campuslab/sim/campus.h"

namespace campuslab::sim {

/// DNS amplification / reflection flood (paper §2 running example).
struct DnsAmplificationConfig {
  Timestamp start;
  Duration duration = Duration::seconds(60);
  double response_rate_pps = 20'000;  // reflected responses per second
  std::size_t response_bytes = 3000;  // DNS payload size per response
  int reflectors = 400;               // distinct open-resolver addresses
  /// Victim inside the campus; default (unset) picks the first client.
  packet::Ipv4Address victim{};
};

/// Spoofed-source SYN flood against a campus server.
struct SynFloodConfig {
  Timestamp start;
  Duration duration = Duration::seconds(60);
  double syn_rate_pps = 10'000;
  std::uint16_t target_port = 443;  // campus web server by default
};

/// Horizontal/vertical scan of campus address space.
struct PortScanConfig {
  Timestamp start;
  Duration duration = Duration::seconds(120);
  double probe_rate_pps = 300;
  int ports_per_host = 12;
};

/// Repeated SSH login attempts against the bastion.
struct SshBruteForceConfig {
  Timestamp start;
  Duration duration = Duration::seconds(180);
  double attempts_per_second = 8;
};

/// Benign flash crowd — not an attack, but the attack-shaped event that
/// stress-tests mitigation safety (§4 "robustness"): a legitimate
/// high-rate stream (live lecture, exam submission deadline, popular
/// download) toward one campus client. Rate signatures resemble a
/// flood; labels stay kBenign, so any mitigation that sheds it is
/// measurable collateral damage.
struct FlashCrowdConfig {
  Timestamp start;
  Duration duration = Duration::seconds(30);
  double rate_pps = 3000;
  std::size_t payload_bytes = 1200;
  /// Index into topology.clients() for the receiving host.
  std::size_t client_index = 5;
  int sources = 40;  // CDN edge nodes serving the event
};

/// Common interface: arm the injector once; emission is event-driven.
class AttackInjector {
 public:
  virtual ~AttackInjector() = default;
  virtual void start(CampusNetwork& net, std::uint64_t seed) = 0;
  virtual std::uint64_t packets_emitted() const noexcept = 0;
  virtual packet::TrafficLabel label() const noexcept = 0;
};

class DnsAmplificationAttack final : public AttackInjector {
 public:
  explicit DnsAmplificationAttack(DnsAmplificationConfig cfg)
      : cfg_(cfg) {}
  void start(CampusNetwork& net, std::uint64_t seed) override;
  std::uint64_t packets_emitted() const noexcept override {
    return emitted_;
  }
  packet::TrafficLabel label() const noexcept override {
    return packet::TrafficLabel::kDnsAmplification;
  }
  const DnsAmplificationConfig& config() const noexcept { return cfg_; }

 private:
  DnsAmplificationConfig cfg_;
  std::uint64_t emitted_ = 0;
};

class SynFloodAttack final : public AttackInjector {
 public:
  explicit SynFloodAttack(SynFloodConfig cfg) : cfg_(cfg) {}
  void start(CampusNetwork& net, std::uint64_t seed) override;
  std::uint64_t packets_emitted() const noexcept override {
    return emitted_;
  }
  packet::TrafficLabel label() const noexcept override {
    return packet::TrafficLabel::kSynFlood;
  }

 private:
  SynFloodConfig cfg_;
  std::uint64_t emitted_ = 0;
};

class PortScanAttack final : public AttackInjector {
 public:
  explicit PortScanAttack(PortScanConfig cfg) : cfg_(cfg) {}
  void start(CampusNetwork& net, std::uint64_t seed) override;
  std::uint64_t packets_emitted() const noexcept override {
    return emitted_;
  }
  packet::TrafficLabel label() const noexcept override {
    return packet::TrafficLabel::kPortScan;
  }

 private:
  PortScanConfig cfg_;
  std::uint64_t emitted_ = 0;
};

class FlashCrowdEvent final : public AttackInjector {
 public:
  explicit FlashCrowdEvent(FlashCrowdConfig cfg) : cfg_(cfg) {}
  void start(CampusNetwork& net, std::uint64_t seed) override;
  std::uint64_t packets_emitted() const noexcept override {
    return emitted_;
  }
  packet::TrafficLabel label() const noexcept override {
    return packet::TrafficLabel::kBenign;
  }

 private:
  FlashCrowdConfig cfg_;
  std::uint64_t emitted_ = 0;
};

class SshBruteForceAttack final : public AttackInjector {
 public:
  explicit SshBruteForceAttack(SshBruteForceConfig cfg) : cfg_(cfg) {}
  void start(CampusNetwork& net, std::uint64_t seed) override;
  std::uint64_t packets_emitted() const noexcept override {
    return emitted_;
  }
  packet::TrafficLabel label() const noexcept override {
    return packet::TrafficLabel::kSshBruteForce;
  }

 private:
  SshBruteForceConfig cfg_;
  std::uint64_t emitted_ = 0;
};

}  // namespace campuslab::sim

// Legacy attack-config shims.
//
// The five original attack classes (one closed AttackInjector subclass
// per struct) are replaced by the composable scenario DSL in
// scenario.h; these config structs remain as thin, deprecated
// conversion shims so existing call sites keep compiling while they
// migrate. `legacy_scenario(cfg)` maps each struct onto a one-phase
// Scenario whose emission is byte-identical to the retired class
// (pinned by scenario_test.cpp).
//
// New code should build scenarios directly:
//
//   Scenario::attack(BehaviorKind::kSynFlood)
//       .rate(10'000)
//       .starting_at(t0).lasting(Duration::seconds(60))
//
// These shims will be removed once nothing constructs the structs.
#pragma once

#include <cstdint>

#include "campuslab/sim/scenario.h"

namespace campuslab::sim {

/// DNS amplification / reflection flood (paper §2 running example).
/// Deprecated: use Scenario::attack(BehaviorKind::kDnsAmplification).
struct DnsAmplificationConfig {
  Timestamp start;
  Duration duration = Duration::seconds(60);
  double response_rate_pps = 20'000;  // reflected responses per second
  std::size_t response_bytes = 3000;  // DNS payload size per response
  int reflectors = 400;               // distinct open-resolver addresses
  /// Victim inside the campus; default (unset) picks the first client.
  packet::Ipv4Address victim{};
};

/// Spoofed-source SYN flood against a campus server.
/// Deprecated: use Scenario::attack(BehaviorKind::kSynFlood).
struct SynFloodConfig {
  Timestamp start;
  Duration duration = Duration::seconds(60);
  double syn_rate_pps = 10'000;
  std::uint16_t target_port = 443;  // campus web server by default
};

/// Horizontal/vertical scan of campus address space.
/// Deprecated: use Scenario::attack(BehaviorKind::kPortScan).
struct PortScanConfig {
  Timestamp start;
  Duration duration = Duration::seconds(120);
  double probe_rate_pps = 300;
  int ports_per_host = 12;
};

/// Repeated SSH login attempts against the bastion.
/// Deprecated: use Scenario::attack(BehaviorKind::kSshBruteForce).
struct SshBruteForceConfig {
  Timestamp start;
  Duration duration = Duration::seconds(180);
  double attempts_per_second = 8;
};

/// Benign flash crowd — not an attack, but the attack-shaped event that
/// stress-tests mitigation safety (§4 "robustness"): labels stay
/// kBenign, so any mitigation that sheds it is measurable collateral.
/// Deprecated: use Scenario::attack(BehaviorKind::kFlashCrowd). Note
/// the selector validates client_index strictly — an out-of-range index
/// now fails with scenario_bad_victim instead of silently clamping.
struct FlashCrowdConfig {
  Timestamp start;
  Duration duration = Duration::seconds(30);
  double rate_pps = 3000;
  std::size_t payload_bytes = 1200;
  /// Index into topology.clients() for the receiving host.
  std::size_t client_index = 5;
  int sources = 40;  // CDN edge nodes serving the event
};

/// Convert a legacy config into its one-phase Scenario equivalent.
Scenario legacy_scenario(const DnsAmplificationConfig& cfg);
Scenario legacy_scenario(const SynFloodConfig& cfg);
Scenario legacy_scenario(const PortScanConfig& cfg);
Scenario legacy_scenario(const SshBruteForceConfig& cfg);
Scenario legacy_scenario(const FlashCrowdConfig& cfg);

}  // namespace campuslab::sim

// CampusSimulator — one-stop facade wiring the event queue, the campus
// border network, the benign traffic mix and any attack scenarios.
//
// Typical use (see examples/quickstart.cpp):
//
//   sim::ScenarioConfig scenario;
//   scenario.campus.seed = 42;
//   scenario.scenarios.push_back(
//       sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
//           .starting_at(Timestamp::from_seconds(60)));
//   sim::CampusSimulator simulator(scenario);
//   simulator.network().set_tap([&](const packet::Packet& p, sim::Direction d) {
//     engine.offer(p, d);   // feed the capture pipeline
//   });
//   simulator.run_for(Duration::minutes(5));
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "campuslab/sim/campus.h"
#include "campuslab/sim/scenario.h"
#include "campuslab/sim/traffic.h"

namespace campuslab::sim {

/// Everything that defines one simulated campus run.
struct ScenarioConfig {
  CampusConfig campus;
  AppRates rates;
  std::vector<Scenario> scenarios;
};

/// One armed phase: its identity (the id stamped onto every frame the
/// emitter produces), provenance and the live emitter.
struct ScenarioInstance {
  std::uint32_t id = 0;
  std::string scenario;  // owning Scenario's name
  std::string phase;     // phase name
  BehaviorKind kind = BehaviorKind::kDnsAmplification;
  packet::TrafficLabel label = packet::TrafficLabel::kBenign;
  Timestamp start;
  Duration duration{};
  std::uint64_t seed = 0;
  std::unique_ptr<Emitter> emitter;
};

class CampusSimulator {
 public:
  explicit CampusSimulator(const ScenarioConfig& scenario);
  /// Convenience: a campus plus one scenario armed directly.
  CampusSimulator(const CampusConfig& campus, const Scenario& scenario,
                  AppRates rates = {});

  /// Arm every phase of `scenario`. Returns the instance id of its
  /// first phase, or the first arming error (stable codes:
  /// scenario_bad_victim, scenario_empty_window, scenario_bad_intensity,
  /// scenario_shape_mismatch, scenario_empty). Phases armed before a
  /// failing one stay armed; treat an error as a fatal config problem.
  ///
  /// Phases without an explicit seed draw campus.seed + salt, salt
  /// counting up from 101 in arming order — the exact sequence the
  /// legacy per-category loops produced, which keeps migrated call
  /// sites byte-identical.
  Result<std::uint32_t> add_scenario(const Scenario& scenario);

  CampusNetwork& network() noexcept { return *network_; }
  const CampusNetwork& network() const noexcept { return *network_; }
  EventQueue& events() noexcept { return events_; }
  TrafficGenerator& traffic() noexcept { return *traffic_; }
  const std::vector<ScenarioInstance>& scenario_instances() const noexcept {
    return instances_;
  }
  /// Errors from scenarios rejected during construction (the ctor has
  /// no Result channel; an entry here means part of the config did not
  /// arm).
  const std::vector<Error>& scenario_errors() const noexcept {
    return scenario_errors_;
  }

  /// Advance virtual time by `d`, firing all events due in the window.
  /// Returns the number of events executed.
  std::size_t run_for(Duration d) {
    return events_.run_until(events_.now() + d);
  }

  Timestamp now() const noexcept { return events_.now(); }

 private:
  EventQueue events_;
  std::unique_ptr<CampusNetwork> network_;
  std::unique_ptr<TrafficGenerator> traffic_;
  std::vector<ScenarioInstance> instances_;
  std::vector<Error> scenario_errors_;
  std::uint64_t next_salt_ = 101;
  std::uint32_t next_instance_id_ = 1;
};

}  // namespace campuslab::sim

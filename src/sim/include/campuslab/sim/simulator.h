// CampusSimulator — one-stop facade wiring the event queue, the campus
// border network, the benign traffic mix and any attack injectors.
//
// Typical use (see examples/quickstart.cpp):
//
//   sim::ScenarioConfig scenario;
//   scenario.campus.seed = 42;
//   scenario.dns_amplification.push_back({.start = Timestamp::from_seconds(60)});
//   sim::CampusSimulator simulator(scenario);
//   simulator.network().set_tap([&](const packet::Packet& p, sim::Direction d) {
//     engine.offer(p, d);   // feed the capture pipeline
//   });
//   simulator.run_for(Duration::minutes(5));
#pragma once

#include <memory>
#include <vector>

#include "campuslab/sim/attacks.h"
#include "campuslab/sim/campus.h"
#include "campuslab/sim/traffic.h"

namespace campuslab::sim {

/// Everything that defines one simulated campus run.
struct ScenarioConfig {
  CampusConfig campus;
  AppRates rates;
  std::vector<DnsAmplificationConfig> dns_amplification;
  std::vector<SynFloodConfig> syn_flood;
  std::vector<PortScanConfig> port_scan;
  std::vector<SshBruteForceConfig> ssh_brute_force;
  std::vector<FlashCrowdConfig> flash_crowds;
};

class CampusSimulator {
 public:
  explicit CampusSimulator(const ScenarioConfig& scenario);

  CampusNetwork& network() noexcept { return *network_; }
  const CampusNetwork& network() const noexcept { return *network_; }
  EventQueue& events() noexcept { return events_; }
  TrafficGenerator& traffic() noexcept { return *traffic_; }
  const std::vector<std::unique_ptr<AttackInjector>>& attacks()
      const noexcept {
    return attacks_;
  }

  /// Advance virtual time by `d`, firing all events due in the window.
  /// Returns the number of events executed.
  std::size_t run_for(Duration d) {
    return events_.run_until(events_.now() + d);
  }

  Timestamp now() const noexcept { return events_.now(); }

 private:
  EventQueue events_;
  std::unique_ptr<CampusNetwork> network_;
  std::unique_ptr<TrafficGenerator> traffic_;
  std::vector<std::unique_ptr<AttackInjector>> attacks_;
};

}  // namespace campuslab::sim

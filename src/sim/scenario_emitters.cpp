// Behavior emitters — one per BehaviorKind — plus the ScenarioSpec
// registry that binds kinds to labels, legacy-faithful defaults and
// factories.
//
// Byte-identity contract: for the five legacy attack shapes (constant
// envelope, default selectors/shapes), each emitter reproduces the
// retired AttackInjector classes' frame streams exactly — same rng draw
// order, same seed salts (0xD45, 0x5F1, 0x9C4/0x9C5, 0xB4F/0xB50,
// 0xF1A5), same packet construction. scenario_test.cpp pins this
// against hashes recorded from the pre-refactor binaries.
#include <algorithm>
#include <array>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "campuslab/packet/dns.h"
#include "campuslab/sim/scenario.h"

namespace campuslab::sim {

using packet::DnsType;
using packet::Endpoint;
using packet::Ipv4Address;
using packet::MacAddress;
using packet::PacketBuilder;
using packet::TcpFlags;
using packet::TrafficLabel;

namespace {

Error bad_shape(std::string why) {
  return Error::make("scenario_bad_shape", std::move(why));
}

/// Window + envelope validation shared by every emitter.
Status preflight(const AttackPhase& phase) {
  if (phase.duration <= Duration{}) {
    return Error::make("scenario_empty_window",
                       "phase '" + phase.name + "' has an empty window");
  }
  return phase.intensity.validate();
}

/// Resolve the phase's victim set with a seed-derived rng (so pick()
/// replays). Selectors without pick() consume no randomness.
Result<std::vector<Host>> resolve_victims(const AttackPhase& phase,
                                          const CampusNetwork& net,
                                          std::uint64_t seed) {
  Rng rng(seed ^ 0x51C7);
  return phase.victim_set.resolve(net.topology(), rng);
}

/// Drive an emission loop under the phase's intensity envelope.
/// `emit_one` is called once per packet slot. For a constant envelope
/// this draws exactly like the legacy loop (emit, then one exponential
/// gap), which the byte-identity pins depend on.
void drive(CampusNetwork& net, const AttackPhase& phase, std::uint64_t seed,
           std::function<void(Rng&)> emit_one) {
  struct LoopState {
    Rng rng;
    Timestamp start;
    Timestamp end;
    Duration window;
    IntensityEnvelope env;
    std::function<void(Rng&)> emit;
  };
  auto st = std::make_shared<LoopState>(
      LoopState{Rng(seed), phase.start, phase.start + phase.duration,
                phase.duration, phase.intensity, std::move(emit_one)});
  // Self-passing continuation: every queued event owns a copy of the
  // closure (which owns `st`), so once the loop window ends — or the
  // event queue is destroyed — the last copy releases the state. A
  // shared_ptr<function> whose body recaptures that same shared_ptr
  // would form a permanent cycle and leak (it used to).
  auto step = [&net, st](auto self) -> void {
    const Timestamp now = net.events().now();
    if (now > st->end) return;
    const double r = st->env.rate_at(now, st->start, st->window, net.config());
    if (r > 0.0) {
      st->emit(st->rng);
      net.events().schedule_in(
          Duration::from_seconds(st->rng.exponential(1.0 / r)),
          [self] { self(self); });
      return;
    }
    // Off-phase of a burst envelope: jump to the next active edge.
    const auto next = st->env.next_active(now - st->start);
    if (!next) return;
    Timestamp at = st->start + *next;
    if (at <= now) at = now + Duration::millis(1);  // never same-time spin
    if (at > st->end) return;
    net.events().schedule_at(at, [self] { self(self); });
  };
  net.events().schedule_at(phase.start, [step] { step(step); });
}

/// Shared skeleton: phase storage, counters, spec-derived label.
class EmitterBase : public Emitter {
 public:
  explicit EmitterBase(AttackPhase phase) : phase_(std::move(phase)) {}

  std::uint64_t packets_emitted() const noexcept override { return emitted_; }
  BehaviorKind kind() const noexcept override { return phase_.kind; }
  TrafficLabel label() const noexcept override {
    return scenario_spec(phase_.kind).label;
  }

 protected:
  /// The phase's shape, or scenario_shape_mismatch when with() supplied
  /// a shape for a different behavior kind.
  template <typename Shape>
  Result<Shape> shape() const {
    if (const auto* s = std::get_if<Shape>(&phase_.shape)) return *s;
    return Error::make("scenario_shape_mismatch",
                       "phase '" + phase_.name +
                           "' carries a shape for a different kind than " +
                           std::string(to_string(phase_.kind)));
  }

  AttackPhase phase_;
  std::uint64_t emitted_ = 0;
};

// ---------------------------------------------------------------------------

class DnsAmplificationEmitter final : public EmitterBase {
 public:
  using EmitterBase::EmitterBase;

  Status start(CampusNetwork& net, const EmitContext& ctx) override {
    const auto shape_r = shape<DnsAmplificationShape>();
    if (!shape_r.ok()) return shape_r.error();
    const DnsAmplificationShape sh = shape_r.value();
    if (auto s = preflight(phase_); !s.ok()) return s;
    if (sh.reflectors < 1) return bad_shape("reflector pool must be >= 1");
    if (sh.payload_spread < 0.0 || sh.payload_spread >= 1.0) {
      return bad_shape("payload_spread must be in [0, 1)");
    }
    auto victims_r = resolve_victims(phase_, net, ctx.seed);
    if (!victims_r.ok()) return victims_r.error();
    auto victims =
        std::make_shared<std::vector<Host>>(std::move(victims_r).value());

    // Pre-serialize a small family of response bodies around the target
    // size (real reflectors answer with whatever records they hold, so
    // sizes jitter); per packet we vary the body, the DNS id, and the
    // reflector address.
    const auto query =
        packet::make_dns_query(0, "amp.reflector.example", DnsType::kAny);
    std::vector<double> scales;
    if (sh.payload_spread > 0.0) {
      for (int i = 0; i < 5; ++i) {
        scales.push_back(1.0 - sh.payload_spread +
                         (2.0 * sh.payload_spread * i) / 4.0);
      }
    } else {
      scales = {0.55, 0.75, 1.0, 1.2, 1.45};  // the legacy family
    }
    auto bodies = std::make_shared<std::vector<std::vector<std::uint8_t>>>();
    for (const double scale : scales) {
      const auto bytes = std::max<std::size_t>(
          static_cast<std::size_t>(static_cast<double>(sh.response_bytes) *
                                   scale),
          80);
      bodies->push_back(packet::make_dns_response(query, 6, bytes).serialize());
    }

    const Timestamp start = phase_.start;
    const std::uint32_t sid = ctx.scenario_id;
    drive(net, phase_, ctx.seed ^ 0xD45,
          [this, &net, sh, victims, bodies, start, sid](Rng& rng) {
            // Churn slides the reflector pool window forward over time;
            // a static pool (churn 0, the legacy shape) keeps offset 0.
            const double elapsed = (net.events().now() - start).to_seconds();
            const auto pool_offset = static_cast<std::uint32_t>(
                std::max(0.0, sh.reflector_churn_per_s * elapsed));
            const auto reflector_index =
                pool_offset +
                static_cast<std::uint32_t>(
                    rng.below(static_cast<std::uint64_t>(sh.reflectors)));
            const Host& victim_host =
                victims->size() == 1 ? (*victims)[0]
                                     : (*victims)[rng.below(victims->size())];
            Endpoint reflector{
                MacAddress::from_id(0x00A00000u | reflector_index),
                Topology::external_host(2, reflector_index, 53).ip, 53};
            Endpoint victim{MacAddress::from_id(0x00A10000u),
                            victim_host.endpoint.ip,
                            static_cast<std::uint16_t>(1024 +
                                                       rng.below(60000))};
            auto& body = (*bodies)[rng.below(bodies->size())];
            body[0] = static_cast<std::uint8_t>(rng.below(256));
            body[1] = static_cast<std::uint8_t>(rng.below(256));
            auto pkt = PacketBuilder(net.events().now())
                           .udp(reflector, victim)
                           .payload(body)
                           .label(TrafficLabel::kDnsAmplification)
                           .scenario(sid)
                           .build();
            ++emitted_;
            net.inject(Direction::kInbound, std::move(pkt));
          });
    return Status::success();
  }
};

// ---------------------------------------------------------------------------

class SynFloodEmitter final : public EmitterBase {
 public:
  using EmitterBase::EmitterBase;

  Status start(CampusNetwork& net, const EmitContext& ctx) override {
    const auto shape_r = shape<SynFloodShape>();
    if (!shape_r.ok()) return shape_r.error();
    const SynFloodShape sh = shape_r.value();
    if (auto s = preflight(phase_); !s.ok()) return s;
    if (sh.spoof_pool < 0) return bad_shape("spoof_pool must be >= 0");
    auto victims_r = resolve_victims(phase_, net, ctx.seed);
    if (!victims_r.ok()) return victims_r.error();
    auto victims =
        std::make_shared<std::vector<Host>>(std::move(victims_r).value());

    const std::uint32_t sid = ctx.scenario_id;
    drive(net, phase_, ctx.seed ^ 0x5F1,
          [this, &net, sh, victims, sid](Rng& rng) {
            const Host& victim_host =
                victims->size() == 1 ? (*victims)[0]
                                     : (*victims)[rng.below(victims->size())];
            Endpoint victim = victim_host.endpoint;
            victim.port = sh.target_port;
            Endpoint spoofed;
            if (sh.spoof_pool > 0) {
              // Botnet shape: a fixed pool of real (non-spoofed) sources.
              const auto bot = static_cast<std::uint32_t>(
                  rng.below(static_cast<std::uint64_t>(sh.spoof_pool)));
              spoofed = Endpoint{
                  MacAddress::from_id(0x00B00000u | bot),
                  Topology::external_host(4, bot, 0).ip,
                  static_cast<std::uint16_t>(1024 + rng.below(60000))};
            } else {
              // Legacy shape: fully random spoofing.
              spoofed = Endpoint{
                  MacAddress::from_id(0x00B00000u |
                                      static_cast<std::uint32_t>(
                                          rng.below(1 << 20))),
                  Topology::random_external_address(rng),
                  static_cast<std::uint16_t>(1024 + rng.below(60000))};
            }
            auto pkt = PacketBuilder(net.events().now())
                           .tcp(spoofed, victim, TcpFlags::kSyn,
                                static_cast<std::uint32_t>(rng.next()))
                           .label(TrafficLabel::kSynFlood)
                           .scenario(sid)
                           .build();
            ++emitted_;
            net.inject(Direction::kInbound, std::move(pkt));
          });
    return Status::success();
  }
};

// ---------------------------------------------------------------------------

class PortScanEmitter final : public EmitterBase {
 public:
  using EmitterBase::EmitterBase;

  Status start(CampusNetwork& net, const EmitContext& ctx) override {
    const auto shape_r = shape<PortScanShape>();
    if (!shape_r.ok()) return shape_r.error();
    const PortScanShape sh = shape_r.value();
    if (auto s = preflight(phase_); !s.ok()) return s;
    if (sh.ports_per_host < 1) return bad_shape("ports_per_host must be >= 1");
    if (sh.responder_fraction < 0.0 || sh.responder_fraction > 1.0) {
      return bad_shape("responder_fraction must be in [0, 1]");
    }
    auto victims_r = resolve_victims(phase_, net, ctx.seed);
    if (!victims_r.ok()) return victims_r.error();
    auto victims =
        std::make_shared<std::vector<Host>>(std::move(victims_r).value());

    // One persistent scanner walking the selected address space.
    Rng addr_rng(ctx.seed ^ 0x9C4);
    const Endpoint scanner{MacAddress::from_id(0x00C00001u),
                           Topology::random_external_address(addr_rng), 0};
    static constexpr std::uint16_t kPorts[] = {21,  22,   23,   25,   80,
                                               110, 139,  143,  443,  445,
                                               3306, 3389, 5432, 8080};
    constexpr int kPortCount =
        static_cast<int>(sizeof kPorts / sizeof kPorts[0]);
    const int ports_per_host = std::min(sh.ports_per_host, kPortCount);
    auto cursor = std::make_shared<std::uint64_t>(0);

    const std::uint32_t sid = ctx.scenario_id;
    drive(net, phase_, ctx.seed ^ 0x9C5,
          [this, &net, sh, victims, scanner, cursor, ports_per_host, sid,
           kPortCount](Rng& rng) {
            const std::size_t n = victims->size();
            const Host* target = nullptr;
            std::uint16_t port = 0;
            auto probe_flags = static_cast<std::uint8_t>(TcpFlags::kSyn);
            bool may_answer = true;
            switch (sh.style) {
              case ScanStyle::kSweep: {
                // Host-major walk: the legacy shape.
                const std::uint64_t host_idx =
                    (*cursor / static_cast<std::uint64_t>(ports_per_host)) % n;
                port = kPorts[*cursor %
                              static_cast<std::uint64_t>(ports_per_host)];
                ++*cursor;
                target = &(*victims)[host_idx];
                break;
              }
              case ScanStyle::kHorizontal:
                target = &(*victims)[*cursor % n];
                port = sh.horizontal_port;
                ++*cursor;
                break;
              case ScanStyle::kVertical:
                // Exhaust the whole port table per host before moving on.
                target = &(*victims)[(*cursor /
                                      static_cast<std::uint64_t>(kPortCount)) %
                                     n];
                port = kPorts[*cursor % static_cast<std::uint64_t>(kPortCount)];
                ++*cursor;
                break;
              case ScanStyle::kStealth:
                // Randomized order, FIN probes, nothing answers.
                target = &(*victims)[rng.below(n)];
                port = kPorts[rng.below(
                    static_cast<std::uint64_t>(kPortCount))];
                probe_flags = static_cast<std::uint8_t>(TcpFlags::kFin);
                may_answer = false;
                break;
            }
            Endpoint src = scanner;
            src.port = static_cast<std::uint16_t>(40000 + rng.below(20000));
            Endpoint dst = target->endpoint;
            dst.port = port;
            auto pkt = PacketBuilder(net.events().now())
                           .tcp(src, dst, probe_flags,
                                static_cast<std::uint32_t>(rng.next()))
                           .label(TrafficLabel::kPortScan)
                           .scenario(sid)
                           .build();
            ++emitted_;
            net.inject(Direction::kInbound, std::move(pkt));
            // A fraction of probes hit something that answers; the campus
            // response (RST or SYN-ACK) heads outbound, labelled benign —
            // it is the victim's traffic, not the attacker's.
            if (may_answer && rng.chance(sh.responder_fraction)) {
              auto resp = PacketBuilder(net.events().now())
                              .tcp(dst, src,
                                   rng.chance(0.3)
                                       ? static_cast<std::uint8_t>(
                                             TcpFlags::kSyn | TcpFlags::kAck)
                                       : static_cast<std::uint8_t>(
                                             TcpFlags::kRst | TcpFlags::kAck),
                                   0, 1)
                              .scenario(sid)
                              .build();
              net.inject(Direction::kOutbound, std::move(resp));
            }
          });
    return Status::success();
  }
};

// ---------------------------------------------------------------------------

class SshBruteForceEmitter final : public EmitterBase {
 public:
  using EmitterBase::EmitterBase;

  Status start(CampusNetwork& net, const EmitContext& ctx) override {
    const auto shape_r = shape<SshBruteForceShape>();
    if (!shape_r.ok()) return shape_r.error();
    if (auto s = preflight(phase_); !s.ok()) return s;
    auto victims_r = resolve_victims(phase_, net, ctx.seed);
    if (!victims_r.ok()) return victims_r.error();
    auto victims =
        std::make_shared<std::vector<Host>>(std::move(victims_r).value());

    Rng addr_rng(ctx.seed ^ 0xB4F);
    const Ipv4Address attacker_ip =
        Topology::random_external_address(addr_rng);

    const std::uint32_t sid = ctx.scenario_id;
    drive(net, phase_, ctx.seed ^ 0xB50,
          [this, &net, victims, attacker_ip, sid](Rng& rng) {
            // One login attempt: SYN, SYN-ACK, ACK, a couple of small auth
            // exchanges, then RST from the server (failed password).
            const Host& gw_host =
                victims->size() == 1 ? (*victims)[0]
                                     : (*victims)[rng.below(victims->size())];
            Endpoint gateway = gw_host.endpoint;
            gateway.port = 22;
            Endpoint attacker{MacAddress::from_id(0x00D00001u), attacker_ip,
                              static_cast<std::uint16_t>(1024 +
                                                         rng.below(60000))};
            const Timestamp now = net.events().now();
            auto emit_in = [&](packet::Packet p) {
              ++emitted_;
              net.inject(Direction::kInbound, std::move(p));
            };
            emit_in(PacketBuilder(now)
                        .tcp(attacker, gateway, TcpFlags::kSyn, 7)
                        .label(TrafficLabel::kSshBruteForce)
                        .scenario(sid)
                        .build());
            net.inject(Direction::kOutbound,
                       PacketBuilder(now)
                           .tcp(gateway, attacker,
                                TcpFlags::kSyn | TcpFlags::kAck, 17, 8)
                           .scenario(sid)
                           .build());
            emit_in(PacketBuilder(now)
                        .tcp(attacker, gateway, TcpFlags::kAck, 8, 18)
                        .label(TrafficLabel::kSshBruteForce)
                        .scenario(sid)
                        .build());
            for (int i = 0; i < 3; ++i) {
              emit_in(PacketBuilder(now)
                          .tcp(attacker, gateway,
                               TcpFlags::kAck | TcpFlags::kPsh, 8, 18)
                          .payload_size(48 + rng.below(80))
                          .label(TrafficLabel::kSshBruteForce)
                          .scenario(sid)
                          .build());
              net.inject(Direction::kOutbound,
                         PacketBuilder(now)
                             .tcp(gateway, attacker,
                                  TcpFlags::kAck | TcpFlags::kPsh, 18, 8)
                             .payload_size(32 + rng.below(48))
                             .scenario(sid)
                             .build());
            }
            net.inject(Direction::kOutbound,
                       PacketBuilder(now)
                           .tcp(gateway, attacker, TcpFlags::kRst, 18, 8)
                           .scenario(sid)
                           .build());
          });
    return Status::success();
  }
};

// ---------------------------------------------------------------------------

class FlashCrowdEmitter final : public EmitterBase {
 public:
  using EmitterBase::EmitterBase;

  Status start(CampusNetwork& net, const EmitContext& ctx) override {
    const auto shape_r = shape<FlashCrowdShape>();
    if (!shape_r.ok()) return shape_r.error();
    const FlashCrowdShape sh = shape_r.value();
    if (auto s = preflight(phase_); !s.ok()) return s;
    if (sh.sources < 1) return bad_shape("flash crowd needs >= 1 source");
    auto victims_r = resolve_victims(phase_, net, ctx.seed);
    if (!victims_r.ok()) return victims_r.error();
    auto victims =
        std::make_shared<std::vector<Host>>(std::move(victims_r).value());

    const std::uint32_t sid = ctx.scenario_id;
    drive(net, phase_, ctx.seed ^ 0xF1A5,
          [this, &net, sh, victims, sid](Rng& rng) {
            const Host& receiver_host =
                victims->size() == 1 ? (*victims)[0]
                                     : (*victims)[rng.below(victims->size())];
            const auto edge = static_cast<std::uint32_t>(
                rng.below(static_cast<std::uint64_t>(sh.sources)));
            Endpoint src = Topology::external_host(1, edge, 443);
            Endpoint dst = receiver_host.endpoint;
            dst.port = static_cast<std::uint16_t>(40000 + edge);
            auto pkt = PacketBuilder(net.events().now())
                           .udp(src, dst)
                           .payload_size(sh.payload_bytes)
                           .scenario(sid)
                           .build();  // label stays kBenign
            ++emitted_;
            net.inject(Direction::kInbound, std::move(pkt));
          });
    return Status::success();
  }
};

// ---------------------------------------------------------------------------

/// Per-host infection status for the worm state machine.
enum class WormStatus : std::uint8_t { kSusceptible, kIncubating, kSpreading };

class WormEmitter final : public EmitterBase {
 public:
  using EmitterBase::EmitterBase;

  Status start(CampusNetwork& net, const EmitContext& ctx) override {
    const auto shape_r = shape<WormShape>();
    if (!shape_r.ok()) return shape_r.error();
    const WormShape sh = shape_r.value();
    if (auto s = preflight(phase_); !s.ok()) return s;
    if (sh.initial_bots < 1) return bad_shape("worm needs >= 1 initial bot");
    if (sh.infect_probability < 0.0 || sh.infect_probability > 1.0) {
      return bad_shape("infect_probability must be in [0, 1]");
    }
    if (sh.external_hit_fraction < 0.0 || sh.external_hit_fraction > 1.0) {
      return bad_shape("external_hit_fraction must be in [0, 1]");
    }
    if (sh.incubation < Duration{}) {
      return bad_shape("incubation must be >= 0");
    }
    if (sh.max_external_bots < sh.initial_bots) {
      return bad_shape("max_external_bots must cover initial_bots");
    }
    auto victims_r = resolve_victims(phase_, net, ctx.seed);
    if (!victims_r.ok()) return victims_r.error();

    auto st = std::make_shared<State>();
    st->universe = std::move(victims_r).value();
    st->status.assign(st->universe.size(), WormStatus::kSusceptible);
    st->external_bots = sh.initial_bots;
    st_ = st;

    const std::uint32_t sid = ctx.scenario_id;
    drive(net, phase_, ctx.seed ^ 0x3B9A,
          [this, &net, sh, st, sid](Rng& rng) {
            // Pick a scanning source across the whole infected
            // population: external bots first, then spreading hosts.
            const std::size_t n_sources =
                static_cast<std::size_t>(st->external_bots) +
                st->spreading.size();
            const std::size_t src_idx =
                n_sources == 1 ? 0 : rng.below(n_sources);
            const Timestamp now = net.events().now();
            if (src_idx < static_cast<std::size_t>(st->external_bots)) {
              // Inbound scan from an external bot, possibly exploiting a
              // susceptible campus host.
              const std::size_t tgt = rng.below(st->universe.size());
              const Host& target = st->universe[tgt];
              Endpoint bot{MacAddress::from_id(
                               0x00E10000u |
                               static_cast<std::uint32_t>(src_idx)),
                           Topology::external_host(
                               5, static_cast<std::uint32_t>(src_idx), 0)
                               .ip,
                           static_cast<std::uint16_t>(1024 +
                                                      rng.below(60000))};
              Endpoint dst = target.endpoint;
              dst.port = sh.service_port;
              auto probe = PacketBuilder(now)
                               .tcp(bot, dst, TcpFlags::kSyn,
                                    static_cast<std::uint32_t>(rng.next()))
                               .label(TrafficLabel::kWorm)
                               .scenario(sid)
                               .build();
              ++emitted_;
              net.inject(Direction::kInbound, std::move(probe));
              maybe_infect(net, rng, st, sh, sid, tgt, bot, /*source_id=*/0);
            } else {
              const Host& src_host =
                  st->universe[st->spreading[src_idx - static_cast<std::size_t>(
                                                           st->external_bots)]];
              if (rng.chance(0.5)) {
                // Lateral spread inside the campus: never crosses the
                // border (no frame for the tap), but the state machine
                // advances and the infection chain records the hop.
                const std::size_t tgt = rng.below(st->universe.size());
                maybe_infect(net, rng, st, sh, sid, tgt, std::nullopt,
                             src_host.id);
              } else {
                // Outbound scan beyond the border — what the tap sees —
                // which recruits fresh external bots.
                Endpoint src = src_host.endpoint;
                src.port =
                    static_cast<std::uint16_t>(1024 + rng.below(60000));
                const auto ext_idx = static_cast<std::uint32_t>(
                    rng.below(1u << 16));
                Endpoint dst =
                    Topology::external_host(5, ext_idx, sh.service_port);
                auto probe = PacketBuilder(now)
                                 .tcp(src, dst, TcpFlags::kSyn,
                                      static_cast<std::uint32_t>(rng.next()))
                                 .label(TrafficLabel::kWorm)
                                 .scenario(sid)
                                 .build();
                ++emitted_;
                net.inject(Direction::kOutbound, std::move(probe));
                if (st->external_bots < sh.max_external_bots &&
                    rng.chance(sh.external_hit_fraction)) {
                  ++st->external_bots;
                }
              }
            }
          });
    return Status::success();
  }

  std::span<const WormInfection> infections() const noexcept override {
    return st_ ? std::span<const WormInfection>(st_->infections)
               : std::span<const WormInfection>{};
  }

 private:
  struct State {
    std::vector<Host> universe;        // the susceptible surface
    std::vector<WormStatus> status;    // parallel to universe
    std::vector<std::size_t> spreading;  // universe indexes, infection order
    std::vector<WormInfection> infections;
    int external_bots = 0;
  };

  /// Advance the target's state machine on a successful exploit:
  /// Susceptible → Incubating now, → Spreading after the incubation
  /// delay. `exploit_src` present = the exploit rode an inbound frame.
  void maybe_infect(CampusNetwork& net, Rng& rng,
                    const std::shared_ptr<State>& st, const WormShape& sh,
                    std::uint32_t sid, std::size_t tgt,
                    std::optional<Endpoint> exploit_src,
                    std::uint32_t source_id) {
    if (st->status[tgt] != WormStatus::kSusceptible) return;
    if (!rng.chance(sh.infect_probability)) return;
    const Timestamp now = net.events().now();
    st->status[tgt] = WormStatus::kIncubating;
    st->infections.push_back(
        WormInfection{st->universe[tgt].id, now, source_id});
    if (exploit_src) {
      // The exploit payload itself, border-visible on the inbound wire.
      Endpoint dst = st->universe[tgt].endpoint;
      dst.port = sh.service_port;
      auto exploit = PacketBuilder(now)
                         .tcp(*exploit_src, dst,
                              TcpFlags::kAck | TcpFlags::kPsh, 1, 1)
                         .payload_size(sh.exploit_bytes)
                         .label(TrafficLabel::kWorm)
                         .scenario(sid)
                         .build();
      ++emitted_;
      net.inject(Direction::kInbound, std::move(exploit));
    }
    net.events().schedule_at(now + sh.incubation, [st, tgt] {
      if (st->status[tgt] == WormStatus::kIncubating) {
        st->status[tgt] = WormStatus::kSpreading;
        st->spreading.push_back(tgt);
      }
    });
  }

  std::shared_ptr<State> st_;
};

// ---------------------------------------------------------------------------

class ExfiltrationEmitter final : public EmitterBase {
 public:
  using EmitterBase::EmitterBase;

  Status start(CampusNetwork& net, const EmitContext& ctx) override {
    const auto shape_r = shape<ExfiltrationShape>();
    if (!shape_r.ok()) return shape_r.error();
    const ExfiltrationShape sh = shape_r.value();
    if (auto s = preflight(phase_); !s.ok()) return s;
    if (sh.beacon_jitter < 0.0 || sh.beacon_jitter >= 1.0) {
      return bad_shape("beacon_jitter must be in [0, 1)");
    }
    if (sh.chunk_every < 1) return bad_shape("chunk_every must be >= 1");
    auto victims_r = resolve_victims(phase_, net, ctx.seed);
    if (!victims_r.ok()) return victims_r.error();
    const std::vector<Host> hosts = std::move(victims_r).value();

    // Beaconing is periodic-with-jitter, not Poisson: the defining
    // signature of low-and-slow C2 traffic is the regular heartbeat, so
    // this emitter runs its own loop instead of drive().
    struct LoopState {
      Rng rng;
      Timestamp start;
      Timestamp end;
      Duration window;
      IntensityEnvelope env;
      ExfiltrationShape shape;
      Host source;
      Endpoint c2;
      std::uint64_t beacons = 0;
    };
    auto st = std::make_shared<LoopState>(LoopState{
        Rng(ctx.seed ^ 0xEF11), phase_.start, phase_.start + phase_.duration,
        phase_.duration, phase_.intensity, sh, hosts.front(),
        Topology::external_host(4, static_cast<std::uint32_t>(ctx.seed % 1024),
                                sh.c2_port)});

    const std::uint32_t sid = ctx.scenario_id;
    auto step = [this, &net, st, sid](auto self) -> void {
      const Timestamp now = net.events().now();
      if (now > st->end) return;
      const double r =
          st->env.rate_at(now, st->start, st->window, net.config());
      if (r <= 0.0) {
        const auto next = st->env.next_active(now - st->start);
        if (!next) return;
        Timestamp at = st->start + *next;
        if (at <= now) at = now + Duration::millis(1);
        if (at > st->end) return;
        net.events().schedule_at(at, [self] { self(self); });
        return;
      }
      Rng& rng = st->rng;
      ++st->beacons;
      Endpoint src = st->source.endpoint;
      src.port = static_cast<std::uint16_t>(49152 + rng.below(16000));
      const auto seq = static_cast<std::uint32_t>(st->beacons);
      auto beacon = PacketBuilder(now)
                        .tcp(src, st->c2, TcpFlags::kAck | TcpFlags::kPsh,
                             seq, seq)
                        .payload_size(st->shape.beacon_bytes + rng.below(24))
                        .label(TrafficLabel::kExfiltration)
                        .scenario(sid)
                        .build();
      ++emitted_;
      net.inject(Direction::kOutbound, std::move(beacon));
      auto ack = PacketBuilder(now)
                     .tcp(st->c2, src, TcpFlags::kAck, seq, seq + 1)
                     .label(TrafficLabel::kExfiltration)
                     .scenario(sid)
                     .build();
      ++emitted_;
      net.inject(Direction::kInbound, std::move(ack));
      if (st->beacons % static_cast<std::uint64_t>(st->shape.chunk_every) ==
          0) {
        auto chunk =
            PacketBuilder(now)
                .tcp(src, st->c2, TcpFlags::kAck | TcpFlags::kPsh, seq + 1,
                     seq)
                .payload_size(st->shape.chunk_bytes + rng.below(128))
                .label(TrafficLabel::kExfiltration)
                .scenario(sid)
                .build();
        ++emitted_;
        net.inject(Direction::kOutbound, std::move(chunk));
      }
      // Jittered period: the beacon clock drifts ± jitter around 1/rate.
      const double period = 1.0 / r;
      const double gap =
          period *
          (1.0 + st->shape.beacon_jitter * (2.0 * rng.uniform() - 1.0));
      net.events().schedule_in(Duration::from_seconds(std::max(gap, 1e-6)),
                               [self] { self(self); });
    };
    net.events().schedule_at(phase_.start, [step] { step(step); });
    return Status::success();
  }
};

// ---------------------------------------------------------------------------
// Registry

template <typename E>
std::unique_ptr<Emitter> make_impl(const AttackPhase& phase) {
  return std::make_unique<E>(phase);
}

BehaviorShape shape_dns() { return DnsAmplificationShape{}; }
BehaviorShape shape_syn() { return SynFloodShape{}; }
BehaviorShape shape_scan() { return PortScanShape{}; }
BehaviorShape shape_ssh() { return SshBruteForceShape{}; }
BehaviorShape shape_crowd() { return FlashCrowdShape{}; }
BehaviorShape shape_worm() { return WormShape{}; }
BehaviorShape shape_exfil() { return ExfiltrationShape{}; }

VictimSelector victims_first_client() { return victims().first_client(); }
VictimSelector victims_web() {
  return victims().role(HostRole::kWebServer);
}
VictimSelector victims_all() { return victims(); }
VictimSelector victims_ssh() {
  return victims().role(HostRole::kSshGateway);
}
VictimSelector victims_client5() { return victims().client_index(5); }
VictimSelector victims_worm_surface() {
  return victims().worm_reachable();
}

// Defaults mirror the legacy config structs exactly; worm and
// exfiltration pick rates in character for their class (a worm's
// aggregate scan budget, a beacon every ~2s).
const std::array<ScenarioSpec, kBehaviorKindCount> kSpecs{{
    {BehaviorKind::kDnsAmplification, "dns_amplification",
     TrafficLabel::kDnsAmplification, 20'000, Duration::seconds(60),
     &shape_dns, &victims_first_client,
     &make_impl<DnsAmplificationEmitter>},
    {BehaviorKind::kSynFlood, "syn_flood", TrafficLabel::kSynFlood, 10'000,
     Duration::seconds(60), &shape_syn, &victims_web,
     &make_impl<SynFloodEmitter>},
    {BehaviorKind::kPortScan, "port_scan", TrafficLabel::kPortScan, 300,
     Duration::seconds(120), &shape_scan, &victims_all,
     &make_impl<PortScanEmitter>},
    {BehaviorKind::kSshBruteForce, "ssh_brute_force",
     TrafficLabel::kSshBruteForce, 8, Duration::seconds(180), &shape_ssh,
     &victims_ssh, &make_impl<SshBruteForceEmitter>},
    {BehaviorKind::kFlashCrowd, "flash_crowd", TrafficLabel::kBenign, 3000,
     Duration::seconds(30), &shape_crowd, &victims_client5,
     &make_impl<FlashCrowdEmitter>},
    {BehaviorKind::kWorm, "worm", TrafficLabel::kWorm, 80,
     Duration::seconds(60), &shape_worm, &victims_worm_surface,
     &make_impl<WormEmitter>},
    {BehaviorKind::kExfiltration, "exfiltration",
     TrafficLabel::kExfiltration, 0.5, Duration::seconds(300), &shape_exfil,
     &victims_first_client, &make_impl<ExfiltrationEmitter>},
}};

}  // namespace

const ScenarioSpec& scenario_spec(BehaviorKind kind) noexcept {
  const auto i = static_cast<std::size_t>(kind);
  return kSpecs[i < kSpecs.size() ? i : 0];
}

std::span<const ScenarioSpec> scenario_specs() noexcept { return kSpecs; }

std::unique_ptr<Emitter> make_emitter(const AttackPhase& phase) {
  return scenario_spec(phase.kind).make(phase);
}

}  // namespace campuslab::sim

#include "campuslab/sim/attacks.h"

namespace campuslab::sim {

Scenario legacy_scenario(const DnsAmplificationConfig& cfg) {
  DnsAmplificationShape shape;
  shape.response_bytes = cfg.response_bytes;
  shape.reflectors = cfg.reflectors;
  auto builder = Scenario::attack(BehaviorKind::kDnsAmplification)
                     .with(shape)
                     .rate(cfg.response_rate_pps)
                     .starting_at(cfg.start)
                     .lasting(cfg.duration);
  if (!(cfg.victim == packet::Ipv4Address{})) {
    builder.against(victims().host(cfg.victim));
  }
  return std::move(builder).build();
}

Scenario legacy_scenario(const SynFloodConfig& cfg) {
  SynFloodShape shape;
  shape.target_port = cfg.target_port;
  return Scenario::attack(BehaviorKind::kSynFlood)
      .with(shape)
      .rate(cfg.syn_rate_pps)
      .starting_at(cfg.start)
      .lasting(cfg.duration);
}

Scenario legacy_scenario(const PortScanConfig& cfg) {
  PortScanShape shape;
  shape.ports_per_host = cfg.ports_per_host;
  return Scenario::attack(BehaviorKind::kPortScan)
      .with(shape)
      .rate(cfg.probe_rate_pps)
      .starting_at(cfg.start)
      .lasting(cfg.duration);
}

Scenario legacy_scenario(const SshBruteForceConfig& cfg) {
  return Scenario::attack(BehaviorKind::kSshBruteForce)
      .rate(cfg.attempts_per_second)
      .starting_at(cfg.start)
      .lasting(cfg.duration);
}

Scenario legacy_scenario(const FlashCrowdConfig& cfg) {
  FlashCrowdShape shape;
  shape.payload_bytes = cfg.payload_bytes;
  shape.sources = cfg.sources;
  return Scenario::attack(BehaviorKind::kFlashCrowd)
      .with(shape)
      .rate(cfg.rate_pps)
      .starting_at(cfg.start)
      .lasting(cfg.duration)
      .against(victims().client_index(cfg.client_index));
}

}  // namespace campuslab::sim

#include "campuslab/sim/attacks.h"

#include <memory>

#include "campuslab/packet/dns.h"

namespace campuslab::sim {

using packet::DnsType;
using packet::Endpoint;
using packet::Ipv4Address;
using packet::MacAddress;
using packet::PacketBuilder;
using packet::TcpFlags;
using packet::TrafficLabel;

namespace {

/// Drive an emission loop at `rate_pps` between [start, start+duration].
/// `emit_one` is called once per packet slot.
void drive(CampusNetwork& net, Timestamp start, Duration duration,
           double rate_pps, std::uint64_t seed,
           std::function<void(Rng&)> emit_one) {
  struct LoopState {
    Rng rng;
    Timestamp end;
    double rate;
    std::function<void(Rng&)> emit;
  };
  auto st = std::make_shared<LoopState>(
      LoopState{Rng(seed), start + duration, rate_pps, std::move(emit_one)});
  // Self-passing continuation: every queued event owns a copy of the
  // closure (which owns `st`), so once the loop window ends — or the
  // event queue is destroyed — the last copy releases the state. A
  // shared_ptr<function> whose body recaptures that same shared_ptr
  // would form a permanent cycle and leak (it used to).
  auto step = [&net, st](auto self) -> void {
    if (net.events().now() > st->end) return;
    st->emit(st->rng);
    net.events().schedule_in(
        Duration::from_seconds(st->rng.exponential(1.0 / st->rate)),
        [self] { self(self); });
  };
  net.events().schedule_at(start, [step] { step(step); });
}

}  // namespace

void DnsAmplificationAttack::start(CampusNetwork& net, std::uint64_t seed) {
  DnsAmplificationConfig cfg = cfg_;
  if (cfg.victim == Ipv4Address{}) {
    cfg.victim = net.topology().clients().front().endpoint.ip;
  }
  cfg_ = cfg;

  // Pre-serialize a small family of response bodies around the target
  // size (real reflectors answer with whatever records they hold, so
  // sizes jitter); per packet we vary the body, the DNS id, and the
  // reflector address.
  const auto query =
      packet::make_dns_query(0, "amp.reflector.example", DnsType::kAny);
  auto bodies = std::make_shared<std::vector<std::vector<std::uint8_t>>>();
  for (const double scale : {0.55, 0.75, 1.0, 1.2, 1.45}) {
    const auto bytes = std::max<std::size_t>(
        static_cast<std::size_t>(static_cast<double>(cfg.response_bytes) *
                                 scale),
        80);
    bodies->push_back(
        packet::make_dns_response(query, 6, bytes).serialize());
  }

  drive(net, cfg.start, cfg.duration, cfg.response_rate_pps, seed ^ 0xD45,
        [this, &net, cfg, bodies](Rng& rng) {
          const auto reflector_index =
              static_cast<std::uint32_t>(rng.below(
                  static_cast<std::uint64_t>(cfg.reflectors)));
          Endpoint reflector{
              MacAddress::from_id(0x00A00000u | reflector_index),
              Topology::external_host(2, reflector_index, 53).ip, 53};
          Endpoint victim{MacAddress::from_id(0x00A10000u), cfg.victim,
                          static_cast<std::uint16_t>(
                              1024 + rng.below(60000))};
          auto& body = (*bodies)[rng.below(bodies->size())];
          body[0] = static_cast<std::uint8_t>(rng.below(256));
          body[1] = static_cast<std::uint8_t>(rng.below(256));
          auto pkt = PacketBuilder(net.events().now())
                         .udp(reflector, victim)
                         .payload(body)
                         .label(TrafficLabel::kDnsAmplification)
                         .build();
          ++emitted_;
          net.inject(Direction::kInbound, std::move(pkt));
        });
}

void SynFloodAttack::start(CampusNetwork& net, std::uint64_t seed) {
  Endpoint victim = net.topology().web_server().endpoint;
  victim.port = cfg_.target_port;

  drive(net, cfg_.start, cfg_.duration, cfg_.syn_rate_pps, seed ^ 0x5F1,
        [this, &net, victim](Rng& rng) {
          Endpoint spoofed{
              MacAddress::from_id(0x00B00000u |
                                  static_cast<std::uint32_t>(
                                      rng.below(1 << 20))),
              Topology::random_external_address(rng),
              static_cast<std::uint16_t>(1024 + rng.below(60000))};
          auto pkt = PacketBuilder(net.events().now())
                         .tcp(spoofed, victim, TcpFlags::kSyn,
                              static_cast<std::uint32_t>(rng.next()))
                         .label(TrafficLabel::kSynFlood)
                         .build();
          ++emitted_;
          net.inject(Direction::kInbound, std::move(pkt));
        });
}

void PortScanAttack::start(CampusNetwork& net, std::uint64_t seed) {
  // One persistent scanner walking the campus address space.
  Rng addr_rng(seed ^ 0x9C4);
  const Endpoint scanner{MacAddress::from_id(0x00C00001u),
                         Topology::random_external_address(addr_rng), 0};
  static constexpr std::uint16_t kPorts[] = {
      21, 22, 23, 25, 80, 110, 139, 143, 443, 445, 3306, 3389, 5432, 8080};
  auto cursor = std::make_shared<std::uint64_t>(0);
  const auto& clients = net.topology().clients();
  const auto& servers = net.topology().servers();
  const std::size_t host_count = clients.size() + servers.size();
  const int ports_per_host =
      std::min<int>(cfg_.ports_per_host,
                    static_cast<int>(sizeof kPorts / sizeof kPorts[0]));

  drive(net, cfg_.start, cfg_.duration, cfg_.probe_rate_pps, seed ^ 0x9C5,
        [this, &net, scanner, cursor, &clients, &servers, host_count,
         ports_per_host](Rng& rng) {
          const std::uint64_t host_idx =
              (*cursor / static_cast<std::uint64_t>(ports_per_host)) %
              host_count;
          const std::uint16_t port =
              kPorts[*cursor % static_cast<std::uint64_t>(ports_per_host)];
          ++*cursor;
          const auto& target =
              host_idx < clients.size()
                  ? clients[host_idx]
                  : servers[host_idx - clients.size()];
          Endpoint src = scanner;
          src.port = static_cast<std::uint16_t>(40000 + rng.below(20000));
          Endpoint dst = target.endpoint;
          dst.port = port;
          auto pkt = PacketBuilder(net.events().now())
                         .tcp(src, dst, TcpFlags::kSyn,
                              static_cast<std::uint32_t>(rng.next()))
                         .label(TrafficLabel::kPortScan)
                         .build();
          ++emitted_;
          net.inject(Direction::kInbound, std::move(pkt));
          // ~20% of probes hit something that answers; the campus
          // response (RST or SYN-ACK) heads outbound, labelled benign —
          // it is the victim's traffic, not the attacker's.
          if (rng.chance(0.2)) {
            auto resp = PacketBuilder(net.events().now())
                            .tcp(dst, src,
                                 rng.chance(0.3)
                                     ? static_cast<std::uint8_t>(
                                           TcpFlags::kSyn | TcpFlags::kAck)
                                     : static_cast<std::uint8_t>(
                                           TcpFlags::kRst | TcpFlags::kAck),
                                 0, 1)
                            .build();
            net.inject(Direction::kOutbound, std::move(resp));
          }
        });
}

void FlashCrowdEvent::start(CampusNetwork& net, std::uint64_t seed) {
  const auto& clients = net.topology().clients();
  const Endpoint receiver =
      clients[std::min(cfg_.client_index, clients.size() - 1)].endpoint;
  const int sources = std::max(cfg_.sources, 1);

  drive(net, cfg_.start, cfg_.duration, cfg_.rate_pps, seed ^ 0xF1A5,
        [this, &net, receiver, sources](Rng& rng) {
          const auto edge = static_cast<std::uint32_t>(
              rng.below(static_cast<std::uint64_t>(sources)));
          Endpoint src = Topology::external_host(1, edge, 443);
          Endpoint dst = receiver;
          dst.port = static_cast<std::uint16_t>(40000 + edge);
          auto pkt = PacketBuilder(net.events().now())
                         .udp(src, dst)
                         .payload_size(cfg_.payload_bytes)
                         .build();  // label stays kBenign
          ++emitted_;
          net.inject(Direction::kInbound, std::move(pkt));
        });
}

void SshBruteForceAttack::start(CampusNetwork& net, std::uint64_t seed) {
  Rng addr_rng(seed ^ 0xB4F);
  const Ipv4Address attacker_ip = Topology::random_external_address(addr_rng);
  Endpoint gateway = net.topology().ssh_gateway().endpoint;
  gateway.port = 22;

  drive(net, cfg_.start, cfg_.duration, cfg_.attempts_per_second,
        seed ^ 0xB50, [this, &net, attacker_ip, gateway](Rng& rng) {
          // One login attempt: SYN, SYN-ACK, ACK, a couple of small auth
          // exchanges, then RST from the server (failed password).
          Endpoint attacker{MacAddress::from_id(0x00D00001u), attacker_ip,
                            static_cast<std::uint16_t>(
                                1024 + rng.below(60000))};
          const Timestamp now = net.events().now();
          auto emit_in = [&](packet::Packet p) {
            ++emitted_;
            net.inject(Direction::kInbound, std::move(p));
          };
          emit_in(PacketBuilder(now)
                      .tcp(attacker, gateway, TcpFlags::kSyn, 7)
                      .label(TrafficLabel::kSshBruteForce)
                      .build());
          net.inject(Direction::kOutbound,
                     PacketBuilder(now)
                         .tcp(gateway, attacker,
                              TcpFlags::kSyn | TcpFlags::kAck, 17, 8)
                         .build());
          emit_in(PacketBuilder(now)
                      .tcp(attacker, gateway, TcpFlags::kAck, 8, 18)
                      .label(TrafficLabel::kSshBruteForce)
                      .build());
          for (int i = 0; i < 3; ++i) {
            emit_in(PacketBuilder(now)
                        .tcp(attacker, gateway,
                             TcpFlags::kAck | TcpFlags::kPsh, 8, 18)
                        .payload_size(48 + rng.below(80))
                        .label(TrafficLabel::kSshBruteForce)
                        .build());
            net.inject(Direction::kOutbound,
                       PacketBuilder(now)
                           .tcp(gateway, attacker,
                                TcpFlags::kAck | TcpFlags::kPsh, 18, 8)
                           .payload_size(32 + rng.below(48))
                           .build());
          }
          net.inject(Direction::kOutbound,
                     PacketBuilder(now)
                         .tcp(gateway, attacker, TcpFlags::kRst, 18, 8)
                         .build());
        });
}

}  // namespace campuslab::sim

#include "campuslab/sim/simulator.h"

namespace campuslab::sim {

CampusSimulator::CampusSimulator(const ScenarioConfig& scenario) {
  network_ = std::make_unique<CampusNetwork>(events_, scenario.campus);
  traffic_ = std::make_unique<TrafficGenerator>(
      *network_, scenario.rates, scenario.campus.seed ^ 0x7AFF1C);
  traffic_->start();

  for (const auto& s : scenario.scenarios) {
    if (const auto armed = add_scenario(s); !armed.ok()) {
      scenario_errors_.push_back(armed.error());
    }
  }
}

CampusSimulator::CampusSimulator(const CampusConfig& campus,
                                 const Scenario& scenario, AppRates rates) {
  network_ = std::make_unique<CampusNetwork>(events_, campus);
  traffic_ =
      std::make_unique<TrafficGenerator>(*network_, rates,
                                         campus.seed ^ 0x7AFF1C);
  traffic_->start();

  if (const auto armed = add_scenario(scenario); !armed.ok()) {
    scenario_errors_.push_back(armed.error());
  }
}

Result<std::uint32_t> CampusSimulator::add_scenario(const Scenario& scenario) {
  if (scenario.empty()) {
    return Error::make("scenario_empty", "scenario has no phases");
  }
  std::uint32_t first_id = 0;
  for (const auto& phase : scenario.phases()) {
    ScenarioInstance inst;
    inst.id = next_instance_id_++;
    inst.scenario = scenario.name.empty() ? phase.name : scenario.name;
    inst.phase = phase.name;
    inst.kind = phase.kind;
    inst.label = scenario_spec(phase.kind).label;
    inst.start = phase.start;
    inst.duration = phase.duration;
    // Explicit seeds replay a phase exactly regardless of arming order;
    // implicit ones still consume a salt so sequences stay stable when
    // one phase in a list is pinned.
    const std::uint64_t salt_seed = network_->config().seed + next_salt_++;
    inst.seed = phase.seed.value_or(salt_seed);
    inst.emitter = make_emitter(phase);
    const auto status = inst.emitter->start(
        *network_, EmitContext{inst.seed, inst.id});
    if (!status.ok()) return status.error();
    if (first_id == 0) first_id = inst.id;
    instances_.push_back(std::move(inst));
  }
  return first_id;
}

}  // namespace campuslab::sim

#include "campuslab/sim/simulator.h"

namespace campuslab::sim {

CampusSimulator::CampusSimulator(const ScenarioConfig& scenario) {
  network_ = std::make_unique<CampusNetwork>(events_, scenario.campus);
  traffic_ = std::make_unique<TrafficGenerator>(
      *network_, scenario.rates, scenario.campus.seed ^ 0x7AFF1C);
  traffic_->start();

  std::uint64_t salt = 101;
  for (const auto& cfg : scenario.dns_amplification) {
    attacks_.push_back(std::make_unique<DnsAmplificationAttack>(cfg));
    attacks_.back()->start(*network_, scenario.campus.seed + salt++);
  }
  for (const auto& cfg : scenario.syn_flood) {
    attacks_.push_back(std::make_unique<SynFloodAttack>(cfg));
    attacks_.back()->start(*network_, scenario.campus.seed + salt++);
  }
  for (const auto& cfg : scenario.port_scan) {
    attacks_.push_back(std::make_unique<PortScanAttack>(cfg));
    attacks_.back()->start(*network_, scenario.campus.seed + salt++);
  }
  for (const auto& cfg : scenario.ssh_brute_force) {
    attacks_.push_back(std::make_unique<SshBruteForceAttack>(cfg));
    attacks_.back()->start(*network_, scenario.campus.seed + salt++);
  }
  for (const auto& cfg : scenario.flash_crowds) {
    attacks_.push_back(std::make_unique<FlashCrowdEvent>(cfg));
    attacks_.back()->start(*network_, scenario.campus.seed + salt++);
  }
}

}  // namespace campuslab::sim

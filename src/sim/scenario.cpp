#include "campuslab/sim/scenario.h"

#include <algorithm>
#include <cmath>

namespace campuslab::sim {

std::string_view to_string(BehaviorKind kind) noexcept {
  switch (kind) {
    case BehaviorKind::kDnsAmplification: return "dns_amplification";
    case BehaviorKind::kSynFlood: return "syn_flood";
    case BehaviorKind::kPortScan: return "port_scan";
    case BehaviorKind::kSshBruteForce: return "ssh_brute_force";
    case BehaviorKind::kFlashCrowd: return "flash_crowd";
    case BehaviorKind::kWorm: return "worm";
    case BehaviorKind::kExfiltration: return "exfiltration";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// IntensityEnvelope

namespace {

/// The campus time-of-day curve (campus.cpp diurnal_factor), evaluated
/// unconditionally: attack envelopes follow the day shape even when the
/// config keeps benign load flat.
double diurnal_shape(double day_phase_hours, Timestamp t) noexcept {
  const double hours =
      std::fmod(day_phase_hours + t.to_seconds() / 3600.0, 24.0);
  const double d = hours - 14.0;
  const double wrapped = d - 24.0 * std::round(d / 24.0);
  return 0.2 + 0.8 * std::exp(-(wrapped * wrapped) / (2.0 * 4.5 * 4.5));
}

bool positive_finite(double v) noexcept {
  return std::isfinite(v) && v > 0.0;
}
bool nonnegative_finite(double v) noexcept {
  return std::isfinite(v) && v >= 0.0;
}

}  // namespace

IntensityEnvelope IntensityEnvelope::constant(double pps) noexcept {
  IntensityEnvelope e;
  e.kind_ = Kind::kConstant;
  e.a_ = pps;
  return e;
}

IntensityEnvelope IntensityEnvelope::ramp(double from_pps,
                                          double to_pps) noexcept {
  IntensityEnvelope e;
  e.kind_ = Kind::kRamp;
  e.a_ = from_pps;
  e.b_ = to_pps;
  return e;
}

IntensityEnvelope IntensityEnvelope::square_wave(double on_pps,
                                                 Duration period,
                                                 double duty,
                                                 double off_pps) noexcept {
  IntensityEnvelope e;
  e.kind_ = Kind::kSquareWave;
  e.a_ = on_pps;
  e.b_ = off_pps;
  e.period_ = period;
  e.duty_ = duty;
  return e;
}

IntensityEnvelope IntensityEnvelope::diurnal(double peak_pps) noexcept {
  IntensityEnvelope e;
  e.kind_ = Kind::kDiurnal;
  e.a_ = peak_pps;
  return e;
}

double IntensityEnvelope::peak() const noexcept {
  switch (kind_) {
    case Kind::kConstant:
    case Kind::kDiurnal:
      return a_;
    case Kind::kRamp:
    case Kind::kSquareWave:
      return std::max(a_, b_);
  }
  return 0.0;
}

Status IntensityEnvelope::validate() const {
  const auto bad = [](std::string why) {
    return Status(Error::make("scenario_bad_intensity", std::move(why)));
  };
  switch (kind_) {
    case Kind::kConstant:
      if (!positive_finite(a_)) return bad("constant rate must be > 0");
      return Status::success();
    case Kind::kRamp:
      if (!nonnegative_finite(a_) || !nonnegative_finite(b_)) {
        return bad("ramp rates must be finite and >= 0");
      }
      if (a_ <= 0.0 && b_ <= 0.0) return bad("ramp never reaches a rate > 0");
      return Status::success();
    case Kind::kSquareWave:
      if (!positive_finite(a_)) return bad("square-wave on rate must be > 0");
      if (!nonnegative_finite(b_)) {
        return bad("square-wave off rate must be finite and >= 0");
      }
      if (period_ <= Duration{}) return bad("square-wave period must be > 0");
      if (!(duty_ > 0.0 && duty_ <= 1.0)) {
        return bad("square-wave duty cycle must be in (0, 1]");
      }
      return Status::success();
    case Kind::kDiurnal:
      if (!positive_finite(a_)) return bad("diurnal peak rate must be > 0");
      return Status::success();
  }
  return bad("unknown envelope kind");
}

double IntensityEnvelope::rate_at(Timestamp now, Timestamp start,
                                  Duration window,
                                  const CampusConfig& campus) const noexcept {
  const double elapsed = (now - start).to_seconds();
  switch (kind_) {
    case Kind::kConstant:
      return a_;
    case Kind::kRamp: {
      const double span = window.to_seconds();
      if (span <= 0.0) return a_;
      const double f = std::clamp(elapsed / span, 0.0, 1.0);
      return a_ + (b_ - a_) * f;
    }
    case Kind::kSquareWave: {
      const double p = period_.to_seconds();
      if (p <= 0.0) return a_;
      const double pos = std::fmod(std::max(elapsed, 0.0), p);
      return pos < duty_ * p ? a_ : b_;
    }
    case Kind::kDiurnal:
      return a_ * diurnal_shape(campus.day_phase_hours, now);
  }
  return 0.0;
}

std::optional<Duration> IntensityEnvelope::next_active(
    Duration elapsed) const noexcept {
  switch (kind_) {
    case Kind::kConstant:
    case Kind::kDiurnal:
      // Validated envelopes of these kinds are never zero.
      return a_ > 0.0 ? std::optional<Duration>(elapsed) : std::nullopt;
    case Kind::kRamp:
      // A from-zero ramp is positive arbitrarily soon after start; step
      // past the zero point rather than chasing the limit.
      return a_ > 0.0 ? elapsed : elapsed + Duration::millis(1);
    case Kind::kSquareWave: {
      if (b_ > 0.0) return elapsed;  // never actually off
      const double p = period_.to_seconds();
      if (p <= 0.0) return elapsed;
      const double e = std::max(elapsed.to_seconds(), 0.0);
      const double pos = std::fmod(e, p);
      if (pos < duty_ * p) return elapsed;  // inside an on-burst
      return Duration::from_seconds((std::floor(e / p) + 1.0) * p);
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// VictimSelector

VictimSelector VictimSelector::role(HostRole r) const {
  VictimSelector v = *this;
  v.role_ = r;
  return v;
}

VictimSelector VictimSelector::pick(std::size_t k) const {
  VictimSelector v = *this;
  v.pick_ = k;
  return v;
}

VictimSelector VictimSelector::host(packet::Ipv4Address ip) const {
  VictimSelector v = *this;
  v.base_ = Base::kAddress;
  v.address_ = ip;
  return v;
}

VictimSelector VictimSelector::client_index(std::size_t i) const {
  VictimSelector v = *this;
  v.base_ = Base::kClientIndex;
  v.client_index_ = i;
  return v;
}

VictimSelector VictimSelector::first_client() const {
  VictimSelector v = *this;
  v.base_ = Base::kFirstClient;
  return v;
}

VictimSelector VictimSelector::worm_reachable() const {
  VictimSelector v = *this;
  v.base_ = Base::kWormSurface;
  return v;
}

Result<std::vector<Host>> VictimSelector::resolve(const Topology& topology,
                                                  Rng& rng) const {
  const auto bad = [](std::string why) {
    return Error::make("scenario_bad_victim", std::move(why));
  };
  const auto& clients = topology.clients();
  const auto& servers = topology.servers();

  std::vector<Host> set;
  switch (base_) {
    case Base::kAllHosts:
      set.reserve(clients.size() + servers.size());
      set.insert(set.end(), clients.begin(), clients.end());
      set.insert(set.end(), servers.begin(), servers.end());
      break;
    case Base::kFirstClient:
      if (clients.empty()) return bad("topology has no clients");
      set.push_back(clients.front());
      break;
    case Base::kClientIndex:
      if (client_index_ >= clients.size()) {
        return bad("client_index " + std::to_string(client_index_) +
                   " out of range (" + std::to_string(clients.size()) +
                   " clients)");
      }
      set.push_back(clients[client_index_]);
      break;
    case Base::kAddress: {
      const auto& hosts = topology.hosts();
      const auto it = std::find_if(hosts.begin(), hosts.end(),
                                   [this](const Host& h) {
                                     return h.endpoint.ip == address_;
                                   });
      if (it == hosts.end()) return bad("no campus host owns the address");
      set.push_back(*it);
      break;
    }
    case Base::kWormSurface:
      set.reserve(clients.size() + 1);
      set.insert(set.end(), clients.begin(), clients.end());
      set.push_back(topology.storage_server());
      break;
  }

  if (role_) {
    std::erase_if(set, [this](const Host& h) { return h.role != *role_; });
  }
  if (set.empty()) return bad("victim set is empty after filtering");

  if (pick_) {
    if (*pick_ == 0) return bad("pick(0) selects nothing");
    if (*pick_ > set.size()) {
      return bad("pick(" + std::to_string(*pick_) + ") exceeds the " +
                 std::to_string(set.size()) + "-host victim set");
    }
    // Partial Fisher–Yates: the first k slots become the sample.
    for (std::size_t i = 0; i < *pick_; ++i) {
      const std::size_t j = i + rng.below(set.size() - i);
      std::swap(set[i], set[j]);
    }
    set.resize(*pick_);
  }
  return set;
}

// ---------------------------------------------------------------------------
// Scenario

ScenarioBuilder Scenario::attack(BehaviorKind kind) {
  return ScenarioBuilder(kind);
}

Timestamp Scenario::begin() const noexcept {
  Timestamp t = Timestamp::epoch();
  bool first = true;
  for (const auto& p : phases_) {
    if (first || p.start < t) t = p.start;
    first = false;
  }
  return t;
}

Timestamp Scenario::end() const noexcept {
  Timestamp t = Timestamp::epoch();
  for (const auto& p : phases_) {
    t = std::max(t, p.start + p.duration);
  }
  return t;
}

Scenario Scenario::then(Scenario next) const {
  const Duration shift = end() - next.begin();
  Scenario out = *this;
  for (auto p : next.phases_) {
    p.start += shift;
    out.phases_.push_back(std::move(p));
  }
  return out;
}

Scenario Scenario::alongside(Scenario other) const {
  Scenario out = *this;
  for (auto& p : other.phases_) out.phases_.push_back(std::move(p));
  return out;
}

Scenario Scenario::triggered(Scenario next, Duration delay) const {
  const Duration shift = (begin() + delay) - next.begin();
  Scenario out = *this;
  for (auto p : next.phases_) {
    p.start += shift;
    out.phases_.push_back(std::move(p));
  }
  return out;
}

// ---------------------------------------------------------------------------
// ScenarioBuilder

ScenarioBuilder::ScenarioBuilder(BehaviorKind kind) {
  const ScenarioSpec& spec = scenario_spec(kind);
  phase_.kind = kind;
  phase_.shape = spec.default_shape();
  phase_.intensity = IntensityEnvelope::constant(spec.default_rate_pps);
  phase_.duration = spec.default_duration;
  phase_.victim_set = spec.default_victims();
  phase_.name = std::string(spec.name);
}

ScenarioBuilder& ScenarioBuilder::intensity(IntensityEnvelope envelope) & {
  phase_.intensity = envelope;
  return *this;
}
ScenarioBuilder&& ScenarioBuilder::intensity(IntensityEnvelope envelope) && {
  return std::move(intensity(envelope));
}

ScenarioBuilder& ScenarioBuilder::rate(double pps) & {
  return intensity(IntensityEnvelope::constant(pps));
}
ScenarioBuilder&& ScenarioBuilder::rate(double pps) && {
  return std::move(rate(pps));
}

ScenarioBuilder& ScenarioBuilder::starting_at(Timestamp t) & {
  phase_.start = t;
  return *this;
}
ScenarioBuilder&& ScenarioBuilder::starting_at(Timestamp t) && {
  return std::move(starting_at(t));
}

ScenarioBuilder& ScenarioBuilder::lasting(Duration d) & {
  phase_.duration = d;
  return *this;
}
ScenarioBuilder&& ScenarioBuilder::lasting(Duration d) && {
  return std::move(lasting(d));
}

ScenarioBuilder& ScenarioBuilder::during(Timestamp t0, Timestamp t1) & {
  phase_.start = t0;
  phase_.duration = t1 - t0;
  return *this;
}
ScenarioBuilder&& ScenarioBuilder::during(Timestamp t0, Timestamp t1) && {
  return std::move(during(t0, t1));
}

ScenarioBuilder& ScenarioBuilder::against(VictimSelector selector) & {
  phase_.victim_set = selector;
  return *this;
}
ScenarioBuilder&& ScenarioBuilder::against(VictimSelector selector) && {
  return std::move(against(selector));
}

ScenarioBuilder& ScenarioBuilder::with(BehaviorShape shape) & {
  phase_.shape = std::move(shape);
  return *this;
}
ScenarioBuilder&& ScenarioBuilder::with(BehaviorShape shape) && {
  return std::move(with(std::move(shape)));
}

ScenarioBuilder& ScenarioBuilder::with_seed(std::uint64_t seed) & {
  phase_.seed = seed;
  return *this;
}
ScenarioBuilder&& ScenarioBuilder::with_seed(std::uint64_t seed) && {
  return std::move(with_seed(seed));
}

ScenarioBuilder& ScenarioBuilder::named(std::string phase_name) & {
  phase_.name = std::move(phase_name);
  return *this;
}
ScenarioBuilder&& ScenarioBuilder::named(std::string phase_name) && {
  return std::move(named(std::move(phase_name)));
}

Scenario ScenarioBuilder::build() const& {
  Scenario s;
  s.name = phase_.name;
  s.phases_.push_back(phase_);
  return s;
}

Scenario ScenarioBuilder::build() && {
  Scenario s;
  s.name = phase_.name;
  s.phases_.push_back(std::move(phase_));
  return s;
}

}  // namespace campuslab::sim

#include "campuslab/sim/campus.h"

#include <cmath>

namespace campuslab::sim {

namespace {
// Client subnets hang off a shared distribution/access link; the server
// DMZ is provisioned at border speed. 2 Gbps keeps the access link an
// order below the upstream so a volumetric attack visibly crowds out
// benign client traffic until the ingress filter removes it.
constexpr double kClientAccessGbps = 2.0;
constexpr std::size_t kClientAccessQueueBytes = 1'500'000;
}  // namespace

CampusNetwork::CampusNetwork(EventQueue& events, const CampusConfig& config)
    : events_(&events), config_(config), topology_(config),
      upstream_in_(config.upstream_gbps * 1e9, config.upstream_delay,
                   config.upstream_queue_bytes),
      upstream_out_(config.upstream_gbps * 1e9, config.upstream_delay,
                    config.upstream_queue_bytes),
      client_access_(kClientAccessGbps * 1e9, Duration::micros(200),
                     kClientAccessQueueBytes) {}

void CampusNetwork::inject(Direction dir, packet::Packet pkt) {
  const Timestamp now = events_->now();
  pkt.ts = now;
  if (auto* sc = scenario_slot(pkt)) {
    ++sc->offered;
    sc->bytes_offered += pkt.size();
  }
  if (dir == Direction::kOutbound) {
    accounting_.offered_out.count(pkt);
    const auto delivery = upstream_out_.transmit(pkt.size(), now);
    if (!delivery) {
      if (auto* sc = scenario_slot(pkt)) ++sc->lost;
      return;  // dropped in the border egress queue
    }
    // Packets are pooled-buffer handles now: capturing one by value is
    // a refcount bump, so no shared_ptr wrapper is needed.
    events_->schedule_at(*delivery, [this, pkt = std::move(pkt)]() mutable {
      pkt.ts = events_->now();
      accounting_.delivered_out.count(pkt);
      if (auto* sc = scenario_slot(pkt)) {
        ++sc->tapped;
        ++sc->delivered;
      }
      if (tap_) tap_(pkt, Direction::kOutbound);
    });
    return;
  }

  accounting_.offered_in.count(pkt);
  const auto delivery = upstream_in_.transmit(pkt.size(), now);
  if (!delivery) {
    accounting_.lost_upstream.count(pkt);
    if (auto* sc = scenario_slot(pkt)) ++sc->lost;
    return;
  }
  events_->schedule_at(*delivery, [this, pkt = std::move(pkt)]() mutable {
    pkt.ts = events_->now();
    deliver_inbound(std::move(pkt));
  });
}

void CampusNetwork::deliver_inbound(packet::Packet pkt) {
  accounting_.tapped_in.count(pkt);
  if (auto* sc = scenario_slot(pkt)) ++sc->tapped;
  if (tap_) tap_(pkt, Direction::kInbound);

  if (filter_ && filter_(pkt)) {
    accounting_.filtered.count(pkt);
    if (auto* sc = scenario_slot(pkt)) ++sc->filtered;
    return;
  }

  // Client-subnet destinations share the access link; the DMZ does not.
  packet::PacketView view(pkt);
  bool to_client_subnet = false;
  if (view.valid() && view.is_ipv4()) {
    const auto dst = view.ipv4().dst;
    // Wired 10.x.16.0/20 and WiFi 10.x.32.0/19 per the address plan.
    const auto base = topology_.campus_prefix();
    to_client_subnet =
        dst.in_prefix(packet::Ipv4Address(base.value() | (16u << 8)), 20) ||
        dst.in_prefix(packet::Ipv4Address(base.value() | (32u << 8)), 19);
  }
  if (to_client_subnet) {
    const auto delivery = client_access_.transmit(pkt.size(),
                                                  events_->now());
    if (!delivery) {
      accounting_.lost_access.count(pkt);
      if (auto* sc = scenario_slot(pkt)) ++sc->lost;
      return;
    }
    events_->schedule_at(*delivery, [this, pkt = std::move(pkt)] {
      accounting_.delivered.count(pkt);
      if (auto* sc = scenario_slot(pkt)) ++sc->delivered;
    });
    return;
  }
  accounting_.delivered.count(pkt);
  if (auto* sc = scenario_slot(pkt)) ++sc->delivered;
}

double CampusNetwork::diurnal_factor(Timestamp t) const noexcept {
  if (!config_.diurnal) return 1.0;
  const double hours =
      std::fmod(config_.day_phase_hours + t.to_seconds() / 3600.0, 24.0);
  // Gaussian bump peaking at 14:00 over a 20% overnight floor.
  const double d = hours - 14.0;
  // Wrap distance so 23:00 and 1:00 are both "3 hours from 2am trough".
  const double wrapped = d - 24.0 * std::round(d / 24.0);
  return 0.2 + 0.8 * std::exp(-(wrapped * wrapped) / (2.0 * 4.5 * 4.5));
}

}  // namespace campuslab::sim

#include "campuslab/sim/traffic.h"

#include <algorithm>
#include <cassert>

#include "campuslab/packet/dns.h"
#include "campuslab/resilience/fault.h"

namespace campuslab::sim {

using packet::DnsType;
using packet::Endpoint;
using packet::PacketBuilder;
using packet::TcpFlags;
using packet::TrafficLabel;

namespace {

constexpr std::size_t kMtuPayload = 1460;  // TCP MSS on Ethernet

Direction reverse(Direction d) noexcept {
  return d == Direction::kInbound ? Direction::kOutbound
                                  : Direction::kInbound;
}

std::uint16_t ephemeral_port(Rng& rng) {
  return static_cast<std::uint16_t>(1024 + rng.below(64512));
}

}  // namespace

TrafficGenerator::TrafficGenerator(CampusNetwork& net, AppRates rates,
                                   std::uint64_t seed)
    : net_(&net), rates_(rates), rng_(seed),
      apps_{App{"web", rates.web, {}, rng_.fork(1), {}},
            App{"web_in", rates.web_in, {}, rng_.fork(2), {}},
            App{"video", rates.video, {}, rng_.fork(3), {}},
            App{"dns", rates.dns, {}, rng_.fork(4), {}},
            App{"dns_in", rates.dns_in, {}, rng_.fork(5), {}},
            App{"ssh", rates.ssh, {}, rng_.fork(6), {}},
            App{"mail", rates.mail, {}, rng_.fork(7), {}},
            App{"bulk", rates.bulk, {}, rng_.fork(8), {}}} {
  apps_[0].spawn = [this] { web_session(apps_[0]); };
  apps_[1].spawn = [this] { web_inbound_session(apps_[1]); };
  apps_[2].spawn = [this] { video_session(apps_[2]); };
  apps_[3].spawn = [this] { dns_session(apps_[3]); };
  apps_[4].spawn = [this] { dns_inbound_session(apps_[4]); };
  apps_[5].spawn = [this] { ssh_session(apps_[5]); };
  apps_[6].spawn = [this] { mail_session(apps_[6]); };
  apps_[7].spawn = [this] { bulk_session(apps_[7]); };
}

void TrafficGenerator::start() {
  for (auto& app : apps_) {
    if (app.rate > 0.0) arm(app);
  }
}

const TrafficStats& TrafficGenerator::stats(const std::string& app) const {
  for (const auto& a : apps_)
    if (a.name == app) return a.stats;
  assert(false && "unknown app name");
  static const TrafficStats kEmpty{};
  return kEmpty;
}

std::uint64_t TrafficGenerator::total_packets() const noexcept {
  std::uint64_t t = 0;
  for (const auto& a : apps_) t += a.stats.packets;
  return t;
}

void TrafficGenerator::arm(App& app) {
  // Thinned Poisson process: draw inter-arrivals at the peak rate, then
  // accept with probability diurnal*load_scale (capped at 1) — this
  // modulates intensity without re-deriving the arrival stream.
  const double peak_rate = app.rate * std::max(net_->config().load_scale, 1.0);
  const Duration gap =
      Duration::from_seconds(app.rng.exponential(1.0 / peak_rate));
  net_->events().schedule_in(gap, [this, &app] {
    if (stopped_) return;
    const double accept =
        net_->diurnal_factor(net_->events().now()) *
        net_->config().load_scale /
        std::max(net_->config().load_scale, 1.0);
    if (app.rng.chance(std::min(accept, 1.0))) {
      ++app.stats.sessions;
      app.spawn();
    }
    arm(app);
  });
}

void TrafficGenerator::emit(Direction dir, packet::Packet pkt, App& app) {
  if (auto s = resilience::fault_point_status("sim.emit"); !s.ok()) {
    ++app.stats.faulted_packets;
    return;
  }
  ++app.stats.packets;
  app.stats.bytes += pkt.size();
  net_->inject(dir, std::move(pkt));
}

// ---------------------------------------------------------------- transfer

void TrafficGenerator::transfer(App& app, Endpoint sender,
                                Direction sender_dir, Endpoint receiver,
                                std::uint64_t payload_bytes, double pace_bps,
                                Duration start_after) {
  // Lazy burst-by-burst emission so multi-megabyte transfers never hold
  // all their packets in memory at once.
  struct State {
    Endpoint sender, receiver;
    Direction dir;
    std::uint64_t remaining;
    double pace_bps;
    std::uint32_t seq = 1000;
    std::uint32_t acked = 0;
    int pkts_since_ack = 0;
  };
  auto st = std::make_shared<State>(State{sender, receiver, sender_dir,
                                          payload_bytes, pace_bps});
  constexpr int kBurst = 8;

  // Self-passing continuation (see attacks.cpp drive()): each queued
  // event owns its own copy of the closure, so the state dies with the
  // last queued event instead of leaking in a shared_ptr cycle.
  auto step = [this, st, &app](auto self) -> void {
    const Timestamp now = net_->events().now();
    for (int i = 0; i < kBurst && st->remaining > 0; ++i) {
      const std::size_t chunk =
          static_cast<std::size_t>(std::min<std::uint64_t>(st->remaining,
                                                           kMtuPayload));
      auto pkt = PacketBuilder(now)
                     .tcp(st->sender, st->receiver,
                          TcpFlags::kAck | TcpFlags::kPsh, st->seq,
                          st->acked)
                     .payload_size(chunk)
                     .build();
      emit(st->dir, std::move(pkt), app);
      st->seq += static_cast<std::uint32_t>(chunk);
      st->remaining -= chunk;
      if (++st->pkts_since_ack >= 8) {
        st->pkts_since_ack = 0;
        auto ack = PacketBuilder(now)
                       .tcp(st->receiver, st->sender, TcpFlags::kAck, 2000,
                            st->seq)
                       .build();
        emit(reverse(st->dir), std::move(ack), app);
      }
    }
    if (st->remaining > 0) {
      const double burst_bits =
          static_cast<double>(kBurst) * (kMtuPayload + 54) * 8.0;
      net_->events().schedule_in(
          Duration::from_seconds(burst_bits / st->pace_bps),
          [self] { self(self); });
    } else {
      // FIN/ACK teardown.
      auto fin = PacketBuilder(net_->events().now())
                     .tcp(st->sender, st->receiver,
                          TcpFlags::kFin | TcpFlags::kAck, st->seq, st->acked)
                     .build();
      emit(st->dir, std::move(fin), app);
      auto finack = PacketBuilder(net_->events().now())
                        .tcp(st->receiver, st->sender,
                             TcpFlags::kFin | TcpFlags::kAck, 2000,
                             st->seq + 1)
                        .build();
      emit(reverse(st->dir), std::move(finack), app);
    }
  };
  net_->events().schedule_in(start_after, [step] { step(step); });
}

// ----------------------------------------------------------------- web

void TrafficGenerator::web_session(App& app) {
  auto& rng = app.rng;
  Endpoint client = net_->topology().random_client(rng).endpoint;
  client.port = ephemeral_port(rng);
  const Endpoint server = Topology::external_host(
      0, static_cast<std::uint32_t>(rng.below(64)), 443);
  const Duration rtt = Duration::millis(
      static_cast<std::int64_t>(10 + rng.below(60)));
  const Timestamp now = net_->events().now();

  // Handshake.
  emit(Direction::kOutbound,
       PacketBuilder(now).tcp(client, server, TcpFlags::kSyn, 999).build(),
       app);
  net_->events().schedule_in(rtt, [this, client, server, &app] {
    emit(Direction::kInbound,
         PacketBuilder(net_->events().now())
             .tcp(server, client, TcpFlags::kSyn | TcpFlags::kAck, 1999,
                  1000)
             .build(),
         app);
    emit(Direction::kOutbound,
         PacketBuilder(net_->events().now())
             .tcp(client, server, TcpFlags::kAck, 1000, 2000)
             .build(),
         app);
  });

  // Request after the handshake, response transfer after server think.
  const std::size_t req_bytes = 300 + rng.below(500);
  net_->events().schedule_in(rtt + Duration::millis(2),
                             [this, client, server, req_bytes, &app] {
    emit(Direction::kOutbound,
         PacketBuilder(net_->events().now())
             .tcp(client, server, TcpFlags::kAck | TcpFlags::kPsh, 1000,
                  2000)
             .payload_size(req_bytes)
             .build(),
         app);
  });

  const auto response_bytes = static_cast<std::uint64_t>(
      std::min(rng.pareto(6e3, 1.25), 3e6));
  const double pace = rng.uniform(20e6, 200e6);
  const Duration think = Duration::millis(
      static_cast<std::int64_t>(20 + rng.below(100)));
  transfer(app, server, Direction::kInbound, client, response_bytes, pace,
           rtt + think);
}

void TrafficGenerator::web_inbound_session(App& app) {
  auto& rng = app.rng;
  Endpoint client = Topology::external_host(
      4, static_cast<std::uint32_t>(rng.below(512)), 0);
  client.port = ephemeral_port(rng);
  Endpoint server = net_->topology().web_server().endpoint;
  server.port = 443;
  const Timestamp now = net_->events().now();

  emit(Direction::kInbound,
       PacketBuilder(now).tcp(client, server, TcpFlags::kSyn, 499).build(),
       app);
  emit(Direction::kOutbound,
       PacketBuilder(now)
           .tcp(server, client, TcpFlags::kSyn | TcpFlags::kAck, 799, 500)
           .build(),
       app);
  emit(Direction::kInbound,
       PacketBuilder(now)
           .tcp(client, server, TcpFlags::kAck | TcpFlags::kPsh, 500, 800)
           .payload_size(250 + rng.below(400))
           .build(),
       app);
  const auto response_bytes = static_cast<std::uint64_t>(
      std::min(rng.pareto(4e3, 1.3), 1e6));
  transfer(app, server, Direction::kOutbound, client, response_bytes,
           rng.uniform(50e6, 400e6), Duration::millis(5));
}

// ---------------------------------------------------------------- video

void TrafficGenerator::video_session(App& app) {
  auto& rng = app.rng;
  Endpoint client = net_->topology().random_client(rng).endpoint;
  client.port = ephemeral_port(rng);
  const Endpoint server = Topology::external_host(
      1, static_cast<std::uint32_t>(rng.below(32)), 443);

  const double bitrate = rng.uniform(2e6, 5e6);
  const double duration_s = rng.uniform(20.0, 90.0);
  const auto total_bytes =
      static_cast<std::uint64_t>(bitrate * duration_s / 8.0);
  // Stream pacing at ~1.2x the nominal bitrate (client buffers ahead).
  transfer(app, server, Direction::kInbound, client, total_bytes,
           bitrate * 1.2, Duration::millis(30));
}

// ------------------------------------------------------------------ dns

void TrafficGenerator::dns_session(App& app) {
  auto& rng = app.rng;
  Endpoint client = net_->topology().random_client(rng).endpoint;
  client.port = ephemeral_port(rng);
  const Endpoint resolver = Topology::external_host(
      2, static_cast<std::uint32_t>(rng.below(4)), 53);

  static const char* kNames[] = {
      "www.example.edu",      "cdn.courseware.net", "api.github.com",
      "lib.campus.edu",       "mail.google.com",    "update.vendor.io",
      "video.stream.example", "registry.npmjs.org"};
  const auto name = kNames[rng.below(8)];
  const auto id = static_cast<std::uint16_t>(rng.below(65536));
  const auto qtype = rng.chance(0.9) ? DnsType::kA : DnsType::kAaaa;

  const auto query = packet::make_dns_query(id, name, qtype);
  emit(Direction::kOutbound,
       packet::build_dns_packet(net_->events().now(), client, resolver,
                                query),
       app);

  const Duration rtt = Duration::millis(
      static_cast<std::int64_t>(5 + rng.below(40)));
  // Most answers are small; ~12% are DNSSEC/TXT-fattened responses of
  // up to ~1.4 KB, so benign DNS overlaps the low end of reflection
  // attack sizes (keeps detection honest).
  const std::size_t resp_size = rng.chance(0.12)
                                    ? 600 + rng.below(800)
                                    : 120 + rng.below(360);
  net_->events().schedule_in(
      rtt, [this, query, client, resolver, resp_size, &app] {
        const auto resp = packet::make_dns_response(query, 2, resp_size);
        emit(Direction::kInbound,
             packet::build_dns_packet(net_->events().now(), resolver,
                                      client, resp),
             app);
      });
}

void TrafficGenerator::dns_inbound_session(App& app) {
  auto& rng = app.rng;
  Endpoint querier{packet::MacAddress::from_id(0x00F00000u +
                                               static_cast<std::uint32_t>(
                                                   rng.below(4096))),
                   Topology::random_external_address(rng),
                   ephemeral_port(rng)};
  Endpoint server = net_->topology().dns_server().endpoint;
  server.port = 53;

  const auto id = static_cast<std::uint16_t>(rng.below(65536));
  const auto query = packet::make_dns_query(id, "www.campus.edu",
                                            DnsType::kA);
  emit(Direction::kInbound,
       packet::build_dns_packet(net_->events().now(), querier, server,
                                query),
       app);
  net_->events().schedule_in(
      Duration::micros(300), [this, query, querier, server, &app] {
        const auto resp = packet::make_dns_response(query, 1, 140);
        emit(Direction::kOutbound,
             packet::build_dns_packet(net_->events().now(), server, querier,
                                      resp),
             app);
      });
}

// ------------------------------------------------------------------ ssh

void TrafficGenerator::ssh_session(App& app) {
  auto& rng = app.rng;
  // Interactive session from an external address into the bastion.
  Endpoint client = Topology::external_host(
      4, static_cast<std::uint32_t>(rng.below(128)), 0);
  client.port = ephemeral_port(rng);
  Endpoint server = net_->topology().ssh_gateway().endpoint;
  server.port = 22;
  const Timestamp now = net_->events().now();

  emit(Direction::kInbound,
       PacketBuilder(now).tcp(client, server, TcpFlags::kSyn, 10).build(),
       app);
  emit(Direction::kOutbound,
       PacketBuilder(now)
           .tcp(server, client, TcpFlags::kSyn | TcpFlags::kAck, 20, 11)
           .build(),
       app);
  emit(Direction::kInbound,
       PacketBuilder(now).tcp(client, server, TcpFlags::kAck, 11, 21).build(),
       app);

  // Key exchange burst, then keystroke/echo pairs.
  const int keystrokes =
      static_cast<int>(std::min(rng.pareto(20.0, 1.3), 300.0));
  struct KeyState {
    Endpoint client, server;
    int remaining;
  };
  auto st = std::make_shared<KeyState>(KeyState{client, server, keystrokes});
  // Self-passing continuation (see attacks.cpp drive()) — no cycle.
  auto step = [this, st, &app, &rng](auto self) -> void {
    if (st->remaining-- <= 0) {
      const Timestamp t = net_->events().now();
      emit(Direction::kInbound,
           PacketBuilder(t)
               .tcp(st->client, st->server, TcpFlags::kFin | TcpFlags::kAck,
                    500, 600)
               .build(),
           app);
      emit(Direction::kOutbound,
           PacketBuilder(t)
               .tcp(st->server, st->client, TcpFlags::kFin | TcpFlags::kAck,
                    600, 501)
               .build(),
           app);
      return;
    }
    const Timestamp t = net_->events().now();
    emit(Direction::kInbound,
         PacketBuilder(t)
             .tcp(st->client, st->server, TcpFlags::kAck | TcpFlags::kPsh,
                  500, 600)
             .payload_size(36 + rng.below(64))
             .build(),
         app);
    emit(Direction::kOutbound,
         PacketBuilder(t)
             .tcp(st->server, st->client, TcpFlags::kAck | TcpFlags::kPsh,
                  600, 500)
             .payload_size(36 + rng.below(128))
             .build(),
         app);
    net_->events().schedule_in(
        Duration::from_seconds(rng.exponential(0.6)),
        [self] { self(self); });
  };
  net_->events().schedule_in(Duration::millis(50), [step] { step(step); });
}

// ----------------------------------------------------------------- mail

void TrafficGenerator::mail_session(App& app) {
  auto& rng = app.rng;
  const bool inbound = rng.chance(0.6);
  Endpoint peer = Topology::external_host(
      3, static_cast<std::uint32_t>(rng.below(64)), inbound ? 0 : 25);
  if (inbound) peer.port = ephemeral_port(rng);
  Endpoint server = net_->topology().mail_server().endpoint;
  server.port = inbound ? 25 : ephemeral_port(rng);

  const auto message_bytes = static_cast<std::uint64_t>(
      std::min(rng.pareto(8e3, 1.3), 2e6));
  if (inbound) {
    transfer(app, peer, Direction::kInbound, server, message_bytes,
             rng.uniform(10e6, 80e6), Duration::millis(5));
  } else {
    transfer(app, server, Direction::kOutbound, peer, message_bytes,
             rng.uniform(10e6, 80e6), Duration::millis(5));
  }
}

// ----------------------------------------------------------------- bulk

void TrafficGenerator::bulk_session(App& app) {
  auto& rng = app.rng;
  Endpoint server = net_->topology().storage_server().endpoint;
  server.port = ephemeral_port(rng);
  const Endpoint mirror = Topology::external_host(
      5, static_cast<std::uint32_t>(rng.below(8)), 873);

  const auto total_bytes = static_cast<std::uint64_t>(
      std::min(rng.pareto(1e6, 1.1), 10e6));
  transfer(app, server, Direction::kOutbound, mirror, total_bytes,
           rng.uniform(100e6, 500e6), Duration::millis(10));
}

}  // namespace campuslab::sim

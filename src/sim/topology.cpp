#include "campuslab/sim/topology.h"

#include <cassert>

namespace campuslab::sim {

using packet::Endpoint;
using packet::Ipv4Address;
using packet::MacAddress;

namespace {

Host make_host(std::uint32_t id, HostRole role, Ipv4Address ip) {
  Host h;
  h.id = id;
  h.role = role;
  h.endpoint = Endpoint{MacAddress::from_id(id), ip, 0};
  return h;
}

}  // namespace

Topology::Topology(const CampusConfig& config) {
  // 10.x.0.0/16 with x in [1, 250] derived from the seed.
  const auto second_octet =
      static_cast<std::uint8_t>(1 + (config.seed % 250));
  prefix_ = Ipv4Address(10, second_octet, 0, 0);
  const std::uint32_t base = prefix_.value();

  std::uint32_t next_id = 1;
  // Server DMZ: 10.x.1.0/24.
  auto add_server = [&](HostRole role, std::uint8_t last) -> std::size_t {
    servers_.push_back(
        make_host(next_id++, role, Ipv4Address(base | (1u << 8) | last)));
    return servers_.size() - 1;
  };
  const auto web_idx = add_server(HostRole::kWebServer, 10);
  const auto dns_idx = add_server(HostRole::kDnsServer, 11);
  const auto mail_idx = add_server(HostRole::kMailServer, 12);
  const auto ssh_idx = add_server(HostRole::kSshGateway, 13);
  const auto sto_idx = add_server(HostRole::kStorageServer, 14);

  // Wired clients: 10.x.16.0/20; WiFi: 10.x.32.0/19.
  clients_.reserve(static_cast<std::size_t>(config.wired_clients) +
                   static_cast<std::size_t>(config.wifi_clients));
  for (int i = 0; i < config.wired_clients; ++i) {
    clients_.push_back(make_host(
        next_id++, HostRole::kWiredClient,
        Ipv4Address(base | (16u << 8) | static_cast<std::uint32_t>(i + 2))));
  }
  for (int i = 0; i < config.wifi_clients; ++i) {
    clients_.push_back(make_host(
        next_id++, HostRole::kWifiClient,
        Ipv4Address(base | (32u << 8) | static_cast<std::uint32_t>(i + 2))));
  }

  hosts_ = servers_;
  hosts_.insert(hosts_.end(), clients_.begin(), clients_.end());

  web_server_ = &servers_[web_idx];
  dns_server_ = &servers_[dns_idx];
  mail_server_ = &servers_[mail_idx];
  ssh_gateway_ = &servers_[ssh_idx];
  storage_server_ = &servers_[sto_idx];
}

const Host& Topology::random_client(Rng& rng) const {
  assert(!clients_.empty());
  return clients_[rng.below(clients_.size())];
}

Endpoint Topology::external_host(std::uint32_t kind, std::uint32_t index,
                                 std::uint16_t port) {
  // Deterministic per-(kind,index) public addresses in documented
  // service ranges; MACs are the upstream router's from the campus view,
  // but a unique MAC per external host keeps frames distinguishable.
  static constexpr std::uint32_t kBases[] = {
      0x97650000,  // 151.101.0.0   CDN / web
      0xC6260000,  // 198.38.0.0    video streaming
      0x08080000,  // 8.8.0.0       public DNS resolvers
      0x11570000,  // 17.87.0.0     mail peers
      0x2D4F0000,  // 45.79.0.0     generic cloud / ssh peers
      0x68100000,  // 104.16.0.0    bulk / mirrors
  };
  const std::uint32_t family = kind % (sizeof kBases / sizeof kBases[0]);
  const std::uint32_t ip =
      kBases[family] | ((index * 2654435761u) & 0xFFFF);
  return Endpoint{MacAddress::from_id(0x00E00000u | (family << 16) |
                                      (index & 0xFFFF)),
                  Ipv4Address(ip), port};
}

Ipv4Address Topology::random_external_address(Rng& rng) {
  // Avoid RFC1918 and the campus 10/8 space entirely: pick from a few
  // public /8s with random host parts.
  static constexpr std::uint8_t kFirstOctets[] = {23, 45, 66, 89, 101,
                                                  133, 155, 177, 199, 203};
  const auto first =
      kFirstOctets[rng.below(sizeof kFirstOctets / sizeof kFirstOctets[0])];
  return Ipv4Address((static_cast<std::uint32_t>(first) << 24) |
                     static_cast<std::uint32_t>(rng.below(1u << 24)));
}

}  // namespace campuslab::sim

// DriftDetector — windowed distribution-shift detection over the live
// verdict stream, the trigger of the continuous automation loop.
//
// The deployed model emits a score (confidence of the event class) and
// a predicted class for every inspected packet. The detector buckets
// scores into a small histogram per window of `window` verdicts and
// compares each completed window against a reference window captured
// just after the last (re)deploy:
//
//   score signal  — total-variation distance between the window's score
//                   histogram and the reference histogram;
//   rate signal   — absolute shift of the predicted-positive rate.
//
// The drift score is the max of the two. Hysteresis keeps the trigger
// honest: `trigger_windows` consecutive windows over
// `trigger_threshold` arm it, and once armed it stays armed until a
// window falls to `clear_threshold` (strictly below the trigger) or
// the loop rebase()s after deploying a fresh model — a score
// oscillating at the threshold can neither flap the state nor
// re-trigger mid-cycle.
//
// Signals are published as gauges (control.drift_score_ppm,
// control.drift_rate_delta_ppm, control.drift_state) so an operator
// watches drift build before the loop acts on it.
//
// Concurrency: observe()/evaluate_window()/rebase() belong to the one
// thread that runs the packet path and the loop (in the testbed, the
// simulation thread). state() and the last-signal reads are atomic and
// safe from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace campuslab::obs {
class Counter;
class Gauge;
}  // namespace campuslab::obs

namespace campuslab::control {

struct DriftConfig {
  /// Verdicts per evaluation window.
  std::size_t window = 2048;
  /// Score-histogram resolution.
  std::size_t bins = 16;
  /// Drift score at or above this marks a window as drifted.
  double trigger_threshold = 0.25;
  /// Hysteresis low-water: an armed detector disarms only when a
  /// window's drift score falls to or below this. Must be below
  /// trigger_threshold.
  double clear_threshold = 0.12;
  /// Consecutive drifted windows required to arm the trigger.
  std::size_t trigger_windows = 2;
  /// Windows with fewer verdicts than this are not judged (a quiet
  /// interval is not evidence of drift).
  std::size_t min_samples = 256;
};

enum class DriftState : int { kCalm = 0, kDrifted = 1 };

class DriftDetector {
 public:
  explicit DriftDetector(DriftConfig config = {});

  /// Feed one verdict from the live stream: `score` is the model's
  /// confidence of the event class in [0, 1], `positive` its predicted
  /// class. Evaluates automatically whenever a window fills.
  void observe(double score, bool positive) noexcept;

  /// Judge whatever the current partial window holds and start a new
  /// window. Windows below min_samples are discarded unjudged; the
  /// first judgeable window after start/rebase becomes the reference.
  void evaluate_window() noexcept;

  /// Re-baseline after a deploy: drop the reference and the partial
  /// window and disarm. The next full window becomes the reference.
  void rebase() noexcept;

  DriftState state() const noexcept {
    return static_cast<DriftState>(state_.load(std::memory_order_acquire));
  }
  bool triggered() const noexcept { return state() == DriftState::kDrifted; }

  /// Last judged window's signals (0 before the first judged window).
  double last_score_distance() const noexcept {
    return ppm_to_fraction(last_score_ppm_.load(std::memory_order_relaxed));
  }
  double last_rate_delta() const noexcept {
    return ppm_to_fraction(last_rate_ppm_.load(std::memory_order_relaxed));
  }
  bool has_reference() const noexcept { return !reference_.empty(); }

  std::uint64_t windows_judged() const noexcept { return windows_judged_; }
  std::uint64_t triggers() const noexcept { return triggers_; }
  /// Calm<->drifted state changes — the no-flap property is this
  /// staying small while the drift score oscillates at the threshold.
  std::uint64_t transitions() const noexcept { return transitions_; }

 private:
  static double ppm_to_fraction(std::int64_t ppm) noexcept {
    return static_cast<double>(ppm) * 1e-6;
  }
  void reset_window() noexcept;
  void set_state(DriftState next) noexcept;

  DriftConfig config_;
  // Current (partial) window, owned by the observing thread.
  std::vector<std::uint64_t> counts_;
  std::uint64_t positives_ = 0;
  std::uint64_t samples_ = 0;
  // Reference distribution (fractions); empty until the first judged
  // window after start/rebase.
  std::vector<double> reference_;
  double reference_positive_rate_ = 0.0;
  std::size_t hot_streak_ = 0;
  std::uint64_t windows_judged_ = 0;
  std::uint64_t triggers_ = 0;
  std::uint64_t transitions_ = 0;
  // Cross-thread-readable signals.
  std::atomic<int> state_{0};
  std::atomic<std::int64_t> last_score_ppm_{0};
  std::atomic<std::int64_t> last_rate_ppm_{0};
  // obs
  obs::Gauge* obs_state_ = nullptr;
  obs::Gauge* obs_score_ = nullptr;
  obs::Gauge* obs_rate_ = nullptr;
  obs::Counter* obs_windows_ = nullptr;
  obs::Counter* obs_triggers_ = nullptr;
};

}  // namespace campuslab::control

// TaskManager — concurrent automation tasks on one border pipeline.
//
// §2 observes that modern data planes are "currently not capable of
// supporting this capability at scale; i.e., executing hundreds or
// thousands of such tasks concurrently and in real time". TaskManager
// makes that limit measurable: each deployed task is a compiled
// classifier + action; the manager chains them over one shared feature
// stage, refuses deployments whose combined footprint exceeds the
// switch budget, and reports the aggregate resource bill (the T-SCALE
// experiment sweeps it).
//
// Resource composition model (RMT): independent tasks place their
// tables in the SAME stages side by side, so pipeline depth is the max
// over tasks and the feature/register stage is shared; what adds up —
// and eventually says "no more tasks" — is per-stage memory (SRAM bits
// and TCAM entries, summed against the chip-wide pools).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "campuslab/control/fast_loop.h"

namespace campuslab::control {

class TaskManager {
 public:
  explicit TaskManager(dataplane::ResourceBudget budget)
      : budget_(budget) {}

  /// Deploy a package as a new concurrent task. Fails with "budget"
  /// when the combined pipeline would no longer fit. Returns the task
  /// slot id.
  Result<std::size_t> deploy(const DeploymentPackage& package);

  /// Disarm a task (its slot stays; stats are preserved).
  Status undeploy(std::size_t slot);

  /// Run one packet through every armed task; the packet is dropped if
  /// ANY task's action says drop. Per-task stats update independently.
  bool inspect(const packet::Packet& pkt);

  /// Install as a network's ingress filter. Must outlive the network's
  /// use of the filter.
  void install(sim::CampusNetwork& network);

  std::size_t active_tasks() const noexcept;
  std::size_t total_slots() const noexcept { return slots_.size(); }

  const MitigationStats& task_stats(std::size_t slot) const {
    return slots_[slot].loop->stats();
  }
  const AutomationTask& task(std::size_t slot) const {
    return slots_[slot].task;
  }

  /// The combined footprint of everything currently armed.
  dataplane::ResourceReport combined_resources() const;

  const dataplane::ResourceBudget& budget() const noexcept {
    return budget_;
  }

 private:
  struct Slot {
    AutomationTask task;
    std::unique_ptr<FastLoop> loop;
    dataplane::ResourceReport resources;
    bool armed = false;
  };

  dataplane::ResourceReport combined_with(
      const dataplane::ResourceReport& extra) const;

  dataplane::ResourceBudget budget_;
  std::vector<Slot> slots_;
};

}  // namespace campuslab::control

// FastLoop — the fast, online control loop of Figure 2: sense (parse +
// registers), infer (compiled model), react (drop / rate-limit) on
// every inbound packet at the campus border.
//
// Wraps a deployed SoftwareSwitch as a CampusNetwork ingress filter,
// measures per-packet wall-clock latency (the FIG2 contrast with the
// development loop), and keeps ground-truth-scored mitigation counters
// for road-test reports.
#pragma once

#include <memory>

#include "campuslab/control/development_loop.h"
#include "campuslab/resilience/health.h"
#include "campuslab/sim/campus.h"
#include "campuslab/util/stats.h"

namespace campuslab::control {

struct MitigationStats {
  std::uint64_t inspected = 0;
  std::uint64_t dropped = 0;
  std::uint64_t rate_limited_dropped = 0;
  // Ground-truth-scored (uses the simulator's labels).
  std::uint64_t attack_dropped = 0;
  std::uint64_t benign_dropped = 0;
  std::uint64_t attack_passed = 0;
  std::uint64_t benign_passed = 0;

  double drop_precision() const noexcept {
    const auto total = attack_dropped + benign_dropped;
    return total == 0 ? 0.0
                      : static_cast<double>(attack_dropped) /
                            static_cast<double>(total);
  }
  double attack_block_rate() const noexcept {
    const auto total = attack_dropped + attack_passed;
    return total == 0 ? 0.0
                      : static_cast<double>(attack_dropped) /
                            static_cast<double>(total);
  }
  double benign_loss_rate() const noexcept {
    const auto total = benign_dropped + benign_passed;
    return total == 0 ? 0.0
                      : static_cast<double>(benign_dropped) /
                            static_cast<double>(total);
  }
};

class FastLoop {
 public:
  /// Builds the switch from the package. Fails if instantiation fails.
  static Result<std::unique_ptr<FastLoop>> deploy(
      const DeploymentPackage& package);

  /// Install as the network's ingress filter (enforcing). The loop
  /// must outlive the network's use of the filter.
  void install(sim::CampusNetwork& network);

  /// Decide one packet: true = drop. Exposed for canary/testing use.
  /// The view-taking form is the parse-once path: `view` must be a
  /// decode of `pkt`'s bytes; the one-argument form re-parses.
  bool inspect(const packet::Packet& pkt, const packet::PacketView& view);
  bool inspect(const packet::Packet& pkt) {
    return inspect(pkt, packet::PacketView(pkt));
  }

  /// Optional degradation hook: every inspect() asks the controller
  /// about kFastLoopVerdict — which is structurally never shed — so the
  /// protected path shows up in the same shed accounting as the tiers
  /// that do yield. Caller keeps ownership; pass nullptr to detach.
  void set_degradation(resilience::DegradationController* controller) {
    degradation_ = controller;
  }

  const MitigationStats& stats() const noexcept { return stats_; }
  /// Wall-clock nanoseconds per inspected packet.
  const RunningStats& latency_ns() const noexcept { return latency_ns_; }
  const dataplane::SoftwareSwitch& deployed_switch() const noexcept {
    return *switch_;
  }

 private:
  FastLoop(const AutomationTask& task,
           std::unique_ptr<dataplane::SoftwareSwitch> sw)
      : task_(task), switch_(std::move(sw)) {}

  AutomationTask task_;
  std::unique_ptr<dataplane::SoftwareSwitch> switch_;
  MitigationStats stats_;
  RunningStats latency_ns_;
  resilience::DegradationController* degradation_ = nullptr;
  // Token bucket for kRateLimit.
  double tokens_ = 0.0;
  Timestamp last_refill_{};
};

}  // namespace campuslab::control

// FastLoop — the fast, online control loop of Figure 2: sense (parse +
// registers), infer (compiled model), react (drop / rate-limit) on
// every inbound packet at the campus border.
//
// Wraps a deployed SoftwareSwitch as a CampusNetwork ingress filter,
// measures per-packet wall-clock latency (the FIG2 contrast with the
// development loop), and keeps ground-truth-scored mitigation counters
// for road-test reports.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "campuslab/control/development_loop.h"
#include "campuslab/resilience/health.h"
#include "campuslab/sim/campus.h"
#include "campuslab/util/stats.h"

namespace campuslab::control {

struct MitigationStats {
  std::uint64_t inspected = 0;
  std::uint64_t dropped = 0;
  std::uint64_t rate_limited_dropped = 0;
  // Ground-truth-scored (uses the simulator's labels).
  std::uint64_t attack_dropped = 0;
  std::uint64_t benign_dropped = 0;
  std::uint64_t attack_passed = 0;
  std::uint64_t benign_passed = 0;

  double drop_precision() const noexcept {
    const auto total = attack_dropped + benign_dropped;
    return total == 0 ? 0.0
                      : static_cast<double>(attack_dropped) /
                            static_cast<double>(total);
  }
  double attack_block_rate() const noexcept {
    const auto total = attack_dropped + attack_passed;
    return total == 0 ? 0.0
                      : static_cast<double>(attack_dropped) /
                            static_cast<double>(total);
  }
  double benign_loss_rate() const noexcept {
    const auto total = benign_dropped + benign_passed;
    return total == 0 ? 0.0
                      : static_cast<double>(benign_dropped) /
                            static_cast<double>(total);
  }
};

class FastLoop {
 public:
  /// Builds the switch from the package. Fails if instantiation fails.
  static Result<std::unique_ptr<FastLoop>> deploy(
      const DeploymentPackage& package);

  /// Install as the network's ingress filter (enforcing). The loop
  /// must outlive the network's use of the filter.
  void install(sim::CampusNetwork& network);

  /// Decide one packet: true = drop. Exposed for canary/testing use.
  /// The view-taking form is the parse-once path: `view` must be a
  /// decode of `pkt`'s bytes; the one-argument form re-parses.
  bool inspect(const packet::Packet& pkt, const packet::PacketView& view);
  bool inspect(const packet::Packet& pkt) {
    return inspect(pkt, packet::PacketView(pkt));
  }

  /// Optional degradation hook: every inspect() asks the controller
  /// about kFastLoopVerdict — which is structurally never shed — so the
  /// protected path shows up in the same shed accounting as the tiers
  /// that do yield. Caller keeps ownership; pass nullptr to detach.
  void set_degradation(resilience::DegradationController* controller) {
    degradation_ = controller;
  }

  /// Optional per-verdict observer (class, confidence, dropped), called
  /// at the end of every inspect(). The automation loop feeds its drift
  /// detector from here so the *enforced* stream is the one watched —
  /// no second model pass, no mirror divergence.
  using VerdictHook = std::function<void(int cls, double confidence,
                                         bool dropped)>;
  void set_verdict_hook(VerdictHook hook) { verdict_hook_ = std::move(hook); }

  const MitigationStats& stats() const noexcept { return stats_; }
  /// Wall-clock nanoseconds per inspected packet.
  const RunningStats& latency_ns() const noexcept { return latency_ns_; }
  const dataplane::SoftwareSwitch& deployed_switch() const noexcept {
    return *switch_;
  }

 private:
  FastLoop(const AutomationTask& task,
           std::unique_ptr<dataplane::SoftwareSwitch> sw)
      : task_(task), switch_(std::move(sw)) {}

  AutomationTask task_;
  std::unique_ptr<dataplane::SoftwareSwitch> switch_;
  MitigationStats stats_;
  RunningStats latency_ns_;
  resilience::DegradationController* degradation_ = nullptr;
  VerdictHook verdict_hook_;
  // Token bucket for kRateLimit.
  double tokens_ = 0.0;
  Timestamp last_refill_{};
};

/// RCU-style versioned handle to the live FastLoop. The packet path
/// takes one acquire load of a raw pointer per packet — no refcount,
/// no mutex, no wait on the writer (libstdc++ 12's
/// atomic<shared_ptr<T>> is formally racy: its internal lock is
/// released with memory_order_relaxed, which TSAN rightly flags, so
/// the handle does not use it). The automation loop publishes a new
/// model with swap() under a writer-side mutex; displaced versions are
/// parked in the handle until it is destroyed, so a reader still
/// executing on the old model stays valid — promotions are rare and a
/// deployed tree is a few KB, so the parked set stays tiny. The
/// handle, not a FastLoop, owns the network's ingress filter, so a swap
/// never leaves the dataplane filterless — and an *empty* handle passes
/// traffic rather than blocking it (the loop must degrade to "serve the
/// last good model", and before any model exists the baseline is
/// "forward everything").
class ModelHandle {
 public:
  struct Deployed {
    std::uint32_t version = 0;
    std::unique_ptr<FastLoop> loop;
  };

  /// Install as the network's ingress filter. The handle must outlive
  /// the network's use of the filter (snapshots borrow from the
  /// handle's parked set).
  void install(sim::CampusNetwork& network);

  /// Publish `loop` as version `version`; returns the previous
  /// deployment (possibly null) so the caller can keep it for rollback.
  std::shared_ptr<Deployed> swap(std::uint32_t version,
                                 std::unique_ptr<FastLoop> loop);

  /// Restore a previously acquired deployment verbatim (rollback after
  /// a failed promotion persist). Returns the displaced one.
  std::shared_ptr<Deployed> exchange(std::shared_ptr<Deployed> deployed);

  /// Snapshot the current deployment (null when none yet). The
  /// returned pointer borrows from the handle (aliasing, non-owning);
  /// it stays valid for the handle's lifetime.
  std::shared_ptr<Deployed> acquire() const noexcept {
    return {std::shared_ptr<Deployed>{},
            current_.load(std::memory_order_acquire)};
  }
  /// 0 when no model is deployed.
  std::uint32_t version() const noexcept {
    const auto* snap = current_.load(std::memory_order_acquire);
    return snap ? snap->version : 0;
  }

 private:
  std::shared_ptr<Deployed> publish(std::shared_ptr<Deployed> next);

  std::atomic<Deployed*> current_{nullptr};
  std::mutex writers_;
  /// The live owner plus every displaced version: a reader's borrowed
  /// snapshot must outlive the swap that displaced it.
  std::shared_ptr<Deployed> live_;
  std::vector<std::shared_ptr<Deployed>> retired_;
};

}  // namespace campuslab::control

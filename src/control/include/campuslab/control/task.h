// AutomationTask — the paper's §2 unit of network automation: "perform
// a particular action upon detecting a certain network event", e.g.
// "drop attack traffic on ingress if confidence in detection is at
// least 90%".
#pragma once

#include <string>

#include "campuslab/packet/label.h"

namespace campuslab::control {

enum class MitigationAction : std::uint8_t {
  kMonitorOnly,  // classify and count, never touch traffic (canary)
  kDrop,         // drop matching packets at ingress
  kRateLimit,    // cap matching traffic to a token-bucket rate
};

struct AutomationTask {
  std::string name;
  packet::TrafficLabel event = packet::TrafficLabel::kDnsAmplification;
  double confidence_threshold = 0.90;
  MitigationAction action = MitigationAction::kDrop;
  /// Packets/second allowed through when action == kRateLimit.
  double rate_limit_pps = 100.0;

  /// The paper's running example, verbatim.
  static AutomationTask dns_amplification_drop() {
    AutomationTask t;
    t.name = "dns-amplification-ingress-drop";
    t.event = packet::TrafficLabel::kDnsAmplification;
    t.confidence_threshold = 0.90;
    t.action = MitigationAction::kDrop;
    return t;
  }
};

}  // namespace campuslab::control

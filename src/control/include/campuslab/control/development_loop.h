// DevelopmentLoop — the slow, offline loop of Figure 2.
//
// Input: a labelled packet-feature dataset built from the campus data
// store. Output: a DeploymentPackage holding everything the fast loop
// and the operator review need:
//
//   (i)   train the heavyweight black-box teacher (random forest),
//         "unconstrained by time and compute resources";
//   (ii)  extract the deployable student tree (XAI distillation);
//   (iii) compile it to the target (tree-walk stages or TCAM rules),
//         checked against the switch resource budget;
//   (iv)  assemble the operator-facing trust report and P4 source.
//
// Per-step wall-clock timings are recorded — the FIG2 experiment
// contrasts them with the fast loop's per-packet latency.
#pragma once

#include <memory>
#include <string>

#include "campuslab/control/task.h"
#include "campuslab/dataplane/p4gen.h"
#include "campuslab/dataplane/programs.h"
#include "campuslab/dataplane/switch.h"
#include "campuslab/ml/boosting.h"
#include "campuslab/ml/forest.h"
#include "campuslab/xai/explain.h"
#include "campuslab/xai/extract.h"

namespace campuslab::control {

enum class CompileStrategy {
  kTreeWalk,
  kRuleTcam,
  kAuto,  // tree-walk unless it exceeds the stage budget
};

/// Which black-box family plays the teacher in step (i). Both are
/// opaque enough to need extraction; they differ in opacity profile
/// (many deep bagged trees vs many shallow boosted ones).
enum class TeacherKind { kRandomForest, kGradientBoosted };

struct DevelopmentConfig {
  AutomationTask task = AutomationTask::dns_amplification_drop();
  TeacherKind teacher_kind = TeacherKind::kRandomForest;
  ml::ForestConfig teacher;        // used when kRandomForest
  ml::BoostConfig boosted_teacher; // used when kGradientBoosted
  xai::ExtractConfig extraction;
  dataplane::ResourceBudget budget;
  CompileStrategy strategy = CompileStrategy::kAuto;
  double test_fraction = 0.3;
  std::uint64_t seed = 1;
};

/// Wall-clock cost of each development-loop step, microseconds.
struct StepTimings {
  std::int64_t train_us = 0;
  std::int64_t extract_us = 0;
  std::int64_t compile_us = 0;
  std::int64_t total_us = 0;
};

/// Everything produced by one development-loop iteration.
struct DeploymentPackage {
  AutomationTask task;
  ml::DecisionTree student;          // the deployable model
  dataplane::Quantizer quantizer;
  std::string strategy;              // "tree_walk" | "rule_tcam"
  dataplane::ResourceReport resources;
  xai::TrustReport trust;
  std::string p4_source;
  StepTimings timings;
  double teacher_holdout_accuracy = 0.0;
  double student_holdout_accuracy = 0.0;
  double holdout_fidelity = 0.0;

  /// Instantiate a fresh software switch running this package's
  /// program (each deployment owns its register state).
  Result<std::unique_ptr<dataplane::SoftwareSwitch>> instantiate() const;

  /// Accuracy of the deployable model on a RAW (unquantized) packet
  /// dataset, quantized through this package's own quantizer — how a
  /// continual-learning loop scores an incumbent on fresh data.
  double accuracy_on(const ml::Dataset& raw_dataset) const;

  /// Class-balanced accuracy (mean per-class recall) on a RAW dataset.
  /// The continual loop promotes on this: windows are dominated by
  /// benign rows, so plain accuracy hides a model that has gone blind
  /// to the (rare) event class.
  double balanced_accuracy_on(const ml::Dataset& raw_dataset) const;

  dataplane::FilterPolicy policy() const {
    return dataplane::FilterPolicy{1, task.confidence_threshold};
  }
};

/// Artifacts of step (i) — quantizer, split, fitted teacher — kept so
/// the later stages can run (and be retried) without repeating it.
struct TrainArtifacts {
  dataplane::Quantizer quantizer;
  ml::Dataset train;
  ml::Dataset test;
  std::shared_ptr<ml::Classifier> teacher;
  std::size_t teacher_nodes = 0;
  std::int64_t train_us = 0;
};

/// Artifacts of step (ii).
struct ExtractArtifacts {
  ml::DecisionTree student;
  std::int64_t extract_us = 0;
};

class DevelopmentLoop {
 public:
  explicit DevelopmentLoop(DevelopmentConfig config)
      : config_(std::move(config)) {}

  /// `packet_dataset` must be binary-framed with class 1 = the task's
  /// event (PacketDatasetCollector with labeling.binary_target set).
  /// Fails when the dataset lacks either class or no strategy fits the
  /// budget.
  Result<DeploymentPackage> run(const ml::Dataset& packet_dataset) const;

  /// Stage forms of run(): quantize + split + teacher (step i), student
  /// extraction (step ii), compile + trust report (steps iii–iv).
  /// run() is exactly their composition; a supervising loop calls them
  /// separately so each stage carries its own retry and fault policy.
  Result<TrainArtifacts> train(const ml::Dataset& packet_dataset) const;
  Result<ExtractArtifacts> extract(const TrainArtifacts& trained) const;
  Result<DeploymentPackage> compile(const TrainArtifacts& trained,
                                    const ExtractArtifacts& extracted) const;

  const DevelopmentConfig& config() const noexcept { return config_; }

 private:
  DevelopmentConfig config_;
};

}  // namespace campuslab::control

// ModelRegistry — the versioned, durable record of every model the
// automation loop has built, and which one is promoted.
//
// The paper's §5 frames deployable learning models as versioned,
// auditable artifacts; the automation loop makes that operational: a
// process killed at *any* stage of train -> extract -> compile ->
// canary -> swap must come back serving the last *promoted* version,
// and the audit trail must never claim a promotion that did not reach
// disk.
//
// Durability follows the CLSEG idiom (store/segment_file.cpp):
//
//   registry.clmr  — the whole registry state (entries + the active
//                    version) in the CLMRG01 binary format: 8-byte
//                    magic, format version, payload length, separate
//                    FNV-1a checksums over header and payload, varint/
//                    bit-exact-double columns, and a *total* decoder
//                    (bounds, enum, monotonicity, exact-consumption
//                    checks) with stable error codes. Every mutation
//                    rewrites it via write-then-rename — a crash leaves
//                    a stale .tmp, never a torn registry.
//
//   audit.log      — append-only, one checksummed line per event
//                    (published / promoted / rolled_back / aborted /
//                    recovered / drift). Appends are ordered AFTER the
//                    registry rename that they describe, so a kill
//                    between the two loses the audit line, never
//                    invents a promotion ("no phantom promotions").
//                    A torn final line is detected by its checksum and
//                    dropped on reload.
//
// A corrupt registry file degrades to an empty start (quarantined to
// registry.clmr.corrupt, counted on control.registry_corrupt_recoveries)
// rather than refusing to boot: the loop can always retrain; it cannot
// always wait for an operator.
//
// Every persist crosses the `control.registry` fault site, so the
// chaos suite drives disk failures through the same retry/degrade
// machinery as the rest of the pipeline.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "campuslab/control/development_loop.h"
#include "campuslab/util/time.h"

namespace campuslab::control {

inline constexpr std::uint8_t kModelRegistryFormatVersion = 1;

/// One versioned model. `package` carries the deployable subset
/// (task, student tree, quantizer, strategy, resources); the trust
/// report and P4 source are rebuildable artifacts and not persisted.
struct RegistryEntry {
  std::uint32_t version = 0;
  Timestamp trained_at{};
  double candidate_accuracy = 0.0;  // on the training window
  double incumbent_accuracy = 0.0;  // incumbent on the same window
  DeploymentPackage package;
};

/// Plain decoded form of registry.clmr, exposed for the corruption and
/// golden-fixture suites.
struct RegistryFile {
  std::uint32_t active_version = 0;  // 0 = none promoted
  std::vector<RegistryEntry> entries;
};

/// Encode to the CLMRG01 byte format (deterministic: same input, same
/// bytes — the golden fixture pins them).
std::vector<std::uint8_t> encode_registry(const RegistryFile& file);

/// Total decoder. Stable error codes: registry_magic, registry_version,
/// registry_truncated, registry_checksum, registry_corrupt.
Result<RegistryFile> decode_registry(std::span<const std::uint8_t> bytes);

/// File forms; `registry_io` on filesystem failure. Writing is
/// write-then-rename and crosses the control.registry fault site.
Status write_registry_file(const RegistryFile& file,
                           const std::string& path);
Result<RegistryFile> read_registry_file(const std::string& path);

enum class AuditKind : std::uint8_t {
  kPublished = 0,    // candidate persisted, not yet promoted
  kPromoted = 1,     // canary passed; registry active flipped
  kRolledBack = 2,   // canary regressed; candidate discarded
  kAborted = 3,      // a stage failed past its retry budget
  kRecovered = 4,    // restart redeployed the persisted active version
  kDriftTrigger = 5  // detector armed; cycle beginning
};

std::string_view to_string(AuditKind kind) noexcept;

struct AuditEvent {
  std::uint64_t seq = 0;
  Timestamp at{};
  AuditKind kind = AuditKind::kPublished;
  std::uint32_t version = 0;
  std::string detail;
};

class ModelRegistry {
 public:
  /// Open (or create) a registry in `directory`. An empty directory
  /// string selects ephemeral in-memory mode (benches, unit tests).
  /// A corrupt registry file degrades to an empty start and is
  /// quarantined; only filesystem errors fail the open.
  static Result<ModelRegistry> open(std::string directory);

  // -- mutations (each persists registry.clmr before returning ok,
  //    then appends the audit line; all cross control.registry) ------

  /// Insert a new version (must be > every existing version). Does not
  /// change the active version.
  Status publish(RegistryEntry entry, std::string_view detail = {});
  /// Flip the active version to `version` (must exist).
  Status promote(std::uint32_t version, Timestamp at,
                 std::string_view detail = {});
  /// Audit-only records (rollback / abort / recovery / drift): the
  /// registry state is unchanged, so only the log is written.
  Status record(AuditKind kind, std::uint32_t version, Timestamp at,
                std::string_view detail = {});

  // -- queries ------------------------------------------------------

  std::uint32_t active_version() const noexcept {
    return state_.active_version;
  }
  const RegistryEntry* active() const noexcept {
    return find(state_.active_version);
  }
  const RegistryEntry* find(std::uint32_t version) const noexcept;
  const std::vector<RegistryEntry>& entries() const noexcept {
    return state_.entries;
  }
  /// Next unused version number (max + 1; 1 for an empty registry).
  std::uint32_t next_version() const noexcept;

  const std::string& directory() const noexcept { return directory_; }
  bool persistent() const noexcept { return !directory_.empty(); }
  /// True when open() found a corrupt registry file and empty-started.
  bool recovered_from_corruption() const noexcept {
    return recovered_from_corruption_;
  }

  /// The audit trail as loaded at open() plus everything appended
  /// since. Reload with open() to observe another process's appends.
  const std::vector<AuditEvent>& audit_trail() const noexcept {
    return audit_;
  }
  /// Entries retained per registry file; older unpromoted versions are
  /// pruned at publish() (the active version is always retained).
  std::size_t max_entries = 16;

 private:
  ModelRegistry() = default;

  Status persist();
  Status append_audit(AuditKind kind, std::uint32_t version, Timestamp at,
                      std::string_view detail);
  std::string registry_path() const;
  std::string audit_path() const;

  std::string directory_;
  RegistryFile state_;
  std::vector<AuditEvent> audit_;
  std::uint64_t next_audit_seq_ = 1;
  bool recovered_from_corruption_ = false;
};

/// Audit-log line codec, exposed for the corruption suite. Encoding is
/// one line, no trailing newline; decode returns nullopt for malformed
/// or checksum-failing lines (a torn append).
std::string encode_audit_line(const AuditEvent& event);
std::optional<AuditEvent> decode_audit_line(std::string_view line);

}  // namespace campuslab::control

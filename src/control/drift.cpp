#include "campuslab/control/drift.h"

#include <algorithm>
#include <cmath>

#include "campuslab/obs/registry.h"

namespace campuslab::control {

DriftDetector::DriftDetector(DriftConfig config) : config_(config) {
  if (config_.bins == 0) config_.bins = 1;
  if (config_.window == 0) config_.window = 1;
  config_.clear_threshold =
      std::min(config_.clear_threshold, config_.trigger_threshold);
  counts_.assign(config_.bins, 0);
  auto& reg = obs::Registry::global();
  obs_state_ = &reg.gauge("control.drift_state");
  obs_score_ = &reg.gauge("control.drift_score_ppm");
  obs_rate_ = &reg.gauge("control.drift_rate_delta_ppm");
  obs_windows_ = &reg.counter("control.drift_windows_total");
  obs_triggers_ = &reg.counter("control.drift_triggers_total");
}

void DriftDetector::observe(double score, bool positive) noexcept {
  const double clamped = std::clamp(score, 0.0, 1.0);
  auto bin = static_cast<std::size_t>(clamped *
                                      static_cast<double>(config_.bins));
  if (bin >= config_.bins) bin = config_.bins - 1;  // score == 1.0
  ++counts_[bin];
  if (positive) ++positives_;
  if (++samples_ >= config_.window) evaluate_window();
}

void DriftDetector::evaluate_window() noexcept {
  // A window too small to judge is discarded, not scored: a quiet
  // interval (or an empty one) is no evidence either way.
  if (samples_ < std::max<std::size_t>(config_.min_samples, 1)) {
    reset_window();
    return;
  }
  const double n = static_cast<double>(samples_);
  const double positive_rate = static_cast<double>(positives_) / n;

  if (reference_.empty()) {
    // First judgeable window after start/rebase: becomes the baseline.
    reference_.resize(config_.bins);
    for (std::size_t b = 0; b < config_.bins; ++b)
      reference_[b] = static_cast<double>(counts_[b]) / n;
    reference_positive_rate_ = positive_rate;
    reset_window();
    return;
  }

  // Total-variation distance between window and reference histograms.
  double tv = 0.0;
  for (std::size_t b = 0; b < config_.bins; ++b)
    tv += std::abs(static_cast<double>(counts_[b]) / n - reference_[b]);
  tv *= 0.5;
  const double rate_delta =
      std::abs(positive_rate - reference_positive_rate_);
  const double drift_score = std::max(tv, rate_delta);

  ++windows_judged_;
  obs_windows_->increment();
  last_score_ppm_.store(static_cast<std::int64_t>(tv * 1e6),
                        std::memory_order_relaxed);
  last_rate_ppm_.store(static_cast<std::int64_t>(rate_delta * 1e6),
                       std::memory_order_relaxed);
  obs_score_->set(static_cast<std::int64_t>(tv * 1e6));
  obs_rate_->set(static_cast<std::int64_t>(rate_delta * 1e6));

  if (drift_score >= config_.trigger_threshold) {
    if (++hot_streak_ >= config_.trigger_windows)
      set_state(DriftState::kDrifted);
  } else if (drift_score <= config_.clear_threshold) {
    // Full hysteresis: only a clearly calm window resets the streak
    // and disarms; a window in the dead band between the thresholds
    // changes nothing, so oscillation at the trigger cannot flap.
    hot_streak_ = 0;
    set_state(DriftState::kCalm);
  }
  reset_window();
}

void DriftDetector::rebase() noexcept {
  reference_.clear();
  reference_positive_rate_ = 0.0;
  hot_streak_ = 0;
  reset_window();
  set_state(DriftState::kCalm);
  last_score_ppm_.store(0, std::memory_order_relaxed);
  last_rate_ppm_.store(0, std::memory_order_relaxed);
  obs_score_->set(0);
  obs_rate_->set(0);
}

void DriftDetector::reset_window() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  positives_ = 0;
  samples_ = 0;
}

void DriftDetector::set_state(DriftState next) noexcept {
  const auto cur =
      static_cast<DriftState>(state_.load(std::memory_order_relaxed));
  if (cur == next) return;
  state_.store(static_cast<int>(next), std::memory_order_release);
  ++transitions_;
  obs_state_->set(static_cast<std::int64_t>(next));
  if (next == DriftState::kDrifted) {
    ++triggers_;
    obs_triggers_->increment();
  }
}

}  // namespace campuslab::control

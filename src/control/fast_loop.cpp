#include "campuslab/control/fast_loop.h"

#include <chrono>

#include "campuslab/obs/registry.h"
#include "campuslab/obs/stage_timer.h"

namespace campuslab::control {

namespace {
struct FastLoopMetrics {
  obs::Counter& inspected =
      obs::Registry::global().counter("fastloop.inspected");
  obs::Counter& dropped = obs::Registry::global().counter("fastloop.dropped");
  obs::Histogram& inspect_ns = obs::stage_histogram("fastloop_inspect");

  static FastLoopMetrics& get() {
    static FastLoopMetrics m;
    return m;
  }
};
}  // namespace

Result<std::unique_ptr<FastLoop>> FastLoop::deploy(
    const DeploymentPackage& package) {
  auto sw = package.instantiate();
  if (!sw.ok()) return sw.error();
  return std::unique_ptr<FastLoop>(
      new FastLoop(package.task, std::move(sw).value()));
}

void FastLoop::install(sim::CampusNetwork& network) {
  network.set_ingress_filter(
      [this](const packet::Packet& pkt) { return inspect(pkt); });
}

bool FastLoop::inspect(const packet::Packet& pkt,
                       const packet::PacketView& view) {
  auto& metrics = FastLoopMetrics::get();
  obs::StageTimer stage_timer(metrics.inspect_ns);
  const auto t0 = std::chrono::steady_clock::now();
  ++stats_.inspected;
  metrics.inspected.increment();
  // Never true — the verdict path is the protected tier — but asking
  // routes every verdict through the shed accounting, which is how the
  // chaos suite proves "zero verdicts shed" instead of assuming it.
  if (degradation_ != nullptr)
    (void)degradation_->should_shed(
        resilience::ShedClass::kFastLoopVerdict);

  const auto verdict =
      switch_->process(pkt, view, sim::Direction::kInbound);
  bool matched = verdict.cls == 1 &&
                 verdict.confidence >= task_.confidence_threshold;

  bool drop = false;
  switch (task_.action) {
    case MitigationAction::kMonitorOnly:
      drop = false;
      break;
    case MitigationAction::kDrop:
      drop = matched;
      break;
    case MitigationAction::kRateLimit: {
      if (matched) {
        // Token bucket refilled in virtual time.
        const double elapsed = (pkt.ts - last_refill_).to_seconds();
        if (elapsed > 0) {
          tokens_ = std::min(tokens_ + elapsed * task_.rate_limit_pps,
                             task_.rate_limit_pps);  // 1s burst depth
          last_refill_ = pkt.ts;
        }
        if (tokens_ >= 1.0) {
          tokens_ -= 1.0;
        } else {
          drop = true;
          ++stats_.rate_limited_dropped;
        }
      }
      break;
    }
  }

  // Ground-truth scoring (available because the simulator labels).
  const bool is_attack_pkt = packet::is_attack(pkt.label);
  if (drop) {
    ++stats_.dropped;
    metrics.dropped.increment();
    (is_attack_pkt ? stats_.attack_dropped : stats_.benign_dropped)++;
  } else {
    (is_attack_pkt ? stats_.attack_passed : stats_.benign_passed)++;
  }

  const auto t1 = std::chrono::steady_clock::now();
  latency_ns_.add(static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
          .count()));
  if (verdict_hook_) verdict_hook_(verdict.cls, verdict.confidence, drop);
  return drop;
}

void ModelHandle::install(sim::CampusNetwork& network) {
  network.set_ingress_filter([this](const packet::Packet& pkt) {
    auto snap = acquire();
    return snap && snap->loop ? snap->loop->inspect(pkt) : false;
  });
}

std::shared_ptr<ModelHandle::Deployed> ModelHandle::swap(
    std::uint32_t version, std::unique_ptr<FastLoop> loop) {
  auto next = std::make_shared<Deployed>();
  next->version = version;
  next->loop = std::move(loop);
  return publish(std::move(next));
}

std::shared_ptr<ModelHandle::Deployed> ModelHandle::exchange(
    std::shared_ptr<Deployed> deployed) {
  return publish(std::move(deployed));
}

std::shared_ptr<ModelHandle::Deployed> ModelHandle::publish(
    std::shared_ptr<Deployed> next) {
  std::lock_guard<std::mutex> lock(writers_);
  auto prev = std::move(live_);
  live_ = std::move(next);
  // A reader may still hold a borrowed snapshot of the displaced
  // version; park its owner for the handle's lifetime.
  if (prev) retired_.push_back(prev);
  current_.store(live_.get(), std::memory_order_release);
  return prev;
}

}  // namespace campuslab::control

#include "campuslab/control/model_registry.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "campuslab/obs/registry.h"
#include "campuslab/resilience/fault.h"
#include "campuslab/util/bytes.h"
#include "campuslab/util/codec.h"
#include "campuslab/util/hash.h"

namespace campuslab::control {

namespace {

// 8-byte magic + u8 format version + u8 flags + u16 reserved +
// u32 payload length + u64 payload checksum + u64 header checksum.
constexpr std::uint8_t kMagic[8] = {'C', 'L', 'M', 'R',
                                    'G', '0', '1', '\n'};
constexpr std::size_t kHeaderBytes = 8 + 1 + 1 + 2 + 4 + 8 + 8;
constexpr std::uint64_t kMaxEntries = 4096;
constexpr std::uint64_t kMaxFeatures = 4096;
constexpr std::uint64_t kMaxStringBytes = 1u << 20;

struct RegistryMetrics {
  obs::Counter& corrupt_recoveries = obs::Registry::global().counter(
      "control.registry_corrupt_recoveries");
  obs::Counter& persists =
      obs::Registry::global().counter("control.registry_persists");
  obs::Counter& audit_appends =
      obs::Registry::global().counter("control.registry_audit_appends");

  static RegistryMetrics& get() {
    static RegistryMetrics m;
    return m;
  }
};

void put_string(ByteWriter& w, std::string_view s) {
  util::put_varint(w, s.size());
  w.bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

void put_double(ByteWriter& w, double v) {
  w.u64(std::bit_cast<std::uint64_t>(v));
}

bool read_string(util::VarintDecoder& d, std::string& out) {
  const std::uint64_t len = d.varint_at_most(kMaxStringBytes);
  if (d.failed) return false;
  const auto bytes = d.r.bytes(static_cast<std::size_t>(len));
  if (!d.r.ok()) {
    d.failed = true;
    return false;
  }
  out.assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return true;
}

double read_double(util::VarintDecoder& d) {
  return std::bit_cast<double>(d.r.u64());
}

Error corrupt(std::string message) {
  return Error::make("registry_corrupt", std::move(message));
}

}  // namespace

std::string_view to_string(AuditKind kind) noexcept {
  switch (kind) {
    case AuditKind::kPublished:
      return "published";
    case AuditKind::kPromoted:
      return "promoted";
    case AuditKind::kRolledBack:
      return "rolled_back";
    case AuditKind::kAborted:
      return "aborted";
    case AuditKind::kRecovered:
      return "recovered";
    case AuditKind::kDriftTrigger:
      return "drift_trigger";
  }
  return "unknown";
}

// ------------------------------------------------------------- encode

std::vector<std::uint8_t> encode_registry(const RegistryFile& file) {
  ByteWriter payload(1024);
  util::put_varint(payload, file.entries.size());
  util::put_varint(payload, file.active_version);
  for (const auto& entry : file.entries) {
    util::put_varint(payload, entry.version);
    util::put_varint(payload, util::zigzag(entry.trained_at.nanos()));
    put_double(payload, entry.candidate_accuracy);
    put_double(payload, entry.incumbent_accuracy);

    const auto& task = entry.package.task;
    put_string(payload, task.name);
    payload.u8(static_cast<std::uint8_t>(task.event));
    put_double(payload, task.confidence_threshold);
    payload.u8(static_cast<std::uint8_t>(task.action));
    put_double(payload, task.rate_limit_pps);

    payload.u8(entry.package.strategy == "rule_tcam" ? 1 : 0);
    const auto& res = entry.package.resources;
    util::put_varint(payload, static_cast<std::uint64_t>(res.stages_used));
    util::put_varint(payload, res.tcam_entries);
    util::put_varint(payload, res.sram_bits);
    util::put_varint(payload,
                     static_cast<std::uint64_t>(res.register_arrays_used));

    const auto& q = entry.package.quantizer;
    util::put_varint(payload, q.n_features());
    for (std::size_t f = 0; f < q.n_features(); ++f) {
      put_double(payload, q.lo(f));
      put_double(payload, q.step(f));
    }
    put_string(payload, entry.package.student.serialize());
  }

  const auto body = std::move(payload).take();
  ByteWriter out(kHeaderBytes + body.size());
  out.bytes({kMagic, sizeof(kMagic)});
  out.u8(kModelRegistryFormatVersion);
  out.u8(0);   // flags
  out.u16(0);  // reserved
  out.u32(static_cast<std::uint32_t>(body.size()));
  out.u64(util::fnv1a(std::span<const std::uint8_t>(body)));
  out.u64(util::fnv1a(out.view()));  // header checksum over all prior bytes
  out.bytes(body);
  return std::move(out).take();
}

// ------------------------------------------------------------- decode

Result<RegistryFile> decode_registry(std::span<const std::uint8_t> bytes) {
  ByteReader header(bytes);
  const auto magic = header.bytes(sizeof(kMagic));
  if (!header.ok())
    return Error::make("registry_truncated", "shorter than the magic");
  if (!std::equal(magic.begin(), magic.end(), kMagic))
    return Error::make("registry_magic", "not a CLMRG01 registry file");
  const std::uint8_t version = header.u8();
  header.u8();   // flags
  header.u16();  // reserved
  const std::uint32_t payload_len = header.u32();
  const std::uint64_t payload_sum = header.u64();
  if (!header.ok())
    return Error::make("registry_truncated", "truncated header");
  if (version != kModelRegistryFormatVersion)
    return Error::make("registry_version",
                       "unsupported registry format version " +
                           std::to_string(version));
  const std::uint64_t header_sum_expected =
      util::fnv1a(bytes.subspan(0, kHeaderBytes - 8));
  const std::uint64_t header_sum = header.u64();
  if (!header.ok())
    return Error::make("registry_truncated", "truncated header");
  if (header_sum != header_sum_expected)
    return Error::make("registry_checksum", "header checksum mismatch");
  if (bytes.size() - kHeaderBytes != payload_len)
    return Error::make(
        bytes.size() - kHeaderBytes < payload_len ? "registry_truncated"
                                                  : "registry_corrupt",
        "payload length mismatch");
  const auto payload = bytes.subspan(kHeaderBytes);
  if (util::fnv1a(payload) != payload_sum)
    return Error::make("registry_checksum", "payload checksum mismatch");

  util::VarintDecoder d(payload);
  RegistryFile file;
  const std::uint64_t count = d.varint_at_most(kMaxEntries);
  const std::uint64_t active = d.varint_at_most(0xFFFFFFFFull);
  if (d.failed) return corrupt("bad registry preamble");
  file.active_version = static_cast<std::uint32_t>(active);
  file.entries.reserve(static_cast<std::size_t>(count));

  std::uint64_t prev_version = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    RegistryEntry entry;
    const std::uint64_t v = d.varint_at_most(0xFFFFFFFFull);
    if (d.failed) return corrupt("bad entry version");
    if (v == 0 || v <= prev_version)
      return corrupt("entry versions must ascend from 1");
    prev_version = v;
    entry.version = static_cast<std::uint32_t>(v);
    entry.trained_at =
        Timestamp::from_nanos(util::unzigzag(d.varint()));
    entry.candidate_accuracy = read_double(d);
    entry.incumbent_accuracy = read_double(d);

    if (!read_string(d, entry.package.task.name))
      return corrupt("bad task name");
    const std::uint8_t event = d.r.u8();
    if (event >= packet::kTrafficLabelCount)
      return corrupt("task event label out of range");
    entry.package.task.event = static_cast<packet::TrafficLabel>(event);
    entry.package.task.confidence_threshold = read_double(d);
    const std::uint8_t action = d.r.u8();
    if (action > static_cast<std::uint8_t>(MitigationAction::kRateLimit))
      return corrupt("mitigation action out of range");
    entry.package.task.action = static_cast<MitigationAction>(action);
    entry.package.task.rate_limit_pps = read_double(d);

    const std::uint8_t strategy = d.r.u8();
    if (!d.r.ok() || strategy > 1) return corrupt("bad compile strategy");
    entry.package.strategy = strategy == 1 ? "rule_tcam" : "tree_walk";
    entry.package.resources.stages_used =
        static_cast<int>(d.varint_at_most(1 << 20));
    entry.package.resources.tcam_entries =
        static_cast<std::size_t>(d.varint());
    entry.package.resources.sram_bits =
        static_cast<std::size_t>(d.varint());
    entry.package.resources.register_arrays_used =
        static_cast<int>(d.varint_at_most(1 << 20));
    if (d.failed) return corrupt("bad resource report");

    const std::uint64_t n_features = d.varint_at_most(kMaxFeatures);
    if (d.failed) return corrupt("bad quantizer arity");
    std::vector<double> lo, step;
    lo.reserve(static_cast<std::size_t>(n_features));
    step.reserve(static_cast<std::size_t>(n_features));
    for (std::uint64_t f = 0; f < n_features; ++f) {
      lo.push_back(read_double(d));
      step.push_back(read_double(d));
    }
    if (!d.r.ok()) return corrupt("truncated quantizer");
    entry.package.quantizer =
        dataplane::Quantizer::from_levels(std::move(lo), std::move(step));

    std::string tree_text;
    if (!read_string(d, tree_text)) return corrupt("bad student tree blob");
    auto tree = ml::DecisionTree::deserialize(tree_text);
    if (!tree.ok())
      return corrupt("student tree rejected: " + tree.error().message);
    entry.package.student = std::move(tree).value();

    file.entries.push_back(std::move(entry));
  }
  if (d.failed) return corrupt("malformed varint");
  if (d.r.offset() != payload.size())
    return corrupt("trailing garbage after last entry");
  if (file.active_version != 0) {
    const bool present =
        std::any_of(file.entries.begin(), file.entries.end(),
                    [&](const RegistryEntry& e) {
                      return e.version == file.active_version;
                    });
    if (!present) return corrupt("active version not present");
  }
  return file;
}

// --------------------------------------------------------------- file

Status write_registry_file(const RegistryFile& file,
                           const std::string& path) {
  if (auto s = resilience::fault_point_status("control.registry"); !s.ok())
    return s;
  const auto bytes = encode_registry(file);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      return Error::make("registry_io", "cannot create " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return Error::make("registry_io", "short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Error::make("registry_io",
                       "cannot rename " + tmp + " -> " + path);
  }
  RegistryMetrics::get().persists.increment();
  return Status::success();
}

Result<RegistryFile> read_registry_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error::make("registry_io", "cannot open " + path);
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  return decode_registry(bytes);
}

// -------------------------------------------------------------- audit

std::string encode_audit_line(const AuditEvent& event) {
  std::ostringstream out;
  out << "v1 " << event.seq << ' ' << event.at.nanos() << ' '
      << to_string(event.kind) << ' ' << event.version << ' ';
  // Detail is URL-ish escaped so the line stays one line and
  // space-splittable whatever error text lands in it.
  for (const char c : event.detail) {
    if (c == ' ')
      out << "%20";
    else if (c == '\n')
      out << "%0A";
    else if (c == '%')
      out << "%25";
    else
      out << c;
  }
  if (event.detail.empty()) out << '-';
  const std::string prefix = out.str();
  char sum[20];
  std::snprintf(sum, sizeof(sum), " %016llx",
                static_cast<unsigned long long>(util::fnv1a(prefix)));
  return prefix + sum;
}

std::optional<AuditEvent> decode_audit_line(std::string_view line) {
  const auto last_space = line.find_last_of(' ');
  if (last_space == std::string_view::npos || last_space == 0)
    return std::nullopt;
  const std::string prefix(line.substr(0, last_space));
  const std::string_view sum_text = line.substr(last_space + 1);
  if (sum_text.size() != 16) return std::nullopt;
  std::uint64_t sum = 0;
  for (const char c : sum_text) {
    sum <<= 4;
    if (c >= '0' && c <= '9')
      sum |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      sum |= static_cast<std::uint64_t>(c - 'a' + 10);
    else
      return std::nullopt;
  }
  if (util::fnv1a(prefix) != sum) return std::nullopt;

  std::istringstream in(prefix);
  std::string tag, kind_text, detail;
  AuditEvent event;
  std::int64_t at_ns = 0;
  if (!(in >> tag >> event.seq >> at_ns >> kind_text >> event.version >>
        detail) ||
      tag != "v1")
    return std::nullopt;
  event.at = Timestamp::from_nanos(at_ns);
  bool known = false;
  for (const auto kind :
       {AuditKind::kPublished, AuditKind::kPromoted, AuditKind::kRolledBack,
        AuditKind::kAborted, AuditKind::kRecovered,
        AuditKind::kDriftTrigger}) {
    if (kind_text == to_string(kind)) {
      event.kind = kind;
      known = true;
      break;
    }
  }
  if (!known) return std::nullopt;
  if (detail != "-") {
    event.detail.reserve(detail.size());
    for (std::size_t i = 0; i < detail.size(); ++i) {
      if (detail[i] == '%' && i + 2 < detail.size()) {
        const std::string_view code(detail.data() + i + 1, 2);
        if (code == "20")
          event.detail += ' ';
        else if (code == "0A")
          event.detail += '\n';
        else if (code == "25")
          event.detail += '%';
        else
          return std::nullopt;
        i += 2;
      } else {
        event.detail += detail[i];
      }
    }
  }
  return event;
}

// ----------------------------------------------------- ModelRegistry

Result<ModelRegistry> ModelRegistry::open(std::string directory) {
  ModelRegistry reg;
  reg.directory_ = std::move(directory);
  if (!reg.persistent()) return reg;

  std::error_code ec;
  std::filesystem::create_directories(reg.directory_, ec);
  if (ec)
    return Error::make("registry_io",
                       "cannot create registry directory " +
                           reg.directory_);

  const auto path = reg.registry_path();
  if (std::filesystem::exists(path, ec)) {
    auto loaded = read_registry_file(path);
    if (loaded.ok()) {
      reg.state_ = std::move(loaded).value();
    } else {
      // Corrupt-degrades-to-empty-start: quarantine the bad file so a
      // later persist succeeds and nothing is silently overwritten.
      reg.recovered_from_corruption_ = true;
      RegistryMetrics::get().corrupt_recoveries.increment();
      std::filesystem::rename(path, path + ".corrupt", ec);
      if (ec) std::filesystem::remove(path, ec);
    }
  }

  // Load the audit trail, dropping a torn tail. Lines after the first
  // malformed one are unreachable appends and dropped with it.
  std::ifstream audit(reg.audit_path());
  std::string line;
  while (std::getline(audit, line)) {
    auto event = decode_audit_line(line);
    if (!event.has_value()) break;
    reg.next_audit_seq_ = event->seq + 1;
    reg.audit_.push_back(std::move(*event));
  }
  return reg;
}

const RegistryEntry* ModelRegistry::find(
    std::uint32_t version) const noexcept {
  if (version == 0) return nullptr;
  for (const auto& entry : state_.entries)
    if (entry.version == version) return &entry;
  return nullptr;
}

std::uint32_t ModelRegistry::next_version() const noexcept {
  return state_.entries.empty() ? 1 : state_.entries.back().version + 1;
}

Status ModelRegistry::publish(RegistryEntry entry,
                              std::string_view detail) {
  if (entry.version == 0 || (!state_.entries.empty() &&
                             entry.version <= state_.entries.back().version))
    return Error::make("registry_version_order",
                       "published versions must ascend");
  const auto at = entry.trained_at;
  const auto version = entry.version;
  state_.entries.push_back(std::move(entry));
  // Prune oldest non-active entries past the retention cap.
  while (state_.entries.size() > std::max<std::size_t>(max_entries, 1)) {
    auto victim = state_.entries.end();
    for (auto it = state_.entries.begin(); it != state_.entries.end(); ++it) {
      if (it->version != state_.active_version) {
        victim = it;
        break;
      }
    }
    if (victim == state_.entries.end()) break;
    state_.entries.erase(victim);
  }
  if (auto s = persist(); !s.ok()) {
    // Keep memory consistent with disk: an unpersisted publish is no
    // publish.
    state_.entries.erase(
        std::remove_if(state_.entries.begin(), state_.entries.end(),
                       [&](const RegistryEntry& e) {
                         return e.version == version;
                       }),
        state_.entries.end());
    return s;
  }
  return append_audit(AuditKind::kPublished, version, at, detail);
}

Status ModelRegistry::promote(std::uint32_t version, Timestamp at,
                              std::string_view detail) {
  if (find(version) == nullptr)
    return Error::make("registry_not_found",
                       "cannot promote unknown version " +
                           std::to_string(version));
  const auto previous = state_.active_version;
  state_.active_version = version;
  if (auto s = persist(); !s.ok()) {
    state_.active_version = previous;
    return s;
  }
  return append_audit(AuditKind::kPromoted, version, at, detail);
}

Status ModelRegistry::record(AuditKind kind, std::uint32_t version,
                             Timestamp at, std::string_view detail) {
  return append_audit(kind, version, at, detail);
}

Status ModelRegistry::persist() {
  if (!persistent()) {
    // Ephemeral mode still exercises the fault site so chaos tests can
    // target registry persistence without a filesystem.
    return resilience::fault_point_status("control.registry");
  }
  return write_registry_file(state_, registry_path());
}

Status ModelRegistry::append_audit(AuditKind kind, std::uint32_t version,
                                   Timestamp at, std::string_view detail) {
  AuditEvent event;
  event.seq = next_audit_seq_;
  event.at = at;
  event.kind = kind;
  event.version = version;
  event.detail = std::string(detail);
  if (persistent()) {
    std::ofstream out(audit_path(), std::ios::app);
    if (!out)
      return Error::make("registry_io",
                         "cannot append to " + audit_path());
    out << encode_audit_line(event) << '\n';
    out.flush();
    if (!out)
      return Error::make("registry_io",
                         "short audit append to " + audit_path());
  }
  ++next_audit_seq_;
  audit_.push_back(std::move(event));
  RegistryMetrics::get().audit_appends.increment();
  return Status::success();
}

std::string ModelRegistry::registry_path() const {
  return directory_ + "/registry.clmr";
}

std::string ModelRegistry::audit_path() const {
  return directory_ + "/audit.log";
}

}  // namespace campuslab::control

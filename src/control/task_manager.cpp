#include "campuslab/control/task_manager.h"

#include <algorithm>

#include "campuslab/obs/registry.h"

namespace campuslab::control {

namespace {
// "Queue depth" for the manager is its slot occupancy: tasks armed now
// (gauge) vs deployed-ever (counter) vs packets fanned out to tasks.
struct TaskManagerMetrics {
  obs::Counter& deployed =
      obs::Registry::global().counter("taskmanager.deployed");
  obs::Counter& inspected =
      obs::Registry::global().counter("taskmanager.inspected");
  obs::Gauge& active = obs::Registry::global().gauge("taskmanager.active_tasks");
  obs::Gauge& slots = obs::Registry::global().gauge("taskmanager.slots");

  static TaskManagerMetrics& get() {
    static TaskManagerMetrics m;
    return m;
  }
};
}  // namespace

dataplane::ResourceReport TaskManager::combined_with(
    const dataplane::ResourceReport& extra) const {
  // RMT composition: independent tasks occupy the SAME stages in
  // parallel (an RMT stage holds many tables), so stage depth is the
  // MAX over tasks, not the sum; the feature/register stage is shared
  // outright. What adds up — and what ultimately caps concurrent-task
  // count, per the T-SCALE experiment — is per-stage memory: SRAM bits
  // and TCAM entries are summed against the chip-wide pools.
  dataplane::ResourceReport total;
  auto add = [&](const dataplane::ResourceReport& r) {
    if (r.stages_used == 0 && r.sram_bits == 0 && r.tcam_entries == 0)
      return;  // empty report (no-op)
    total.stages_used = std::max(total.stages_used, r.stages_used);
    total.tcam_entries += r.tcam_entries;
    total.sram_bits += r.sram_bits;
    total.register_arrays_used =
        std::max(total.register_arrays_used, r.register_arrays_used);
  };
  for (const auto& slot : slots_)
    if (slot.armed) add(slot.resources);
  add(extra);
  return total;
}

Result<std::size_t> TaskManager::deploy(const DeploymentPackage& package) {
  const auto combined = combined_with(package.resources);
  if (!combined.fits(budget_)) {
    return Error::make("budget", "combined pipeline exceeds budget: " +
                                     combined.to_string());
  }
  auto loop = FastLoop::deploy(package);
  if (!loop.ok()) return loop.error();
  Slot slot;
  slot.task = package.task;
  slot.loop = std::move(loop).value();
  slot.resources = package.resources;
  slot.armed = true;
  slots_.push_back(std::move(slot));
  auto& metrics = TaskManagerMetrics::get();
  metrics.deployed.increment();
  metrics.active.set(static_cast<std::int64_t>(active_tasks()));
  metrics.slots.set(static_cast<std::int64_t>(slots_.size()));
  return slots_.size() - 1;
}

Status TaskManager::undeploy(std::size_t slot) {
  if (slot >= slots_.size())
    return Error::make("not_found", "no such task slot");
  slots_[slot].armed = false;
  TaskManagerMetrics::get().active.set(
      static_cast<std::int64_t>(active_tasks()));
  return Status::success();
}

bool TaskManager::inspect(const packet::Packet& pkt) {
  TaskManagerMetrics::get().inspected.increment();
  bool drop = false;
  // One decode shared by every armed task's fast loop.
  const packet::PacketView view(pkt);
  for (auto& slot : slots_) {
    if (!slot.armed) continue;
    // Every armed task sees every packet (they share the mirror), so
    // per-task stats stay meaningful even when an earlier task drops.
    drop = slot.loop->inspect(pkt, view) || drop;
  }
  return drop;
}

void TaskManager::install(sim::CampusNetwork& network) {
  network.set_ingress_filter(
      [this](const packet::Packet& pkt) { return inspect(pkt); });
}

std::size_t TaskManager::active_tasks() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(slots_.begin(), slots_.end(),
                    [](const Slot& s) { return s.armed; }));
}

dataplane::ResourceReport TaskManager::combined_resources() const {
  return combined_with(dataplane::ResourceReport{});
}

}  // namespace campuslab::control

#include "campuslab/control/development_loop.h"

#include <chrono>

#include "campuslab/features/packet_features.h"
#include "campuslab/ml/metrics.h"
#include "campuslab/xai/rules.h"

namespace campuslab::control {

namespace {

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Register-feature mask for the packet feature space (used when the
/// dataset is the per-packet one; other feature spaces get no mask).
std::vector<bool> register_mask_for(const ml::Dataset& data) {
  std::vector<bool> mask(data.n_features(), false);
  if (data.feature_names() == features::packet_feature_names()) {
    for (std::size_t f = 0; f < mask.size(); ++f)
      mask[f] = features::is_register_feature(
          static_cast<features::PacketFeature>(f));
  }
  return mask;
}

}  // namespace

Result<TrainArtifacts> DevelopmentLoop::train(
    const ml::Dataset& packet_dataset) const {
  if (packet_dataset.n_classes() != 2)
    return Error::make("shape",
                       "development loop expects a binary dataset "
                       "(class 1 = task event)");
  const auto counts = packet_dataset.class_counts();
  if (counts[0] == 0 || counts[1] == 0)
    return Error::make("data", "dataset lacks one of the two classes");

  const std::int64_t t0 = now_us();
  // Quantize first so the trained thresholds live on the dataplane
  // grid: compiled verdicts are then exactly the student's.
  auto quantizer = dataplane::Quantizer::fit(packet_dataset);
  const auto quantized = quantizer.quantize_dataset(packet_dataset);
  Rng rng(config_.seed);
  auto [train_split, test_split] =
      quantized.stratified_split(config_.test_fraction, rng);

  // Step (i): black-box teacher (family per config).
  std::shared_ptr<ml::Classifier> teacher;
  std::size_t teacher_nodes = 0;
  if (config_.teacher_kind == TeacherKind::kGradientBoosted) {
    auto gbt = std::make_shared<ml::GradientBoosted>(
        config_.boosted_teacher);
    gbt->fit(train_split);
    teacher_nodes = gbt->total_nodes();
    teacher = std::move(gbt);
  } else {
    auto forest = std::make_shared<ml::RandomForest>(config_.teacher);
    forest->fit(train_split);
    teacher_nodes = forest->total_nodes();
    teacher = std::move(forest);
  }
  return TrainArtifacts{std::move(quantizer), std::move(train_split),
                        std::move(test_split), std::move(teacher),
                        teacher_nodes, now_us() - t0};
}

Result<ExtractArtifacts> DevelopmentLoop::extract(
    const TrainArtifacts& trained) const {
  if (trained.teacher == nullptr)
    return Error::make("internal", "extract called without a teacher");
  const std::int64_t t0 = now_us();
  // Step (ii): XAI extraction.
  auto extraction = xai::ModelExtractor(config_.extraction)
                        .extract(*trained.teacher, trained.train);
  return ExtractArtifacts{std::move(extraction.student), now_us() - t0};
}

Result<DeploymentPackage> DevelopmentLoop::compile(
    const TrainArtifacts& trained,
    const ExtractArtifacts& extracted) const {
  const std::int64_t t0 = now_us();
  DeploymentPackage package;
  package.task = config_.task;
  package.quantizer = trained.quantizer;
  package.student = extracted.student;
  package.timings.train_us = trained.train_us;
  package.timings.extract_us = extracted.extract_us;

  // Step (iii): compile for the target, honoring the budget.
  const auto mask = register_mask_for(trained.train);
  // The student was trained on quantized values, so programs run with
  // the identity mapping over the quantized grid.
  std::vector<std::pair<double, double>> grid(
      trained.train.n_features(),
      {0.0, static_cast<double>(dataplane::Quantizer::kMaxQ) + 1.0});
  const auto grid_quantizer =
      dataplane::Quantizer::from_ranges(std::move(grid));

  const auto policy = package.policy();
  auto try_tree = [&]() -> Result<dataplane::ResourceReport> {
    auto program =
        dataplane::TreeProgram::compile(package.student, grid_quantizer,
                                        mask);
    if (!program.ok()) return program.error();
    const auto resources = program.value().resources();
    if (!resources.fits(config_.budget))
      return Error::make("budget", "tree program exceeds budget: " +
                                       resources.to_string());
    package.strategy = "tree_walk";
    package.p4_source = dataplane::generate_p4(
        program.value(), trained.train.feature_names(), policy);
    return resources;
  };
  auto try_tcam = [&]() -> Result<dataplane::ResourceReport> {
    const auto rules = xai::RuleList::from_tree(package.student);
    auto program = dataplane::RuleTcamProgram::compile(
        rules, grid_quantizer,
        config_.budget.tcam_entries_per_stage *
            static_cast<std::size_t>(config_.budget.stages),
        mask);
    if (!program.ok()) return program.error();
    const auto resources = program.value().resources();
    if (!resources.fits(config_.budget))
      return Error::make("budget", "tcam program exceeds budget: " +
                                       resources.to_string());
    package.strategy = "rule_tcam";
    package.p4_source = dataplane::generate_p4(
        program.value(), trained.train.feature_names(), policy);
    return resources;
  };

  Result<dataplane::ResourceReport> compiled =
      Error::make("internal", "no strategy attempted");
  switch (config_.strategy) {
    case CompileStrategy::kTreeWalk:
      compiled = try_tree();
      break;
    case CompileStrategy::kRuleTcam:
      compiled = try_tcam();
      break;
    case CompileStrategy::kAuto: {
      compiled = try_tree();
      if (!compiled.ok()) compiled = try_tcam();
      break;
    }
  }
  if (!compiled.ok()) return compiled.error();
  package.resources = compiled.value();
  package.timings.compile_us = now_us() - t0;

  // Step (iv): operator-facing evidence.
  package.trust = xai::make_trust_report(
      config_.task.name, *trained.teacher, trained.teacher_nodes,
      package.student, trained.test);
  package.teacher_holdout_accuracy = package.trust.teacher_accuracy;
  package.student_holdout_accuracy = package.trust.student_accuracy;
  package.holdout_fidelity = package.trust.fidelity;
  package.timings.total_us = package.timings.train_us +
                             package.timings.extract_us +
                             package.timings.compile_us;
  return package;
}

Result<DeploymentPackage> DevelopmentLoop::run(
    const ml::Dataset& packet_dataset) const {
  auto trained = train(packet_dataset);
  if (!trained.ok()) return trained.error();
  auto extracted = extract(trained.value());
  if (!extracted.ok()) return extracted.error();
  return compile(trained.value(), extracted.value());
}

namespace {

/// Per-class (correct, total) over a raw dataset through a package's
/// quantizer + student.
std::vector<std::pair<std::uint64_t, std::uint64_t>> per_class_hits(
    const DeploymentPackage& package, const ml::Dataset& raw) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> hits(
      static_cast<std::size_t>(raw.n_classes()), {0, 0});
  std::vector<double> q(raw.n_features());
  for (std::size_t i = 0; i < raw.n_rows(); ++i) {
    const auto row = raw.row(i);
    for (std::size_t f = 0; f < q.size(); ++f)
      q[f] = static_cast<double>(package.quantizer.quantize(f, row[f]));
    const auto cls = static_cast<std::size_t>(raw.label(i));
    ++hits[cls].second;
    if (package.student.predict(q) == raw.label(i)) ++hits[cls].first;
  }
  return hits;
}

}  // namespace

double DeploymentPackage::accuracy_on(const ml::Dataset& raw) const {
  if (raw.n_rows() == 0) return 0.0;
  const auto hits = per_class_hits(*this, raw);
  std::uint64_t correct = 0;
  for (const auto& [c, t] : hits) correct += c;
  return static_cast<double>(correct) / static_cast<double>(raw.n_rows());
}

double DeploymentPackage::balanced_accuracy_on(
    const ml::Dataset& raw) const {
  if (raw.n_rows() == 0) return 0.0;
  const auto hits = per_class_hits(*this, raw);
  double sum = 0.0;
  int populated = 0;
  for (const auto& [correct, total] : hits) {
    if (total == 0) continue;
    sum += static_cast<double>(correct) / static_cast<double>(total);
    ++populated;
  }
  return populated == 0 ? 0.0 : sum / populated;
}

Result<std::unique_ptr<dataplane::SoftwareSwitch>>
DeploymentPackage::instantiate() const {
  std::vector<bool> mask(student.feature_names().size(), false);
  if (student.feature_names() == features::packet_feature_names()) {
    for (std::size_t f = 0; f < mask.size(); ++f)
      mask[f] = features::is_register_feature(
          static_cast<features::PacketFeature>(f));
  }
  std::vector<std::pair<double, double>> grid(
      student.feature_names().size(),
      {0.0, static_cast<double>(dataplane::Quantizer::kMaxQ) + 1.0});
  const auto grid_quantizer =
      dataplane::Quantizer::from_ranges(std::move(grid));

  std::unique_ptr<dataplane::CompiledClassifier> program;
  if (strategy == "rule_tcam") {
    auto compiled = dataplane::RuleTcamProgram::compile(
        xai::RuleList::from_tree(student), grid_quantizer, 1 << 20, mask);
    if (!compiled.ok()) return compiled.error();
    program = std::make_unique<dataplane::RuleTcamProgram>(
        std::move(compiled).value());
  } else {
    auto compiled =
        dataplane::TreeProgram::compile(student, grid_quantizer, mask);
    if (!compiled.ok()) return compiled.error();
    program = std::make_unique<dataplane::TreeProgram>(
        std::move(compiled).value());
  }
  // The switch quantizes raw packet features with the fitted quantizer;
  // the program then compares them on the grid the student was trained
  // on.
  return std::make_unique<dataplane::SoftwareSwitch>(std::move(program),
                                                     quantizer);
}

}  // namespace campuslab::control

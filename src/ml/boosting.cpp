#include "campuslab/ml/boosting.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace campuslab::ml {

namespace {
double sigmoid(double z) noexcept { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

double GradientBoosted::RegressionTree::predict(
    std::span<const double> x) const {
  int idx = 0;
  while (nodes[static_cast<std::size_t>(idx)].feature >= 0) {
    const auto& n = nodes[static_cast<std::size_t>(idx)];
    idx = x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                : n.right;
  }
  return nodes[static_cast<std::size_t>(idx)].value;
}

void GradientBoosted::fit(const Dataset& data) {
  assert(data.n_classes() == 2);
  assert(data.n_rows() > 0);
  stages_.clear();

  // Initial score: log-odds of the positive class.
  const auto counts = data.class_counts();
  const double pos = static_cast<double>(counts[1]) + 1.0;
  const double neg = static_cast<double>(counts[0]) + 1.0;
  base_score_ = std::log(pos / neg);

  std::vector<double> score(data.n_rows(), base_score_);
  std::vector<double> gradients(data.n_rows());
  std::vector<double> hessians(data.n_rows());
  Rng rng(config_.seed);

  for (int round = 0; round < config_.n_rounds; ++round) {
    // Negative gradient of logloss: (y - p); hessian p(1-p).
    for (std::size_t i = 0; i < data.n_rows(); ++i) {
      const double p = sigmoid(score[i]);
      gradients[i] = static_cast<double>(data.label(i)) - p;
      hessians[i] = std::max(p * (1.0 - p), 1e-9);
    }

    // Row subsample.
    std::vector<std::size_t> rows;
    rows.reserve(data.n_rows());
    for (std::size_t i = 0; i < data.n_rows(); ++i)
      if (config_.subsample >= 1.0 || rng.chance(config_.subsample))
        rows.push_back(i);
    if (rows.empty()) continue;

    auto tree = fit_regression_tree(data, rows, gradients, hessians);
    // Update all scores (not just the subsample).
    for (std::size_t i = 0; i < data.n_rows(); ++i)
      score[i] += config_.learning_rate * tree.predict(data.row(i));
    stages_.push_back(std::move(tree));
  }
}

GradientBoosted::RegressionTree GradientBoosted::fit_regression_tree(
    const Dataset& data, const std::vector<std::size_t>& rows,
    const std::vector<double>& gradients,
    const std::vector<double>& hessians) const {
  RegressionTree tree;
  std::vector<std::size_t> working = rows;
  build_regression_node(tree, data, working, gradients, hessians, 0);
  return tree;
}

int GradientBoosted::build_regression_node(
    RegressionTree& tree, const Dataset& data,
    std::vector<std::size_t>& rows, const std::vector<double>& gradients,
    const std::vector<double>& hessians, int depth) const {
  double grad_sum = 0.0, hess_sum = 0.0;
  for (const auto i : rows) {
    grad_sum += gradients[i];
    hess_sum += hessians[i];
  }

  const int node_index = static_cast<int>(tree.nodes.size());
  tree.nodes.emplace_back();
  tree.nodes.back().value = grad_sum / (hess_sum + 1.0);  // Newton + L2(1)

  if (depth >= config_.max_depth ||
      rows.size() < 2 * config_.min_samples_leaf) {
    return node_index;
  }

  // Best split by Newton gain.
  const double parent_gain = grad_sum * grad_sum / (hess_sum + 1.0);
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = 1e-9;
  std::vector<std::pair<double, std::size_t>> sorted;
  sorted.reserve(rows.size());

  for (std::size_t f = 0; f < data.n_features(); ++f) {
    sorted.clear();
    for (const auto i : rows) sorted.emplace_back(data.row(i)[f], i);
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;

    double left_grad = 0.0, left_hess = 0.0;
    for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
      left_grad += gradients[sorted[k].second];
      left_hess += hessians[sorted[k].second];
      if (sorted[k].first == sorted[k + 1].first) continue;
      const double right_grad = grad_sum - left_grad;
      const double right_hess = hess_sum - left_hess;
      const double gain = left_grad * left_grad / (left_hess + 1.0) +
                          right_grad * right_grad / (right_hess + 1.0) -
                          parent_gain;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (sorted[k].first + sorted[k + 1].first);
      }
    }
  }
  if (best_feature < 0) return node_index;

  std::vector<std::size_t> left_rows, right_rows;
  for (const auto i : rows) {
    (data.row(i)[static_cast<std::size_t>(best_feature)] <= best_threshold
         ? left_rows
         : right_rows)
        .push_back(i);
  }
  if (left_rows.size() < config_.min_samples_leaf ||
      right_rows.size() < config_.min_samples_leaf)
    return node_index;
  rows.clear();
  rows.shrink_to_fit();

  tree.nodes[static_cast<std::size_t>(node_index)].feature = best_feature;
  tree.nodes[static_cast<std::size_t>(node_index)].threshold =
      best_threshold;
  const int left = build_regression_node(tree, data, left_rows, gradients,
                                         hessians, depth + 1);
  tree.nodes[static_cast<std::size_t>(node_index)].left = left;
  const int right = build_regression_node(tree, data, right_rows,
                                          gradients, hessians, depth + 1);
  tree.nodes[static_cast<std::size_t>(node_index)].right = right;
  return node_index;
}

double GradientBoosted::decision_value(std::span<const double> x) const {
  double score = base_score_;
  for (const auto& stage : stages_)
    score += config_.learning_rate * stage.predict(x);
  return score;
}

std::vector<double> GradientBoosted::predict_proba(
    std::span<const double> x) const {
  const double p = sigmoid(decision_value(x));
  return {1.0 - p, p};
}

std::size_t GradientBoosted::total_nodes() const noexcept {
  std::size_t total = 1;  // base score
  for (const auto& stage : stages_) total += stage.nodes.size();
  return total;
}

}  // namespace campuslab::ml

#include "campuslab/ml/forest.h"

#include <cassert>
#include <cmath>

namespace campuslab::ml {

void RandomForest::fit(const Dataset& data) {
  assert(data.n_rows() > 0);
  trees_.clear();
  n_classes_ = data.n_classes();
  Rng rng(config_.seed);

  const std::size_t mtry =
      config_.features_per_split > 0
          ? config_.features_per_split
          : static_cast<std::size_t>(
                std::max(1.0, std::floor(std::sqrt(
                                  static_cast<double>(data.n_features())))));

  trees_.reserve(static_cast<std::size_t>(config_.n_trees));
  for (int t = 0; t < config_.n_trees; ++t) {
    Rng tree_rng = rng.fork(static_cast<std::uint64_t>(t) + 1);
    const Dataset sample = data.bootstrap(tree_rng);
    TreeConfig tc;
    tc.max_depth = config_.max_depth;
    tc.min_samples_leaf = config_.min_samples_leaf;
    tc.features_per_split = mtry;
    DecisionTree tree(tc);
    tree.fit(sample, &tree_rng);
    trees_.push_back(std::move(tree));
  }
}

std::vector<double> RandomForest::predict_proba(
    std::span<const double> x) const {
  std::vector<double> probs(static_cast<std::size_t>(n_classes_), 0.0);
  if (trees_.empty()) return probs;
  for (const auto& tree : trees_) {
    const auto p = tree.predict_proba(x);
    for (std::size_t c = 0; c < probs.size(); ++c) probs[c] += p[c];
  }
  for (auto& p : probs) p /= static_cast<double>(trees_.size());
  return probs;
}

std::size_t RandomForest::total_nodes() const noexcept {
  std::size_t total = 0;
  for (const auto& tree : trees_) total += tree.node_count();
  return total;
}

std::vector<double> RandomForest::feature_importance() const {
  // Mean decrease in impurity: each split is credited with the
  // sample-weighted Gini reduction it achieved, reconstructed from the
  // class distributions stored in the fitted nodes.
  const auto gini = [](const std::vector<double>& probs) {
    double sum_sq = 0.0;
    for (const auto p : probs) sum_sq += p * p;
    return 1.0 - sum_sq;
  };
  std::vector<double> importance;
  double total = 0.0;
  for (const auto& tree : trees_) {
    const auto& nodes = tree.nodes();
    for (const auto& node : nodes) {
      if (node.is_leaf()) continue;
      const auto& left = nodes[static_cast<std::size_t>(node.left)];
      const auto& right = nodes[static_cast<std::size_t>(node.right)];
      const double decrease =
          static_cast<double>(node.samples) * gini(node.class_probs) -
          static_cast<double>(left.samples) * gini(left.class_probs) -
          static_cast<double>(right.samples) * gini(right.class_probs);
      const auto f = static_cast<std::size_t>(node.feature);
      if (f >= importance.size()) importance.resize(f + 1, 0.0);
      importance[f] += std::max(decrease, 0.0);
      total += std::max(decrease, 0.0);
    }
  }
  if (total > 0)
    for (auto& v : importance) v /= total;
  return importance;
}

}  // namespace campuslab::ml

#include "campuslab/ml/linear.h"

#include <cassert>
#include <cmath>

namespace campuslab::ml {

namespace {
double sigmoid(double z) noexcept { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

void LogisticRegression::fit(const Dataset& data) {
  assert(data.n_rows() > 0);
  n_classes_ = data.n_classes();
  const std::size_t n = data.n_rows();
  const std::size_t d = data.n_features();

  // Standardization statistics.
  mean_.assign(d, 0.0);
  stddev_.assign(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = data.row(i);
    for (std::size_t f = 0; f < d; ++f) mean_[f] += r[f];
  }
  for (auto& m : mean_) m /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = data.row(i);
    for (std::size_t f = 0; f < d; ++f) {
      const double delta = r[f] - mean_[f];
      stddev_[f] += delta * delta;
    }
  }
  for (auto& s : stddev_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s < 1e-12) s = 1.0;  // constant feature: neutralize
  }

  heads_.assign(static_cast<std::size_t>(n_classes_), Head{});
  for (auto& head : heads_) head.w.assign(d, 0.0);

  // Full-batch gradient descent per head (datasets here are modest).
  std::vector<double> z(d);
  for (int cls = 0; cls < n_classes_; ++cls) {
    auto& head = heads_[static_cast<std::size_t>(cls)];
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
      std::vector<double> grad_w(d, 0.0);
      double grad_b = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const auto r = data.row(i);
        double logit = head.b;
        for (std::size_t f = 0; f < d; ++f) {
          z[f] = (r[f] - mean_[f]) / stddev_[f];
          logit += head.w[f] * z[f];
        }
        const double target = data.label(i) == cls ? 1.0 : 0.0;
        const double err = sigmoid(logit) - target;
        for (std::size_t f = 0; f < d; ++f) grad_w[f] += err * z[f];
        grad_b += err;
      }
      const double scale = config_.learning_rate / static_cast<double>(n);
      for (std::size_t f = 0; f < d; ++f)
        head.w[f] -= scale * (grad_w[f] +
                              config_.l2 * static_cast<double>(n) *
                                  head.w[f]);
      head.b -= scale * grad_b;
    }
  }
}

std::vector<double> LogisticRegression::predict_proba(
    std::span<const double> x) const {
  std::vector<double> probs(static_cast<std::size_t>(n_classes_));
  double total = 0.0;
  for (int cls = 0; cls < n_classes_; ++cls) {
    const auto& head = heads_[static_cast<std::size_t>(cls)];
    double logit = head.b;
    for (std::size_t f = 0; f < head.w.size(); ++f)
      logit += head.w[f] * standardized(x, f);
    probs[static_cast<std::size_t>(cls)] = sigmoid(logit);
    total += probs[static_cast<std::size_t>(cls)];
  }
  if (total > 0)
    for (auto& p : probs) p /= total;  // normalize the OvR heads
  return probs;
}

}  // namespace campuslab::ml

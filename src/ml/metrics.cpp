#include "campuslab/ml/metrics.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>

namespace campuslab::ml {

ConfusionMatrix::ConfusionMatrix(int n_classes)
    : n_classes_(n_classes),
      cells_(static_cast<std::size_t>(n_classes) *
                 static_cast<std::size_t>(n_classes),
             0) {
  assert(n_classes > 0);
}

void ConfusionMatrix::add(int truth, int predicted) {
  assert(truth >= 0 && truth < n_classes_);
  assert(predicted >= 0 && predicted < n_classes_);
  ++cells_[static_cast<std::size_t>(truth) *
               static_cast<std::size_t>(n_classes_) +
           static_cast<std::size_t>(predicted)];
  ++total_;
}

std::uint64_t ConfusionMatrix::count(int truth, int predicted) const {
  return cells_[static_cast<std::size_t>(truth) *
                    static_cast<std::size_t>(n_classes_) +
                static_cast<std::size_t>(predicted)];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::uint64_t correct = 0;
  for (int c = 0; c < n_classes_; ++c) correct += count(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(int cls) const {
  std::uint64_t predicted = 0;
  for (int t = 0; t < n_classes_; ++t) predicted += count(t, cls);
  return predicted == 0 ? 0.0
                        : static_cast<double>(count(cls, cls)) /
                              static_cast<double>(predicted);
}

double ConfusionMatrix::recall(int cls) const {
  std::uint64_t actual = 0;
  for (int p = 0; p < n_classes_; ++p) actual += count(cls, p);
  return actual == 0 ? 0.0
                     : static_cast<double>(count(cls, cls)) /
                           static_cast<double>(actual);
}

double ConfusionMatrix::f1(int cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  for (int c = 0; c < n_classes_; ++c) sum += f1(c);
  return sum / static_cast<double>(n_classes_);
}

std::string ConfusionMatrix::to_string(
    std::span<const std::string> class_names) const {
  std::ostringstream out;
  auto name = [&](int c) {
    return static_cast<std::size_t>(c) < class_names.size()
               ? class_names[static_cast<std::size_t>(c)]
               : "class" + std::to_string(c);
  };
  out << "truth \\ predicted\n";
  for (int t = 0; t < n_classes_; ++t) {
    out << "  " << name(t) << ":";
    for (int p = 0; p < n_classes_; ++p) out << ' ' << count(t, p);
    out << "  (P=" << precision(t) << " R=" << recall(t)
        << " F1=" << f1(t) << ")\n";
  }
  out << "accuracy=" << accuracy() << " macroF1=" << macro_f1() << '\n';
  return out.str();
}

ConfusionMatrix evaluate(const Classifier& model, const Dataset& data) {
  ConfusionMatrix cm(data.n_classes());
  for (std::size_t i = 0; i < data.n_rows(); ++i)
    cm.add(data.label(i), model.predict(data.row(i)));
  return cm;
}

double roc_auc(std::span<const double> scores,
               std::span<const int> labels) {
  assert(scores.size() == labels.size());
  const std::size_t n = scores.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });

  // Midranks over ties.
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double midrank = 0.5 * (static_cast<double>(i) +
                                  static_cast<double>(j)) +
                           1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = midrank;
    i = j + 1;
  }

  double pos_rank_sum = 0.0;
  std::uint64_t n_pos = 0;
  for (std::size_t k = 0; k < n; ++k) {
    if (labels[k] == 1) {
      pos_rank_sum += ranks[k];
      ++n_pos;
    }
  }
  const std::uint64_t n_neg = n - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;
  const double u = pos_rank_sum -
                   static_cast<double>(n_pos) *
                       (static_cast<double>(n_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

OperatingPoint operating_point(std::span<const double> scores,
                               std::span<const int> labels,
                               double threshold) {
  assert(scores.size() == labels.size());
  std::uint64_t tp = 0, fp = 0, fn = 0, tn = 0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const bool predicted = scores[i] >= threshold;
    const bool actual = labels[i] == 1;
    if (predicted && actual) ++tp;
    else if (predicted) ++fp;
    else if (actual) ++fn;
    else ++tn;
  }
  OperatingPoint op;
  op.threshold = threshold;
  op.predicted_positive = tp + fp;
  op.precision = (tp + fp) == 0 ? 0.0
                                : static_cast<double>(tp) /
                                      static_cast<double>(tp + fp);
  op.recall = (tp + fn) == 0 ? 0.0
                             : static_cast<double>(tp) /
                                   static_cast<double>(tp + fn);
  op.fpr = (fp + tn) == 0 ? 0.0
                          : static_cast<double>(fp) /
                                static_cast<double>(fp + tn);
  return op;
}

std::vector<CalibrationBin> calibration_bins(const Classifier& model,
                                             const Dataset& data,
                                             std::size_t bins) {
  std::vector<double> conf_sum(bins, 0.0);
  std::vector<std::uint64_t> correct(bins, 0), counts(bins, 0);
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    const auto probs = model.predict_proba(data.row(i));
    const auto pred = static_cast<int>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
    const double conf = probs[static_cast<std::size_t>(pred)];
    auto bin = static_cast<std::size_t>(conf * static_cast<double>(bins));
    if (bin >= bins) bin = bins - 1;
    conf_sum[bin] += conf;
    counts[bin] += 1;
    if (pred == data.label(i)) ++correct[bin];
  }
  std::vector<CalibrationBin> out(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    out[b].count = counts[b];
    if (counts[b] > 0) {
      out[b].mean_confidence = conf_sum[b] /
                               static_cast<double>(counts[b]);
      out[b].accuracy = static_cast<double>(correct[b]) /
                        static_cast<double>(counts[b]);
    }
  }
  return out;
}

}  // namespace campuslab::ml

// Evaluation metrics — confusion matrices, precision/recall/F1,
// ROC-AUC, operating-point analysis, and calibration.
//
// Operating points matter more here than headline accuracy: the paper's
// automation rule acts only when model confidence >= 90%, so what the
// operator cares about is precision/recall *at that threshold*
// (precision_at / recall_at below) and whether confidence is honest
// (calibration).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "campuslab/ml/dataset.h"

namespace campuslab::ml {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int n_classes);

  void add(int truth, int predicted);

  std::uint64_t count(int truth, int predicted) const;
  std::uint64_t total() const noexcept { return total_; }

  double accuracy() const;
  double precision(int cls) const;  // 0 when the class is never predicted
  double recall(int cls) const;     // 0 when the class never occurs
  double f1(int cls) const;
  double macro_f1() const;

  int n_classes() const noexcept { return n_classes_; }
  std::string to_string(std::span<const std::string> class_names = {}) const;

 private:
  int n_classes_;
  std::vector<std::uint64_t> cells_;  // row = truth, col = predicted
  std::uint64_t total_ = 0;
};

/// Evaluate a classifier over a dataset.
ConfusionMatrix evaluate(const Classifier& model, const Dataset& data);

/// Binary ROC-AUC from scores (higher = more positive). Rank-based
/// (Mann-Whitney), ties handled by midrank. Returns 0.5 when one class
/// is absent.
double roc_auc(std::span<const double> scores,
               std::span<const int> labels);

/// Binary precision/recall when predicting positive iff
/// score >= threshold.
struct OperatingPoint {
  double threshold = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double fpr = 0.0;
  std::uint64_t predicted_positive = 0;
};
OperatingPoint operating_point(std::span<const double> scores,
                               std::span<const int> labels,
                               double threshold);

/// Reliability diagram data: bucket predictions by confidence, report
/// mean confidence vs empirical accuracy per bucket.
struct CalibrationBin {
  double mean_confidence = 0.0;
  double accuracy = 0.0;
  std::uint64_t count = 0;
};
std::vector<CalibrationBin> calibration_bins(const Classifier& model,
                                             const Dataset& data,
                                             std::size_t bins = 10);

}  // namespace campuslab::ml

// Dataset — labelled feature matrix for the learning substrate.
//
// Row-major, dense, double-valued. Feature and class names travel with
// the data because the XAI layer's whole purpose is to render decisions
// in operator language ("udp_fraction > 0.93"), which requires names to
// survive from extraction through training to explanation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "campuslab/util/rng.h"

namespace campuslab::ml {

class Dataset {
 public:
  Dataset(std::vector<std::string> feature_names,
          std::vector<std::string> class_names)
      : feature_names_(std::move(feature_names)),
        class_names_(std::move(class_names)) {}

  /// Append one labelled example. Precondition: x.size() == n_features,
  /// 0 <= y < n_classes.
  void add(std::span<const double> x, int y);

  /// Append every row of `other` (the continual-learning reservoir
  /// merge). Precondition: identical feature count and class count.
  void append(const Dataset& other);

  /// Uniform random sample of `n` rows without replacement (all rows
  /// when n >= n_rows). Deterministic in `rng`.
  Dataset sample(std::size_t n, Rng& rng) const;

  std::size_t n_rows() const noexcept { return y_.size(); }
  std::size_t n_features() const noexcept { return feature_names_.size(); }
  int n_classes() const noexcept {
    return static_cast<int>(class_names_.size());
  }

  std::span<const double> row(std::size_t i) const noexcept {
    return std::span(x_).subspan(i * n_features(), n_features());
  }
  int label(std::size_t i) const noexcept { return y_[i]; }

  const std::vector<std::string>& feature_names() const noexcept {
    return feature_names_;
  }
  const std::vector<std::string>& class_names() const noexcept {
    return class_names_;
  }

  std::vector<std::size_t> class_counts() const;

  /// Stratified split: each class is split test_fraction/rest
  /// independently, then rows are shuffled. Deterministic in `rng`.
  std::pair<Dataset, Dataset> stratified_split(double test_fraction,
                                               Rng& rng) const;

  /// Bootstrap resample of the same size (bagging). Deterministic.
  Dataset bootstrap(Rng& rng) const;

  /// Per-feature observed [min, max] — the sampling box for the
  /// XAI extractor's synthetic queries.
  std::vector<std::pair<double, double>> feature_ranges() const;

  /// Subset by row indices.
  Dataset subset(std::span<const std::size_t> indices) const;

  /// CSV export (header row of feature names + "label"; label written
  /// as the class name) — the hand-off format for researchers working
  /// outside CampusLab.
  void to_csv(std::ostream& out) const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<std::string> class_names_;
  std::vector<double> x_;  // row-major
  std::vector<int> y_;
};

/// Interface every CampusLab model implements; the XAI extractor and
/// the road-test harness are written against it.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Class-probability vector of size n_classes().
  virtual std::vector<double> predict_proba(
      std::span<const double> x) const = 0;

  virtual int n_classes() const noexcept = 0;

  /// Arg-max convenience.
  int predict(std::span<const double> x) const;

  /// Probability of the winning class (the "confidence" the paper's
  /// automation rule thresholds at 90%).
  double confidence(std::span<const double> x) const;
};

}  // namespace campuslab::ml

// GradientBoosted — binary gradient-boosted regression trees (logistic
// loss, Newton leaf values). The second black-box teacher family for
// the XAI ablation: where the forest averages deep independent trees,
// boosting chains many shallow ones — a different opacity profile with
// similar accuracy.
//
// Binary by design: the paper's automation tasks are of the form
// "detect event E" (attack vs. not), and the T-DET/T-XAI experiments
// use exactly that framing. Multi-class work uses the forest.
#pragma once

#include <memory>
#include <vector>

#include "campuslab/ml/dataset.h"

namespace campuslab::ml {

struct BoostConfig {
  int n_rounds = 80;
  double learning_rate = 0.15;
  int max_depth = 3;
  std::size_t min_samples_leaf = 5;
  double subsample = 0.8;  // row fraction per round
  std::uint64_t seed = 1;
};

class GradientBoosted final : public Classifier {
 public:
  explicit GradientBoosted(BoostConfig config = {}) : config_(config) {}

  /// Precondition: data.n_classes() == 2 (class 1 = positive).
  void fit(const Dataset& data);

  std::vector<double> predict_proba(
      std::span<const double> x) const override;
  int n_classes() const noexcept override { return 2; }

  /// Raw additive score (log-odds).
  double decision_value(std::span<const double> x) const;

  std::size_t total_nodes() const noexcept;
  int rounds_trained() const noexcept {
    return static_cast<int>(stages_.size());
  }

 private:
  struct RegressionNode {
    int feature = -1;  // -1 = leaf
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;  // leaf output
  };
  struct RegressionTree {
    std::vector<RegressionNode> nodes;
    double predict(std::span<const double> x) const;
  };

  RegressionTree fit_regression_tree(
      const Dataset& data, const std::vector<std::size_t>& rows,
      const std::vector<double>& gradients,
      const std::vector<double>& hessians) const;
  int build_regression_node(
      RegressionTree& tree, const Dataset& data,
      std::vector<std::size_t>& rows, const std::vector<double>& gradients,
      const std::vector<double>& hessians, int depth) const;

  BoostConfig config_;
  double base_score_ = 0.0;  // initial log-odds
  std::vector<RegressionTree> stages_;
};

}  // namespace campuslab::ml

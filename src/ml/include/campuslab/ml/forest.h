// RandomForest — the heavyweight black-box teacher of the Figure-2
// development loop: bagged CART trees with per-split feature
// subsampling. Accurate, robust, and exactly the kind of model a
// network operator will not deploy unexplained — which is why the XAI
// extractor exists.
#pragma once

#include <memory>
#include <vector>

#include "campuslab/ml/tree.h"

namespace campuslab::ml {

struct ForestConfig {
  int n_trees = 50;
  int max_depth = 16;
  std::size_t min_samples_leaf = 2;
  /// Features per split; 0 = floor(sqrt(n_features)).
  std::size_t features_per_split = 0;
  std::uint64_t seed = 1;
};

class RandomForest final : public Classifier {
 public:
  explicit RandomForest(ForestConfig config = {}) : config_(config) {}

  void fit(const Dataset& data);

  std::vector<double> predict_proba(
      std::span<const double> x) const override;
  int n_classes() const noexcept override { return n_classes_; }

  const std::vector<DecisionTree>& trees() const noexcept { return trees_; }

  /// Total nodes across the ensemble — the model-size axis of the
  /// deployability trade-off (T-XAI).
  std::size_t total_nodes() const noexcept;

  /// Mean-decrease-in-usage feature importance proxy: how often each
  /// feature is used for splits, weighted by node sample counts.
  std::vector<double> feature_importance() const;

 private:
  ForestConfig config_;
  std::vector<DecisionTree> trees_;
  int n_classes_ = 0;
};

}  // namespace campuslab::ml

// DecisionTree — CART classification trees (Gini impurity, axis-aligned
// numeric thresholds).
//
// The tree is both a learner and, crucially for the paper's Figure-2
// pipeline, the *deployable* model class: its internal nodes are exactly
// what the dataplane compiler turns into match-action entries, and its
// root-to-leaf paths are what the XAI layer renders as operator-readable
// rules. The node array is therefore public, stable, and serializable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "campuslab/ml/dataset.h"
#include "campuslab/util/result.h"

namespace campuslab::ml {

struct TreeConfig {
  int max_depth = 8;
  std::size_t min_samples_leaf = 5;
  double min_gain = 1e-7;
  /// Features considered per split; 0 = all (plain CART). Set by the
  /// random forest to sqrt(n_features).
  std::size_t features_per_split = 0;
};

/// One node of the fitted tree. Leaves have feature == kLeaf.
struct TreeNode {
  static constexpr int kLeaf = -1;

  int feature = kLeaf;      // split feature index, or kLeaf
  double threshold = 0.0;   // go left if x[feature] <= threshold
  int left = -1;            // child node indexes
  int right = -1;
  std::vector<double> class_probs;  // training distribution at the node
  std::size_t samples = 0;

  bool is_leaf() const noexcept { return feature == kLeaf; }
};

class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(TreeConfig config = {}) : config_(config) {}

  /// Fit on `data`; optional per-row weights (used by boosting and the
  /// XAI extractor's resampling). `rng` is only consulted when
  /// features_per_split > 0.
  void fit(const Dataset& data, Rng* rng = nullptr,
           std::span<const double> sample_weights = {});

  std::vector<double> predict_proba(
      std::span<const double> x) const override;
  int n_classes() const noexcept override { return n_classes_; }

  const std::vector<TreeNode>& nodes() const noexcept { return nodes_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t leaf_count() const noexcept;
  int depth() const noexcept;

  /// Leaf index reached by x (for explanation and compiler plumbing).
  int decision_leaf(std::span<const double> x) const;

  const std::vector<std::string>& feature_names() const noexcept {
    return feature_names_;
  }
  const std::vector<std::string>& class_names() const noexcept {
    return class_names_;
  }

  /// Human-readable rendering (indented if/else text).
  std::string to_string() const;

  /// Serialize/deserialize a fitted tree — the "open-source the
  /// learning algorithm and ship the model" path of §5.
  std::string serialize() const;
  static Result<DecisionTree> deserialize(const std::string& text);

 private:
  struct SplitDecision {
    int feature = -1;
    double threshold = 0.0;
    double gain = 0.0;
  };

  int build(const Dataset& data, std::vector<std::size_t>& indices,
            std::span<const double> weights, int depth, Rng* rng);
  SplitDecision best_split(const Dataset& data,
                           const std::vector<std::size_t>& indices,
                           std::span<const double> weights, Rng* rng) const;

  TreeConfig config_;
  std::vector<TreeNode> nodes_;
  int n_classes_ = 0;
  std::vector<std::string> feature_names_;
  std::vector<std::string> class_names_;
};

}  // namespace campuslab::ml

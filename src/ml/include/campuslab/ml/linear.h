// LogisticRegression — the simple, fast, semi-interpretable baseline.
// One-vs-rest for multi-class; features are standardized internally so
// regularization is scale-free.
#pragma once

#include <vector>

#include "campuslab/ml/dataset.h"

namespace campuslab::ml {

struct LinearConfig {
  int epochs = 200;
  double learning_rate = 0.1;
  double l2 = 1e-4;
  std::uint64_t seed = 1;
};

class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(LinearConfig config = {}) : config_(config) {}

  void fit(const Dataset& data);

  std::vector<double> predict_proba(
      std::span<const double> x) const override;
  int n_classes() const noexcept override { return n_classes_; }

  /// Standardized-space weights of one one-vs-rest head (for
  /// inspection; interpretable up to standardization).
  const std::vector<double>& weights(int cls) const {
    return heads_[static_cast<std::size_t>(cls)].w;
  }

 private:
  struct Head {
    std::vector<double> w;  // size n_features
    double b = 0.0;
  };

  double standardized(std::span<const double> x, std::size_t f) const {
    return (x[f] - mean_[f]) / stddev_[f];
  }

  LinearConfig config_;
  int n_classes_ = 0;
  std::vector<Head> heads_;
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace campuslab::ml

#include "campuslab/ml/dataset.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <ostream>

namespace campuslab::ml {

void Dataset::add(std::span<const double> x, int y) {
  assert(x.size() == n_features());
  assert(y >= 0 && y < n_classes());
  x_.insert(x_.end(), x.begin(), x.end());
  y_.push_back(y);
}

void Dataset::append(const Dataset& other) {
  assert(other.n_features() == n_features());
  assert(other.n_classes() == n_classes());
  x_.insert(x_.end(), other.x_.begin(), other.x_.end());
  y_.insert(y_.end(), other.y_.begin(), other.y_.end());
}

Dataset Dataset::sample(std::size_t n, Rng& rng) const {
  std::vector<std::size_t> indices(n_rows());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  // Partial Fisher-Yates: the first n slots become the sample.
  const auto take = std::min(n, indices.size());
  for (std::size_t i = 0; i < take; ++i)
    std::swap(indices[i], indices[i + rng.below(indices.size() - i)]);
  indices.resize(take);
  return subset(indices);
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(n_classes()), 0);
  for (const auto y : y_) ++counts[static_cast<std::size_t>(y)];
  return counts;
}

std::pair<Dataset, Dataset> Dataset::stratified_split(double test_fraction,
                                                      Rng& rng) const {
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(n_classes()));
  for (std::size_t i = 0; i < n_rows(); ++i)
    by_class[static_cast<std::size_t>(y_[i])].push_back(i);

  std::vector<std::size_t> train_idx, test_idx;
  for (auto& indices : by_class) {
    // Fisher-Yates with our deterministic generator.
    for (std::size_t i = indices.size(); i > 1; --i)
      std::swap(indices[i - 1], indices[rng.below(i)]);
    const auto test_count =
        static_cast<std::size_t>(test_fraction *
                                 static_cast<double>(indices.size()));
    for (std::size_t i = 0; i < indices.size(); ++i)
      (i < test_count ? test_idx : train_idx).push_back(indices[i]);
  }
  for (std::size_t i = train_idx.size(); i > 1; --i)
    std::swap(train_idx[i - 1], train_idx[rng.below(i)]);
  for (std::size_t i = test_idx.size(); i > 1; --i)
    std::swap(test_idx[i - 1], test_idx[rng.below(i)]);
  return {subset(train_idx), subset(test_idx)};
}

Dataset Dataset::bootstrap(Rng& rng) const {
  std::vector<std::size_t> indices(n_rows());
  for (auto& idx : indices) idx = rng.below(n_rows());
  return subset(indices);
}

std::vector<std::pair<double, double>> Dataset::feature_ranges() const {
  std::vector<std::pair<double, double>> ranges(
      n_features(), {0.0, 0.0});
  if (n_rows() == 0) return ranges;
  for (std::size_t f = 0; f < n_features(); ++f)
    ranges[f] = {row(0)[f], row(0)[f]};
  for (std::size_t i = 1; i < n_rows(); ++i) {
    const auto r = row(i);
    for (std::size_t f = 0; f < n_features(); ++f) {
      ranges[f].first = std::min(ranges[f].first, r[f]);
      ranges[f].second = std::max(ranges[f].second, r[f]);
    }
  }
  return ranges;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(feature_names_, class_names_);
  out.x_.reserve(indices.size() * n_features());
  out.y_.reserve(indices.size());
  for (const auto idx : indices) out.add(row(idx), y_[idx]);
  return out;
}

void Dataset::to_csv(std::ostream& out) const {
  for (std::size_t f = 0; f < feature_names_.size(); ++f)
    out << feature_names_[f] << ',';
  out << "label\n";
  out.precision(12);
  for (std::size_t i = 0; i < n_rows(); ++i) {
    const auto r = row(i);
    for (const auto v : r) out << v << ',';
    out << class_names_[static_cast<std::size_t>(y_[i])] << '\n';
  }
}

int Classifier::predict(std::span<const double> x) const {
  const auto probs = predict_proba(x);
  return static_cast<int>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

double Classifier::confidence(std::span<const double> x) const {
  const auto probs = predict_proba(x);
  return *std::max_element(probs.begin(), probs.end());
}

}  // namespace campuslab::ml

#include "campuslab/ml/tree.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cmath>
#include <numeric>
#include <sstream>
#include <tuple>

namespace campuslab::ml {

namespace {

/// Gini impurity of a weighted class histogram.
double gini(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (const auto c : counts) {
    const double p = c / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

void DecisionTree::fit(const Dataset& data, Rng* rng,
                       std::span<const double> sample_weights) {
  assert(data.n_rows() > 0);
  nodes_.clear();
  n_classes_ = data.n_classes();
  feature_names_ = data.feature_names();
  class_names_ = data.class_names();

  std::vector<double> weights;
  if (sample_weights.empty()) {
    weights.assign(data.n_rows(), 1.0);
  } else {
    assert(sample_weights.size() == data.n_rows());
    weights.assign(sample_weights.begin(), sample_weights.end());
  }
  std::vector<std::size_t> indices(data.n_rows());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  build(data, indices, weights, 0, rng);
}

int DecisionTree::build(const Dataset& data,
                        std::vector<std::size_t>& indices,
                        std::span<const double> weights, int depth,
                        Rng* rng) {
  // Node class distribution.
  std::vector<double> counts(static_cast<std::size_t>(n_classes_), 0.0);
  double total = 0.0;
  for (const auto i : indices) {
    counts[static_cast<std::size_t>(data.label(i))] += weights[i];
    total += weights[i];
  }

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  {
    auto& node = nodes_.back();
    node.samples = indices.size();
    node.class_probs.resize(counts.size());
    for (std::size_t c = 0; c < counts.size(); ++c)
      node.class_probs[c] = total > 0 ? counts[c] / total : 0.0;
  }

  const bool pure =
      std::count_if(counts.begin(), counts.end(),
                    [](double c) { return c > 0.0; }) <= 1;
  if (pure || depth >= config_.max_depth ||
      indices.size() < 2 * config_.min_samples_leaf) {
    return node_index;  // leaf (feature stays kLeaf)
  }

  const auto split = best_split(data, indices, weights, rng);
  if (split.feature < 0 || split.gain < config_.min_gain)
    return node_index;

  std::vector<std::size_t> left_idx, right_idx;
  left_idx.reserve(indices.size());
  right_idx.reserve(indices.size());
  for (const auto i : indices) {
    (data.row(i)[static_cast<std::size_t>(split.feature)] <=
             split.threshold
         ? left_idx
         : right_idx)
        .push_back(i);
  }
  if (left_idx.size() < config_.min_samples_leaf ||
      right_idx.size() < config_.min_samples_leaf) {
    return node_index;
  }

  indices.clear();
  indices.shrink_to_fit();  // release before recursing

  // Recurse; the vector may reallocate, so set fields via index.
  nodes_[static_cast<std::size_t>(node_index)].feature = split.feature;
  nodes_[static_cast<std::size_t>(node_index)].threshold = split.threshold;
  const int left = build(data, left_idx, weights, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_index)].left = left;
  const int right = build(data, right_idx, weights, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_index)].right = right;
  return node_index;
}

DecisionTree::SplitDecision DecisionTree::best_split(
    const Dataset& data, const std::vector<std::size_t>& indices,
    std::span<const double> weights, Rng* rng) const {
  const std::size_t n_features = data.n_features();

  // Candidate features: all, or a random subset of size
  // features_per_split (random forest mode).
  std::vector<std::size_t> features(n_features);
  std::iota(features.begin(), features.end(), std::size_t{0});
  std::size_t consider = n_features;
  if (config_.features_per_split > 0 &&
      config_.features_per_split < n_features && rng != nullptr) {
    for (std::size_t i = 0; i < config_.features_per_split; ++i) {
      const auto j = i + rng->below(n_features - i);
      std::swap(features[i], features[j]);
    }
    consider = config_.features_per_split;
  }

  // Parent impurity.
  std::vector<double> parent_counts(static_cast<std::size_t>(n_classes_),
                                    0.0);
  double total_weight = 0.0;
  for (const auto i : indices) {
    parent_counts[static_cast<std::size_t>(data.label(i))] += weights[i];
    total_weight += weights[i];
  }
  const double parent_gini = gini(parent_counts, total_weight);

  SplitDecision best;
  std::vector<std::pair<double, std::size_t>> sorted;  // (value, row)
  sorted.reserve(indices.size());
  std::vector<double> left_counts(static_cast<std::size_t>(n_classes_));

  for (std::size_t fi = 0; fi < consider; ++fi) {
    const std::size_t f = features[fi];
    sorted.clear();
    for (const auto i : indices) sorted.emplace_back(data.row(i)[f], i);
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;  // constant

    std::fill(left_counts.begin(), left_counts.end(), 0.0);
    double left_weight = 0.0;
    for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
      const auto row = sorted[k].second;
      left_counts[static_cast<std::size_t>(data.label(row))] +=
          weights[row];
      left_weight += weights[row];
      // Valid threshold only between distinct values.
      if (sorted[k].first == sorted[k + 1].first) continue;
      const double right_weight = total_weight - left_weight;
      if (left_weight <= 0.0 || right_weight <= 0.0) continue;

      double right_gini_sum = 0.0;
      {
        double sum_sq = 0.0;
        for (std::size_t c = 0; c < left_counts.size(); ++c) {
          const double rc = parent_counts[c] - left_counts[c];
          const double p = rc / right_weight;
          sum_sq += p * p;
        }
        right_gini_sum = 1.0 - sum_sq;
      }
      const double left_gini = gini(left_counts, left_weight);
      const double weighted = (left_weight * left_gini +
                               right_weight * right_gini_sum) /
                              total_weight;
      const double gain = parent_gini - weighted;
      if (gain > best.gain) {
        best.feature = static_cast<int>(f);
        // Midpoint threshold generalizes better than the left value.
        best.threshold = 0.5 * (sorted[k].first + sorted[k + 1].first);
        best.gain = gain;
      }
    }
  }
  return best;
}

std::vector<double> DecisionTree::predict_proba(
    std::span<const double> x) const {
  const int leaf = decision_leaf(x);
  return nodes_[static_cast<std::size_t>(leaf)].class_probs;
}

int DecisionTree::decision_leaf(std::span<const double> x) const {
  assert(!nodes_.empty());
  int idx = 0;
  while (!nodes_[static_cast<std::size_t>(idx)].is_leaf()) {
    const auto& node = nodes_[static_cast<std::size_t>(idx)];
    idx = x[static_cast<std::size_t>(node.feature)] <= node.threshold
              ? node.left
              : node.right;
  }
  return idx;
}

std::size_t DecisionTree::leaf_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const TreeNode& n) { return n.is_leaf(); }));
}

int DecisionTree::depth() const noexcept {
  if (nodes_.empty()) return 0;
  // Iterative depth via index stack.
  int max_depth = 0;
  std::vector<std::pair<int, int>> stack{{0, 0}};
  while (!stack.empty()) {
    const auto [idx, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const auto& node = nodes_[static_cast<std::size_t>(idx)];
    if (!node.is_leaf()) {
      stack.emplace_back(node.left, d + 1);
      stack.emplace_back(node.right, d + 1);
    }
  }
  return max_depth;
}

std::string DecisionTree::to_string() const {
  std::ostringstream out;
  std::vector<std::tuple<int, int, std::string>> stack{{0, 0, ""}};
  while (!stack.empty()) {
    auto [idx, depth, prefix] = stack.back();
    stack.pop_back();
    const auto& node = nodes_[static_cast<std::size_t>(idx)];
    out << std::string(static_cast<std::size_t>(depth) * 2, ' ') << prefix;
    if (node.is_leaf()) {
      const auto cls = static_cast<std::size_t>(
          std::max_element(node.class_probs.begin(),
                           node.class_probs.end()) -
          node.class_probs.begin());
      out << "-> " << (cls < class_names_.size() ? class_names_[cls]
                                                 : std::to_string(cls))
          << " (p=" << node.class_probs[cls] << ", n=" << node.samples
          << ")\n";
    } else {
      const auto fname =
          static_cast<std::size_t>(node.feature) < feature_names_.size()
              ? feature_names_[static_cast<std::size_t>(node.feature)]
              : "f" + std::to_string(node.feature);
      out << "if " << fname << " <= " << node.threshold << ":\n";
      stack.emplace_back(node.right, depth + 1, "else ");
      stack.emplace_back(node.left, depth + 1, "");
    }
  }
  return out.str();
}

std::string DecisionTree::serialize() const {
  std::ostringstream out;
  out.precision(17);
  out << "campuslab-tree v1\n";
  out << n_classes_ << ' ' << feature_names_.size() << ' '
      << nodes_.size() << '\n';
  for (const auto& name : feature_names_) out << name << '\n';
  for (const auto& name : class_names_) out << name << '\n';
  for (const auto& node : nodes_) {
    out << node.feature << ' ' << node.threshold << ' ' << node.left << ' '
        << node.right << ' ' << node.samples;
    for (const auto p : node.class_probs) out << ' ' << p;
    out << '\n';
  }
  return out.str();
}

Result<DecisionTree> DecisionTree::deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "campuslab-tree v1")
    return Error::make("format", "bad tree header");
  std::size_t n_features = 0, n_nodes = 0;
  int n_classes = 0;
  if (!(in >> n_classes >> n_features >> n_nodes))
    return Error::make("format", "bad tree dimensions");
  std::getline(in, line);  // consume EOL

  DecisionTree tree;
  tree.n_classes_ = n_classes;
  tree.feature_names_.resize(n_features);
  for (auto& name : tree.feature_names_)
    if (!std::getline(in, name))
      return Error::make("format", "missing feature name");
  tree.class_names_.resize(static_cast<std::size_t>(n_classes));
  for (auto& name : tree.class_names_)
    if (!std::getline(in, name))
      return Error::make("format", "missing class name");
  tree.nodes_.resize(n_nodes);
  for (auto& node : tree.nodes_) {
    if (!(in >> node.feature >> node.threshold >> node.left >> node.right >>
          node.samples))
      return Error::make("format", "bad node row");
    node.class_probs.resize(static_cast<std::size_t>(n_classes));
    for (auto& p : node.class_probs)
      if (!(in >> p)) return Error::make("format", "bad node probs");
    if (!node.is_leaf()) {
      const auto limit = static_cast<int>(n_nodes);
      if (node.left < 0 || node.left >= limit || node.right < 0 ||
          node.right >= limit)
        return Error::make("format", "child index out of range");
    }
  }
  if (tree.nodes_.empty())
    return Error::make("format", "tree has no nodes");
  return tree;
}

}  // namespace campuslab::ml

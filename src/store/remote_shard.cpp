#include "campuslab/store/remote_shard.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include "campuslab/obs/registry.h"
#include "campuslab/resilience/fault.h"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#define CAMPUSLAB_HAVE_SOCKETS 1
#endif

namespace campuslab::store {

#if defined(CAMPUSLAB_HAVE_SOCKETS)

namespace {

using Clock = std::chrono::steady_clock;

Error refused() {
  return Error::make("connect_refused", "connection refused by peer");
}
Error timed_out(const char* what) {
  return Error::make("rpc_timeout", std::string(what) + " deadline exceeded");
}
Error io_error(const char* what) {
  return Error::make("rpc_io", std::string(what) + ": " +
                                   std::strerror(errno));
}

/// Remaining milliseconds of a deadline for poll(), floored at 0.
int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(left.count());
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

struct ClientMetrics {
  obs::Counter& calls;
  obs::Counter& bytes_out;
  obs::Counter& bytes_in;
  obs::Counter& reconnects;
  obs::Counter& errors;
  obs::Histogram& latency;

  static ClientMetrics& instance() {
    auto& r = obs::Registry::global();
    static ClientMetrics m{r.counter("rpc.client_calls"),
                           r.counter("rpc.client_bytes_out"),
                           r.counter("rpc.client_bytes_in"),
                           r.counter("rpc.client_reconnects"),
                           r.counter("rpc.client_errors"),
                           r.histogram("rpc_client_call_ns")};
    return m;
  }
};

}  // namespace

RemoteShard::RemoteShard(RemoteShardConfig config)
    : config_(std::move(config)) {}

RemoteShard::~RemoteShard() {
  std::lock_guard lock(mutex_);
  close_locked();
}

void RemoteShard::close_locked() const {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  reused_ = false;
}

Status RemoteShard::connect_locked() const {
  // Fault hook: a planned refused-connection without a dead process.
  if (Status st = resilience::fault_point_status("rpc.connect"); !st.ok())
    return refused();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return io_error("socket");
  set_nonblocking(fd_);
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    close_locked();
    return Error::make("socket_bind", "bad host " + config_.host);
  }
  const int rc =
      ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    const bool was_refused = errno == ECONNREFUSED;
    close_locked();
    return was_refused ? Status(refused()) : Status(io_error("connect"));
  }
  if (rc != 0) {
    // Non-blocking connect: wait for writability, then read SO_ERROR.
    const auto deadline =
        Clock::now() +
        std::chrono::nanoseconds(config_.connect_timeout.count_nanos());
    pollfd pfd{fd_, POLLOUT, 0};
    for (;;) {
      const int pr = ::poll(&pfd, 1, remaining_ms(deadline));
      if (pr > 0) break;
      if (pr == 0) {
        close_locked();
        return timed_out("connect");
      }
      if (errno != EINTR) {
        close_locked();
        return io_error("connect poll");
      }
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      const bool was_refused = so_error == ECONNREFUSED;
      close_locked();
      if (was_refused) return refused();
      errno = so_error;
      return io_error("connect");
    }
  }
  if (ever_connected_) {
    ++reconnects_;
    ClientMetrics::instance().reconnects.increment();
  }
  ever_connected_ = true;
  reused_ = false;
  return Status::success();
}

Status RemoteShard::send_all_locked(std::span<const std::uint8_t> data,
                                    Duration budget) const {
  if (Status st = resilience::fault_point_status("rpc.send"); !st.ok()) {
    close_locked();
    return Error::make("rpc_io", "injected send fault");
  }
  const auto deadline =
      Clock::now() + std::chrono::nanoseconds(budget.count_nanos());
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      ClientMetrics::instance().bytes_out.add(static_cast<std::uint64_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      const int pr = ::poll(&pfd, 1, remaining_ms(deadline));
      if (pr == 0) {
        close_locked();
        return timed_out("send");
      }
      if (pr < 0 && errno != EINTR) {
        close_locked();
        return io_error("send poll");
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    close_locked();
    return io_error("send");
  }
  return Status::success();
}

Result<wire::Frame> RemoteShard::read_frame_locked(Duration budget) const {
  if (Status st = resilience::fault_point_status("rpc.recv"); !st.ok()) {
    close_locked();
    return Error::make("rpc_io", "injected recv fault");
  }
  const auto deadline =
      Clock::now() + std::chrono::nanoseconds(budget.count_nanos());
  wire::FrameAssembler assembler(config_.max_body);
  std::uint8_t buf[64 * 1024];
  for (;;) {
    auto next = assembler.next();
    if (!next.ok()) {
      // Framing violation: the stream is unrecoverable.
      close_locked();
      return next.error();
    }
    if (next.value().has_value()) return std::move(*next.value());
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      assembler.feed(
          std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
      ClientMetrics::instance().bytes_in.add(static_cast<std::uint64_t>(n));
      continue;
    }
    if (n == 0) {
      close_locked();
      return Error::make("rpc_io", "connection closed by peer");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, remaining_ms(deadline));
      if (pr == 0) {
        close_locked();
        return timed_out("reply");
      }
      if (pr < 0 && errno != EINTR) {
        close_locked();
        return io_error("recv poll");
      }
      continue;
    }
    if (errno == EINTR) continue;
    close_locked();
    return io_error("recv");
  }
}

Result<std::vector<std::uint8_t>> RemoteShard::call(
    wire::MsgType type, const std::vector<std::uint8_t>& body,
    wire::MsgType expect) const {
  std::lock_guard lock(mutex_);
  auto& metrics = ClientMetrics::instance();
  metrics.calls.increment();
  const auto t0 = Clock::now();

  // Two passes at most: a failure on a *reused* connection before the
  // request was fully delivered earns one transparent reconnect+resend
  // (the idle-close race); everything else surfaces.
  for (int pass = 0;; ++pass) {
    if (fd_ < 0) {
      if (Status st = connect_locked(); !st.ok()) {
        metrics.errors.increment();
        return st.error();
      }
    }
    const bool was_reused = reused_;
    const std::uint64_t request_id = next_request_++;
    const auto frame = wire::encode_frame(type, config_.shard, request_id,
                                          body);

    if (Status st = send_all_locked(frame, config_.io_timeout); !st.ok()) {
      if (was_reused && pass == 0 && st.error().code == "rpc_io") continue;
      metrics.errors.increment();
      return st.error();
    }
    auto reply = read_frame_locked(config_.io_timeout);
    if (!reply.ok()) {
      // EOF before a byte of reply on a reused connection: the server
      // idle-closed before our request arrived — resend once. (If it
      // did arrive, shard-side idempotent replay keeps a resend safe.)
      if (was_reused && pass == 0 && reply.error().code == "rpc_io")
        continue;
      metrics.errors.increment();
      return reply.error();
    }
    reused_ = true;
    const wire::FrameHeader& header = reply.value().header;
    if (header.type == wire::MsgType::kError) {
      // Either our request's error reply, or a farewell frame (request
      // id 0: a framing violation the server couldn't attribute — it
      // is closing the stream, so drop the socket and surface the
      // server's code verbatim).
      metrics.errors.increment();
      if (header.request_id != request_id) close_locked();
      Error remote;
      if (Status st = wire::decode_error(reply.value().body, remote);
          !st.ok()) {
        close_locked();
        return st.error();
      }
      if (header.request_id != request_id && header.request_id != 0)
        return Error::make("wire_corrupt", "reply for a different request");
      return remote;
    }
    if (header.request_id != request_id) {
      close_locked();
      metrics.errors.increment();
      return Error::make("wire_corrupt", "reply for a different request");
    }
    metrics.latency.observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count()));
    if (header.type != expect) {
      close_locked();
      metrics.errors.increment();
      return Error::make("wire_corrupt", "unexpected reply type");
    }
    return std::move(reply.value().body);
  }
}

Result<ShardIngestAck> RemoteShard::ingest(const ShardIngestBatch& batch) {
  auto body = call(wire::MsgType::kIngest, wire::encode_ingest(batch),
                   wire::MsgType::kIngestAck);
  if (!body.ok()) return body.error();
  return wire::decode_ingest_ack(body.value());
}

Status RemoteShard::ingest_log(const LogEvent& event) {
  auto body = call(wire::MsgType::kIngestLog, wire::encode_log_event(event),
                   wire::MsgType::kIngestLogOk);
  if (!body.ok()) return body.error();
  if (!body.value().empty())
    return Error::make("wire_corrupt", "non-empty ingest-log reply");
  return Status::success();
}

Result<ShardQueryRows> RemoteShard::query(const ShardQueryPlan& plan) const {
  auto body = call(wire::MsgType::kQuery, wire::encode_query_plan(plan),
                   wire::MsgType::kQueryRows);
  if (!body.ok()) return body.error();
  return wire::decode_query_rows(body.value());
}

Result<AggregateResult> RemoteShard::aggregate(const FlowQuery& q,
                                               GroupBy group_by,
                                               std::size_t top_k) const {
  wire::AggregatePlan plan;
  plan.query = q;
  plan.group_by = group_by;
  plan.top_k = top_k;
  auto body =
      call(wire::MsgType::kAggregate, wire::encode_aggregate_plan(plan),
           wire::MsgType::kAggregateReply);
  if (!body.ok()) return body.error();
  return wire::decode_aggregate_result(body.value());
}

Result<LogResult> RemoteShard::query_logs(const LogQuery& q) const {
  auto body = call(wire::MsgType::kQueryLogs, wire::encode_log_query(q),
                   wire::MsgType::kLogReply);
  if (!body.ok()) return body.error();
  auto events = wire::decode_log_reply(body.value());
  if (!events.ok()) return events.error();
  return LogResult(std::move(events).value());
}

Result<CatalogInfo> RemoteShard::catalog() const {
  auto body = call(wire::MsgType::kCatalog, {}, wire::MsgType::kCatalogReply);
  if (!body.ok()) return body.error();
  return wire::decode_catalog(body.value());
}

Result<std::uint64_t> RemoteShard::flow_count() const {
  auto body =
      call(wire::MsgType::kFlowCount, {}, wire::MsgType::kFlowCountReply);
  if (!body.ok()) return body.error();
  return wire::decode_flow_count(body.value());
}

Status RemoteShard::ping() const {
  auto body = call(wire::MsgType::kPing, {}, wire::MsgType::kPong);
  if (!body.ok()) return body.error();
  return Status::success();
}

bool RemoteShard::connected() const {
  std::lock_guard lock(mutex_);
  return fd_ >= 0;
}

std::uint64_t RemoteShard::reconnects() const noexcept {
  std::lock_guard lock(mutex_);
  return reconnects_;
}

#else  // !CAMPUSLAB_HAVE_SOCKETS

namespace {
Error unsupported() {
  return Error::make("socket_io", "no socket support on this platform");
}
}  // namespace

RemoteShard::RemoteShard(RemoteShardConfig config)
    : config_(std::move(config)) {}
RemoteShard::~RemoteShard() = default;
void RemoteShard::close_locked() const {}
Status RemoteShard::connect_locked() const { return unsupported(); }
Status RemoteShard::send_all_locked(std::span<const std::uint8_t>,
                                    Duration) const {
  return unsupported();
}
Result<wire::Frame> RemoteShard::read_frame_locked(Duration) const {
  return unsupported();
}
Result<std::vector<std::uint8_t>> RemoteShard::call(wire::MsgType,
                                                    const std::vector<std::uint8_t>&,
                                                    wire::MsgType) const {
  return unsupported();
}
Result<ShardIngestAck> RemoteShard::ingest(const ShardIngestBatch&) {
  return unsupported();
}
Status RemoteShard::ingest_log(const LogEvent&) { return unsupported(); }
Result<ShardQueryRows> RemoteShard::query(const ShardQueryPlan&) const {
  return unsupported();
}
Result<AggregateResult> RemoteShard::aggregate(const FlowQuery&, GroupBy,
                                               std::size_t) const {
  return unsupported();
}
Result<LogResult> RemoteShard::query_logs(const LogQuery&) const {
  return unsupported();
}
Result<CatalogInfo> RemoteShard::catalog() const { return unsupported(); }
Result<std::uint64_t> RemoteShard::flow_count() const {
  return unsupported();
}
Status RemoteShard::ping() const { return unsupported(); }
bool RemoteShard::connected() const { return false; }
std::uint64_t RemoteShard::reconnects() const noexcept { return 0; }

#endif

}  // namespace campuslab::store

#include "campuslab/store/shard.h"

#include "campuslab/resilience/fault.h"
#include "campuslab/store/query_engine.h"

namespace campuslab::store {

LocalShard::LocalShard(DataStoreConfig config)
    : store_(std::make_unique<DataStore>(std::move(config))) {}

LocalShard::~LocalShard() = default;

Result<ShardIngestAck> LocalShard::ingest(const ShardIngestBatch& batch) {
  ShardIngestAck ack;
  for (const auto& row : batch.rows) {
    // Same permanently-compiled site the merge path trips on a direct
    // DataStore; the prefix-ack contract hands the tail back on failure.
    const Status st = resilience::fault_point_status("store.ingest");
    if (!st.ok()) break;
    // Ascending-id replay dedup: an explicit id we already applied is a
    // retransmitted copy — ack it without storing twice.
    if (row.id != 0 && row.id <= last_applied_id_) {
      ++ack.applied;
      continue;
    }
    store_->ingest(row);
    if (row.id != 0) last_applied_id_ = row.id;
    ++ack.applied;
  }
  return ack;
}

Status LocalShard::ingest_log(const LogEvent& event) {
  store_->ingest_log(event);
  return Status::success();
}

Result<ShardQueryRows> LocalShard::query(const ShardQueryPlan& plan) const {
  ShardQueryRows reply;
  const std::size_t cap = std::min(plan.query.limit, plan.max_rows);
  if (plan.after_id == 0) {
    // Fresh scan: ride the store's own segment-parallel executor (pool,
    // metrics, store.query fault site) and copy the matches out.
    FlowQuery q = plan.query;
    q.limit = cap;
    const QueryResult result = store_->query(q);
    reply.stats = result.stats();
    reply.rows.reserve(result.size());
    for (const auto& row : result) reply.rows.push_back(row);
    // A full chunk can't prove the scan ended; a short one can.
    reply.exhausted = reply.rows.size() < cap;
  } else {
    reply.rows = scan_chunk(store_->snapshot(), plan.query, plan.after_id,
                            cap, &reply.stats, &reply.exhausted);
  }
  return reply;
}

Result<AggregateResult> LocalShard::aggregate(const FlowQuery& q,
                                              GroupBy group_by,
                                              std::size_t top_k) const {
  return store_->aggregate(q, group_by, top_k);
}

Result<LogResult> LocalShard::query_logs(const LogQuery& q) const {
  return store_->query_logs(q);
}

Result<CatalogInfo> LocalShard::catalog() const { return store_->catalog(); }

}  // namespace campuslab::store

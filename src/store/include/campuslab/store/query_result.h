// Owning query results and the streaming cursor.
//
// QueryResult replaces the old `std::vector<const StoredFlow*>` whose
// pointers were "valid until the next retention enforcement". A result
// owns the StoreSnapshot it was computed against, so every row stays
// valid — bit-for-bit — for the result's lifetime, no matter how much
// ingest or retention runs meanwhile. LogResult owns sanitized copies
// (log events are small and mutate in place, so copying beats
// pinning). QueryCursor is the non-materializing path: it pins the
// same snapshot but walks it row by row, so a million-flow scan costs
// O(1) memory.
#pragma once

#include <cstdint>
#include <vector>

#include "campuslab/store/snapshot.h"

namespace campuslab::store {

/// What the executor did for one query — planner choice and work
/// counters. segments_pinned is the snapshot size; segments_scanned
/// excludes segments pruned by time bounds or index misses;
/// index_hits is candidate rows produced by inverted indexes;
/// rows_scanned is rows evaluated against the full predicate.
struct QueryStats {
  IndexKind index = IndexKind::kTimeScan;
  std::size_t segments_pinned = 0;
  std::size_t segments_scanned = 0;
  std::size_t index_hits = 0;
  std::size_t rows_scanned = 0;
  std::size_t threads = 1;
  // Tiering: cold (spilled) segments this query loaded from disk,
  // pruned via the zone map without any I/O, or failed to load (a
  // corrupt/vanished file contributes zero rows, never UB — the
  // counter is how callers detect it).
  std::size_t cold_loaded = 0;
  std::size_t cold_pruned = 0;
  std::size_t cold_load_failures = 0;
};

/// Materialized flow-query result: iterable, indexable, and alive for
/// as long as you hold it (the snapshot pin travels with it).
class QueryResult {
 public:
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = StoredFlow;
    using difference_type = std::ptrdiff_t;
    using pointer = const StoredFlow*;
    using reference = const StoredFlow&;

    const_iterator() = default;
    reference operator*() const noexcept { return **it_; }
    pointer operator->() const noexcept { return *it_; }
    const_iterator& operator++() noexcept {
      ++it_;
      return *this;
    }
    const_iterator operator++(int) noexcept {
      const_iterator copy = *this;
      ++it_;
      return copy;
    }
    bool operator==(const const_iterator& o) const noexcept = default;

   private:
    friend class QueryResult;
    explicit const_iterator(
        std::vector<const StoredFlow*>::const_iterator it) noexcept
        : it_(it) {}
    std::vector<const StoredFlow*>::const_iterator it_;
  };

  QueryResult() = default;
  QueryResult(StoreSnapshot snapshot, std::vector<const StoredFlow*> rows,
              QueryStats stats)
      : snapshot_(std::move(snapshot)), rows_(std::move(rows)),
        stats_(stats) {}

  std::size_t size() const noexcept { return rows_.size(); }
  bool empty() const noexcept { return rows_.empty(); }
  const StoredFlow& operator[](std::size_t i) const noexcept {
    return *rows_[i];
  }
  const StoredFlow& front() const noexcept { return *rows_.front(); }
  const StoredFlow& back() const noexcept { return *rows_.back(); }
  const_iterator begin() const noexcept {
    return const_iterator(rows_.begin());
  }
  const_iterator end() const noexcept { return const_iterator(rows_.end()); }

  const QueryStats& stats() const noexcept { return stats_; }
  /// The pinned view this result was computed against (shareable with
  /// a cursor or a follow-up aggregation for read-your-own-snapshot).
  const StoreSnapshot& snapshot() const noexcept { return snapshot_; }

 private:
  StoreSnapshot snapshot_;
  std::vector<const StoredFlow*> rows_;
  QueryStats stats_;
};

/// Materialized log-query result (owning copies).
class LogResult {
 public:
  LogResult() = default;
  explicit LogResult(std::vector<LogEvent> events)
      : events_(std::move(events)) {}

  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }
  const LogEvent& operator[](std::size_t i) const noexcept {
    return events_[i];
  }
  const LogEvent& front() const noexcept { return events_.front(); }
  const LogEvent& back() const noexcept { return events_.back(); }
  std::vector<LogEvent>::const_iterator begin() const noexcept {
    return events_.begin();
  }
  std::vector<LogEvent>::const_iterator end() const noexcept {
    return events_.end();
  }

 private:
  std::vector<LogEvent> events_;
};

/// Streaming evaluation over a pinned snapshot: one row at a time, in
/// ingest order, without materializing the result set.
///
///   auto cur = store.open_cursor(std::move(q));
///   while (cur.next()) consume(cur.current());
///
/// The cursor observes exactly what a materializing query() against
/// the same snapshot would return, including the planner's index
/// choice and the query limit.
class QueryCursor {
 public:
  QueryCursor(StoreSnapshot snapshot, FlowQuery query);

  /// Advance to the next matching row; false when exhausted (or the
  /// query limit is reached).
  bool next();

  /// The row next() stopped on. Valid until the next call to next();
  /// the underlying storage outlives the cursor via the snapshot pin.
  const StoredFlow& current() const noexcept { return *current_; }

  /// Matching rows produced so far.
  std::uint64_t produced() const noexcept { return produced_; }

  /// Work counters so far (index choice fixed at construction).
  const QueryStats& stats() const noexcept { return stats_; }

 private:
  bool open_next_segment();

  StoreSnapshot snapshot_;
  FlowQuery query_;
  QueryStats stats_;
  const StoredFlow* current_ = nullptr;
  std::size_t next_segment_ = 0;
  bool segment_open_ = false;
  const Segment* segment_ = nullptr;
  std::uint32_t count_ = 0;  // pinned rows of the open segment
  const std::vector<std::uint32_t>* candidates_ = nullptr;
  std::size_t pos_ = 0;
  std::uint64_t produced_ = 0;
};

}  // namespace campuslab::store

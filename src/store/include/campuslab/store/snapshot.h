// Snapshot isolation for the data store.
//
// Segments are the store's time-partitioned units. A segment mutates
// only while it is the open tail — appended to by the single ingest
// writer under the store mutex — and is immutable forever once sealed.
// Queries never hold the store lock for the duration of a scan: they
// *pin* a StoreSnapshot (one shared_ptr per segment plus the flow
// count committed at pin time) and then scan lock-free. Retention
// merely drops the store's own references; a pinned snapshot keeps
// evicted segments alive until the last QueryResult or cursor holding
// them is destroyed, which is what makes "retention fired while I was
// iterating my results" impossible by construction.
//
// Why the pinned prefix of an *open* segment is safe to read without
// locks: `flows` is reserved to full capacity at construction and the
// segment seals exactly when it reaches that capacity, so the backing
// array never reallocates and element addresses are stable for the
// segment's lifetime. Elements [0, PinnedSegment::count) were written
// before the pin was taken under the store mutex (mutex ordering makes
// them visible); the writer only ever touches elements >= count and
// the vector's own bookkeeping, which pinned readers never look at —
// readers go through `flows.data()`, never `size()` or iterators.
// The inverted indexes are consulted only when the segment was sealed
// at pin time (an open segment's indexes are still being built).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "campuslab/store/query.h"

namespace campuslab::store {

/// One time-partitioned storage unit.
struct Segment {
  explicit Segment(std::size_t capacity) {
    flows.reserve(capacity);
    min_ts = Timestamp::from_nanos(std::numeric_limits<std::int64_t>::max());
    max_ts = Timestamp::from_nanos(std::numeric_limits<std::int64_t>::min());
  }

  std::vector<StoredFlow> flows;  // append-only; never reallocates
  bool sealed = false;
  Timestamp min_ts;  // min first_ts / max last_ts — stable once sealed
  Timestamp max_ts;
  // Local inverted indexes: value = offset into `flows`, ascending.
  // Complete (and safe to read) only once sealed.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> by_host;
  std::unordered_map<std::uint16_t, std::vector<std::uint32_t>> by_port;
  std::array<std::vector<std::uint32_t>, packet::kTrafficLabelCount>
      by_label;
};

class ColdSegmentHandle;  // segment_file.h — the spilled-tier reference

/// A segment as one snapshot sees it: the ownership pin, how many
/// flows were committed when the snapshot was taken, and whether the
/// inverted indexes may be consulted (segment sealed at pin time).
///
/// Tiering: a spilled segment pins its ColdSegmentHandle instead of a
/// Segment — `segment` starts null and `cold` carries the zone map.
/// The query engine prunes on the zone map and, only if the file may
/// contain matches, loads it and parks the loaded shared_ptr in
/// `segment`, so rows produced from a cold segment are owned by the
/// snapshot exactly like hot rows. Both tiers scan identically from
/// there on.
struct PinnedSegment {
  std::shared_ptr<const Segment> segment;
  std::uint32_t count = 0;
  bool indexed = false;
  std::shared_ptr<const ColdSegmentHandle> cold;
};

/// A consistent, immutable view of the store at one instant. Cheap to
/// copy (shared_ptr per segment); destroying the last copy releases
/// any segments retention has since evicted.
class StoreSnapshot {
 public:
  StoreSnapshot() = default;
  explicit StoreSnapshot(std::vector<PinnedSegment> segments)
      : segments_(std::move(segments)) {}

  const std::vector<PinnedSegment>& segments() const noexcept {
    return segments_;
  }

  /// Mutable pins, for the query engine only: resolving a cold segment
  /// stores the loaded shared_ptr back into its pin so the snapshot
  /// (and any result holding it) owns what it scanned.
  std::vector<PinnedSegment>& segments_mut() noexcept { return segments_; }

  std::uint64_t flow_count() const noexcept {
    std::uint64_t n = 0;
    for (const auto& pin : segments_) n += pin.count;
    return n;
  }

  bool empty() const noexcept { return flow_count() == 0; }

 private:
  std::vector<PinnedSegment> segments_;
};

}  // namespace campuslab::store

// PacketArchive — rotating pcap segments for the raw-packet layer of
// the data store ("all the raw packet-level data", §5).
//
// Frames are appended to time-bounded pcap files in a directory; an
// in-memory index maps each segment to its time span so time-range
// retrieval opens only the relevant files. Retention deletes whole
// segment files, which is also how the paper's commercial counterparts
// bound their storage ("data storage requirements of the order of a
// week").
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "campuslab/capture/filter.h"
#include "campuslab/capture/pcap.h"
#include "campuslab/resilience/health.h"
#include "campuslab/resilience/retry.h"
#include "campuslab/util/result.h"
#include "campuslab/util/rng.h"

namespace campuslab::store {

struct PacketArchiveConfig {
  std::string directory;           // must exist
  Duration segment_span = Duration::minutes(10);
  Duration retention = Duration::hours(24 * 7);
};

struct ArchiveSegmentInfo {
  std::string path;
  Timestamp first_ts;
  Timestamp last_ts;
  std::uint64_t records = 0;
};

class PacketArchive {
 public:
  static Result<PacketArchive> open(PacketArchiveConfig config);

  PacketArchive(PacketArchive&&) = default;
  PacketArchive& operator=(PacketArchive&&) = default;

  /// Append one frame; rotates to a new segment when the current one's
  /// span is exceeded. Passes through the archive.write fault point.
  /// Under Shedding (see set_degradation) the write is skipped and
  /// counted shed — archive writes are the second degradation tier,
  /// after dataset rows and never instead of FastLoop verdicts.
  Status write(const packet::Packet& pkt);

  /// As write(), but transient failures (injected or real) are retried
  /// under `policy` with backoff from `rng`.
  Status write(const packet::Packet& pkt,
               const resilience::RetryPolicy& policy, Rng& rng,
               const resilience::Sleeper& sleeper = {});

  /// Optional degradation hook: when set, write() consults
  /// should_shed(kArchiveWrite) and skips (successfully) while the
  /// pipeline is Shedding. Caller keeps ownership; pass nullptr to
  /// detach.
  void set_degradation(resilience::DegradationController* controller) {
    degradation_ = controller;
  }

  /// Close the current segment (flush to disk).
  Status seal();

  /// Load every archived frame overlapping [from, to], in time order.
  Result<std::vector<packet::Packet>> read_range(Timestamp from,
                                                 Timestamp to);

  /// As read_range, additionally keeping only frames matching a
  /// BPF-style filter ("udp and src port 53 and dst net 10.1.0.0/16").
  Result<std::vector<packet::Packet>> read_filtered(
      Timestamp from, Timestamp to, const capture::FilterExpr& filter);

  /// Delete segment files entirely older than now - retention.
  /// Returns segments deleted.
  std::size_t enforce_retention(Timestamp now);

  const std::deque<ArchiveSegmentInfo>& segments() const noexcept {
    return segments_;
  }
  std::uint64_t records_written() const noexcept { return records_; }

 private:
  explicit PacketArchive(PacketArchiveConfig config)
      : config_(std::move(config)) {}

  Status rotate(Timestamp first_ts);

  PacketArchiveConfig config_;
  std::optional<capture::PcapWriter> writer_;
  std::deque<ArchiveSegmentInfo> segments_;  // includes the open one (last)
  std::uint64_t records_ = 0;
  std::uint64_t next_file_id_ = 0;
  resilience::DegradationController* degradation_ = nullptr;
};

}  // namespace campuslab::store

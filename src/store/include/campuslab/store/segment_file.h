// SegmentFile — the columnar on-disk form of a sealed store segment.
//
// Sealed segments are immutable and address-stable, which makes them
// the store's spill unit: serialize once, drop the RAM copy, map the
// file back on demand. The format is column-oriented so each field
// compresses with the encoding that fits it — delta/varint timestamps
// and ids, a shared dictionary for host addresses, a dictionary for
// protocols, bit-packed flags — and the per-segment inverted indexes
// (host / port / label) are serialized alongside the columns so a
// reloaded segment answers index queries identically to the hot
// original, without re-indexing.
//
// File layout (all integers big-endian; varints are LEB128):
//
//   +----------------------------------------------------------+
//   | magic "CLSEG01\n" (8)  version u32  flags u32            |
//   | payload_size u64       payload_fnv1a u64                 |
//   | zone map: flow_count u32, min_ts i64, max_ts i64,        |
//   |   id_lo u64, id_hi u64, packets u64, bytes u64,          |
//   |   label_flows[kTrafficLabelCount] u64                    |
//   | header_fnv1a u64                                         |
//   +----------------------------------------------------------+
//   | payload: columns then indexes (see segment_file.cpp)     |
//   +----------------------------------------------------------+
//
// The zone map lives in the header, under its own checksum, so query
// planning can prune a whole file on [min_ts, max_ts] — and retention
// and the catalog can account for it — without touching the payload.
//
// Robustness contract: decoding is total. A truncated, bit-flipped, or
// otherwise corrupt file yields a clean util::Result error with a
// stable code ("segment_magic", "segment_version", "segment_truncated",
// "segment_checksum", "segment_corrupt", "io") — never a crash, an
// out-of-bounds read, or silently wrong rows. The corruption fuzz
// suite (segment_corruption_test) pins this under ASAN.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "campuslab/store/snapshot.h"
#include "campuslab/util/result.h"

namespace campuslab::store {

/// Per-file summary statistics, readable without decoding the payload.
/// min_ts/max_ts bound [first_ts, last_ts] over every stored flow, so
/// a time predicate that misses [min_ts, max_ts] skips the whole file.
struct SegmentZoneMap {
  std::uint32_t flow_count = 0;
  Timestamp min_ts;  // min first_ts; epoch when the segment is empty
  Timestamp max_ts;  // max last_ts; epoch when the segment is empty
  std::uint64_t id_lo = 0;  // first / last stored flow id (0 when empty)
  std::uint64_t id_hi = 0;
  std::uint64_t packets = 0;  // totals, for catalog() without I/O
  std::uint64_t bytes = 0;
  std::array<std::uint64_t, packet::kTrafficLabelCount> label_flows{};
};

/// One row of the per-column compression report.
struct ColumnBytes {
  std::string name;
  std::uint64_t file_bytes = 0;    // encoded size on disk
  std::uint64_t memory_bytes = 0;  // what the column occupies hot
};

/// What one serialization produced: sizes for accounting and the
/// per-column breakdown the T-STORE bench prints.
struct SegmentFileInfo {
  std::uint64_t file_bytes = 0;     // header + payload
  std::uint64_t payload_bytes = 0;
  std::uint64_t memory_bytes = 0;   // estimated hot-tier footprint
  SegmentZoneMap zone;
  std::vector<ColumnBytes> columns;
};

// v2: adds the per-flow scenario_id column (after the label column) and
// widens the label space to kTrafficLabelCount = 7 (worm, exfiltration).
inline constexpr std::uint32_t kSegmentFileVersion = 2;
inline constexpr std::size_t kSegmentFileHeaderBytes =
    8 + 4 + 4 + 8 + 8 +                                    // magic..checksum
    4 + 8 + 8 + 8 + 8 + 8 + 8 +                            // zone scalars
    8 * packet::kTrafficLabelCount +                       // zone labels
    8;                                                     // header fnv

/// Serialize a segment (sealed or not — the caller pins what "all of
/// it" means; the store only ever spills sealed segments) to a byte
/// buffer. Deterministic: the same segment always encodes to the same
/// bytes, which is what the golden-format fixture pins.
std::vector<std::uint8_t> encode_segment(const Segment& segment,
                                         SegmentFileInfo* info = nullptr);

/// Estimated hot-tier footprint of a segment: the flow array at its
/// reserved capacity plus the inverted-index postings and hash-node
/// overhead. This is the quantity the hot-bytes budget meters.
std::uint64_t segment_memory_bytes(const Segment& segment) noexcept;

/// Decode a full file image back into a Segment. The result is sealed,
/// indexed, and bit-identical (flows, ids, indexes, time bounds) to
/// the segment that was encoded.
Result<std::shared_ptr<Segment>> decode_segment(
    std::span<const std::uint8_t> file);

/// Parse and validate only the header; no payload I/O beyond its span.
Result<SegmentZoneMap> decode_zone_map(std::span<const std::uint8_t> file);

/// Atomically (write-then-rename) persist `segment` to `path`.
Result<SegmentFileInfo> write_segment_file(const Segment& segment,
                                           const std::string& path);

/// Map `path` and decode it. Errors: "io" for filesystem trouble, the
/// decode_segment codes for format trouble.
Result<std::shared_ptr<Segment>> read_segment_file(const std::string& path);

/// Zone map of `path` without decoding the payload.
Result<SegmentZoneMap> read_zone_map(const std::string& path);

/// Read-only mmap of a whole file (falls back to a buffered read where
/// mmap is unavailable). The view stays valid for the object's life.
class MappedFile {
 public:
  static Result<MappedFile> open(const std::string& path);

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  std::span<const std::uint8_t> bytes() const noexcept {
    return {data_, size_};
  }

 private:
  MappedFile() = default;
  void reset() noexcept;  // unmap / release, back to the empty state

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;                // true: munmap; false: fallback_
  std::vector<std::uint8_t> fallback_; // owns bytes when not mmap-backed
};

/// The store's reference to a spilled segment: the file path, the zone
/// map for pruning and accounting, and a demand-load cache.
///
/// load() decodes the file into a fully indexed in-RAM Segment and
/// hands back a shared_ptr; the handle itself keeps only a weak
/// reference, so concurrent queries share one decode while any of them
/// is live, and the memory is released as soon as the last snapshot
/// pinning the loaded copy lets go. That is the out-of-core property:
/// resident cold bytes are bounded by what queries are actively
/// scanning, not by what the store retains.
class ColdSegmentHandle {
 public:
  /// `owns_file` = unlink the file when the last reference drops. The
  /// store passes true: retention then merely releases its reference,
  /// and the file outlives it exactly as long as some snapshot still
  /// pins the handle — snapshot isolation extends to the disk tier.
  ColdSegmentHandle(std::string path, SegmentZoneMap zone,
                    std::uint64_t file_bytes, bool owns_file = false)
      : path_(std::move(path)), zone_(zone), file_bytes_(file_bytes),
        owns_file_(owns_file) {}
  ~ColdSegmentHandle();

  ColdSegmentHandle(const ColdSegmentHandle&) = delete;
  ColdSegmentHandle& operator=(const ColdSegmentHandle&) = delete;

  const std::string& path() const noexcept { return path_; }
  const SegmentZoneMap& zone() const noexcept { return zone_; }
  std::uint64_t file_bytes() const noexcept { return file_bytes_; }

  /// Decode (or join a live decode of) the file. Thread-safe. Errors
  /// pass through from read_segment_file.
  Result<std::shared_ptr<const Segment>> load() const;

 private:
  std::string path_;
  SegmentZoneMap zone_;
  std::uint64_t file_bytes_ = 0;
  bool owns_file_ = false;
  mutable std::mutex mu_;
  mutable std::weak_ptr<const Segment> cache_;
};

}  // namespace campuslab::store

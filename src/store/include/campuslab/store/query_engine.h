// Segment-parallel query execution.
//
// The executor takes a pinned StoreSnapshot and fans scan work out
// across a ScanPool — one task per segment, index pre-filter per
// sealed segment, results merged back in ingest order — so a query's
// wall clock is bounded by its largest segment, not by the store. The
// whole thing runs lock-free against the snapshot and therefore fully
// concurrent with ingest() and retention (see snapshot.h for why).
//
// Determinism: for the same snapshot and query, the executor returns
// bit-identical rows in identical order at every thread count —
// per-segment scans are independent and the merge is by segment
// position, so scheduling can't reorder anything. That property is
// what the concurrency tests pin (parallel == quiesced serial).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "campuslab/store/aggregate.h"
#include "campuslab/store/query_result.h"

namespace campuslab::store {

/// A small pool of persistent scan workers. parallel_for(n, fn) runs
/// fn(0..n-1) across the workers *and the calling thread*, blocking
/// until every index completes; `threads` is the total parallelism
/// (threads-1 workers are spawned). Concurrent parallel_for calls
/// from different query threads serialize on the submit lock — each
/// query still fans out, they just take turns owning the pool.
/// `fn` must not throw.
class ScanPool {
 public:
  explicit ScanPool(std::size_t threads);
  ~ScanPool();

  ScanPool(const ScanPool&) = delete;
  ScanPool& operator=(const ScanPool&) = delete;

  std::size_t threads() const noexcept { return workers_.size() + 1; }

  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

 private:
  // One submitted job. Work claiming goes through the task's own
  // atomics (shared_ptr-held), never through pool-level state: a
  // worker that wakes late and still holds a drained task claims
  // next >= n and retires — it can never claim indices of a *newer*
  // job or touch a caller's destroyed closure.
  struct Task {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
  };

  void worker_loop();

  std::mutex submit_mu_;  // one job in flight at a time
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Task> task_;  // current job, guarded by mu_
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Evaluate `q` against `snapshot`, fanning segment scans over `pool`
/// (nullptr or a 1-thread pool = serial on the calling thread). Rows
/// come back in ingest order; `q.limit` caps them.
QueryResult execute_query(StoreSnapshot snapshot, const FlowQuery& q,
                          ScanPool* pool);

/// Group-by aggregation over every flow matching `q` (the query limit
/// is ignored: aggregation consumes all matches). top_k > 0 keeps only
/// the K heaviest rows by bytes.
AggregateResult execute_aggregate(StoreSnapshot snapshot,
                                  const FlowQuery& q, GroupBy group_by,
                                  std::size_t top_k, ScanPool* pool);

/// Resumable serial scan — the StoreShard chunk primitive. Returns up
/// to `max_rows` flows matching `q` with id > after_id, copied out by
/// value in ingest order (`q.limit` is ignored; the shard boundary caps
/// with max_rows). Requires ascending ids within each segment — the
/// store's assignment order, preserved by the cluster router. Segments
/// whose ids all lie at or below after_id are skipped outright: hot via
/// their last pinned row, cold via the zone map's id_hi without any
/// I/O. Sets *exhausted when the scan reached the snapshot's end.
std::vector<StoredFlow> scan_chunk(StoreSnapshot snapshot, const FlowQuery& q,
                                   std::uint64_t after_id,
                                   std::size_t max_rows, QueryStats* stats,
                                   bool* exhausted);

}  // namespace campuslab::store

// store::Cluster — consistent-hash placement, replicated ingest, and
// scatter-gather queries over N in-process StoreShard nodes.
//
// Placement: the bidirectional-5-tuple keyspace hashes onto a ring of
// virtual nodes (vnodes per physical node), so both directions of one
// conversation land on the same owner and adding a node someday moves
// only ~1/N of the keyspace. The first `replication` distinct nodes
// clockwise from a key own its copies; owner 0 is the primary.
//
// Determinism: the router assigns every flow a global id from one
// monotonic counter *before* routing, and every replica carries the
// primary's id. Per (node, store) the ids it receives are ascending, so
// each shard returns rows in ascending-id order and the cluster's k-way
// merge by id reproduces single-node ingest order exactly — queries,
// aggregates, and cursor sequences against an N-node cluster are
// bit-identical to one DataStore fed the same flows in the same order.
//
// Failure model: every message to a node crosses the
// `store.shard_rpc` fault site and a retry policy (transient faults are
// retried, a dead node is terminal). Ingest acks a flow once >= 1 copy
// applied; copies short of the replication factor are counted in the
// per-node `cluster.replica_lag` gauge. Queries scatter one scope per
// owner; a dead or unreachable primary flips its scope to the replica
// stores every live node keeps for it — each flow owned by the dead
// node lives in exactly one of those, so the gather stays complete and
// duplicate-free with a node down. Cluster health (dead-node fraction)
// feeds the same HealthMonitor the capture pipeline uses.
//
// Node boundary: the cluster speaks to nodes only through the
// message-shaped StoreShard interface (shard.h) — ingest batch in,
// ack out; query plan in, result rows out — so swapping a LocalShard
// for a socket-backed RemoteShard is a constructor change, not a
// query-engine change.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "campuslab/obs/registry.h"
#include "campuslab/resilience/health.h"
#include "campuslab/resilience/retry.h"
#include "campuslab/store/shard.h"

namespace campuslab::store {

using NodeId = std::uint32_t;

/// Consistent-hash ring over the bidirectional 5-tuple keyspace.
/// Immutable after construction; lookups are lock-free.
class HashRing {
 public:
  HashRing(std::size_t nodes, std::size_t vnodes, std::uint64_t seed);

  std::size_t nodes() const noexcept { return nodes_; }

  /// Placement key: FNV-1a over the *bidirectional* tuple, so both
  /// directions of a conversation co-locate. Transport-stable (pure
  /// byte math, no per-process salt) — a remote node computes the same
  /// placement.
  static std::uint64_t key_of(const packet::FiveTuple& tuple) noexcept;

  /// First `out.size()` distinct nodes clockwise from `key`; out[0] is
  /// the primary. out.size() must be <= nodes().
  void owners_for_key(std::uint64_t key,
                      std::span<NodeId> out) const noexcept;

  NodeId primary_for_key(std::uint64_t key) const noexcept;
  NodeId primary(const packet::FiveTuple& tuple) const noexcept {
    return primary_for_key(key_of(tuple));
  }

 private:
  struct Point {
    std::uint64_t hash;
    NodeId node;
  };
  std::vector<Point> points_;  // sorted by hash
  std::size_t nodes_;
};

/// Builds one shard of one node: `via` is the hosting node, `owner` is
/// whose flows the shard holds (owner == via for the primary store,
/// anything else for a replica store). `config` already carries the
/// per-shard spill-directory suffix. An empty factory means in-process
/// LocalShards; a socket cluster returns RemoteShards pointed at its
/// server processes.
using ShardFactory = std::function<std::unique_ptr<StoreShard>(
    NodeId via, NodeId owner, DataStoreConfig config)>;

struct ClusterConfig {
  std::size_t nodes = 4;
  /// Copies per flow (clamped to `nodes`). 2 = survive one node loss.
  std::size_t replication = 2;
  /// Ring points per physical node; more vnodes = smoother balance.
  std::size_t vnodes = 64;
  std::uint64_t ring_seed = 0xC1A55;
  /// Per-node store configuration. A non-empty spill_directory is
  /// suffixed per node ("/node<i>", replicas "/node<i>/owner<k>") so
  /// shards never share files.
  DataStoreConfig node_store;
  /// Retry for transient shard-message failures (the injected-fault /
  /// flaky-transport path; a dead node fails terminally).
  resilience::RetryPolicy rpc_retry;
  std::uint64_t rpc_seed = 0x5A7D5;
  /// Rows per pull when a cursor streams from a shard.
  std::size_t cursor_chunk = 4096;
  /// How the cluster builds its shards (empty = LocalShard in-process).
  ShardFactory shard_factory;
};

/// Outcome of one routed ingest batch. A flow is *acked* once at least
/// one copy applied; `lost` flows reached no node at all (every target
/// dead/failing) and the caller still owns them.
struct ClusterIngestReport {
  std::uint64_t acked = 0;
  std::uint64_t fully_replicated = 0;
  std::uint64_t lost = 0;
  std::uint64_t first_id = 0;  // global ids assigned to this batch
  std::uint64_t last_id = 0;   // (0/0 when the batch was empty)
};

/// Scatter-gather work counters, on top of the summed per-shard scan
/// stats.
struct ClusterQueryStats {
  QueryStats scan;                 // summed across every shard answer
  std::size_t shards_queried = 0;  // shard messages answered
  std::size_t replica_scopes = 0;  // owner scopes served by replicas
  std::size_t rpc_failures = 0;    // messages terminally failed
};

/// Materialized cluster query result. Rows are owned copies (they
/// crossed the node boundary), in global ingest order.
class ClusterQueryResult {
 public:
  ClusterQueryResult() = default;
  ClusterQueryResult(std::vector<StoredFlow> rows, ClusterQueryStats stats)
      : rows_(std::move(rows)), stats_(stats) {}

  std::size_t size() const noexcept { return rows_.size(); }
  bool empty() const noexcept { return rows_.empty(); }
  const StoredFlow& operator[](std::size_t i) const noexcept {
    return rows_[i];
  }
  const StoredFlow& front() const noexcept { return rows_.front(); }
  const StoredFlow& back() const noexcept { return rows_.back(); }
  std::vector<StoredFlow>::const_iterator begin() const noexcept {
    return rows_.begin();
  }
  std::vector<StoredFlow>::const_iterator end() const noexcept {
    return rows_.end();
  }
  const ClusterQueryStats& stats() const noexcept { return stats_; }

 private:
  std::vector<StoredFlow> rows_;
  ClusterQueryStats stats_;
};

class Cluster;

/// Streaming scatter-gather: pulls bounded chunks from every scope's
/// shard and k-way merges them by ascending global id, so a
/// million-flow cluster scan costs O(scopes * cursor_chunk) memory and
/// yields exactly the single-node cursor sequence. Must not outlive
/// the Cluster. A node killed mid-stream fails soft: the stream is
/// dropped and counted in stats().rpc_failures (use query() when you
/// need failover completeness during chaos).
class ClusterCursor {
 public:
  /// Advance to the next row in global ingest order; false when
  /// exhausted or the query limit is reached.
  bool next();
  const StoredFlow& current() const noexcept { return current_; }
  std::uint64_t produced() const noexcept { return produced_; }
  const ClusterQueryStats& stats() const noexcept { return stats_; }

 private:
  friend class Cluster;
  struct Stream {
    const StoreShard* shard = nullptr;
    NodeId via = 0;  // node answering (for liveness + accounting)
    std::vector<StoredFlow> buffer;
    std::size_t pos = 0;
    std::uint64_t after_id = 0;
    bool exhausted = false;
  };

  ClusterCursor(const Cluster* cluster, FlowQuery query);
  bool refill(Stream& stream);

  const Cluster* cluster_ = nullptr;
  FlowQuery query_;
  std::vector<Stream> streams_;
  StoredFlow current_{};
  std::uint64_t produced_ = 0;
  ClusterQueryStats stats_;
};

/// N in-process shard nodes behind consistent-hash placement. Writer
/// contract matches DataStore: ingest*/kill_node from one router
/// thread at a time; every query path is safe concurrently with them.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  std::size_t nodes() const noexcept { return nodes_.size(); }
  std::size_t replication() const noexcept { return replication_; }
  const HashRing& ring() const noexcept { return ring_; }

  /// Route a batch of flows (canonical export order in = deterministic
  /// global ids out).
  ClusterIngestReport ingest(std::span<const capture::FlowRecord> flows);
  /// Single-flow convenience: the assigned global id, 0 if lost.
  std::uint64_t ingest(const capture::FlowRecord& flow);
  /// Complementary events route by subject (all of one host's logs
  /// co-locate) with the same replication factor, best-effort.
  void ingest_log(const LogEvent& event);

  /// Scatter to every owner scope, failover to replicas, merge by
  /// ascending global id. Bit-identical to a single-node store fed the
  /// same flows in the same order.
  ClusterQueryResult query(const FlowQuery& q) const;
  /// Group-by over the scattered scopes; per-shard partials merge into
  /// the same ordering execute_aggregate produces single-node.
  AggregateResult aggregate(const FlowQuery& q, GroupBy group_by,
                            std::size_t top_k = 0) const;
  ClusterCursor open_cursor(FlowQuery q) const;
  /// Gathered log events, merged by (ts, source, subject, message).
  LogResult query_logs(const LogQuery& q) const;
  /// Summed per-scope catalogs (replica-scoped when an owner is dead).
  CatalogInfo catalog() const;
  std::uint64_t size() const;

  // --- failure handling -------------------------------------------
  /// Chaos switch: the node stops answering messages, permanently.
  /// Queries flip its scope to replicas; ingest copies targeting it
  /// count as replica lag (or loss when every target is dead).
  void kill_node(NodeId node);
  bool alive(NodeId node) const noexcept;
  std::size_t live_nodes() const noexcept;
  /// Flows whose owner is `node` that are short of the replication
  /// factor (acked with < `replication` copies).
  std::uint64_t replica_lag(NodeId node) const noexcept;
  /// Feed cluster pressure (dead-node fraction, on the occupancy
  /// channel) into the shared pipeline health state machine.
  resilience::HealthState feed_health(
      resilience::HealthMonitor& monitor) const;

  /// In-process escape hatch for tests/benches: the primary store of a
  /// node (bit-level inspection without crossing the boundary).
  const DataStore& primary_store(NodeId node) const;

 private:
  friend class ClusterCursor;

  struct Node {
    std::unique_ptr<StoreShard> primary;
    /// replicas[owner] holds rows whose primary is `owner`; entry
    /// [self] stays null. Pre-built at construction so the query path
    /// never mutates the topology.
    std::vector<std::unique_ptr<StoreShard>> replicas;
    std::atomic<bool> alive{true};
    obs::Counter* rpc_failures = nullptr;
    std::atomic<std::uint64_t> replica_lag{0};
  };

  /// One owner scope of a scatter: the shards that together hold
  /// exactly the flows owned by `owner`, each reached via a live node.
  struct Scope {
    NodeId owner = 0;
    bool replica = false;
    std::vector<std::pair<NodeId, const StoreShard*>> sources;
  };

  /// Send one message to a shard via `node`: liveness check, fault
  /// site, bounded retry on transient failures; a dead node fails
  /// fast. `fn` is the shard call. Transport errors are classified:
  /// "connect_refused" marks the node dead on the spot (a refused
  /// remote IS a killed node — no retry-deadline burn, feed_health and
  /// the replica scopes flip immediately), "rpc_io"/"rpc_timeout"
  /// retry under the backoff policy, every other Result/Status passes
  /// through.
  template <typename Fn>
  auto send(NodeId via, Fn&& fn) const -> decltype(fn());

  /// Flip a node dead (kill_node and the connect-refused fast path).
  void mark_dead(NodeId node, const char* reason) const;

  /// The replica stores that together hold owner's flows, on live
  /// nodes.
  std::vector<std::pair<NodeId, const StoreShard*>> replica_sources(
      NodeId owner) const;
  /// Resolve the owner scopes for a gather, flipping dead owners to
  /// their replica stores. `stats` may be null.
  std::vector<Scope> scopes(ClusterQueryStats* stats) const;
  /// Rows of one owner scope under `plan`: primary when reachable,
  /// otherwise replica-gathered, deduped, ascending id.
  std::vector<StoredFlow> gather_scope(NodeId owner,
                                       const ShardQueryPlan& plan,
                                       ClusterQueryStats& stats) const;

  ClusterConfig config_;
  std::size_t replication_;
  HashRing ring_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::uint64_t next_id_ = 1;  // router thread only
  /// Per-message ordinal, salting deterministic retry-jitter seeds.
  mutable std::atomic<std::uint64_t> rpc_calls_{0};
  std::atomic<std::uint64_t> acked_{0};
  std::atomic<std::uint64_t> lost_{0};
  obs::Counter* obs_acked_ = nullptr;
  obs::Counter* obs_lost_ = nullptr;
  obs::Counter* obs_degraded_queries_ = nullptr;
  std::vector<obs::Registry::CallbackHandle> gauges_;
};

}  // namespace campuslab::store

// ShardedFlowIngester — the concurrent ingest path into the DataStore.
//
// The DataStore itself stays single-threaded (its segment/index
// machinery is the hot query structure; locking it per flow from N
// workers would serialize the pipeline again). Instead each capture
// shard appends evicted flows to its own buffer — one tiny per-shard
// mutex, contended only by that shard's worker and the (rare) merge —
// and merge_into() moves the buffers into the store in the canonical
// deterministic order (capture::flow_export_before), so store content
// is a function of the traffic, not of worker scheduling.
//
// merge_into() may run mid-capture (periodic flushes) or after the
// engine stops; either way each buffer is swapped out under its lock,
// so workers are blocked for O(1) per merge.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "campuslab/obs/registry.h"
#include "campuslab/resilience/retry.h"
#include "campuslab/store/datastore.h"
#include "campuslab/util/rng.h"

namespace campuslab::store {

class StoreShard;
class Cluster;
struct ClusterIngestReport;

class ShardedFlowIngester {
 public:
  explicit ShardedFlowIngester(std::size_t shards);

  std::size_t shards() const noexcept { return buffers_.size(); }

  /// Shard-side: buffer one evicted flow. Callable concurrently across
  /// shards; per shard, callers must be serialized (the shard worker).
  void ingest(std::size_t shard, const capture::FlowRecord& flow);

  /// Flows buffered but not yet merged. Safe to sample live.
  std::uint64_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

  /// Flows moved into a store by merge_into() so far.
  std::uint64_t merged_total() const noexcept { return merged_total_; }

  /// Deterministic ordered merge of everything buffered into `store`.
  /// Returns flows ingested. Call from one thread at a time.
  std::uint64_t merge_into(DataStore& store);

  /// Resilient merge: each flow's ingest (which passes through the
  /// store.ingest fault point) is retried under `policy` with seeded
  /// backoff. On exhaustion the unmerged tail is re-buffered — nothing
  /// is lost, and the next merge's canonical sort restores order — and
  /// the terminal error ("retry_exhausted" / "retry_deadline") is
  /// returned alongside nothing; success returns flows ingested.
  /// Call from one thread at a time.
  Result<std::uint64_t> merge_into(DataStore& store,
                                   const resilience::RetryPolicy& policy,
                                   const resilience::Sleeper& sleeper = {});

  /// Ordered merge across the StoreShard node boundary (shard.h): one
  /// canonical-order batch, acked by applied-prefix. A partial or
  /// failed ack re-buffers the unapplied tail — nothing is lost — and
  /// returns the error; success returns flows applied.
  Result<std::uint64_t> merge_into(StoreShard& shard);

  /// Ordered merge into a cluster: the canonical sort happens here, so
  /// the router's global ids — and therefore every query, aggregate
  /// and cursor — come out bit-identical to a single-node store fed
  /// the same capture. Flows the cluster could not place anywhere
  /// count in the report's `lost` (they left the buffers; the cluster
  /// already metered them).
  ClusterIngestReport merge_into(Cluster& cluster);

 private:
  struct Buffer {
    std::mutex mu;
    std::vector<capture::FlowRecord> flows;
  };

  // unique_ptr: mutexes are neither movable nor copyable.
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::atomic<std::uint64_t> pending_{0};
  std::uint64_t merged_total_ = 0;
  // Backoff jitter for the resilient merge; per-ingester so two
  // ingesters backing off from one shared stall de-correlate.
  Rng retry_rng_{0x19e57ull};
  // Live backlog gauge (store.ingest_pending); several ingesters in one
  // process sum, per the registry's callback semantics.
  obs::Registry::CallbackHandle obs_pending_;
};

}  // namespace campuslab::store

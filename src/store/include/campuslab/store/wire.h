// CLRP01 — the StoreShard wire protocol.
//
// Every StoreShard message (shard.h) has a binary encoding here:
// length-prefixed, versioned, checksummed frames whose bodies reuse the
// CLSEG01 codec primitives (util/codec.h varint/zigzag, util/hash.h
// FNV-1a) and the segment file's dictionary idiom — row batches carry a
// sorted host dictionary and delta-coded ids/timestamps, so a loopback
// query chunk costs bytes proportional to its entropy, not its struct
// size.
//
// Frame layout (all integers big-endian):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//        0     4  magic "CLRP" (0x434C5250)
//        4     1  version (2)
//        5     1  message type (MsgType)
//        6     2  flags (0 so far; nonzero rejected)
//        8     4  shard id (which shard on this server)
//       12     8  request id (echoed verbatim in the reply)
//       20     4  body length in bytes
//       24     8  FNV-1a of the body bytes
//       32     8  FNV-1a of header bytes [0, 32)
//       40   ...  body
//
// Totality: every decoder is bounds-checked through ByteReader, every
// varint is rejected when overlong or truncated, every enum and count
// is range-checked (counts against the bytes that remain, so a hostile
// length can never drive an allocation), and every body must be
// consumed exactly. Malformed input yields a stable error code —
// wire_magic, wire_version, wire_flags, wire_type, wire_oversize,
// wire_truncated, wire_checksum, wire_corrupt — never UB. The fuzz
// suite (shard_wire_fuzz_test) holds this under ASAN; the golden
// fixture tests/data/golden_shard_rpc_v2.bin pins the byte format.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "campuslab/store/shard.h"
#include "campuslab/util/result.h"

namespace campuslab::store::wire {

inline constexpr std::uint32_t kMagic = 0x434C5250;  // "CLRP"
/// v2: the traffic label space widened to kTrafficLabelCount = 7
/// (worm, exfiltration), which grows the catalog's flows_per_label
/// column and the per-flow label mask bound. Frame layout unchanged.
inline constexpr std::uint8_t kVersion = 2;
inline constexpr std::size_t kHeaderSize = 40;
/// Default bound on one frame body. A query chunk of max_rows flows
/// stays far below this; anything larger is a protocol violation.
inline constexpr std::size_t kDefaultMaxBody = 32u << 20;

/// One request/reply pair per StoreShard method, plus ping (liveness /
/// connection warmup) and the error reply. Requests are < 64, replies
/// >= 64, so a stream desync is caught by type checks, not just
/// checksums.
enum class MsgType : std::uint8_t {
  kIngest = 1,
  kIngestLog = 2,
  kQuery = 3,
  kAggregate = 4,
  kQueryLogs = 5,
  kCatalog = 6,
  kFlowCount = 7,
  kPing = 8,

  kIngestAck = 65,
  kIngestLogOk = 66,
  kQueryRows = 67,
  kAggregateReply = 68,
  kLogReply = 69,
  kCatalogReply = 70,
  kFlowCountReply = 71,
  kPong = 72,

  kError = 127,
};

/// True for the MsgType values a v1 peer may send.
bool valid_type(std::uint8_t type) noexcept;

struct FrameHeader {
  MsgType type = MsgType::kPing;
  std::uint32_t shard = 0;
  std::uint64_t request_id = 0;
  std::uint32_t body_len = 0;
  std::uint64_t body_hash = 0;
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> body;
};

/// Encode one complete frame (header + body) ready to write to a
/// socket.
std::vector<std::uint8_t> encode_frame(MsgType type, std::uint32_t shard,
                                       std::uint64_t request_id,
                                       std::span<const std::uint8_t> body);

/// Parse and validate the fixed 40-byte header (magic, version, flags,
/// type, header checksum, body bound). `data` must hold at least
/// kHeaderSize bytes.
Result<FrameHeader> parse_frame_header(std::span<const std::uint8_t> data,
                                       std::size_t max_body = kDefaultMaxBody);

/// Verify the body against the header's body checksum.
Status verify_body(const FrameHeader& header,
                   std::span<const std::uint8_t> body);

/// Incremental frame parser for a byte stream: feed() whatever the
/// socket produced, then drain next() until it reports "need more".
/// A protocol violation poisons the assembler — the connection owning
/// it must close (after a length error the stream has no recoverable
/// framing).
class FrameAssembler {
 public:
  explicit FrameAssembler(std::size_t max_body = kDefaultMaxBody)
      : max_body_(max_body) {}

  void feed(std::span<const std::uint8_t> data);

  /// ok(nullopt) = need more bytes; ok(frame) = one complete, verified
  /// frame; error = the stream is poisoned and must be torn down.
  Result<std::optional<Frame>> next();

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  std::size_t max_body_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  bool poisoned_ = false;
  Error poison_{};
};

// --- Message body codecs -------------------------------------------
//
// Each decode validates everything (bounds, enums, counts, exact
// consumption) and returns wire_corrupt on any violation. Encoders are
// total.

std::vector<std::uint8_t> encode_ingest(const ShardIngestBatch& batch);
Result<ShardIngestBatch> decode_ingest(std::span<const std::uint8_t> body);

std::vector<std::uint8_t> encode_ingest_ack(const ShardIngestAck& ack);
Result<ShardIngestAck> decode_ingest_ack(std::span<const std::uint8_t> body);

std::vector<std::uint8_t> encode_log_event(const LogEvent& event);
Result<LogEvent> decode_log_event(std::span<const std::uint8_t> body);

std::vector<std::uint8_t> encode_query_plan(const ShardQueryPlan& plan);
Result<ShardQueryPlan> decode_query_plan(std::span<const std::uint8_t> body);

std::vector<std::uint8_t> encode_query_rows(const ShardQueryRows& rows);
Result<ShardQueryRows> decode_query_rows(std::span<const std::uint8_t> body);

/// Aggregate request: the filter plus grouping and top-k.
struct AggregatePlan {
  FlowQuery query;
  GroupBy group_by = GroupBy::kHost;
  std::size_t top_k = 0;
};

std::vector<std::uint8_t> encode_aggregate_plan(const AggregatePlan& plan);
Result<AggregatePlan> decode_aggregate_plan(
    std::span<const std::uint8_t> body);

std::vector<std::uint8_t> encode_aggregate_result(const AggregateResult& r);
Result<AggregateResult> decode_aggregate_result(
    std::span<const std::uint8_t> body);

std::vector<std::uint8_t> encode_log_query(const LogQuery& q);
Result<LogQuery> decode_log_query(std::span<const std::uint8_t> body);

std::vector<std::uint8_t> encode_log_reply(
    const std::vector<LogEvent>& events);
Result<std::vector<LogEvent>> decode_log_reply(
    std::span<const std::uint8_t> body);

std::vector<std::uint8_t> encode_catalog(const CatalogInfo& info);
Result<CatalogInfo> decode_catalog(std::span<const std::uint8_t> body);

std::vector<std::uint8_t> encode_flow_count(std::uint64_t count);
Result<std::uint64_t> decode_flow_count(std::span<const std::uint8_t> body);

/// Error reply body: a stable code plus human-readable detail,
/// reconstructed into an Error on the client side. (Out-param shape:
/// Result<Error> would make "which Error is the payload" ambiguous.)
std::vector<std::uint8_t> encode_error(const Error& error);
Status decode_error(std::span<const std::uint8_t> body, Error& out);

}  // namespace campuslab::store::wire

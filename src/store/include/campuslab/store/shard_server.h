// store::ShardServer — a StoreShard node behind a real socket.
//
// One server process (or thread) hosts a set of StoreShards — by
// convention shard id 0 is the node's primary store and id 1+owner is
// its replica store for `owner` — and speaks the CLRP01 wire protocol
// (wire.h) to any number of concurrent clients. The transport is the
// one shard.h promised: a single-threaded non-blocking poll() loop that
// accepts, reads length-prefixed request frames, dispatches to exactly
// the StoreShard handlers, and writes reply frames. Serial dispatch is
// a feature, not a shortcut — it gives every hosted shard the same
// one-writer contract a LocalShard enjoys in-process, with no locks in
// the storage layer.
//
// Defensive posture: the server treats every byte off the wire as
// attacker-controlled. Frames are bounded (`max_body`), checksummed,
// and totally decoded before any shard code runs; a framing violation
// (bad magic, oversized length, checksum damage) earns the client one
// error reply — when the stream is still writable — and the connection
// closes, because after a length error there is no recoverable framing.
// Idle connections (a slow client holding half a frame) are reaped on
// `idle_timeout`. Malformed-but-framed bodies get an error reply and
// the connection survives.
//
// Metrics: rpc.server_connections / _frames / _rejects counters,
// rpc.server_bytes_{in,out}, and the rpc_server_dispatch_ns histogram,
// all in the global obs registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "campuslab/store/shard.h"
#include "campuslab/store/wire.h"
#include "campuslab/util/result.h"
#include "campuslab/util/time.h"

namespace campuslab::store {

struct ShardServerConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; port() reports the kernel's choice after start().
  std::uint16_t port = 0;
  /// Bound on one frame body; larger advertised lengths are rejected
  /// before allocation.
  std::size_t max_body = wire::kDefaultMaxBody;
  /// Reap connections quiet for this long (0 disables). The poll tick
  /// rounds enforcement to ~50 ms.
  Duration idle_timeout = Duration::seconds(30);
  int listen_backlog = 64;
};

class ShardServer {
 public:
  explicit ShardServer(ShardServerConfig config = {});
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Register a shard under a wire shard id. Must happen before
  /// start(); the server never takes ownership.
  void add_shard(std::uint32_t id, StoreShard& shard);

  /// Bind, listen, and spawn the poll loop. Error codes: "socket_bind"
  /// / "socket_listen" / "socket_io".
  Status start();

  /// Stop the loop and close every connection. Idempotent.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// The bound port (after start()).
  std::uint16_t port() const noexcept { return bound_port_; }

  /// Frames dispatched to a shard so far (replies + error replies).
  std::uint64_t frames_served() const noexcept {
    return frames_served_.load(std::memory_order_relaxed);
  }
  /// Connections torn down for protocol violations or idle timeout.
  std::uint64_t connections_rejected() const noexcept {
    return connections_rejected_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;

  void run();
  /// One request frame -> one encoded reply frame (never throws).
  std::vector<std::uint8_t> dispatch(const wire::Frame& request);

  ShardServerConfig config_;
  std::vector<std::pair<std::uint32_t, StoreShard*>> shards_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: stop() wakes poll()
  std::uint16_t bound_port_ = 0;
  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> frames_served_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
};

}  // namespace campuslab::store

// store::RemoteShard — the socket-backed StoreShard.
//
// The constructor swap shard.h promised: a RemoteShard speaks the
// CLRP01 wire protocol (wire.h) to a ShardServer and implements the
// same message-shaped interface a LocalShard does, so the Cluster — and
// the PR 7 bit-identity battery — run unchanged over a real network
// boundary.
//
// Failure model (codes the Cluster's send() classifies):
//   - "connect_refused": the peer actively refused (dead process).
//     Surfaces immediately — no backoff — so the cluster can flip the
//     node's scopes to replicas as fast as a kill_node() switch.
//   - "rpc_timeout": connect or reply missed its deadline. The socket
//     closes (the stream has no framing after a half-read reply); the
//     next call reconnects.
//   - "rpc_io": the connection broke (RST after a SIGKILL, EOF from an
//     idle-timeout close). If the request was never fully delivered on
//     a *reused* connection, the call transparently reconnects and
//     resends once — the idle-close race every long-lived client hits —
//     otherwise the error surfaces and the caller's retry policy
//     decides (shard-side idempotent ascending-id replay makes an
//     ingest resend safe).
//   - wire_* / server error codes pass through verbatim.
//
// Socket-level fault hooks: "rpc.connect", "rpc.send", "rpc.recv" are
// resilience fault sites, so chaos plans can inject refused
// connections and broken streams without a real network in the loop.
//
// Thread safety: calls serialize on an internal mutex (one socket, one
// in-flight request). Const query methods are genuinely concurrent at
// the interface level — they just take turns on the wire.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "campuslab/store/shard.h"
#include "campuslab/store/wire.h"
#include "campuslab/util/time.h"

namespace campuslab::store {

struct RemoteShardConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Which shard on the server (0 = primary, 1+owner = replica).
  std::uint32_t shard = 0;
  Duration connect_timeout = Duration::millis(500);
  /// Per-request reply deadline.
  Duration io_timeout = Duration::seconds(5);
  std::size_t max_body = wire::kDefaultMaxBody;
};

class RemoteShard final : public StoreShard {
 public:
  explicit RemoteShard(RemoteShardConfig config);
  ~RemoteShard() override;

  RemoteShard(const RemoteShard&) = delete;
  RemoteShard& operator=(const RemoteShard&) = delete;

  Result<ShardIngestAck> ingest(const ShardIngestBatch& batch) override;
  Status ingest_log(const LogEvent& event) override;
  Result<ShardQueryRows> query(const ShardQueryPlan& plan) const override;
  Result<AggregateResult> aggregate(const FlowQuery& q, GroupBy group_by,
                                    std::size_t top_k) const override;
  Result<LogResult> query_logs(const LogQuery& q) const override;
  Result<CatalogInfo> catalog() const override;
  Result<std::uint64_t> flow_count() const override;

  /// Round-trip liveness probe (and connection warmup).
  Status ping() const;

  bool connected() const;
  /// Reconnections performed after the first successful connect.
  std::uint64_t reconnects() const noexcept;

 private:
  /// One request/reply exchange, including connect-on-demand and the
  /// reused-connection resend. Returns the reply body after type,
  /// request-id, and error-frame handling.
  Result<std::vector<std::uint8_t>> call(wire::MsgType type,
                                         const std::vector<std::uint8_t>& body,
                                         wire::MsgType expect) const;

  Status connect_locked() const;
  void close_locked() const;
  Status send_all_locked(std::span<const std::uint8_t> data,
                         Duration budget) const;
  Result<wire::Frame> read_frame_locked(Duration budget) const;

  RemoteShardConfig config_;
  mutable std::mutex mutex_;
  mutable int fd_ = -1;
  mutable bool reused_ = false;  // >= 1 exchange served on this socket
  mutable std::uint64_t next_request_ = 1;
  mutable std::uint64_t reconnects_ = 0;
  mutable bool ever_connected_ = false;
};

}  // namespace campuslab::store

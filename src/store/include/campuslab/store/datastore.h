// DataStore — "the single source of all campus network-related data".
//
// Implements §5's data store: flow records and complementary log events
// are ingested continuously, cleaned (monotonic timestamps enforced),
// time-partitioned into segments, indexed (per-segment inverted indexes
// by host address, port, and ground-truth label), and retained for a
// configurable window. Raw packets are archived separately in pcap
// segments (packet_archive.h); the store keeps the linking metadata.
//
// Concurrency contract: ingest(), ingest_log() and enforce_retention()
// mutate under the store mutex and may each run from one thread at a
// time (the ShardedFlowIngester merge thread in the pipeline); every
// read path — query(), aggregate(), cursors, for_each(), catalog() —
// pins a StoreSnapshot under that mutex for O(segments) and then runs
// lock-free against immutable pinned state, fully concurrent with
// ingest and retention (snapshot.h explains why this is race-free).
// Results own their snapshot: rows stay valid for the result's
// lifetime no matter what the writer does meanwhile.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "campuslab/resilience/retry.h"
#include "campuslab/store/aggregate.h"
#include "campuslab/store/query.h"
#include "campuslab/store/query_result.h"
#include "campuslab/store/snapshot.h"

namespace campuslab::store {

class ScanPool;

struct DataStoreConfig {
  std::size_t segment_flows = 50'000;  // rotate after this many flows
  Duration retention = Duration::hours(24 * 7);  // paper: "order of a week"
  /// Scan parallelism for query()/aggregate(): total threads fanned
  /// out per call (1 = serial). The worker pool is created lazily on
  /// the first parallel query and shared by all queries on this store.
  std::size_t query_threads = 1;

  // --- Tiered storage ---------------------------------------------
  /// When non-empty, sealed segments spill to columnar files
  /// (segment_file.h) in this directory and the RAM copy is dropped;
  /// queries transparently read both tiers. Empty = everything stays
  /// hot (the pre-tiering behaviour).
  std::string spill_directory;
  /// Hot-tier RAM target in bytes. 0 = spill every segment as it
  /// seals; otherwise sealed segments spill oldest-first until the
  /// estimated hot footprint is back under the budget. Ignored when
  /// spill_directory is empty.
  std::uint64_t hot_bytes_budget = 0;
  /// Backoff for transient spill failures (disk blips, injected
  /// faults). Exhaustion degrades gracefully: the segment stays hot.
  resilience::RetryPolicy spill_retry;
  /// Seeds the retry jitter so fault-injection tests replay exactly.
  std::uint64_t spill_seed = 0x5B111;
};

/// The §5 metadata catalog: what the store holds, over what span.
struct CatalogInfo {
  std::uint64_t total_flows = 0;
  std::uint64_t total_packets = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t total_log_events = 0;
  std::size_t segments = 0;
  std::size_t cold_segments = 0;  // of `segments`, spilled to disk
  Timestamp earliest;
  Timestamp latest;
  std::array<std::uint64_t, packet::kTrafficLabelCount> flows_per_label{};
  std::uint64_t evicted_by_retention = 0;
};

class DataStore {
 public:
  explicit DataStore(DataStoreConfig config = {});
  ~DataStore();

  DataStore(const DataStore&) = delete;
  DataStore& operator=(const DataStore&) = delete;

  /// Ingest one completed flow; returns its stable id. Flows are
  /// expected in roughly time order (the flow meter's eviction order);
  /// out-of-order records are accepted and indexed correctly.
  std::uint64_t ingest(const capture::FlowRecord& flow);

  /// Ingest under a caller-assigned stable id (the cluster router's
  /// global id space — every replica of a flow carries the same id, and
  /// cluster-merged rows are bit-identical to a single-node store).
  /// id 0 assigns locally, identical to ingest(flow); the local counter
  /// advances past explicit ids so mixed callers never collide.
  std::uint64_t ingest(const StoredFlow& row);

  /// Ingest a complementary event (server log, firewall, IDS, ...).
  void ingest_log(LogEvent event);

  /// Evaluate a query against a snapshot pinned at call time. Rows are
  /// in ingest order; `query.limit` caps the count. The result owns
  /// its snapshot — it outlives retention and concurrent ingest.
  /// Fans out over the configured query_threads when > 1.
  QueryResult query(const FlowQuery& q) const;

  /// Same, fanning out over an explicit pool (bench thread sweeps,
  /// callers sharing one pool across stores).
  QueryResult query(const FlowQuery& q, ScanPool& pool) const;

  /// Log events matching `q`, copied out under the store mutex.
  LogResult query_logs(const LogQuery& q) const;

  /// Count / sum-bytes group-by and top-K heavy hitters over every
  /// flow matching `q` (see aggregate.h for grouping semantics).
  AggregateResult aggregate(const FlowQuery& q, GroupBy group_by,
                            std::size_t top_k = 0) const;
  AggregateResult aggregate(const FlowQuery& q, GroupBy group_by,
                            std::size_t top_k, ScanPool& pool) const;

  /// Streaming evaluation: pins a snapshot now, walks it row by row
  /// without materializing (million-flow scans in O(1) memory).
  QueryCursor open_cursor(FlowQuery q) const;

  /// Pin the current segment list (the primitive under every read
  /// path; public for tools that batch several reads on one view).
  StoreSnapshot snapshot() const;

  /// Visit every stored flow in ingest order (dataset export). Runs on
  /// a pinned snapshot: consistent, and concurrent with ingest.
  void for_each(const std::function<void(const StoredFlow&)>& fn) const;

  /// Drop whole segments entirely older than now - retention.
  /// Returns flows evicted. Snapshots pinned before the call keep
  /// their segments alive until released — including spilled segments,
  /// whose files are unlinked only when the last pin lets go.
  std::uint64_t enforce_retention(Timestamp now);

  /// Spill up to `max_segments` sealed hot segments (oldest first) to
  /// the configured spill directory, dropping their RAM copies.
  /// Returns how many actually moved; 0 when tiering is disabled,
  /// nothing is sealed-and-hot, or the disk kept failing (in which
  /// case the segments stay hot — graceful degradation, counted in
  /// `store.spill_failures`). Same single-writer contract as ingest().
  std::size_t spill(
      std::size_t max_segments = std::numeric_limits<std::size_t>::max());

  /// Estimated hot-tier footprint (flow arrays + indexes), the
  /// quantity hot_bytes_budget meters.
  std::uint64_t hot_bytes() const;

  CatalogInfo catalog() const;
  std::uint64_t size() const noexcept {
    return total_flows_.load(std::memory_order_acquire);
  }

 private:
  /// One slot in the segment list: exactly one of `hot` / `cold` is
  /// set. A segment is born hot, seals in place, and may then move to
  /// the cold tier (spill swaps the pointers under the store mutex).
  struct TieredSegment {
    std::shared_ptr<Segment> hot;
    std::shared_ptr<const ColdSegmentHandle> cold;
  };

  Segment& open_segment_locked();
  StoreSnapshot snapshot_locked() const;
  static void index_flow(Segment& seg, const StoredFlow& stored,
                         std::uint32_t offset);
  ScanPool* configured_pool() const;
  /// Serialize one sealed hot segment and swap it cold. False = the
  /// write kept failing and the segment stays hot.
  bool spill_segment(const std::shared_ptr<Segment>& victim);
  /// Apply the spill policy after a segment seals.
  void enforce_hot_budget();

  DataStoreConfig config_;
  mutable std::mutex mu_;
  std::deque<TieredSegment> segments_;
  std::deque<LogEvent> logs_;
  std::uint64_t next_id_ = 1;
  std::atomic<std::uint64_t> total_flows_{0};
  std::uint64_t evicted_ = 0;
  std::array<std::uint64_t, packet::kTrafficLabelCount> label_counts_{};
  // Lazily created on the first parallel query (query_threads > 1).
  mutable std::once_flag pool_once_;
  mutable std::unique_ptr<ScanPool> pool_;
};

}  // namespace campuslab::store

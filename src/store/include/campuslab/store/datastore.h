// DataStore — "the single source of all campus network-related data".
//
// Implements §5's data store: flow records and complementary log events
// are ingested continuously, cleaned (monotonic timestamps enforced),
// time-partitioned into segments, indexed (per-segment inverted indexes
// by host address, port, and ground-truth label), and retained for a
// configurable window. Queries (query.h) are planned against the most
// selective index. Raw packets are archived separately in pcap segments
// (packet_archive.h); the store keeps the linking metadata.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "campuslab/store/query.h"

namespace campuslab::store {

struct DataStoreConfig {
  std::size_t segment_flows = 50'000;  // rotate after this many flows
  Duration retention = Duration::hours(24 * 7);  // paper: "order of a week"
};

/// The §5 metadata catalog: what the store holds, over what span.
struct CatalogInfo {
  std::uint64_t total_flows = 0;
  std::uint64_t total_packets = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t total_log_events = 0;
  std::size_t segments = 0;
  Timestamp earliest;
  Timestamp latest;
  std::array<std::uint64_t, packet::kTrafficLabelCount> flows_per_label{};
  std::uint64_t evicted_by_retention = 0;
};

class DataStore {
 public:
  explicit DataStore(DataStoreConfig config = {});

  /// Ingest one completed flow; returns its stable id. Flows are
  /// expected in roughly time order (the flow meter's eviction order);
  /// out-of-order records are accepted and indexed correctly.
  std::uint64_t ingest(const capture::FlowRecord& flow);

  /// Ingest a complementary event (server log, firewall, IDS, ...).
  void ingest_log(LogEvent event);

  /// Evaluate a query. Results are in ingest order; `query.limit` caps
  /// the result count. Pointers are valid until the next retention
  /// enforcement or destruction.
  std::vector<const StoredFlow*> query(const FlowQuery& q) const;

  std::vector<const LogEvent*> query_logs(const LogQuery& q) const;

  /// Visit every stored flow in ingest order (dataset export).
  void for_each(const std::function<void(const StoredFlow&)>& fn) const;

  /// Drop whole segments entirely older than now - retention.
  /// Returns flows evicted.
  std::uint64_t enforce_retention(Timestamp now);

  CatalogInfo catalog() const;
  std::uint64_t size() const noexcept { return total_flows_; }

 private:
  struct Segment {
    std::vector<StoredFlow> flows;
    Timestamp min_ts;
    Timestamp max_ts;
    bool sealed = false;
    // Local inverted indexes: value = offset into `flows`.
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> by_host;
    std::unordered_map<std::uint16_t, std::vector<std::uint32_t>> by_port;
    std::array<std::vector<std::uint32_t>, packet::kTrafficLabelCount>
        by_label;
  };

  Segment& open_segment();
  static void index_flow(Segment& seg, const StoredFlow& stored,
                         std::uint32_t offset);
  bool segment_overlaps(const Segment& seg, const FlowQuery& q) const;

  DataStoreConfig config_;
  std::deque<Segment> segments_;
  std::deque<LogEvent> logs_;
  std::uint64_t next_id_ = 1;
  std::uint64_t total_flows_ = 0;
  std::uint64_t evicted_ = 0;
  std::array<std::uint64_t, packet::kTrafficLabelCount> label_counts_{};
};

}  // namespace campuslab::store

// StoreShard — the narrow node boundary of the distributed store.
//
// Everything above the storage layer talks to this interface instead of
// a concrete DataStore: the capture merge path ingests batches through
// it, and the cluster's scatter-gather query engine pulls row chunks
// through it. The surface is deliberately *message-shaped* — every
// request and reply is a flat value type (no pointers into shard
// memory, no shared snapshots across the boundary) — so a future
// RemoteShard can serialize the same messages over a socket without
// changing a caller. The intended transport is a single-threaded
// select/poll loop per node (accept, read length-prefixed request,
// dispatch to exactly these five handlers, write reply), with UDP-style
// datagram framing workable for the small control messages; nothing in
// the message set assumes ordering beyond one request/reply pair.
//
// LocalShard is the in-process implementation: it wraps today's
// DataStore unchanged, delegating execution to the same snapshot-pinned
// segment-parallel engine single-node callers use. Rows cross the
// boundary by value (a transport could never share a pin); for queries
// that match little — the common indexed case — the copy is noise, and
// the T-STORE bench gates the whole indirection at <= 15% of the direct
// DataStore path.
//
// Resumable chunking: a query plan carries (after_id, max_rows) so a
// caller can stream a large result in bounded-memory pulls. Ids are
// ascending in ingest order per shard (the cluster router assigns them
// globally), so `after_id` is a perfect resume token and whole segments
// whose id range lies at or below it are skipped — for spilled
// segments via the zone map's id_hi, without any I/O.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "campuslab/store/datastore.h"
#include "campuslab/util/result.h"

namespace campuslab::store {

/// Ingest request: rows with router-assigned global ids (id 0 = assign
/// locally, for standalone single-shard use).
struct ShardIngestBatch {
  std::vector<StoredFlow> rows;
};

/// Ingest reply. `applied` counts the batch prefix durably ingested;
/// applied < rows.size() means a row-level failure stopped the batch
/// and the caller owns the tail.
struct ShardIngestAck {
  std::uint64_t applied = 0;
};

/// Query request: a planned query plus the resumable-chunk window.
/// `query.limit` and `max_rows` both cap this pull (the smaller wins);
/// a streaming caller passes limit-free queries and pages with
/// (after_id, max_rows).
struct ShardQueryPlan {
  FlowQuery query;
  std::uint64_t after_id = 0;  // only rows with id > after_id
  std::size_t max_rows = std::numeric_limits<std::size_t>::max();
};

/// Query reply: matching rows in ingest (ascending-id) order, copied by
/// value. `exhausted` is true when the scan reached the end of the
/// shard — false means "pull again from rows.back().id".
struct ShardQueryRows {
  std::vector<StoredFlow> rows;
  bool exhausted = true;
  QueryStats stats;
};

/// The node-boundary interface. Errors model transport/node failure
/// ("node_dead", "connect_refused", "rpc_io", "rpc_timeout",
/// "fault_injected"); in-band partial failure travels in the reply
/// types. Every method — including catalog and flow count — can fail,
/// because every method may cross a socket.
class StoreShard {
 public:
  virtual ~StoreShard() = default;

  virtual Result<ShardIngestAck> ingest(const ShardIngestBatch& batch) = 0;
  virtual Status ingest_log(const LogEvent& event) = 0;
  virtual Result<ShardQueryRows> query(const ShardQueryPlan& plan) const = 0;
  virtual Result<AggregateResult> aggregate(const FlowQuery& q,
                                            GroupBy group_by,
                                            std::size_t top_k) const = 0;
  virtual Result<LogResult> query_logs(const LogQuery& q) const = 0;
  virtual Result<CatalogInfo> catalog() const = 0;
  virtual Result<std::uint64_t> flow_count() const = 0;
};

/// In-process StoreShard over an owned DataStore. The wrapped store is
/// reachable for zero-copy in-process callers (benches, tests); going
/// through the interface costs one virtual dispatch plus the row-copy
/// of whatever matched.
///
/// Idempotent replay: per-store id streams ascend (the cluster router
/// guarantees it), so a batch row whose explicit id is at or below the
/// highest id this shard already applied is a retransmission — a
/// client resend after a lost ack, or a cluster-level rpc_io retry. It
/// is acked without re-storing, which keeps at-least-once transports
/// exactly-once at the storage layer.
class LocalShard final : public StoreShard {
 public:
  explicit LocalShard(DataStoreConfig config = {});
  ~LocalShard() override;

  DataStore& store() noexcept { return *store_; }
  const DataStore& store() const noexcept { return *store_; }

  Result<ShardIngestAck> ingest(const ShardIngestBatch& batch) override;
  Status ingest_log(const LogEvent& event) override;
  Result<ShardQueryRows> query(const ShardQueryPlan& plan) const override;
  Result<AggregateResult> aggregate(const FlowQuery& q, GroupBy group_by,
                                    std::size_t top_k) const override;
  Result<LogResult> query_logs(const LogQuery& q) const override;
  Result<CatalogInfo> catalog() const override;
  Result<std::uint64_t> flow_count() const override {
    return std::uint64_t{store_->size()};
  }

 private:
  std::unique_ptr<DataStore> store_;
  std::uint64_t last_applied_id_ = 0;  // writer thread only
};

}  // namespace campuslab::store

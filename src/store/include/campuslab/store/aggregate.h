// Aggregation layer over the query engine: count / sum-bytes group-by
// and top-K heavy hitters, computed per segment (in parallel when a
// pool is supplied) and merged deterministically.
//
// Grouping semantics mirror the inverted indexes: kHost and kPort
// credit a flow to *both* endpoints (a flow between A and B counts
// toward A's row and B's row — "top talkers" in the operational
// sense), deduplicated when the two sides coincide; kLabel groups by
// the flow's majority label. Rows are ordered by bytes descending,
// key ascending on ties, so the first K rows ARE the top-K heavy
// hitters and the ordering is reproducible across runs and thread
// counts.
#pragma once

#include <cstdint>
#include <vector>

#include "campuslab/store/query_result.h"

namespace campuslab::store {

enum class GroupBy : std::uint8_t { kHost, kPort, kLabel };

std::string_view to_string(GroupBy by) noexcept;

struct AggregateRow {
  std::uint64_t key = 0;  // host address value / port / label index
  std::uint64_t flows = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;

  // Typed views of `key` for the grouping that produced the row.
  packet::Ipv4Address host() const noexcept {
    return packet::Ipv4Address(static_cast<std::uint32_t>(key));
  }
  std::uint16_t port() const noexcept {
    return static_cast<std::uint16_t>(key);
  }
  packet::TrafficLabel label() const noexcept {
    return static_cast<packet::TrafficLabel>(key);
  }
};

struct AggregateResult {
  GroupBy group_by = GroupBy::kHost;
  /// Bytes descending, key ascending on ties; truncated to top_k when
  /// a top_k was requested.
  std::vector<AggregateRow> rows;
  /// Flows that matched the filter (each counted once, even when it
  /// credited two endpoint rows).
  std::uint64_t matched_flows = 0;
  QueryStats stats;
};

}  // namespace campuslab::store

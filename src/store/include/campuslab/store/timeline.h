// Incident timeline — the payoff of §5's "linked" data: one query that
// merges everything the store knows about a host across sources
// (flows + complementary log events) into a chronological narrative an
// operator can read during or after an incident.
#pragma once

#include <string>
#include <vector>

#include "campuslab/store/datastore.h"

namespace campuslab::store {

struct TimelineEntry {
  enum class Kind : std::uint8_t { kFlowStart, kLogEvent };

  Timestamp ts;
  Kind kind = Kind::kLogEvent;
  int severity = 0;          // logs carry theirs; flows derive from label
  std::string source;        // "flow" or the log's source
  std::string description;
};

struct TimelineOptions {
  std::size_t max_entries = 200;
  /// Skip benign flows below this byte count (keeps chatty hosts
  /// readable; logs are never filtered).
  std::uint64_t min_benign_flow_bytes = 0;
};

/// Everything about `host` in [from, to], chronologically.
std::vector<TimelineEntry> incident_timeline(
    const DataStore& store, packet::Ipv4Address host, Timestamp from,
    Timestamp to, const TimelineOptions& options = {});

/// Human-readable rendering.
std::string to_string(const std::vector<TimelineEntry>& timeline);

}  // namespace campuslab::store

// FlowQuery — the data store's "fast and flexible search" interface.
//
// A query is a conjunction of optional predicates over stored flows.
// The store picks the most selective available index (host, label,
// port) and falls back to a time-bounded scan, so queries state *what*
// they want, never *how* to find it. planned_index() exposes that
// choice for tests and EXPLAIN-style tooling.
//
// Builders are ref-qualified: on an lvalue they return FlowQuery& (the
// classic mutate-in-place chain), on an rvalue they return FlowQuery&&
// so a one-liner like `store.query(FlowQuery{}.about_host(h).top(5))`
// moves the same temporary through the whole chain without copying.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>
#include <utility>

#include "campuslab/capture/flow.h"

namespace campuslab::store {

/// A flow record as stored, with its stable id.
struct StoredFlow {
  std::uint64_t id = 0;
  capture::FlowRecord flow;
};

/// Which access path the planner selects for a query. Ordered by
/// expected selectivity: an exact host address narrows harder than a
/// label, a label harder than a port; anything else is a
/// segment-pruned time scan.
enum class IndexKind : std::uint8_t { kHost, kLabel, kPort, kTimeScan };

std::string_view to_string(IndexKind kind) noexcept;

struct FlowQuery {
  /// Overlap with [from, to] on the flow's [first_ts, last_ts] span.
  std::optional<Timestamp> from;
  std::optional<Timestamp> to;

  std::optional<packet::Ipv4Address> src;   // exact initiator address
  std::optional<packet::Ipv4Address> dst;   // exact responder address
  std::optional<packet::Ipv4Address> host;  // either side
  std::optional<std::uint16_t> port;        // either port
  std::optional<std::uint8_t> proto;
  std::optional<packet::TrafficLabel> label;  // majority label
  std::optional<bool> dns_only;
  std::optional<sim::Direction> direction;    // initial direction
  std::uint64_t min_bytes = 0;
  std::size_t limit = std::numeric_limits<std::size_t>::max();

  /// Full predicate (used after index pre-filtering).
  bool matches(const StoredFlow& stored) const noexcept;

  // Fluent builders keep call sites readable.
  FlowQuery& between(Timestamp a, Timestamp b) & {
    from = a;
    to = b;
    return *this;
  }
  FlowQuery&& between(Timestamp a, Timestamp b) && {
    return std::move(between(a, b));
  }
  FlowQuery& since(Timestamp a) & {
    from = a;
    return *this;
  }
  FlowQuery&& since(Timestamp a) && { return std::move(since(a)); }
  FlowQuery& until(Timestamp b) & {
    to = b;
    return *this;
  }
  FlowQuery&& until(Timestamp b) && { return std::move(until(b)); }
  FlowQuery& about_host(packet::Ipv4Address a) & {
    host = a;
    return *this;
  }
  FlowQuery&& about_host(packet::Ipv4Address a) && {
    return std::move(about_host(a));
  }
  FlowQuery& with_label(packet::TrafficLabel l) & {
    label = l;
    return *this;
  }
  FlowQuery&& with_label(packet::TrafficLabel l) && {
    return std::move(with_label(l));
  }
  FlowQuery& on_port(std::uint16_t p) & {
    port = p;
    return *this;
  }
  FlowQuery&& on_port(std::uint16_t p) && { return std::move(on_port(p)); }
  FlowQuery& with_proto(std::uint8_t p) & {
    proto = p;
    return *this;
  }
  FlowQuery&& with_proto(std::uint8_t p) && {
    return std::move(with_proto(p));
  }
  FlowQuery& at_least_bytes(std::uint64_t n) & {
    min_bytes = n;
    return *this;
  }
  FlowQuery&& at_least_bytes(std::uint64_t n) && {
    return std::move(at_least_bytes(n));
  }
  FlowQuery& from_direction(sim::Direction d) & {
    direction = d;
    return *this;
  }
  FlowQuery&& from_direction(sim::Direction d) && {
    return std::move(from_direction(d));
  }
  FlowQuery& top(std::size_t n) & {
    limit = n;
    return *this;
  }
  FlowQuery&& top(std::size_t n) && { return std::move(top(n)); }
};

/// The planner: the one place that ranks the available inverted
/// indexes for a query. Pure function of the predicates, so tests can
/// pin index selection without running a store.
IndexKind planned_index(const FlowQuery& q) noexcept;

/// Complementary (non-packet) event, per §5: "server logs, firewall
/// rules, configuration files, events".
struct LogEvent {
  Timestamp ts;
  std::string source;   // "firewall", "dhcp", "ids", "syslog", ...
  int severity = 0;     // 0=info .. 3=critical
  packet::Ipv4Address subject;  // host the event concerns (optional)
  std::string message;
};

struct LogQuery {
  std::optional<Timestamp> from;
  std::optional<Timestamp> to;
  std::optional<std::string> source;
  std::optional<packet::Ipv4Address> subject;
  int min_severity = 0;
  std::size_t limit = std::numeric_limits<std::size_t>::max();

  bool matches(const LogEvent& ev) const noexcept;

  LogQuery& between(Timestamp a, Timestamp b) & {
    from = a;
    to = b;
    return *this;
  }
  LogQuery&& between(Timestamp a, Timestamp b) && {
    return std::move(between(a, b));
  }
  LogQuery& since(Timestamp a) & {
    from = a;
    return *this;
  }
  LogQuery&& since(Timestamp a) && { return std::move(since(a)); }
  LogQuery& from_source(std::string s) & {
    source = std::move(s);
    return *this;
  }
  LogQuery&& from_source(std::string s) && {
    return std::move(from_source(std::move(s)));
  }
  LogQuery& about_subject(packet::Ipv4Address a) & {
    subject = a;
    return *this;
  }
  LogQuery&& about_subject(packet::Ipv4Address a) && {
    return std::move(about_subject(a));
  }
  LogQuery& at_least_severity(int s) & {
    min_severity = s;
    return *this;
  }
  LogQuery&& at_least_severity(int s) && {
    return std::move(at_least_severity(s));
  }
  LogQuery& top(std::size_t n) & {
    limit = n;
    return *this;
  }
  LogQuery&& top(std::size_t n) && { return std::move(top(n)); }
};

}  // namespace campuslab::store

// FlowQuery — the data store's "fast and flexible search" interface.
//
// A query is a conjunction of optional predicates over stored flows.
// The store picks the most selective available index (host, label,
// port) and falls back to a time-bounded scan, so queries state *what*
// they want, never *how* to find it.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "campuslab/capture/flow.h"

namespace campuslab::store {

/// A flow record as stored, with its stable id.
struct StoredFlow {
  std::uint64_t id = 0;
  capture::FlowRecord flow;
};

struct FlowQuery {
  /// Overlap with [from, to] on the flow's [first_ts, last_ts] span.
  std::optional<Timestamp> from;
  std::optional<Timestamp> to;

  std::optional<packet::Ipv4Address> src;   // exact initiator address
  std::optional<packet::Ipv4Address> dst;   // exact responder address
  std::optional<packet::Ipv4Address> host;  // either side
  std::optional<std::uint16_t> port;        // either port
  std::optional<std::uint8_t> proto;
  std::optional<packet::TrafficLabel> label;  // majority label
  std::optional<bool> dns_only;
  std::optional<sim::Direction> direction;    // initial direction
  std::uint64_t min_bytes = 0;
  std::size_t limit = std::numeric_limits<std::size_t>::max();

  /// Full predicate (used after index pre-filtering).
  bool matches(const StoredFlow& stored) const noexcept;

  // Fluent builders keep call sites readable.
  FlowQuery& between(Timestamp a, Timestamp b) {
    from = a;
    to = b;
    return *this;
  }
  FlowQuery& about_host(packet::Ipv4Address a) {
    host = a;
    return *this;
  }
  FlowQuery& with_label(packet::TrafficLabel l) {
    label = l;
    return *this;
  }
  FlowQuery& on_port(std::uint16_t p) {
    port = p;
    return *this;
  }
  FlowQuery& top(std::size_t n) {
    limit = n;
    return *this;
  }
};

/// Complementary (non-packet) event, per §5: "server logs, firewall
/// rules, configuration files, events".
struct LogEvent {
  Timestamp ts;
  std::string source;   // "firewall", "dhcp", "ids", "syslog", ...
  int severity = 0;     // 0=info .. 3=critical
  packet::Ipv4Address subject;  // host the event concerns (optional)
  std::string message;
};

struct LogQuery {
  std::optional<Timestamp> from;
  std::optional<Timestamp> to;
  std::optional<std::string> source;
  std::optional<packet::Ipv4Address> subject;
  int min_severity = 0;
  std::size_t limit = std::numeric_limits<std::size_t>::max();

  bool matches(const LogEvent& ev) const noexcept;
};

}  // namespace campuslab::store

#include "campuslab/store/cluster.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>

#include "campuslab/resilience/fault.h"
#include "campuslab/util/hash.h"
#include "campuslab/util/rng.h"

namespace campuslab::store {

// ------------------------------------------------------------ HashRing

HashRing::HashRing(std::size_t nodes, std::size_t vnodes,
                   std::uint64_t seed)
    : nodes_(nodes == 0 ? 1 : nodes) {
  if (vnodes == 0) vnodes = 1;
  points_.reserve(nodes_ * vnodes);
  for (NodeId node = 0; node < nodes_; ++node) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      std::uint64_t h = util::fnv1a_step(util::kFnvOffsetBasis, seed);
      h = util::fnv1a_step(h, node);
      h = util::fnv1a_step(h, v);
      // mix64: ring position is a magnitude, and short-input FNV has
      // weak high-bit avalanche (points would clump into arcs).
      points_.push_back(Point{util::mix64(h), node});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              if (a.hash != b.hash) return a.hash < b.hash;
              return a.node < b.node;  // collision tiebreak, deterministic
            });
}

std::uint64_t HashRing::key_of(const packet::FiveTuple& tuple) noexcept {
  const packet::FiveTuple canon = tuple.bidirectional();
  std::uint64_t h = util::fnv1a_step(util::kFnvOffsetBasis,
                                     canon.src.value());
  h = util::fnv1a_step(h, canon.dst.value());
  h = util::fnv1a_step(h, (static_cast<std::uint64_t>(canon.src_port) << 16) |
                              canon.dst_port);
  return util::mix64(util::fnv1a_step(h, canon.proto));
}

void HashRing::owners_for_key(std::uint64_t key,
                              std::span<NodeId> out) const noexcept {
  std::size_t filled = 0;
  const auto start = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const Point& p, std::uint64_t k) { return p.hash < k; });
  std::size_t idx = static_cast<std::size_t>(start - points_.begin());
  for (std::size_t walked = 0;
       walked < points_.size() && filled < out.size(); ++walked) {
    const NodeId node = points_[idx % points_.size()].node;
    ++idx;
    bool seen = false;
    for (std::size_t k = 0; k < filled; ++k) seen |= (out[k] == node);
    if (!seen) out[filled++] = node;
  }
  // out.size() <= nodes() per contract, so every slot filled.
}

NodeId HashRing::primary_for_key(std::uint64_t key) const noexcept {
  NodeId owner = 0;
  owners_for_key(key, std::span<NodeId>(&owner, 1));
  return owner;
}

// ------------------------------------------------------------- helpers

namespace {

void accumulate(QueryStats& into, const QueryStats& part) {
  into.segments_pinned += part.segments_pinned;
  into.segments_scanned += part.segments_scanned;
  into.index_hits += part.index_hits;
  into.rows_scanned += part.rows_scanned;
  into.cold_loaded += part.cold_loaded;
  into.cold_pruned += part.cold_pruned;
  into.cold_load_failures += part.cold_load_failures;
}

/// K-way merge by ascending id with duplicate-id elision (replication
/// factors > 2 place one flow in several replica stores; every copy is
/// identical, keyed by its global id). Inputs are each ascending.
std::vector<StoredFlow> merge_rows(std::vector<std::vector<StoredFlow>> parts,
                                   std::size_t limit) {
  if (parts.size() == 1) {
    if (parts[0].size() > limit) parts[0].resize(limit);
    return std::move(parts[0]);
  }
  std::vector<StoredFlow> merged;
  std::vector<std::size_t> pos(parts.size(), 0);
  std::uint64_t last_id = 0;
  bool have_last = false;
  while (merged.size() < limit) {
    std::size_t best = parts.size();
    for (std::size_t p = 0; p < parts.size(); ++p) {
      // Skip copies of the row just emitted.
      while (pos[p] < parts[p].size() && have_last &&
             parts[p][pos[p]].id == last_id)
        ++pos[p];
      if (pos[p] >= parts[p].size()) continue;
      if (best == parts.size() ||
          parts[p][pos[p]].id < parts[best][pos[best]].id)
        best = p;
    }
    if (best == parts.size()) break;
    last_id = parts[best][pos[best]].id;
    have_last = true;
    merged.push_back(std::move(parts[best][pos[best]]));
    ++pos[best];
  }
  return merged;
}

std::string node_label(NodeId node) {
  return "node=" + std::to_string(node);
}

}  // namespace

// ------------------------------------------------------------- Cluster

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      replication_(std::clamp<std::size_t>(config_.replication, 1,
                                           std::max<std::size_t>(
                                               config_.nodes, 1))),
      ring_(config_.nodes, config_.vnodes, config_.ring_seed) {
  const std::size_t n = ring_.nodes();
  auto& registry = obs::Registry::global();
  obs_acked_ = &registry.counter("cluster.flows_acked");
  obs_lost_ = &registry.counter("cluster.flows_lost");
  obs_degraded_queries_ = &registry.counter("cluster.degraded_queries");
  // Default topology is in-process; a ShardFactory swaps every
  // constructor call for (typically) a RemoteShard — nothing else in
  // the cluster knows the difference.
  const auto make_shard = [this](NodeId via, NodeId owner,
                                 DataStoreConfig cfg)
      -> std::unique_ptr<StoreShard> {
    if (config_.shard_factory)
      return config_.shard_factory(via, owner, std::move(cfg));
    return std::make_unique<LocalShard>(std::move(cfg));
  };
  nodes_.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    auto node = std::make_unique<Node>();
    DataStoreConfig primary_cfg = config_.node_store;
    if (!primary_cfg.spill_directory.empty())
      primary_cfg.spill_directory += "/node" + std::to_string(i);
    node->primary = make_shard(i, i, std::move(primary_cfg));
    node->replicas.resize(n);
    for (NodeId owner = 0; owner < n; ++owner) {
      if (owner == i || replication_ < 2) continue;
      DataStoreConfig rep_cfg = config_.node_store;
      if (!rep_cfg.spill_directory.empty())
        rep_cfg.spill_directory += "/node" + std::to_string(i) + "/owner" +
                                   std::to_string(owner);
      node->replicas[owner] = make_shard(i, owner, std::move(rep_cfg));
    }
    node->rpc_failures =
        &registry.counter("cluster.rpc_failures", node_label(i));
    gauges_.push_back(registry.register_callback(
        "cluster.replica_lag", node_label(i), [raw = node.get()] {
          return static_cast<double>(
              raw->replica_lag.load(std::memory_order_relaxed));
        }));
    nodes_.push_back(std::move(node));
  }
  gauges_.push_back(registry.register_callback(
      "cluster.live_nodes", {},
      [this] { return static_cast<double>(live_nodes()); }));
  gauges_.push_back(registry.register_callback(
      "cluster.dead_nodes", {}, [this] {
        return static_cast<double>(nodes_.size() - live_nodes());
      }));
}

Cluster::~Cluster() = default;

template <typename Fn>
auto Cluster::send(NodeId via, Fn&& fn) const -> decltype(fn()) {
  const resilience::RetryPolicy& policy = config_.rpc_retry;
  Rng jitter(config_.rpc_seed ^
             rpc_calls_.fetch_add(1, std::memory_order_relaxed));
  Duration spent{};
  for (std::size_t attempt = 1;; ++attempt) {
    Node& node = *nodes_[via];
    if (!node.alive.load(std::memory_order_acquire))
      return Error::make("node_dead",
                         "node " + std::to_string(via) + " is down");
    std::string transient;
    const Status fault =
        resilience::fault_point_status("store.shard_rpc");
    if (fault.ok()) {
      auto result = fn();
      if (result.ok()) return result;
      const std::string& code = result.error().code;
      // A refused connection IS a killed node: flip the scopes now
      // instead of burning the retry deadline on every message.
      if (code == "connect_refused") {
        mark_dead(via, "connect_refused");
        node.rpc_failures->increment();
        return Error::make("node_dead",
                           "node " + std::to_string(via) +
                               " refused connection");
      }
      // Broken/stalled stream: transient, worth the backoff (the
      // shard's ascending-id replay dedup makes an ingest resend
      // safe). Everything else — shard errors, wire violations,
      // injected store faults — passes through untouched.
      if (code != "rpc_io" && code != "rpc_timeout") return result;
      transient = result.error().message;
    } else {
      transient = fault.error().message;
    }
    if (attempt >= policy.max_attempts) {
      node.rpc_failures->increment();
      return Error::make("rpc_failed", transient);
    }
    const Duration backoff =
        resilience::backoff_for(policy, attempt, jitter);
    if (policy.deadline.count_nanos() > 0 &&
        spent + backoff > policy.deadline) {
      node.rpc_failures->increment();
      return Error::make("rpc_failed",
                         "shard_rpc backoff budget exhausted");
    }
    spent += backoff;
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(backoff.count_nanos()));
  }
}

// -------------------------------------------------------------- ingest

ClusterIngestReport Cluster::ingest(
    std::span<const capture::FlowRecord> flows) {
  ClusterIngestReport report;
  if (flows.empty()) return report;
  const std::size_t n = nodes_.size();

  // Route: assign global ids in input order (canonical export order in
  // = deterministic ids out), then bucket rows into one batch per
  // target store. `members` remembers which input rows ride in each
  // batch so prefix-acks map back to per-flow copy counts.
  struct Batch {
    ShardIngestBatch msg;
    std::vector<std::size_t> members;
  };
  std::vector<Batch> primary(n);
  std::vector<std::vector<Batch>> replica(n);
  for (auto& r : replica) r.resize(n);
  std::vector<NodeId> owners(replication_);
  std::vector<std::uint8_t> copies(flows.size(), 0);
  std::vector<NodeId> owner_of(flows.size(), 0);
  report.first_id = next_id_;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const std::uint64_t id = next_id_++;
    ring_.owners_for_key(HashRing::key_of(flows[i].tuple),
                         std::span<NodeId>(owners));
    owner_of[i] = owners[0];
    primary[owners[0]].msg.rows.push_back(StoredFlow{id, flows[i]});
    primary[owners[0]].members.push_back(i);
    for (std::size_t k = 1; k < replication_; ++k) {
      Batch& b = replica[owners[k]][owners[0]];
      b.msg.rows.push_back(StoredFlow{id, flows[i]});
      b.members.push_back(i);
    }
  }
  report.last_id = next_id_ - 1;

  auto apply = [&](NodeId via, StoreShard* shard, Batch& batch) {
    if (batch.msg.rows.empty()) return;
    const auto ack = send(via, [&] { return shard->ingest(batch.msg); });
    const std::uint64_t applied = ack.ok() ? ack.value().applied : 0;
    for (std::uint64_t k = 0; k < applied; ++k) ++copies[batch.members[k]];
  };
  for (NodeId via = 0; via < n; ++via)
    apply(via, nodes_[via]->primary.get(), primary[via]);
  for (NodeId via = 0; via < n; ++via)
    for (NodeId owner = 0; owner < n; ++owner)
      if (nodes_[via]->replicas[owner] != nullptr)
        apply(via, nodes_[via]->replicas[owner].get(), replica[via][owner]);

  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (copies[i] == 0) {
      ++report.lost;
    } else {
      ++report.acked;
      if (copies[i] >= replication_) {
        ++report.fully_replicated;
      } else {
        nodes_[owner_of[i]]->replica_lag.fetch_add(
            1, std::memory_order_relaxed);
      }
    }
  }
  acked_.fetch_add(report.acked, std::memory_order_relaxed);
  lost_.fetch_add(report.lost, std::memory_order_relaxed);
  obs_acked_->add(report.acked);
  obs_lost_->add(report.lost);
  return report;
}

std::uint64_t Cluster::ingest(const capture::FlowRecord& flow) {
  const ClusterIngestReport report = ingest(std::span(&flow, 1));
  return report.acked > 0 ? report.last_id : 0;
}

void Cluster::ingest_log(const LogEvent& event) {
  std::vector<NodeId> owners(replication_);
  ring_.owners_for_key(
      util::mix64(
          util::fnv1a_step(util::kFnvOffsetBasis, event.subject.value())),
      std::span<NodeId>(owners));
  for (std::size_t k = 0; k < replication_; ++k) {
    const NodeId via = owners[k];
    StoreShard* shard = (k == 0)
                            ? static_cast<StoreShard*>(
                                  nodes_[via]->primary.get())
                            : nodes_[via]->replicas[owners[0]].get();
    if (shard == nullptr) continue;
    // Best-effort, mirroring the flow copies: a failed copy is lag the
    // surviving one covers.
    (void)send(via, [&] { return shard->ingest_log(event); });
  }
}

// ------------------------------------------------------------- queries

std::vector<std::pair<NodeId, const StoreShard*>> Cluster::replica_sources(
    NodeId owner) const {
  std::vector<std::pair<NodeId, const StoreShard*>> out;
  for (NodeId j = 0; j < nodes_.size(); ++j) {
    if (j == owner || !alive(j)) continue;
    if (nodes_[j]->replicas[owner] != nullptr)
      out.emplace_back(j, nodes_[j]->replicas[owner].get());
  }
  return out;
}

std::vector<Cluster::Scope> Cluster::scopes(ClusterQueryStats* stats) const {
  std::vector<Scope> out;
  out.reserve(nodes_.size());
  for (NodeId owner = 0; owner < nodes_.size(); ++owner) {
    Scope scope;
    scope.owner = owner;
    const bool lagged =
        nodes_[owner]->replica_lag.load(std::memory_order_relaxed) > 0;
    if (alive(owner)) {
      scope.sources.emplace_back(owner, nodes_[owner]->primary.get());
      // Under-replicated scope: a copy the primary never applied may
      // exist only on a replica, so gather those too (the id merge
      // dedups the overlap). Keeps every acked flow queryable.
      if (lagged)
        for (auto& src : replica_sources(owner))
          scope.sources.push_back(src);
    } else {
      scope.replica = true;
      scope.sources = replica_sources(owner);
      if (stats != nullptr) ++stats->replica_scopes;
    }
    out.push_back(std::move(scope));
  }
  return out;
}

std::vector<StoredFlow> Cluster::gather_scope(NodeId owner,
                                              const ShardQueryPlan& plan,
                                              ClusterQueryStats& stats) const {
  std::vector<std::vector<StoredFlow>> parts;
  bool primary_ok = false;
  const bool lagged =
      nodes_[owner]->replica_lag.load(std::memory_order_relaxed) > 0;
  if (alive(owner)) {
    auto reply =
        send(owner, [&] { return nodes_[owner]->primary->query(plan); });
    if (reply.ok()) {
      primary_ok = true;
      ++stats.shards_queried;
      accumulate(stats.scan, reply.value().stats);
      if (!lagged) return std::move(reply).value().rows;
      parts.push_back(std::move(reply).value().rows);
    } else {
      // Primary unreachable mid-query: flip this scope to its
      // replicas.
      ++stats.rpc_failures;
      obs_degraded_queries_->increment();
    }
  }
  if (!primary_ok) ++stats.replica_scopes;
  for (const auto& [via, shard] : replica_sources(owner)) {
    auto reply = send(via, [&, shard = shard] { return shard->query(plan); });
    if (!reply.ok()) {
      ++stats.rpc_failures;
      continue;
    }
    ++stats.shards_queried;
    accumulate(stats.scan, reply.value().stats);
    parts.push_back(std::move(reply).value().rows);
  }
  if (parts.empty()) return {};
  return merge_rows(std::move(parts), plan.max_rows);
}

ClusterQueryResult Cluster::query(const FlowQuery& q) const {
  ClusterQueryStats stats;
  stats.scan.index = planned_index(q);
  ShardQueryPlan plan;
  plan.query = q;
  plan.max_rows = q.limit;
  // The global first-`limit` rows are a subset of the union of each
  // scope's first `limit`, so one capped pull per scope suffices.
  std::vector<std::vector<StoredFlow>> per_scope;
  per_scope.reserve(nodes_.size());
  for (NodeId owner = 0; owner < nodes_.size(); ++owner)
    per_scope.push_back(gather_scope(owner, plan, stats));
  return ClusterQueryResult(merge_rows(std::move(per_scope), q.limit),
                            stats);
}

AggregateResult Cluster::aggregate(const FlowQuery& q, GroupBy group_by,
                                   std::size_t top_k) const {
  FlowQuery filter = q;
  filter.limit = std::numeric_limits<std::size_t>::max();
  ClusterQueryStats stats;
  AggregateResult result;
  result.group_by = group_by;
  std::unordered_map<std::uint64_t, AggregateRow> merged;
  auto fold_row = [&](std::uint64_t key, std::uint64_t flows_count,
                      std::uint64_t packets, std::uint64_t bytes) {
    AggregateRow& into = merged[key];
    into.key = key;
    into.flows += flows_count;
    into.packets += packets;
    into.bytes += bytes;
  };
  // Degraded scopes fall back to row gathering: shard-side partials
  // from overlapping replica stores would double-count at replication
  // factors > 2, while merged rows are deduped by id.
  auto fold_flow = [&](const capture::FlowRecord& f) {
    switch (group_by) {
      case GroupBy::kHost:
        fold_row(f.tuple.src.value(), 1, f.packets, f.bytes);
        if (f.tuple.dst != f.tuple.src)
          fold_row(f.tuple.dst.value(), 1, f.packets, f.bytes);
        break;
      case GroupBy::kPort:
        fold_row(f.tuple.src_port, 1, f.packets, f.bytes);
        if (f.tuple.dst_port != f.tuple.src_port)
          fold_row(f.tuple.dst_port, 1, f.packets, f.bytes);
        break;
      case GroupBy::kLabel:
        fold_row(static_cast<std::uint64_t>(f.majority_label()), 1,
                 f.packets, f.bytes);
        break;
    }
  };
  for (NodeId owner = 0; owner < nodes_.size(); ++owner) {
    const bool lagged =
        nodes_[owner]->replica_lag.load(std::memory_order_relaxed) > 0;
    if (alive(owner) && !lagged) {
      // top_k = 0: shard partials must be complete to merge exactly.
      auto reply = send(owner, [&] {
        return nodes_[owner]->primary->aggregate(filter, group_by, 0);
      });
      if (reply.ok()) {
        ++stats.shards_queried;
        accumulate(stats.scan, reply.value().stats);
        result.matched_flows += reply.value().matched_flows;
        for (const auto& row : reply.value().rows)
          fold_row(row.key, row.flows, row.packets, row.bytes);
        continue;
      }
      ++stats.rpc_failures;
      obs_degraded_queries_->increment();
    }
    // Degraded or under-replicated scope: gather deduped rows (shard
    // partials could double-count overlapping copies) and fold here.
    ShardQueryPlan plan;
    plan.query = filter;
    const auto rows = gather_scope(owner, plan, stats);
    result.matched_flows += rows.size();
    for (const auto& row : rows) fold_flow(row.flow);
  }
  result.rows.reserve(merged.size());
  for (const auto& [key, row] : merged) result.rows.push_back(row);
  // Exactly execute_aggregate's ordering: bytes desc, key asc (total,
  // so the top_k prefix matches the single-node partial_sort).
  std::sort(result.rows.begin(), result.rows.end(),
            [](const AggregateRow& a, const AggregateRow& b) {
              if (a.bytes != b.bytes) return a.bytes > b.bytes;
              return a.key < b.key;
            });
  if (top_k > 0 && top_k < result.rows.size()) result.rows.resize(top_k);
  result.stats = stats.scan;
  return result;
}

ClusterCursor Cluster::open_cursor(FlowQuery q) const {
  return ClusterCursor(this, std::move(q));
}

LogResult Cluster::query_logs(const LogQuery& q) const {
  LogQuery full = q;
  full.limit = std::numeric_limits<std::size_t>::max();
  std::vector<LogEvent> events;
  // Copies of one event are field-identical, so when the gather can
  // touch overlapping stores — a lagged owner reading primary AND
  // replicas, or dead-owner replica scopes at replication > 2 — the
  // duplicates are collapsed after the merge sort. Healthy
  // replication-2 gathers are overlap-free and skip the dedup, so two
  // genuinely identical ingested events stay two, as single-node.
  bool overlap = replication_ > 2;
  for (const Scope& scope : scopes(nullptr)) {
    if (scope.sources.size() > 1 && !scope.replica) overlap = true;
    for (const auto& [via, shard] : scope.sources) {
      auto reply =
          send(via, [&, shard = shard] { return shard->query_logs(full); });
      if (!reply.ok()) continue;
      for (const auto& ev : reply.value()) events.push_back(ev);
    }
  }
  const auto key = [](const LogEvent& e) {
    return std::tie(e.ts, e.source, e.severity, e.message);
  };
  std::stable_sort(events.begin(), events.end(),
                   [&](const LogEvent& a, const LogEvent& b) {
                     return key(a) < key(b);
                   });
  if (overlap) {
    events.erase(std::unique(events.begin(), events.end(),
                             [&](const LogEvent& a, const LogEvent& b) {
                               return key(a) == key(b) &&
                                      a.subject == b.subject;
                             }),
                 events.end());
  }
  if (events.size() > q.limit) events.resize(q.limit);
  return LogResult(std::move(events));
}

CatalogInfo Cluster::catalog() const {
  CatalogInfo total;
  bool have_span = false;
  // Span (min/max) folds are idempotent — duplicate copies can't skew
  // them — so they fold from every reachable store unconditionally.
  auto fold_span = [&](const CatalogInfo& part) {
    if (part.total_flows == 0 && part.total_log_events == 0) return;
    if (!have_span) {
      total.earliest = part.earliest;
      total.latest = part.latest;
      have_span = true;
    } else {
      total.earliest = std::min(total.earliest, part.earliest);
      total.latest = std::max(total.latest, part.latest);
    }
  };
  for (const Scope& scope : scopes(nullptr)) {
    // Overlapping copies: a lagged owner reads primary + replicas (the
    // same flow on both), and dead-owner replica scopes overlap at
    // replication > 2. Disjoint scopes fold store catalogs directly.
    const bool overlap =
        scope.sources.size() > 1 && (!scope.replica || replication_ > 2);
    std::vector<CatalogInfo> parts;
    parts.reserve(scope.sources.size());
    for (const auto& [via, shard] : scope.sources) {
      auto reply = send(via, [&, shard = shard]() -> Result<CatalogInfo> {
        return shard->catalog();
      });
      if (reply.ok()) parts.push_back(reply.value());
    }
    for (const CatalogInfo& part : parts) {
      // Physical storage is physical: every reachable store's segments
      // exist, copies or not.
      total.segments += part.segments;
      total.cold_segments += part.cold_segments;
      total.evicted_by_retention += part.evicted_by_retention;
      fold_span(part);
      if (overlap) continue;
      total.total_flows += part.total_flows;
      total.total_packets += part.total_packets;
      total.total_bytes += part.total_bytes;
      total.total_log_events += part.total_log_events;
      for (std::size_t l = 0; l < part.flows_per_label.size(); ++l)
        total.flows_per_label[l] += part.flows_per_label[l];
    }
    if (!overlap) continue;
    // Additive fields of an overlapping scope fold from id-deduped
    // rows instead — the lagged state this pays for is transient.
    ClusterQueryStats scratch;
    ShardQueryPlan plan;
    for (const StoredFlow& row : gather_scope(scope.owner, plan, scratch)) {
      ++total.total_flows;
      total.total_packets += row.flow.packets;
      total.total_bytes += row.flow.bytes;
      ++total.flows_per_label[static_cast<std::size_t>(
          row.flow.majority_label())];
    }
    // Log copies are field-identical across the scope; count distinct.
    std::vector<LogEvent> events;
    LogQuery all;
    all.limit = std::numeric_limits<std::size_t>::max();
    for (const auto& [via, shard] : scope.sources) {
      auto reply =
          send(via, [&, shard = shard] { return shard->query_logs(all); });
      if (!reply.ok()) continue;
      for (const auto& ev : reply.value()) events.push_back(ev);
    }
    const auto key = [](const LogEvent& e) {
      return std::tie(e.ts, e.source, e.severity, e.message);
    };
    std::stable_sort(events.begin(), events.end(),
                     [&](const LogEvent& a, const LogEvent& b) {
                       return key(a) < key(b);
                     });
    events.erase(std::unique(events.begin(), events.end(),
                             [&](const LogEvent& a, const LogEvent& b) {
                               return key(a) == key(b) &&
                                      a.subject == b.subject;
                             }),
                 events.end());
    total.total_log_events += events.size();
  }
  return total;
}

std::uint64_t Cluster::size() const {
  std::uint64_t total = 0;
  for (const Scope& scope : scopes(nullptr)) {
    const bool overlap =
        scope.sources.size() > 1 && (!scope.replica || replication_ > 2);
    if (overlap) {
      // Count distinct ids via the deduping gather.
      ClusterQueryStats scratch;
      ShardQueryPlan plan;
      total += gather_scope(scope.owner, plan, scratch).size();
      continue;
    }
    for (const auto& [via, shard] : scope.sources) {
      auto reply = send(via, [&, shard = shard]() -> Result<std::uint64_t> {
        return shard->flow_count();
      });
      total += reply.value_or(0);
    }
  }
  return total;
}

// ---------------------------------------------------------- resilience

void Cluster::mark_dead(NodeId node, const char* reason) const {
  if (node >= nodes_.size()) return;
  if (!nodes_[node]->alive.exchange(false, std::memory_order_acq_rel))
    return;  // already dead; count each death once
  obs::Registry::global()
      .counter("cluster.node_deaths",
               node_label(node) + ",reason=" + reason)
      .increment();
}

void Cluster::kill_node(NodeId node) { mark_dead(node, "killed"); }

bool Cluster::alive(NodeId node) const noexcept {
  return node < nodes_.size() &&
         nodes_[node]->alive.load(std::memory_order_acquire);
}

std::size_t Cluster::live_nodes() const noexcept {
  std::size_t live = 0;
  for (const auto& node : nodes_)
    if (node->alive.load(std::memory_order_acquire)) ++live;
  return live;
}

std::uint64_t Cluster::replica_lag(NodeId node) const noexcept {
  if (node >= nodes_.size()) return 0;
  return nodes_[node]->replica_lag.load(std::memory_order_relaxed);
}

resilience::HealthState Cluster::feed_health(
    resilience::HealthMonitor& monitor) const {
  // Dead-node fraction rides the occupancy channel: the default
  // thresholds read "half the cluster gone = Degraded".
  const double dead_fraction =
      nodes_.empty()
          ? 0.0
          : static_cast<double>(nodes_.size() - live_nodes()) /
                static_cast<double>(nodes_.size());
  return monitor.update(dead_fraction);
}

const DataStore& Cluster::primary_store(NodeId node) const {
  // In-process escape hatch by contract: callers (tests, benches) own
  // the topology and only ask this of LocalShard-backed clusters.
  auto* local = dynamic_cast<const LocalShard*>(nodes_[node]->primary.get());
  if (local == nullptr)
    throw std::logic_error("primary_store(): node " + std::to_string(node) +
                           " is not an in-process LocalShard");
  return local->store();
}

// -------------------------------------------------------- ClusterCursor

ClusterCursor::ClusterCursor(const Cluster* cluster, FlowQuery query)
    : cluster_(cluster), query_(std::move(query)) {
  stats_.scan.index = planned_index(query_);
  for (const Cluster::Scope& scope : cluster_->scopes(&stats_)) {
    for (const auto& [via, shard] : scope.sources) {
      Stream stream;
      stream.via = via;
      stream.shard = shard;
      streams_.push_back(std::move(stream));
    }
  }
}

bool ClusterCursor::refill(Stream& stream) {
  ShardQueryPlan plan;
  plan.query = query_;
  plan.query.limit = std::numeric_limits<std::size_t>::max();
  plan.after_id = stream.after_id;
  plan.max_rows = cluster_->config_.cursor_chunk;
  auto reply = cluster_->send(
      stream.via, [&] { return stream.shard->query(plan); });
  if (!reply.ok()) {
    ++stats_.rpc_failures;
    stream.exhausted = true;
    stream.buffer.clear();
    stream.pos = 0;
    return false;
  }
  ShardQueryRows msg = std::move(reply).value();
  ++stats_.shards_queried;
  accumulate(stats_.scan, msg.stats);
  stream.buffer = std::move(msg.rows);
  stream.pos = 0;
  if (!stream.buffer.empty()) stream.after_id = stream.buffer.back().id;
  if (msg.exhausted) stream.exhausted = true;
  return stream.pos < stream.buffer.size();
}

bool ClusterCursor::next() {
  if (produced_ >= query_.limit) return false;
  for (auto& stream : streams_)
    while (stream.pos >= stream.buffer.size() && !stream.exhausted)
      refill(stream);
  std::size_t best = streams_.size();
  for (std::size_t s = 0; s < streams_.size(); ++s) {
    if (streams_[s].pos >= streams_[s].buffer.size()) continue;
    if (best == streams_.size() ||
        streams_[s].buffer[streams_[s].pos].id <
            streams_[best].buffer[streams_[best].pos].id)
      best = s;
  }
  if (best == streams_.size()) return false;
  current_ = std::move(streams_[best].buffer[streams_[best].pos]);
  // Advance every stream holding a copy of this row (replication > 2
  // overlaps replica stores), keeping the merge duplicate-free.
  for (auto& stream : streams_) {
    while (stream.pos < stream.buffer.size() &&
           stream.buffer[stream.pos].id == current_.id)
      ++stream.pos;
  }
  ++produced_;
  return true;
}

}  // namespace campuslab::store

#include "campuslab/store/timeline.h"

#include <algorithm>
#include <sstream>

namespace campuslab::store {

std::vector<TimelineEntry> incident_timeline(
    const DataStore& store, packet::Ipv4Address host, Timestamp from,
    Timestamp to, const TimelineOptions& options) {
  std::vector<TimelineEntry> timeline;

  FlowQuery flows;
  flows.about_host(host).between(from, to);
  for (const auto& stored : store.query(flows)) {
    const auto& f = stored.flow;
    const auto label = f.majority_label();
    if (label == packet::TrafficLabel::kBenign &&
        f.bytes < options.min_benign_flow_bytes)
      continue;
    TimelineEntry entry;
    entry.ts = f.first_ts;
    entry.kind = TimelineEntry::Kind::kFlowStart;
    entry.severity = is_attack(label) ? 2 : 0;
    entry.source = "flow";
    std::ostringstream desc;
    desc << f.tuple.to_string() << "  " << f.packets << " pkts, "
         << f.bytes << " B over " << f.duration().to_seconds() << "s";
    if (is_attack(label)) desc << "  [" << to_string(label) << "]";
    entry.description = desc.str();
    timeline.push_back(std::move(entry));
  }

  LogQuery logs;
  logs.subject = host;
  logs.from = from;
  logs.to = to;
  for (const auto& ev : store.query_logs(logs)) {
    timeline.push_back(TimelineEntry{ev.ts,
                                     TimelineEntry::Kind::kLogEvent,
                                     ev.severity, ev.source,
                                     ev.message});
  }

  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const TimelineEntry& a, const TimelineEntry& b) {
                     return a.ts < b.ts;
                   });
  if (timeline.size() > options.max_entries)
    timeline.resize(options.max_entries);
  return timeline;
}

std::string to_string(const std::vector<TimelineEntry>& timeline) {
  std::ostringstream out;
  for (const auto& entry : timeline) {
    out << '[' << entry.ts.to_seconds() << "s] "
        << (entry.kind == TimelineEntry::Kind::kFlowStart ? "FLOW"
                                                          : "LOG ")
        << " sev=" << entry.severity << " (" << entry.source << ") "
        << entry.description << '\n';
  }
  return out.str();
}

}  // namespace campuslab::store

#include "campuslab/store/sharded_ingest.h"

#include <algorithm>

#include "campuslab/capture/flow.h"
#include "campuslab/resilience/fault.h"
#include "campuslab/store/cluster.h"
#include "campuslab/store/shard.h"

namespace campuslab::store {

ShardedFlowIngester::ShardedFlowIngester(std::size_t shards) {
  if (shards == 0) shards = 1;
  buffers_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    buffers_.push_back(std::make_unique<Buffer>());
  obs_pending_ = obs::Registry::global().register_callback(
      "store.ingest_pending", "",
      [this] { return static_cast<double>(pending()); });
}

void ShardedFlowIngester::ingest(std::size_t shard,
                                 const capture::FlowRecord& flow) {
  {
    std::lock_guard<std::mutex> lock(buffers_[shard]->mu);
    buffers_[shard]->flows.push_back(flow);
  }
  pending_.fetch_add(1, std::memory_order_release);
}

std::uint64_t ShardedFlowIngester::merge_into(DataStore& store) {
  std::vector<capture::FlowRecord> merged;
  for (auto& buffer : buffers_) {
    std::vector<capture::FlowRecord> taken;
    {
      std::lock_guard<std::mutex> lock(buffer->mu);
      taken.swap(buffer->flows);
    }
    merged.insert(merged.end(), std::make_move_iterator(taken.begin()),
                  std::make_move_iterator(taken.end()));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   capture::flow_export_before);
  for (const auto& flow : merged) store.ingest(flow);
  pending_.fetch_sub(merged.size(), std::memory_order_release);
  merged_total_ += merged.size();
  obs::Registry::global().counter("store.merged_flows").add(merged.size());
  return merged.size();
}

Result<std::uint64_t> ShardedFlowIngester::merge_into(
    DataStore& store, const resilience::RetryPolicy& policy,
    const resilience::Sleeper& sleeper) {
  std::vector<capture::FlowRecord> merged;
  for (auto& buffer : buffers_) {
    std::vector<capture::FlowRecord> taken;
    {
      std::lock_guard<std::mutex> lock(buffer->mu);
      taken.swap(buffer->flows);
    }
    merged.insert(merged.end(), std::make_move_iterator(taken.begin()),
                  std::make_move_iterator(taken.end()));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   capture::flow_export_before);
  std::size_t ingested = 0;
  Status terminal = Status::success();
  for (const auto& flow : merged) {
    Status status = resilience::retry_status(
        policy, retry_rng_, "store.ingest",
        [&store, &flow] {
          Status injected =
              resilience::fault_point_status("store.ingest");
          if (!injected.ok()) return injected;
          store.ingest(flow);
          return Status::success();
        },
        sleeper);
    if (!status.ok()) {
      terminal = std::move(status);
      break;
    }
    ++ingested;
  }
  pending_.fetch_sub(ingested, std::memory_order_release);
  merged_total_ += ingested;
  obs::Registry::global().counter("store.merged_flows").add(ingested);
  if (!terminal.ok()) {
    // Re-buffer the unmerged tail: the flows stay pending, nothing is
    // lost, and the next merge's canonical sort restores order. Parked
    // in buffer 0 — the buffer a flow waits in carries no meaning.
    std::lock_guard<std::mutex> lock(buffers_[0]->mu);
    buffers_[0]->flows.insert(
        buffers_[0]->flows.end(),
        std::make_move_iterator(merged.begin() +
                                static_cast<std::ptrdiff_t>(ingested)),
        std::make_move_iterator(merged.end()));
    return terminal.error();
  }
  return static_cast<std::uint64_t>(ingested);
}

Result<std::uint64_t> ShardedFlowIngester::merge_into(StoreShard& shard) {
  std::vector<capture::FlowRecord> merged;
  for (auto& buffer : buffers_) {
    std::vector<capture::FlowRecord> taken;
    {
      std::lock_guard<std::mutex> lock(buffer->mu);
      taken.swap(buffer->flows);
    }
    merged.insert(merged.end(), std::make_move_iterator(taken.begin()),
                  std::make_move_iterator(taken.end()));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   capture::flow_export_before);
  ShardIngestBatch batch;
  batch.rows.reserve(merged.size());
  for (const auto& flow : merged)
    batch.rows.push_back(StoredFlow{0, flow});  // id 0: shard assigns
  const auto ack = shard.ingest(batch);
  const std::uint64_t applied =
      ack.ok() ? std::min<std::uint64_t>(ack.value().applied, merged.size())
               : 0;
  pending_.fetch_sub(applied, std::memory_order_release);
  merged_total_ += applied;
  obs::Registry::global().counter("store.merged_flows").add(applied);
  if (applied < merged.size()) {
    // Re-buffer the unapplied tail, same contract as the resilient
    // DataStore merge: nothing lost, canonical re-sort next time.
    std::lock_guard<std::mutex> lock(buffers_[0]->mu);
    buffers_[0]->flows.insert(
        buffers_[0]->flows.end(),
        std::make_move_iterator(merged.begin() +
                                static_cast<std::ptrdiff_t>(applied)),
        std::make_move_iterator(merged.end()));
    if (!ack.ok()) return ack.error();
    return Error::make("ingest_partial",
                       "shard applied " + std::to_string(applied) + " of " +
                           std::to_string(merged.size()) + " rows");
  }
  return applied;
}

ClusterIngestReport ShardedFlowIngester::merge_into(Cluster& cluster) {
  std::vector<capture::FlowRecord> merged;
  for (auto& buffer : buffers_) {
    std::vector<capture::FlowRecord> taken;
    {
      std::lock_guard<std::mutex> lock(buffer->mu);
      taken.swap(buffer->flows);
    }
    merged.insert(merged.end(), std::make_move_iterator(taken.begin()),
                  std::make_move_iterator(taken.end()));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   capture::flow_export_before);
  const ClusterIngestReport report = cluster.ingest(merged);
  pending_.fetch_sub(merged.size(), std::memory_order_release);
  merged_total_ += report.acked;
  obs::Registry::global().counter("store.merged_flows").add(report.acked);
  return report;
}

}  // namespace campuslab::store

#include "campuslab/store/sharded_ingest.h"

#include <algorithm>

#include "campuslab/capture/flow.h"

namespace campuslab::store {

ShardedFlowIngester::ShardedFlowIngester(std::size_t shards) {
  if (shards == 0) shards = 1;
  buffers_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    buffers_.push_back(std::make_unique<Buffer>());
  obs_pending_ = obs::Registry::global().register_callback(
      "store.ingest_pending", "",
      [this] { return static_cast<double>(pending()); });
}

void ShardedFlowIngester::ingest(std::size_t shard,
                                 const capture::FlowRecord& flow) {
  {
    std::lock_guard<std::mutex> lock(buffers_[shard]->mu);
    buffers_[shard]->flows.push_back(flow);
  }
  pending_.fetch_add(1, std::memory_order_release);
}

std::uint64_t ShardedFlowIngester::merge_into(DataStore& store) {
  std::vector<capture::FlowRecord> merged;
  for (auto& buffer : buffers_) {
    std::vector<capture::FlowRecord> taken;
    {
      std::lock_guard<std::mutex> lock(buffer->mu);
      taken.swap(buffer->flows);
    }
    merged.insert(merged.end(), std::make_move_iterator(taken.begin()),
                  std::make_move_iterator(taken.end()));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   capture::flow_export_before);
  for (const auto& flow : merged) store.ingest(flow);
  pending_.fetch_sub(merged.size(), std::memory_order_release);
  merged_total_ += merged.size();
  obs::Registry::global().counter("store.merged_flows").add(merged.size());
  return merged.size();
}

}  // namespace campuslab::store

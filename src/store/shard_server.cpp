#include "campuslab/store/shard_server.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <exception>

#include "campuslab/obs/registry.h"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#define CAMPUSLAB_HAVE_SOCKETS 1
#endif

namespace campuslab::store {

#if defined(CAMPUSLAB_HAVE_SOCKETS)

namespace {

using Clock = std::chrono::steady_clock;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

/// Per-client state. `out` drains opportunistically after every
/// dispatch and under POLLOUT; `closing` flushes the farewell error
/// reply before the fd drops.
struct ShardServer::Connection {
  int fd = -1;
  wire::FrameAssembler assembler;
  std::vector<std::uint8_t> out;
  std::size_t out_pos = 0;
  Clock::time_point last_activity;
  bool closing = false;  // flush `out`, then close

  explicit Connection(int f, std::size_t max_body)
      : fd(f), assembler(max_body), last_activity(Clock::now()) {}
};

ShardServer::ShardServer(ShardServerConfig config)
    : config_(std::move(config)) {}

ShardServer::~ShardServer() { stop(); }

void ShardServer::add_shard(std::uint32_t id, StoreShard& shard) {
  shards_.emplace_back(id, &shard);
}

Status ShardServer::start() {
  if (running_.load(std::memory_order_acquire)) return Status::success();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    return Error::make("socket_io", std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error::make("socket_bind",
                       "bad bind address " + config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Error e = Error::make("socket_bind", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return e;
  }
  if (::listen(listen_fd_, config_.listen_backlog) != 0) {
    const Error e = Error::make("socket_listen", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return e;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);
  if (!set_nonblocking(listen_fd_) || ::pipe(wake_fds_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error::make("socket_io", "nonblocking/self-pipe setup failed");
  }
  set_nonblocking(wake_fds_[0]);
  set_nonblocking(wake_fds_[1]);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { run(); });
  return Status::success();
}

void ShardServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  const char byte = 'x';
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
  if (loop_.joinable()) loop_.join();
  running_.store(false, std::memory_order_release);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

std::vector<std::uint8_t> ShardServer::dispatch(const wire::Frame& request) {
  using wire::MsgType;
  const std::uint32_t shard_id = request.header.shard;
  const std::uint64_t req = request.header.request_id;
  auto error_reply = [&](const Error& e) {
    return wire::encode_frame(MsgType::kError, shard_id, req,
                              wire::encode_error(e));
  };
  auto reply = [&](MsgType type, std::vector<std::uint8_t> body) {
    return wire::encode_frame(type, shard_id, req, body);
  };

  StoreShard* shard = nullptr;
  for (const auto& [id, s] : shards_)
    if (id == shard_id) shard = s;
  if (shard == nullptr)
    return error_reply(Error::make(
        "shard_unknown", "no shard " + std::to_string(shard_id)));

  frames_served_.fetch_add(1, std::memory_order_relaxed);
  const std::span<const std::uint8_t> body(request.body);
  try {
    switch (request.header.type) {
      case MsgType::kPing:
        return reply(MsgType::kPong, {});
      case MsgType::kIngest: {
        auto batch = wire::decode_ingest(body);
        if (!batch.ok()) return error_reply(batch.error());
        auto ack = shard->ingest(batch.value());
        if (!ack.ok()) return error_reply(ack.error());
        return reply(MsgType::kIngestAck,
                     wire::encode_ingest_ack(ack.value()));
      }
      case MsgType::kIngestLog: {
        auto event = wire::decode_log_event(body);
        if (!event.ok()) return error_reply(event.error());
        if (Status st = shard->ingest_log(event.value()); !st.ok())
          return error_reply(st.error());
        return reply(MsgType::kIngestLogOk, {});
      }
      case MsgType::kQuery: {
        auto plan = wire::decode_query_plan(body);
        if (!plan.ok()) return error_reply(plan.error());
        auto rows = shard->query(plan.value());
        if (!rows.ok()) return error_reply(rows.error());
        return reply(MsgType::kQueryRows,
                     wire::encode_query_rows(rows.value()));
      }
      case MsgType::kAggregate: {
        auto plan = wire::decode_aggregate_plan(body);
        if (!plan.ok()) return error_reply(plan.error());
        auto result = shard->aggregate(plan.value().query,
                                       plan.value().group_by,
                                       plan.value().top_k);
        if (!result.ok()) return error_reply(result.error());
        return reply(MsgType::kAggregateReply,
                     wire::encode_aggregate_result(result.value()));
      }
      case MsgType::kQueryLogs: {
        auto q = wire::decode_log_query(body);
        if (!q.ok()) return error_reply(q.error());
        auto result = shard->query_logs(q.value());
        if (!result.ok()) return error_reply(result.error());
        return reply(MsgType::kLogReply,
                     wire::encode_log_reply(std::vector<LogEvent>(
                         result.value().begin(), result.value().end())));
      }
      case MsgType::kCatalog: {
        if (!body.empty())
          return error_reply(
              Error::make("wire_corrupt", "catalog request carries a body"));
        auto info = shard->catalog();
        if (!info.ok()) return error_reply(info.error());
        return reply(MsgType::kCatalogReply,
                     wire::encode_catalog(info.value()));
      }
      case MsgType::kFlowCount: {
        if (!body.empty())
          return error_reply(Error::make(
              "wire_corrupt", "flow-count request carries a body"));
        auto count = shard->flow_count();
        if (!count.ok()) return error_reply(count.error());
        return reply(MsgType::kFlowCountReply,
                     wire::encode_flow_count(count.value()));
      }
      default:
        // A reply type arriving as a request is a peer bug, but the
        // stream framing is intact — answer and carry on.
        return error_reply(Error::make(
            "wire_type",
            "message type " +
                std::to_string(
                    static_cast<unsigned>(request.header.type)) +
                " is not a request"));
    }
  } catch (const std::exception& e) {
    // An escaped shard exception (injected fault, bad_alloc) must not
    // take the transport down with it.
    return error_reply(Error::make("shard_exception", e.what()));
  }
}

void ShardServer::run() {
  auto& registry = obs::Registry::global();
  obs::Counter& obs_connections = registry.counter("rpc.server_connections");
  obs::Counter& obs_frames = registry.counter("rpc.server_frames");
  obs::Counter& obs_rejects = registry.counter("rpc.server_rejects");
  obs::Counter& obs_bytes_in = registry.counter("rpc.server_bytes_in");
  obs::Counter& obs_bytes_out = registry.counter("rpc.server_bytes_out");
  obs::Histogram& obs_dispatch =
      registry.histogram("rpc_server_dispatch_ns");

  std::deque<Connection> connections;
  std::vector<pollfd> fds;
  std::uint8_t buf[64 * 1024];

  auto flush = [&](Connection& conn) {
    while (conn.out_pos < conn.out.size()) {
      const ssize_t n =
          ::send(conn.fd, conn.out.data() + conn.out_pos,
                 conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_pos += static_cast<std::size_t>(n);
        obs_bytes_out.add(static_cast<std::uint64_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      return false;  // peer gone
    }
    if (conn.out_pos == conn.out.size()) {
      conn.out.clear();
      conn.out_pos = 0;
    }
    return true;
  };

  while (!stopping_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    fds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
    for (const Connection& conn : connections) {
      short events = POLLIN;
      if (conn.out_pos < conn.out.size()) events |= POLLOUT;
      fds.push_back(pollfd{conn.fd, events, 0});
    }
    // Connections accepted below are NOT in this round's pollfd set;
    // bound the servicing loop to the ones that were polled.
    const std::size_t polled = connections.size();
    ::poll(fds.data(), fds.size(), 50);

    if (fds[1].revents & POLLIN) {
      char drain[16];
      while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
      }
    }

    // Accept everything pending.
    if (fds[0].revents & POLLIN) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        set_nonblocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        connections.emplace_back(fd, config_.max_body);
        obs_connections.increment();
      }
    }

    const auto now = Clock::now();
    for (std::size_t i = 0; i < polled; ++i) {
      Connection& conn = connections[i];
      const pollfd& pfd = fds[2 + i];
      bool drop = (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
                  (pfd.revents & POLLIN) == 0;

      if (!drop && (pfd.revents & POLLIN) && !conn.closing) {
        for (;;) {
          const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
          if (n > 0) {
            conn.assembler.feed(
                std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
            obs_bytes_in.add(static_cast<std::uint64_t>(n));
            conn.last_activity = now;
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          drop = true;  // orderly EOF or hard error
          break;
        }
        while (!drop && !conn.closing) {
          auto next = conn.assembler.next();
          if (!next.ok()) {
            // Unrecoverable framing: one farewell error reply, flush,
            // close. request id 0 — the id never parsed.
            const auto farewell =
                wire::encode_frame(wire::MsgType::kError, 0, 0,
                                   wire::encode_error(next.error()));
            conn.out.insert(conn.out.end(), farewell.begin(),
                            farewell.end());
            conn.closing = true;
            connections_rejected_.fetch_add(1, std::memory_order_relaxed);
            obs_rejects.increment();
            break;
          }
          if (!next.value().has_value()) break;  // need more bytes
          const auto t0 = Clock::now();
          const auto reply = dispatch(*next.value());
          obs_dispatch.observe(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - t0)
                  .count()));
          obs_frames.increment();
          conn.out.insert(conn.out.end(), reply.begin(), reply.end());
        }
      }

      if (!drop && (conn.out_pos < conn.out.size())) drop = !flush(conn);
      if (!drop && conn.closing && conn.out_pos >= conn.out.size())
        drop = true;
      if (!drop && config_.idle_timeout.count_nanos() > 0 &&
          now - conn.last_activity >
              std::chrono::nanoseconds(config_.idle_timeout.count_nanos())) {
        connections_rejected_.fetch_add(1, std::memory_order_relaxed);
        obs_rejects.increment();
        drop = true;
      }
      if (drop) {
        ::close(conn.fd);
        conn.fd = -1;
      }
    }
    for (std::size_t i = connections.size(); i-- > 0;) {
      if (connections[i].fd < 0)
        connections.erase(connections.begin() +
                          static_cast<std::ptrdiff_t>(i));
    }
  }
  for (Connection& conn : connections) ::close(conn.fd);
  connections.clear();
}

#else  // !CAMPUSLAB_HAVE_SOCKETS

struct ShardServer::Connection {};
ShardServer::ShardServer(ShardServerConfig config)
    : config_(std::move(config)) {}
ShardServer::~ShardServer() = default;
void ShardServer::add_shard(std::uint32_t, StoreShard&) {}
Status ShardServer::start() {
  return Error::make("socket_io", "no socket support on this platform");
}
void ShardServer::stop() {}
std::vector<std::uint8_t> ShardServer::dispatch(const wire::Frame&) {
  return {};
}
void ShardServer::run() {}

#endif

}  // namespace campuslab::store

#include "campuslab/store/wire.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <string>

#include "campuslab/util/bytes.h"
#include "campuslab/util/codec.h"
#include "campuslab/util/hash.h"

namespace campuslab::store::wire {
namespace {

using util::fnv1a;
using util::put_varint;
using util::unzigzag;
using util::zigzag;
using Decoder = util::VarintDecoder;

constexpr std::uint64_t kU32Max = std::numeric_limits<std::uint32_t>::max();
constexpr std::size_t kNoLimit = std::numeric_limits<std::size_t>::max();

Error corrupt(const char* what) {
  return Error::make("wire_corrupt", std::string("malformed body: ") + what);
}

// Signed deltas computed through unsigned space so every i64 pair
// round-trips without overflow UB (the CLSEG01 idiom).
std::uint64_t delta_zz(std::int64_t value, std::int64_t base) noexcept {
  return zigzag(static_cast<std::int64_t>(static_cast<std::uint64_t>(value) -
                                          static_cast<std::uint64_t>(base)));
}
std::int64_t undelta_zz(std::uint64_t coded, std::int64_t base) noexcept {
  return static_cast<std::int64_t>(
      static_cast<std::uint64_t>(base) +
      static_cast<std::uint64_t>(unzigzag(coded)));
}

void put_string(ByteWriter& w, const std::string& s) {
  put_varint(w, s.size());
  w.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

std::string get_string(Decoder& d) {
  const std::uint64_t len = d.varint_at_most(d.r.remaining());
  if (d.failed) return {};
  const auto view = d.r.bytes(static_cast<std::size_t>(len));
  if (!d.r.ok()) {
    d.failed = true;
    return {};
  }
  return std::string(view.begin(), view.end());
}

// --- StoredFlow batch ----------------------------------------------
//
// Batch-level sorted host dictionary (ascending deltas), per-row
// zigzag-delta ids and timestamps — the segment file's column idiom
// applied row-wise, since a wire chunk is consumed in row order.

void put_rows(ByteWriter& w, const std::vector<StoredFlow>& rows) {
  put_varint(w, rows.size());

  std::vector<std::uint32_t> dict;
  dict.reserve(rows.size() * 2);
  for (const auto& r : rows) {
    dict.push_back(r.flow.tuple.src.value());
    dict.push_back(r.flow.tuple.dst.value());
  }
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());

  put_varint(w, dict.size());
  std::uint32_t prev_host = 0;
  for (std::size_t i = 0; i < dict.size(); ++i) {
    put_varint(w, i == 0 ? dict[0] : dict[i] - prev_host);
    prev_host = dict[i];
  }

  const auto dict_index = [&dict](std::uint32_t host) {
    return static_cast<std::uint64_t>(
        std::lower_bound(dict.begin(), dict.end(), host) - dict.begin());
  };

  std::uint64_t prev_id = 0;
  std::int64_t prev_first = 0;
  for (const auto& r : rows) {
    const auto& f = r.flow;
    put_varint(w, zigzag(static_cast<std::int64_t>(r.id - prev_id)));
    prev_id = r.id;
    put_varint(w, dict_index(f.tuple.src.value()));
    put_varint(w, dict_index(f.tuple.dst.value()));
    put_varint(w, f.tuple.src_port);
    put_varint(w, f.tuple.dst_port);
    put_varint(w, f.tuple.proto);
    put_varint(w, static_cast<std::uint64_t>(f.initial_direction));
    put_varint(w, delta_zz(f.first_ts.nanos(), prev_first));
    prev_first = f.first_ts.nanos();
    put_varint(w, delta_zz(f.last_ts.nanos(), f.first_ts.nanos()));
    put_varint(w, f.packets);
    put_varint(w, f.bytes);
    put_varint(w, f.payload_bytes);
    put_varint(w, f.fwd_packets);
    put_varint(w, f.rev_packets);
    put_varint(w, f.syn_count);
    put_varint(w, f.synack_count);
    put_varint(w, f.fin_count);
    put_varint(w, f.rst_count);
    put_varint(w, f.psh_count);
    put_varint(w, f.saw_dns ? 1 : 0);
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < f.label_packets.size(); ++i)
      if (f.label_packets[i] != 0) mask |= 1ull << i;
    put_varint(w, mask);
    for (std::size_t i = 0; i < f.label_packets.size(); ++i)
      if (mask & (1ull << i)) put_varint(w, f.label_packets[i]);
    // scenario_id deliberately stays local to the shard: it is
    // generation-time provenance, and carrying it would bump the wire
    // version for a field remote queries never filter on.
  }
}

bool get_rows(Decoder& d, std::vector<StoredFlow>& out) {
  // A row costs >= ~20 varints >= 20 bytes; bounding the count by the
  // remaining bytes means a hostile count can never drive allocation.
  const std::uint64_t count = d.varint_at_most(d.r.remaining());
  const std::uint64_t dict_size = d.varint_at_most(d.r.remaining());
  if (d.failed) return false;
  if (count > 0 && dict_size == 0) {
    d.failed = true;  // rows reference the dictionary
    return false;
  }

  std::vector<std::uint32_t> dict;
  dict.reserve(static_cast<std::size_t>(dict_size));
  std::uint64_t prev_host = 0;
  for (std::uint64_t i = 0; i < dict_size; ++i) {
    const std::uint64_t step = d.varint();
    if (d.failed) return false;
    const std::uint64_t host = i == 0 ? step : prev_host + step;
    // Dictionary entries are strictly ascending u32 values.
    if (host > kU32Max || (i != 0 && step == 0)) {
      d.failed = true;
      return false;
    }
    dict.push_back(static_cast<std::uint32_t>(host));
    prev_host = host;
  }

  out.reserve(static_cast<std::size_t>(count));
  std::uint64_t prev_id = 0;
  std::int64_t prev_first = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    StoredFlow r;
    auto& f = r.flow;
    r.id = prev_id + static_cast<std::uint64_t>(unzigzag(d.varint()));
    prev_id = r.id;
    f.tuple.src = packet::Ipv4Address(
        dict_size == 0 ? 0 : dict[static_cast<std::size_t>(
                                 d.varint_at_most(dict_size - 1))]);
    f.tuple.dst = packet::Ipv4Address(
        dict_size == 0 ? 0 : dict[static_cast<std::size_t>(
                                 d.varint_at_most(dict_size - 1))]);
    f.tuple.src_port = static_cast<std::uint16_t>(d.varint_at_most(0xFFFF));
    f.tuple.dst_port = static_cast<std::uint16_t>(d.varint_at_most(0xFFFF));
    f.tuple.proto = static_cast<std::uint8_t>(d.varint_at_most(0xFF));
    f.initial_direction =
        static_cast<sim::Direction>(d.varint_at_most(1));
    f.first_ts = Timestamp::from_nanos(undelta_zz(d.varint(), prev_first));
    prev_first = f.first_ts.nanos();
    f.last_ts =
        Timestamp::from_nanos(undelta_zz(d.varint(), f.first_ts.nanos()));
    f.packets = d.varint();
    f.bytes = d.varint();
    f.payload_bytes = d.varint();
    f.fwd_packets = d.varint();
    f.rev_packets = d.varint();
    f.syn_count = static_cast<std::uint32_t>(d.varint_at_most(kU32Max));
    f.synack_count = static_cast<std::uint32_t>(d.varint_at_most(kU32Max));
    f.fin_count = static_cast<std::uint32_t>(d.varint_at_most(kU32Max));
    f.rst_count = static_cast<std::uint32_t>(d.varint_at_most(kU32Max));
    f.psh_count = static_cast<std::uint32_t>(d.varint_at_most(kU32Max));
    f.saw_dns = d.varint_at_most(1) != 0;
    const std::uint64_t mask =
        d.varint_at_most((1u << packet::kTrafficLabelCount) - 1);
    for (std::size_t l = 0; l < f.label_packets.size(); ++l)
      if (mask & (1ull << l)) f.label_packets[l] = d.varint();
    if (d.failed) return false;
    out.push_back(std::move(r));
  }
  return !d.failed;
}

// --- FlowQuery ------------------------------------------------------

enum : std::uint64_t {
  kQFrom = 1u << 0,
  kQTo = 1u << 1,
  kQSrc = 1u << 2,
  kQDst = 1u << 3,
  kQHost = 1u << 4,
  kQPort = 1u << 5,
  kQProto = 1u << 6,
  kQLabel = 1u << 7,
  kQDns = 1u << 8,
  kQDirection = 1u << 9,
  kQLimit = 1u << 10,
  kQAllBits = (1u << 11) - 1,
};

void put_flow_query(ByteWriter& w, const FlowQuery& q) {
  std::uint64_t bits = 0;
  if (q.from) bits |= kQFrom;
  if (q.to) bits |= kQTo;
  if (q.src) bits |= kQSrc;
  if (q.dst) bits |= kQDst;
  if (q.host) bits |= kQHost;
  if (q.port) bits |= kQPort;
  if (q.proto) bits |= kQProto;
  if (q.label) bits |= kQLabel;
  if (q.dns_only) bits |= kQDns;
  if (q.direction) bits |= kQDirection;
  if (q.limit != kNoLimit) bits |= kQLimit;
  put_varint(w, bits);
  if (q.from) put_varint(w, zigzag(q.from->nanos()));
  if (q.to) put_varint(w, zigzag(q.to->nanos()));
  if (q.src) put_varint(w, q.src->value());
  if (q.dst) put_varint(w, q.dst->value());
  if (q.host) put_varint(w, q.host->value());
  if (q.port) put_varint(w, *q.port);
  if (q.proto) put_varint(w, *q.proto);
  if (q.label) put_varint(w, static_cast<std::uint64_t>(*q.label));
  if (q.dns_only) put_varint(w, *q.dns_only ? 1 : 0);
  if (q.direction) put_varint(w, static_cast<std::uint64_t>(*q.direction));
  put_varint(w, q.min_bytes);
  if (q.limit != kNoLimit) put_varint(w, q.limit);
}

bool get_flow_query(Decoder& d, FlowQuery& q) {
  const std::uint64_t bits = d.varint_at_most(kQAllBits);
  if (d.failed) return false;
  if (bits & kQFrom) q.from = Timestamp::from_nanos(unzigzag(d.varint()));
  if (bits & kQTo) q.to = Timestamp::from_nanos(unzigzag(d.varint()));
  if (bits & kQSrc)
    q.src = packet::Ipv4Address(
        static_cast<std::uint32_t>(d.varint_at_most(kU32Max)));
  if (bits & kQDst)
    q.dst = packet::Ipv4Address(
        static_cast<std::uint32_t>(d.varint_at_most(kU32Max)));
  if (bits & kQHost)
    q.host = packet::Ipv4Address(
        static_cast<std::uint32_t>(d.varint_at_most(kU32Max)));
  if (bits & kQPort)
    q.port = static_cast<std::uint16_t>(d.varint_at_most(0xFFFF));
  if (bits & kQProto)
    q.proto = static_cast<std::uint8_t>(d.varint_at_most(0xFF));
  if (bits & kQLabel)
    q.label = static_cast<packet::TrafficLabel>(
        d.varint_at_most(packet::kTrafficLabelCount - 1));
  if (bits & kQDns) q.dns_only = d.varint_at_most(1) != 0;
  if (bits & kQDirection)
    q.direction = static_cast<sim::Direction>(d.varint_at_most(1));
  q.min_bytes = d.varint();
  if (bits & kQLimit)
    q.limit = static_cast<std::size_t>(d.varint());
  return !d.failed;
}

// --- LogEvent / LogQuery --------------------------------------------

void put_log_event(ByteWriter& w, const LogEvent& ev) {
  put_varint(w, zigzag(ev.ts.nanos()));
  put_string(w, ev.source);
  put_varint(w, zigzag(ev.severity));
  put_varint(w, ev.subject.value());
  put_string(w, ev.message);
}

bool get_log_event(Decoder& d, LogEvent& ev) {
  ev.ts = Timestamp::from_nanos(unzigzag(d.varint()));
  ev.source = get_string(d);
  const std::int64_t sev = unzigzag(d.varint());
  if (sev < std::numeric_limits<int>::min() ||
      sev > std::numeric_limits<int>::max()) {
    d.failed = true;
    return false;
  }
  ev.severity = static_cast<int>(sev);
  ev.subject = packet::Ipv4Address(
      static_cast<std::uint32_t>(d.varint_at_most(kU32Max)));
  ev.message = get_string(d);
  return !d.failed;
}

enum : std::uint64_t {
  kLFrom = 1u << 0,
  kLTo = 1u << 1,
  kLSource = 1u << 2,
  kLSubject = 1u << 3,
  kLLimit = 1u << 4,
  kLAllBits = (1u << 5) - 1,
};

// --- QueryStats ------------------------------------------------------

void put_stats(ByteWriter& w, const QueryStats& s) {
  put_varint(w, static_cast<std::uint64_t>(s.index));
  put_varint(w, s.segments_pinned);
  put_varint(w, s.segments_scanned);
  put_varint(w, s.index_hits);
  put_varint(w, s.rows_scanned);
  put_varint(w, s.threads);
  put_varint(w, s.cold_loaded);
  put_varint(w, s.cold_pruned);
  put_varint(w, s.cold_load_failures);
}

bool get_stats(Decoder& d, QueryStats& s) {
  s.index = static_cast<IndexKind>(d.varint_at_most(3));
  s.segments_pinned = static_cast<std::size_t>(d.varint());
  s.segments_scanned = static_cast<std::size_t>(d.varint());
  s.index_hits = static_cast<std::size_t>(d.varint());
  s.rows_scanned = static_cast<std::size_t>(d.varint());
  s.threads = static_cast<std::size_t>(d.varint());
  s.cold_loaded = static_cast<std::size_t>(d.varint());
  s.cold_pruned = static_cast<std::size_t>(d.varint());
  s.cold_load_failures = static_cast<std::size_t>(d.varint());
  return !d.failed;
}

/// Shared epilogue: a valid body is consumed exactly.
template <typename T>
Result<T> finish(Decoder& d, T value, const char* what) {
  if (d.failed || !d.r.ok()) return corrupt(what);
  if (d.r.remaining() != 0) return corrupt("trailing bytes");
  return value;
}

}  // namespace

bool valid_type(std::uint8_t type) noexcept {
  switch (static_cast<MsgType>(type)) {
    case MsgType::kIngest:
    case MsgType::kIngestLog:
    case MsgType::kQuery:
    case MsgType::kAggregate:
    case MsgType::kQueryLogs:
    case MsgType::kCatalog:
    case MsgType::kFlowCount:
    case MsgType::kPing:
    case MsgType::kIngestAck:
    case MsgType::kIngestLogOk:
    case MsgType::kQueryRows:
    case MsgType::kAggregateReply:
    case MsgType::kLogReply:
    case MsgType::kCatalogReply:
    case MsgType::kFlowCountReply:
    case MsgType::kPong:
    case MsgType::kError:
      return true;
  }
  return false;
}

std::vector<std::uint8_t> encode_frame(MsgType type, std::uint32_t shard,
                                       std::uint64_t request_id,
                                       std::span<const std::uint8_t> body) {
  ByteWriter w(kHeaderSize + body.size());
  w.u32(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(0);  // flags
  w.u32(shard);
  w.u64(request_id);
  w.u32(static_cast<std::uint32_t>(body.size()));
  w.u64(fnv1a(body));
  w.u64(fnv1a(w.view().subspan(0, 32)));
  w.bytes(body);
  return std::move(w).take();
}

Result<FrameHeader> parse_frame_header(std::span<const std::uint8_t> data,
                                       std::size_t max_body) {
  if (data.size() < kHeaderSize)
    return Error::make("wire_truncated", "short frame header");
  ByteReader r(data.subspan(0, kHeaderSize));
  const std::uint32_t magic = r.u32();
  if (magic != kMagic) return Error::make("wire_magic", "bad frame magic");
  const std::uint8_t version = r.u8();
  if (version != kVersion)
    return Error::make("wire_version",
                       "unsupported frame version " + std::to_string(version));
  const std::uint8_t type = r.u8();
  const std::uint16_t flags = r.u16();
  FrameHeader h;
  h.shard = r.u32();
  h.request_id = r.u64();
  h.body_len = r.u32();
  h.body_hash = r.u64();
  const std::uint64_t header_hash = r.u64();
  if (header_hash != fnv1a(data.subspan(0, 32)))
    return Error::make("wire_checksum", "frame header checksum mismatch");
  // Checksum first: a corrupted length/type byte reads as checksum
  // damage, not as a bogus protocol violation.
  if (flags != 0) return Error::make("wire_flags", "nonzero v1 flags");
  if (!valid_type(type))
    return Error::make("wire_type",
                       "unknown message type " + std::to_string(type));
  h.type = static_cast<MsgType>(type);
  if (h.body_len > max_body)
    return Error::make("wire_oversize",
                       "frame body " + std::to_string(h.body_len) +
                           " exceeds bound " + std::to_string(max_body));
  return h;
}

Status verify_body(const FrameHeader& header,
                   std::span<const std::uint8_t> body) {
  if (body.size() != header.body_len)
    return Error::make("wire_truncated", "body length mismatch");
  if (fnv1a(body) != header.body_hash)
    return Error::make("wire_checksum", "frame body checksum mismatch");
  return Status::success();
}

void FrameAssembler::feed(std::span<const std::uint8_t> data) {
  if (poisoned_) return;
  // Compact lazily: drop the consumed prefix once it dominates.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

Result<std::optional<Frame>> FrameAssembler::next() {
  if (poisoned_) return poison_;
  const std::span<const std::uint8_t> avail =
      std::span<const std::uint8_t>(buf_).subspan(pos_);
  if (avail.size() < kHeaderSize) return std::optional<Frame>{};
  auto header = parse_frame_header(avail, max_body_);
  if (!header.ok()) {
    poisoned_ = true;
    poison_ = header.error();
    return poison_;
  }
  if (avail.size() < kHeaderSize + header.value().body_len)
    return std::optional<Frame>{};
  const auto body = avail.subspan(kHeaderSize, header.value().body_len);
  if (auto st = verify_body(header.value(), body); !st.ok()) {
    poisoned_ = true;
    poison_ = st.error();
    return poison_;
  }
  Frame frame;
  frame.header = header.value();
  frame.body.assign(body.begin(), body.end());
  pos_ += kHeaderSize + header.value().body_len;
  return std::optional<Frame>(std::move(frame));
}

// --- Message bodies --------------------------------------------------

std::vector<std::uint8_t> encode_ingest(const ShardIngestBatch& batch) {
  ByteWriter w;
  put_rows(w, batch.rows);
  return std::move(w).take();
}

Result<ShardIngestBatch> decode_ingest(std::span<const std::uint8_t> body) {
  Decoder d(body);
  ShardIngestBatch batch;
  get_rows(d, batch.rows);
  return finish(d, std::move(batch), "ingest batch");
}

std::vector<std::uint8_t> encode_ingest_ack(const ShardIngestAck& ack) {
  ByteWriter w;
  put_varint(w, ack.applied);
  return std::move(w).take();
}

Result<ShardIngestAck> decode_ingest_ack(std::span<const std::uint8_t> body) {
  Decoder d(body);
  ShardIngestAck ack;
  ack.applied = d.varint();
  return finish(d, ack, "ingest ack");
}

std::vector<std::uint8_t> encode_log_event(const LogEvent& event) {
  ByteWriter w;
  put_log_event(w, event);
  return std::move(w).take();
}

Result<LogEvent> decode_log_event(std::span<const std::uint8_t> body) {
  Decoder d(body);
  LogEvent ev;
  get_log_event(d, ev);
  return finish(d, std::move(ev), "log event");
}

std::vector<std::uint8_t> encode_query_plan(const ShardQueryPlan& plan) {
  ByteWriter w;
  put_flow_query(w, plan.query);
  put_varint(w, plan.after_id);
  const bool bounded = plan.max_rows != kNoLimit;
  put_varint(w, bounded ? 1 : 0);
  if (bounded) put_varint(w, plan.max_rows);
  return std::move(w).take();
}

Result<ShardQueryPlan> decode_query_plan(std::span<const std::uint8_t> body) {
  Decoder d(body);
  ShardQueryPlan plan;
  get_flow_query(d, plan.query);
  plan.after_id = d.varint();
  if (d.varint_at_most(1) != 0)
    plan.max_rows = static_cast<std::size_t>(d.varint());
  return finish(d, std::move(plan), "query plan");
}

std::vector<std::uint8_t> encode_query_rows(const ShardQueryRows& rows) {
  ByteWriter w;
  put_rows(w, rows.rows);
  put_varint(w, rows.exhausted ? 1 : 0);
  put_stats(w, rows.stats);
  return std::move(w).take();
}

Result<ShardQueryRows> decode_query_rows(std::span<const std::uint8_t> body) {
  Decoder d(body);
  ShardQueryRows rows;
  get_rows(d, rows.rows);
  rows.exhausted = d.varint_at_most(1) != 0;
  get_stats(d, rows.stats);
  return finish(d, std::move(rows), "query rows");
}

std::vector<std::uint8_t> encode_aggregate_plan(const AggregatePlan& plan) {
  ByteWriter w;
  put_flow_query(w, plan.query);
  put_varint(w, static_cast<std::uint64_t>(plan.group_by));
  put_varint(w, plan.top_k);
  return std::move(w).take();
}

Result<AggregatePlan> decode_aggregate_plan(
    std::span<const std::uint8_t> body) {
  Decoder d(body);
  AggregatePlan plan;
  get_flow_query(d, plan.query);
  plan.group_by = static_cast<GroupBy>(d.varint_at_most(2));
  plan.top_k = static_cast<std::size_t>(d.varint());
  return finish(d, std::move(plan), "aggregate plan");
}

std::vector<std::uint8_t> encode_aggregate_result(const AggregateResult& r) {
  ByteWriter w;
  put_varint(w, static_cast<std::uint64_t>(r.group_by));
  put_varint(w, r.matched_flows);
  put_varint(w, r.rows.size());
  for (const auto& row : r.rows) {
    put_varint(w, row.key);
    put_varint(w, row.flows);
    put_varint(w, row.packets);
    put_varint(w, row.bytes);
  }
  put_stats(w, r.stats);
  return std::move(w).take();
}

Result<AggregateResult> decode_aggregate_result(
    std::span<const std::uint8_t> body) {
  Decoder d(body);
  AggregateResult r;
  r.group_by = static_cast<GroupBy>(d.varint_at_most(2));
  r.matched_flows = d.varint();
  const std::uint64_t count = d.varint_at_most(d.r.remaining());
  if (!d.failed) {
    r.rows.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count && !d.failed; ++i) {
      AggregateRow row;
      row.key = d.varint();
      row.flows = d.varint();
      row.packets = d.varint();
      row.bytes = d.varint();
      r.rows.push_back(row);
    }
  }
  get_stats(d, r.stats);
  return finish(d, std::move(r), "aggregate result");
}

std::vector<std::uint8_t> encode_log_query(const LogQuery& q) {
  ByteWriter w;
  std::uint64_t bits = 0;
  if (q.from) bits |= kLFrom;
  if (q.to) bits |= kLTo;
  if (q.source) bits |= kLSource;
  if (q.subject) bits |= kLSubject;
  if (q.limit != kNoLimit) bits |= kLLimit;
  put_varint(w, bits);
  if (q.from) put_varint(w, zigzag(q.from->nanos()));
  if (q.to) put_varint(w, zigzag(q.to->nanos()));
  if (q.source) put_string(w, *q.source);
  if (q.subject) put_varint(w, q.subject->value());
  put_varint(w, zigzag(q.min_severity));
  if (q.limit != kNoLimit) put_varint(w, q.limit);
  return std::move(w).take();
}

Result<LogQuery> decode_log_query(std::span<const std::uint8_t> body) {
  Decoder d(body);
  LogQuery q;
  const std::uint64_t bits = d.varint_at_most(kLAllBits);
  if (!d.failed) {
    if (bits & kLFrom) q.from = Timestamp::from_nanos(unzigzag(d.varint()));
    if (bits & kLTo) q.to = Timestamp::from_nanos(unzigzag(d.varint()));
    if (bits & kLSource) q.source = get_string(d);
    if (bits & kLSubject)
      q.subject = packet::Ipv4Address(
          static_cast<std::uint32_t>(d.varint_at_most(kU32Max)));
    const std::int64_t sev = unzigzag(d.varint());
    if (sev < std::numeric_limits<int>::min() ||
        sev > std::numeric_limits<int>::max())
      d.failed = true;
    else
      q.min_severity = static_cast<int>(sev);
    if (bits & kLLimit) q.limit = static_cast<std::size_t>(d.varint());
  }
  return finish(d, std::move(q), "log query");
}

std::vector<std::uint8_t> encode_log_reply(
    const std::vector<LogEvent>& events) {
  ByteWriter w;
  put_varint(w, events.size());
  for (const auto& ev : events) put_log_event(w, ev);
  return std::move(w).take();
}

Result<std::vector<LogEvent>> decode_log_reply(
    std::span<const std::uint8_t> body) {
  Decoder d(body);
  std::vector<LogEvent> events;
  const std::uint64_t count = d.varint_at_most(d.r.remaining());
  if (!d.failed) {
    events.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count && !d.failed; ++i) {
      LogEvent ev;
      if (get_log_event(d, ev)) events.push_back(std::move(ev));
    }
  }
  return finish(d, std::move(events), "log reply");
}

std::vector<std::uint8_t> encode_catalog(const CatalogInfo& info) {
  ByteWriter w;
  put_varint(w, info.total_flows);
  put_varint(w, info.total_packets);
  put_varint(w, info.total_bytes);
  put_varint(w, info.total_log_events);
  put_varint(w, info.segments);
  put_varint(w, info.cold_segments);
  put_varint(w, zigzag(info.earliest.nanos()));
  put_varint(w, zigzag(info.latest.nanos()));
  for (const auto n : info.flows_per_label) put_varint(w, n);
  put_varint(w, info.evicted_by_retention);
  return std::move(w).take();
}

Result<CatalogInfo> decode_catalog(std::span<const std::uint8_t> body) {
  Decoder d(body);
  CatalogInfo info;
  info.total_flows = d.varint();
  info.total_packets = d.varint();
  info.total_bytes = d.varint();
  info.total_log_events = d.varint();
  info.segments = static_cast<std::size_t>(d.varint());
  info.cold_segments = static_cast<std::size_t>(d.varint());
  info.earliest = Timestamp::from_nanos(unzigzag(d.varint()));
  info.latest = Timestamp::from_nanos(unzigzag(d.varint()));
  for (auto& n : info.flows_per_label) n = d.varint();
  info.evicted_by_retention = d.varint();
  return finish(d, info, "catalog");
}

std::vector<std::uint8_t> encode_flow_count(std::uint64_t count) {
  ByteWriter w;
  put_varint(w, count);
  return std::move(w).take();
}

Result<std::uint64_t> decode_flow_count(std::span<const std::uint8_t> body) {
  Decoder d(body);
  const std::uint64_t count = d.varint();
  return finish(d, count, "flow count");
}

std::vector<std::uint8_t> encode_error(const Error& error) {
  ByteWriter w;
  put_string(w, error.code);
  put_string(w, error.message);
  return std::move(w).take();
}

Status decode_error(std::span<const std::uint8_t> body, Error& out) {
  Decoder d(body);
  Error e;
  e.code = get_string(d);
  e.message = get_string(d);
  if (d.failed || !d.r.ok()) return corrupt("error reply");
  if (d.r.remaining() != 0) return corrupt("trailing bytes");
  out = std::move(e);
  return Status::success();
}

}  // namespace campuslab::store::wire

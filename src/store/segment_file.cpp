#include "campuslab/store/segment_file.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

#include "campuslab/obs/registry.h"
#include "campuslab/obs/stage_timer.h"
#include "campuslab/util/bytes.h"
#include "campuslab/util/codec.h"
#include "campuslab/util/hash.h"

#if defined(__unix__) || defined(__APPLE__)
#define CAMPUSLAB_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace campuslab::store {

namespace {

// "CLSEG01\n" big-endian: readable in a hex dump, and the trailing
// newline catches text-mode mangling the way pcap's magic does.
constexpr std::uint64_t kMagic = 0x434C53454730310AULL;

// Standard-basis FNV-1a from util/hash.h; the golden segment fixture
// pins that checksums are unchanged across the dedup. The varint /
// zigzag codecs and the sticky-failure decoder moved to util/codec.h
// (shared with the shard wire protocol); the fixture equally pins that
// the shared implementation emits identical bytes.
using util::fnv1a;
using util::put_varint;
using util::unzigzag;
using util::zigzag;
using Decoder = util::VarintDecoder;

/// Strictly ascending offset list (the shape every inverted-index
/// posting list has): absolute first value, then deltas >= 1, all
/// < flow_count. Returns false on any structural violation.
bool decode_offsets(Decoder& d, std::uint32_t flow_count,
                    std::vector<std::uint32_t>& out) {
  const std::uint64_t m = d.varint_at_most(flow_count);
  if (d.failed) return false;
  out.clear();
  out.reserve(m);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < m; ++i) {
    const std::uint64_t delta = d.varint();
    if (d.failed) return false;
    const std::uint64_t v = i == 0 ? delta : prev + delta;
    if (v >= flow_count || (i != 0 && delta == 0)) return false;
    out.push_back(static_cast<std::uint32_t>(v));
    prev = v;
  }
  return true;
}

void encode_offsets(ByteWriter& w, const std::vector<std::uint32_t>& v) {
  put_varint(w, v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    put_varint(w, i == 0 ? v[i] : v[i] - v[i - 1]);
}

struct ParsedHeader {
  SegmentZoneMap zone;
  std::uint64_t payload_size = 0;
  std::uint64_t payload_fnv = 0;
};

Result<ParsedHeader> parse_header(std::span<const std::uint8_t> file) {
  if (file.size() < kSegmentFileHeaderBytes)
    return Error::make("segment_truncated",
                       "file shorter than the fixed header");
  ByteReader r(file.first(kSegmentFileHeaderBytes));
  if (r.u64() != kMagic)
    return Error::make("segment_magic", "not a CampusLab segment file");
  const std::uint32_t version = r.u32();
  if (version != kSegmentFileVersion)
    return Error::make("segment_version",
                       "unsupported segment format version " +
                           std::to_string(version));
  r.u32();  // flags, reserved (covered by the header checksum)
  ParsedHeader h;
  h.payload_size = r.u64();
  h.payload_fnv = r.u64();
  h.zone.flow_count = r.u32();
  h.zone.min_ts =
      Timestamp::from_nanos(static_cast<std::int64_t>(r.u64()));
  h.zone.max_ts =
      Timestamp::from_nanos(static_cast<std::int64_t>(r.u64()));
  h.zone.id_lo = r.u64();
  h.zone.id_hi = r.u64();
  h.zone.packets = r.u64();
  h.zone.bytes = r.u64();
  for (auto& lf : h.zone.label_flows) lf = r.u64();
  const std::uint64_t stored = r.u64();
  if (stored != fnv1a(file.first(kSegmentFileHeaderBytes - 8)))
    return Error::make("segment_checksum", "header checksum mismatch");
  if (h.payload_size != file.size() - kSegmentFileHeaderBytes)
    return Error::make("segment_truncated",
                       "payload size disagrees with file size");
  return h;
}

struct TierMetrics {
  obs::Counter& cold_loads =
      obs::Registry::global().counter("store.cold_loads");
  obs::Counter& cold_load_failures =
      obs::Registry::global().counter("store.cold_load_failures");
  obs::Histogram& load_ns =
      obs::Registry::global().histogram("store_load_ns");

  static TierMetrics& get() {
    static TierMetrics m;
    return m;
  }
};

#if !CAMPUSLAB_HAVE_MMAP
Result<std::vector<std::uint8_t>> read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error::make("io", "cannot open " + path);
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size < 0) return Error::make("io", "cannot stat " + path);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(buf.data()),
          static_cast<std::streamsize>(buf.size()));
  if (!in) return Error::make("io", "short read from " + path);
  return buf;
}
#endif

}  // namespace

// ------------------------------------------------------------- encode

std::vector<std::uint8_t> encode_segment(const Segment& segment,
                                         SegmentFileInfo* info) {
  const auto& flows = segment.flows;
  const auto n = static_cast<std::uint32_t>(flows.size());

  // Zone map recomputed from the rows themselves so the header always
  // agrees with the payload, even for hand-built segments.
  SegmentZoneMap zone;
  zone.flow_count = n;
  if (n > 0) {
    zone.min_ts = flows.front().flow.first_ts;
    zone.max_ts = flows.front().flow.last_ts;
    zone.id_lo = flows.front().id;
    zone.id_hi = flows.back().id;
  }
  for (const auto& stored : flows) {
    const auto& f = stored.flow;
    zone.min_ts = std::min(zone.min_ts, f.first_ts);
    zone.max_ts = std::max(zone.max_ts, f.last_ts);
    zone.packets += f.packets;
    zone.bytes += f.bytes;
    ++zone.label_flows[static_cast<std::size_t>(f.majority_label())];
  }

  ByteWriter payload(static_cast<std::size_t>(n) * 24 + 256);
  put_varint(payload, n);

  std::size_t col_start = payload.size();
  const auto column = [&](const char* name, std::uint64_t memory_bytes) {
    if (info != nullptr)
      info->columns.push_back(
          ColumnBytes{name, payload.size() - col_start, memory_bytes});
    col_start = payload.size();
  };

  // Flow ids: absolute first, zigzag deltas after (ingest assigns them
  // ascending, so deltas are tiny — but the codec never assumes it).
  for (std::size_t i = 0; i < flows.size(); ++i)
    put_varint(payload, i == 0 ? flows[i].id
                               : zigzag(static_cast<std::int64_t>(
                                     flows[i].id - flows[i - 1].id)));
  column("flow_id", static_cast<std::uint64_t>(n) * 8);

  // Timestamps: first_ts as offset from the zone minimum (always
  // non-negative), last_ts as zigzag duration from first_ts.
  for (const auto& s : flows)
    put_varint(payload,
               static_cast<std::uint64_t>(s.flow.first_ts.nanos()) -
                   static_cast<std::uint64_t>(zone.min_ts.nanos()));
  column("first_ts", static_cast<std::uint64_t>(n) * 8);
  for (const auto& s : flows)
    put_varint(payload,
               zigzag(static_cast<std::int64_t>(
                   static_cast<std::uint64_t>(s.flow.last_ts.nanos()) -
                   static_cast<std::uint64_t>(s.flow.first_ts.nanos()))));
  column("duration", static_cast<std::uint64_t>(n) * 8);

  // Host dictionary: sorted unique src+dst addresses, delta-encoded;
  // the address columns are dictionary indexes.
  std::vector<std::uint32_t> hosts;
  hosts.reserve(flows.size() * 2);
  for (const auto& s : flows) {
    hosts.push_back(s.flow.tuple.src.value());
    hosts.push_back(s.flow.tuple.dst.value());
  }
  std::sort(hosts.begin(), hosts.end());
  hosts.erase(std::unique(hosts.begin(), hosts.end()), hosts.end());
  put_varint(payload, hosts.size());
  for (std::size_t i = 0; i < hosts.size(); ++i)
    put_varint(payload, i == 0 ? hosts[i] : hosts[i] - hosts[i - 1]);
  column("host_dict", 0);
  const auto host_index = [&hosts](std::uint32_t value) {
    return static_cast<std::uint64_t>(
        std::lower_bound(hosts.begin(), hosts.end(), value) -
        hosts.begin());
  };
  for (const auto& s : flows)
    put_varint(payload, host_index(s.flow.tuple.src.value()));
  column("src_host", static_cast<std::uint64_t>(n) * 4);
  for (const auto& s : flows)
    put_varint(payload, host_index(s.flow.tuple.dst.value()));
  column("dst_host", static_cast<std::uint64_t>(n) * 4);

  for (const auto& s : flows) put_varint(payload, s.flow.tuple.src_port);
  for (const auto& s : flows) put_varint(payload, s.flow.tuple.dst_port);
  column("ports", static_cast<std::uint64_t>(n) * 4);

  // Protocol dictionary (a campus sees a handful of IP protocols).
  std::vector<std::uint8_t> protos;
  protos.reserve(flows.size());
  for (const auto& s : flows) protos.push_back(s.flow.tuple.proto);
  std::sort(protos.begin(), protos.end());
  protos.erase(std::unique(protos.begin(), protos.end()), protos.end());
  put_varint(payload, protos.size());
  for (const auto p : protos) payload.u8(p);
  for (const auto& s : flows)
    put_varint(payload,
               static_cast<std::uint64_t>(
                   std::lower_bound(protos.begin(), protos.end(),
                                    s.flow.tuple.proto) -
                   protos.begin()));
  column("proto", static_cast<std::uint64_t>(n));

  // Direction and saw_dns, one bit per flow each.
  const auto put_bitset = [&](auto&& bit_of) {
    std::uint8_t acc = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (bit_of(flows[i])) acc |= static_cast<std::uint8_t>(1u << (i % 8));
      if (i % 8 == 7) {
        payload.u8(acc);
        acc = 0;
      }
    }
    if (n % 8 != 0) payload.u8(acc);
  };
  put_bitset([](const StoredFlow& s) {
    return s.flow.initial_direction == sim::Direction::kOutbound;
  });
  put_bitset([](const StoredFlow& s) { return s.flow.saw_dns; });
  column("flags", static_cast<std::uint64_t>(n) * 2);

  const auto u64_column = [&](auto&& field_of) {
    for (const auto& s : flows) put_varint(payload, field_of(s.flow));
  };
  u64_column([](const capture::FlowRecord& f) { return f.packets; });
  u64_column([](const capture::FlowRecord& f) { return f.bytes; });
  u64_column([](const capture::FlowRecord& f) { return f.payload_bytes; });
  u64_column([](const capture::FlowRecord& f) { return f.fwd_packets; });
  u64_column([](const capture::FlowRecord& f) { return f.rev_packets; });
  column("counters", static_cast<std::uint64_t>(n) * 40);
  u64_column([](const capture::FlowRecord& f) { return f.syn_count; });
  u64_column([](const capture::FlowRecord& f) { return f.synack_count; });
  u64_column([](const capture::FlowRecord& f) { return f.fin_count; });
  u64_column([](const capture::FlowRecord& f) { return f.rst_count; });
  u64_column([](const capture::FlowRecord& f) { return f.psh_count; });
  column("tcp_flags", static_cast<std::uint64_t>(n) * 20);

  // label_packets is almost always a single nonzero entry: a presence
  // mask plus the nonzero values only.
  for (const auto& s : flows) {
    std::uint8_t mask = 0;
    for (std::size_t l = 0; l < packet::kTrafficLabelCount; ++l)
      if (s.flow.label_packets[l] != 0)
        mask |= static_cast<std::uint8_t>(1u << l);
    payload.u8(mask);
    for (std::size_t l = 0; l < packet::kTrafficLabelCount; ++l)
      if (s.flow.label_packets[l] != 0)
        put_varint(payload, s.flow.label_packets[l]);
  }
  column("labels", static_cast<std::uint64_t>(n) * 40);

  // Scenario instance ids: background flows carry 0, so the column is
  // one byte per flow outside attack windows.
  for (const auto& s : flows) put_varint(payload, s.flow.scenario_id);
  column("scenario_id", static_cast<std::uint64_t>(n) * 4);

  // Inverted indexes, keys sorted for deterministic bytes (the golden
  // fixture pins the encoding bit-for-bit).
  std::uint64_t index_entries = 0;
  const auto put_keyed_index = [&](const auto& map) {
    std::vector<std::uint64_t> keys;
    keys.reserve(map.size());
    for (const auto& [key, offsets] : map)
      keys.push_back(static_cast<std::uint64_t>(key));
    std::sort(keys.begin(), keys.end());
    put_varint(payload, keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      put_varint(payload, i == 0 ? keys[i] : keys[i] - keys[i - 1]);
      const auto& offsets =
          map.at(static_cast<typename std::decay_t<
                     decltype(map)>::key_type>(keys[i]));
      encode_offsets(payload, offsets);
      index_entries += offsets.size();
    }
  };
  put_keyed_index(segment.by_host);
  column("index_host", index_entries * 4 + segment.by_host.size() * 48);
  index_entries = 0;
  put_keyed_index(segment.by_port);
  column("index_port", index_entries * 4 + segment.by_port.size() * 48);
  index_entries = 0;
  for (const auto& offsets : segment.by_label) {
    encode_offsets(payload, offsets);
    index_entries += offsets.size();
  }
  column("index_label", index_entries * 4);

  ByteWriter header(kSegmentFileHeaderBytes);
  header.u64(kMagic);
  header.u32(kSegmentFileVersion);
  header.u32(0);  // flags, reserved
  header.u64(payload.size());
  header.u64(fnv1a(payload.view()));
  header.u32(zone.flow_count);
  header.u64(static_cast<std::uint64_t>(zone.min_ts.nanos()));
  header.u64(static_cast<std::uint64_t>(zone.max_ts.nanos()));
  header.u64(zone.id_lo);
  header.u64(zone.id_hi);
  header.u64(zone.packets);
  header.u64(zone.bytes);
  for (const auto lf : zone.label_flows) header.u64(lf);
  header.u64(fnv1a(header.view()));

  std::vector<std::uint8_t> out;
  out.reserve(header.size() + payload.size());
  out.insert(out.end(), header.view().begin(), header.view().end());
  out.insert(out.end(), payload.view().begin(), payload.view().end());

  if (info != nullptr) {
    info->file_bytes = out.size();
    info->payload_bytes = payload.size();
    info->memory_bytes = segment_memory_bytes(segment);
    info->zone = zone;
  }
  return out;
}

std::uint64_t segment_memory_bytes(const Segment& segment) noexcept {
  std::uint64_t mem = segment.flows.capacity() * sizeof(StoredFlow);
  std::uint64_t entries = 0;
  for (const auto& [key, offsets] : segment.by_host)
    entries += offsets.size();
  for (const auto& [key, offsets] : segment.by_port)
    entries += offsets.size();
  for (const auto& offsets : segment.by_label) entries += offsets.size();
  // Posting vectors plus ~48 bytes of hash-node overhead per key.
  return mem + entries * sizeof(std::uint32_t) +
         (segment.by_host.size() + segment.by_port.size()) * 48;
}

// ------------------------------------------------------------- decode

Result<SegmentZoneMap> decode_zone_map(std::span<const std::uint8_t> file) {
  auto header = parse_header(file);
  if (!header.ok()) return header.error();
  return header.value().zone;
}

Result<std::shared_ptr<Segment>> decode_segment(
    std::span<const std::uint8_t> file) {
  auto parsed = parse_header(file);
  if (!parsed.ok()) return parsed.error();
  const ParsedHeader& header = parsed.value();
  const auto payload = file.subspan(kSegmentFileHeaderBytes);
  if (fnv1a(payload) != header.payload_fnv)
    return Error::make("segment_checksum", "payload checksum mismatch");

  // The checksum gate means everything below "cannot" fail on a file
  // we wrote; every check still runs so decode stays total on inputs
  // that collide, come from a newer writer, or were crafted.
  const auto corrupt = [] {
    return Error::make("segment_corrupt", "malformed segment payload");
  };
  Decoder d(payload);
  const std::uint64_t n64 = d.varint();
  if (d.failed || n64 != header.zone.flow_count || n64 > payload.size())
    return corrupt();
  const auto n = static_cast<std::uint32_t>(n64);

  auto segment = std::make_shared<Segment>(n);
  segment->flows.resize(n);  // within the reserved capacity: no realloc
  auto& flows = segment->flows;

  std::uint64_t prev_id = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t raw = d.varint();
    prev_id = i == 0 ? raw
                     : prev_id + static_cast<std::uint64_t>(unzigzag(raw));
    flows[i].id = prev_id;
  }
  const std::uint64_t min_ts_u =
      static_cast<std::uint64_t>(header.zone.min_ts.nanos());
  for (std::uint32_t i = 0; i < n; ++i)
    flows[i].flow.first_ts = Timestamp::from_nanos(
        static_cast<std::int64_t>(min_ts_u + d.varint()));
  for (std::uint32_t i = 0; i < n; ++i)
    flows[i].flow.last_ts = Timestamp::from_nanos(static_cast<std::int64_t>(
        static_cast<std::uint64_t>(flows[i].flow.first_ts.nanos()) +
        static_cast<std::uint64_t>(unzigzag(d.varint()))));
  if (d.failed) return corrupt();

  const std::uint64_t dict_size =
      d.varint_at_most(static_cast<std::uint64_t>(n) * 2);
  std::vector<std::uint32_t> hosts;
  hosts.reserve(dict_size);
  std::uint64_t prev_host = 0;
  for (std::uint64_t i = 0; i < dict_size; ++i) {
    const std::uint64_t delta = d.varint();
    const std::uint64_t v = i == 0 ? delta : prev_host + delta;
    if (d.failed || v > std::numeric_limits<std::uint32_t>::max() ||
        (i != 0 && delta == 0))
      return corrupt();
    hosts.push_back(static_cast<std::uint32_t>(v));
    prev_host = v;
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t idx = d.varint();
    if (d.failed || idx >= hosts.size()) return corrupt();
    flows[i].flow.tuple.src = packet::Ipv4Address(hosts[idx]);
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t idx = d.varint();
    if (d.failed || idx >= hosts.size()) return corrupt();
    flows[i].flow.tuple.dst = packet::Ipv4Address(hosts[idx]);
  }
  for (std::uint32_t i = 0; i < n; ++i)
    flows[i].flow.tuple.src_port =
        static_cast<std::uint16_t>(d.varint_at_most(0xFFFF));
  for (std::uint32_t i = 0; i < n; ++i)
    flows[i].flow.tuple.dst_port =
        static_cast<std::uint16_t>(d.varint_at_most(0xFFFF));
  if (d.failed) return corrupt();

  const std::uint64_t proto_count = d.varint_at_most(256);
  if (d.failed) return corrupt();
  const auto proto_dict = d.r.bytes(proto_count);
  if (proto_dict.size() != proto_count) return corrupt();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t idx = d.varint();
    if (d.failed || idx >= proto_dict.size()) return corrupt();
    flows[i].flow.tuple.proto = proto_dict[idx];
  }

  const std::size_t bitset_bytes = (n + 7) / 8;
  const auto dir_bits = d.r.bytes(bitset_bytes);
  const auto dns_bits = d.r.bytes(bitset_bytes);
  if (dir_bits.size() != bitset_bytes || dns_bits.size() != bitset_bytes)
    return corrupt();
  for (std::uint32_t i = 0; i < n; ++i) {
    flows[i].flow.initial_direction =
        (dir_bits[i / 8] >> (i % 8)) & 1 ? sim::Direction::kOutbound
                                         : sim::Direction::kInbound;
    flows[i].flow.saw_dns = ((dns_bits[i / 8] >> (i % 8)) & 1) != 0;
  }

  const auto u64_column = [&](auto&& assign) {
    for (std::uint32_t i = 0; i < n; ++i) assign(flows[i].flow, d.varint());
  };
  u64_column([](capture::FlowRecord& f, std::uint64_t v) { f.packets = v; });
  u64_column([](capture::FlowRecord& f, std::uint64_t v) { f.bytes = v; });
  u64_column(
      [](capture::FlowRecord& f, std::uint64_t v) { f.payload_bytes = v; });
  u64_column(
      [](capture::FlowRecord& f, std::uint64_t v) { f.fwd_packets = v; });
  u64_column(
      [](capture::FlowRecord& f, std::uint64_t v) { f.rev_packets = v; });
  if (d.failed) return corrupt();
  const auto u32_column = [&](auto&& assign) {
    for (std::uint32_t i = 0; i < n; ++i)
      assign(flows[i].flow, static_cast<std::uint32_t>(
                                d.varint_at_most(0xFFFFFFFFULL)));
  };
  u32_column([](capture::FlowRecord& f, std::uint32_t v) { f.syn_count = v; });
  u32_column(
      [](capture::FlowRecord& f, std::uint32_t v) { f.synack_count = v; });
  u32_column([](capture::FlowRecord& f, std::uint32_t v) { f.fin_count = v; });
  u32_column([](capture::FlowRecord& f, std::uint32_t v) { f.rst_count = v; });
  u32_column([](capture::FlowRecord& f, std::uint32_t v) { f.psh_count = v; });
  if (d.failed) return corrupt();

  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint8_t mask = d.r.u8();
    if (!d.r.ok() || (mask >> packet::kTrafficLabelCount) != 0)
      return corrupt();
    for (std::size_t l = 0; l < packet::kTrafficLabelCount; ++l)
      if ((mask >> l) & 1) flows[i].flow.label_packets[l] = d.varint();
  }
  if (d.failed) return corrupt();

  for (std::uint32_t i = 0; i < n; ++i)
    flows[i].flow.scenario_id =
        static_cast<std::uint32_t>(d.varint_at_most(0xFFFFFFFFULL));
  if (d.failed) return corrupt();

  const auto read_keyed_index = [&](auto& map, std::uint64_t key_bound,
                                    std::uint64_t max_keys) {
    const std::uint64_t keys = d.varint_at_most(max_keys);
    if (d.failed) return false;
    std::uint64_t prev_key = 0;
    std::vector<std::uint32_t> offsets;
    for (std::uint64_t i = 0; i < keys; ++i) {
      const std::uint64_t delta = d.varint();
      const std::uint64_t key = i == 0 ? delta : prev_key + delta;
      if (d.failed || key > key_bound || (i != 0 && delta == 0))
        return false;
      prev_key = key;
      if (!decode_offsets(d, n, offsets)) return false;
      map[static_cast<typename std::decay_t<decltype(map)>::key_type>(
          key)] = offsets;
    }
    return true;
  };
  if (!read_keyed_index(segment->by_host,
                        std::numeric_limits<std::uint32_t>::max(),
                        static_cast<std::uint64_t>(n) * 2))
    return corrupt();
  if (!read_keyed_index(segment->by_port, 0xFFFF,
                        static_cast<std::uint64_t>(n) * 2))
    return corrupt();
  std::vector<std::uint32_t> offsets;
  for (auto& posting : segment->by_label) {
    if (!decode_offsets(d, n, offsets)) return corrupt();
    posting = offsets;
  }

  if (d.failed || d.r.offset() != payload.size())
    return corrupt();  // trailing garbage or short payload

  segment->sealed = true;
  if (n > 0) {
    segment->min_ts = header.zone.min_ts;
    segment->max_ts = header.zone.max_ts;
  }
  return segment;
}

// --------------------------------------------------------------- file

Result<SegmentFileInfo> write_segment_file(const Segment& segment,
                                           const std::string& path) {
  SegmentFileInfo info;
  const auto bytes = encode_segment(segment, &info);
  // Write-then-rename: a crash mid-spill leaves a stale .tmp, never a
  // half-written segment the reader could mistake for data.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Error::make("io", "cannot create " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return Error::make("io", "short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Error::make("io", "cannot rename " + tmp + " -> " + path);
  }
  return info;
}

Result<std::shared_ptr<Segment>> read_segment_file(const std::string& path) {
  auto mapped = MappedFile::open(path);
  if (!mapped.ok()) return mapped.error();
  return decode_segment(mapped.value().bytes());
}

Result<SegmentZoneMap> read_zone_map(const std::string& path) {
  auto mapped = MappedFile::open(path);
  if (!mapped.ok()) return mapped.error();
  return decode_zone_map(mapped.value().bytes());
}

// --------------------------------------------------------- MappedFile

void MappedFile::reset() noexcept {
#if CAMPUSLAB_HAVE_MMAP
  if (mapped_ && data_ != nullptr)
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    fallback_ = std::move(other.fallback_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

MappedFile::~MappedFile() { reset(); }

Result<MappedFile> MappedFile::open(const std::string& path) {
  MappedFile file;
#if CAMPUSLAB_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Error::make("io", "cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Error::make("io", "cannot stat " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size > 0) {
    void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (p == MAP_FAILED) return Error::make("io", "cannot mmap " + path);
    file.data_ = static_cast<const std::uint8_t*>(p);
    file.size_ = size;
    file.mapped_ = true;
  } else {
    ::close(fd);
  }
  return file;
#else
  auto buf = read_whole_file(path);
  if (!buf.ok()) return buf.error();
  file.fallback_ = std::move(buf).value();
  file.data_ = file.fallback_.data();
  file.size_ = file.fallback_.size();
  return file;
#endif
}

// -------------------------------------------------- ColdSegmentHandle

ColdSegmentHandle::~ColdSegmentHandle() {
  if (owns_file_) {
    std::error_code ec;
    std::filesystem::remove(path_, ec);  // best-effort cleanup
  }
}

Result<std::shared_ptr<const Segment>> ColdSegmentHandle::load() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto live = cache_.lock()) return live;
  auto& metrics = TierMetrics::get();
  const auto t0 = obs::monotonic_ns();
  auto loaded = read_segment_file(path_);
  if (!loaded.ok()) {
    metrics.cold_load_failures.increment();
    return loaded.error();
  }
  metrics.cold_loads.increment();
  metrics.load_ns.observe(obs::monotonic_ns() - t0);
  std::shared_ptr<const Segment> segment = std::move(loaded).value();
  cache_ = segment;
  return segment;
}

}  // namespace campuslab::store

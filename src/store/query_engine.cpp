#include "campuslab/store/query_engine.h"

#include <algorithm>
#include <unordered_map>

#include "campuslab/store/segment_file.h"

namespace campuslab::store {

// ------------------------------------------------------------ ScanPool

ScanPool::ScanPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ScanPool::~ScanPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ScanPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Task> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (generation_ != seen && task_ != nullptr);
      });
      if (stop_) return;
      seen = generation_;
      task = task_;
    }
    for (;;) {
      const std::size_t i =
          task->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= task->n) break;
      (*task->fn)(i);
      if (task->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          task->n) {
        std::lock_guard<std::mutex> lock(mu_);  // pair with the waiter
        done_cv_.notify_all();
      }
    }
  }
}

void ScanPool::parallel_for(std::size_t n,
                            const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  // `fn` outlives the task: every index is claimed-then-completed
  // before the done-wait below returns, and late workers holding the
  // drained task see next >= n and never touch fn again.
  auto task = std::make_shared<Task>();
  task->fn = &fn;
  task->n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = task;
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller is worker zero.
  for (;;) {
    const std::size_t i = task->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    fn(i);
    task->done.fetch_add(1, std::memory_order_acq_rel);
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return task->done.load(std::memory_order_acquire) == n;
  });
  task_ = nullptr;
}

// ------------------------------------------------- per-segment scanning

namespace {

// Per-segment tiering outcomes, merged into QueryStats afterwards.
struct ColdStats {
  std::size_t loaded = 0;
  std::size_t pruned = 0;
  std::size_t load_failures = 0;
};

// Resolve the access path for one pinned segment: false = the segment
// contributes nothing (time-pruned or index miss). `candidates`
// nullptr = linear scan of the pinned prefix.
//
// Cold pins resolve here: the zone map prunes the whole file against
// the query's time bounds before any I/O; a surviving file is decoded
// (concurrent queries share one decode through the handle) and the
// loaded shared_ptr is parked in the pin, so the snapshot — and every
// result holding it — owns the rows it scanned. From that point a
// cold segment is scanned by exactly the code that scans a hot one,
// which is what makes results bit-identical across tiers. A load
// failure (corrupt or vanished file) contributes zero rows and a
// cold_load_failures tick, never UB.
bool open_segment_scan(PinnedSegment& pin, const FlowQuery& q,
                       IndexKind plan,
                       const std::vector<std::uint32_t>*& candidates,
                       ColdStats& cold) {
  candidates = nullptr;
  if (pin.count == 0) return false;
  if (pin.segment == nullptr) {
    if (pin.cold == nullptr) return false;
    const SegmentZoneMap& zone = pin.cold->zone();
    if ((q.from && zone.max_ts < *q.from) ||
        (q.to && zone.min_ts > *q.to)) {
      ++cold.pruned;
      return false;
    }
    auto loaded = pin.cold->load();
    if (!loaded.ok()) {
      ++cold.load_failures;
      return false;
    }
    pin.segment = std::move(loaded).value();
    ++cold.loaded;
  }
  const Segment& seg = *pin.segment;
  if (pin.indexed) {
    // min/max are stable only once sealed; the open tail is never
    // pruned (its rows still pass through the full predicate).
    if (q.from && seg.max_ts < *q.from) return false;
    if (q.to && seg.min_ts > *q.to) return false;
    switch (plan) {
      case IndexKind::kHost: {
        const auto addr = q.host ? *q.host : (q.src ? *q.src : *q.dst);
        const auto it = seg.by_host.find(addr.value());
        if (it == seg.by_host.end()) return false;
        candidates = &it->second;
        break;
      }
      case IndexKind::kLabel:
        candidates = &seg.by_label[static_cast<std::size_t>(*q.label)];
        break;
      case IndexKind::kPort: {
        const auto it = seg.by_port.find(*q.port);
        if (it == seg.by_port.end()) return false;
        candidates = &it->second;
        break;
      }
      case IndexKind::kTimeScan:
        break;
    }
  }
  return true;
}

struct SegmentScan {
  std::vector<const StoredFlow*> rows;
  std::size_t index_hits = 0;
  std::size_t rows_scanned = 0;
  bool scanned = false;
  ColdStats cold;
};

void scan_segment(PinnedSegment& pin, const FlowQuery& q,
                  IndexKind plan, std::size_t limit, SegmentScan& out) {
  const std::vector<std::uint32_t>* candidates = nullptr;
  if (!open_segment_scan(pin, q, plan, candidates, out.cold)) return;
  out.scanned = true;
  // data() + pinned count, never size()/iterators: the open tail may
  // be appending concurrently (snapshot.h).
  const StoredFlow* flows = pin.segment->flows.data();
  if (candidates != nullptr) {
    out.index_hits = candidates->size();
    for (const auto offset : *candidates) {
      const auto& stored = flows[offset];
      ++out.rows_scanned;
      if (q.matches(stored)) {
        out.rows.push_back(&stored);
        if (out.rows.size() >= limit) return;
      }
    }
  } else {
    for (std::uint32_t i = 0; i < pin.count; ++i) {
      const auto& stored = flows[i];
      ++out.rows_scanned;
      if (q.matches(stored)) {
        out.rows.push_back(&stored);
        if (out.rows.size() >= limit) return;
      }
    }
  }
}

}  // namespace

// ------------------------------------------------------------ executor

QueryResult execute_query(StoreSnapshot snapshot, const FlowQuery& q,
                          ScanPool* pool) {
  const IndexKind plan = planned_index(q);
  // Mutable pins: cold resolution parks loaded segments in them, and
  // parallel tasks each touch a distinct element (race-free).
  auto& segs = snapshot.segments_mut();
  std::vector<SegmentScan> partial(segs.size());
  const bool parallel = pool != nullptr && pool->threads() > 1 &&
                        segs.size() > 1;
  if (parallel) {
    pool->parallel_for(segs.size(), [&](std::size_t i) {
      scan_segment(segs[i], q, plan, q.limit, partial[i]);
    });
  } else {
    // Serial keeps the cross-segment early exit: stop planning work
    // once the limit is already met.
    std::size_t have = 0;
    for (std::size_t i = 0; i < segs.size() && have < q.limit; ++i) {
      scan_segment(segs[i], q, plan, q.limit - have, partial[i]);
      have += partial[i].rows.size();
    }
  }

  QueryStats stats;
  stats.index = plan;
  stats.segments_pinned = segs.size();
  stats.threads = parallel ? pool->threads() : 1;
  std::size_t total = 0;
  for (const auto& part : partial) {
    stats.segments_scanned += part.scanned ? 1 : 0;
    stats.index_hits += part.index_hits;
    stats.rows_scanned += part.rows_scanned;
    stats.cold_loaded += part.cold.loaded;
    stats.cold_pruned += part.cold.pruned;
    stats.cold_load_failures += part.cold.load_failures;
    total += part.rows.size();
  }
  std::vector<const StoredFlow*> rows;
  rows.reserve(std::min(total, q.limit));
  // Merge in ingest order: segments are pinned oldest-first and each
  // per-segment row list is in ascending offset order already.
  for (const auto& part : partial) {
    for (const auto* row : part.rows) {
      if (rows.size() >= q.limit) break;
      rows.push_back(row);
    }
  }
  return QueryResult(std::move(snapshot), std::move(rows), stats);
}

AggregateResult execute_aggregate(StoreSnapshot snapshot,
                                  const FlowQuery& q, GroupBy group_by,
                                  std::size_t top_k, ScanPool* pool) {
  // Aggregation consumes every match; a row limit on the filter query
  // would make group totals depend on scan order, so it is ignored.
  FlowQuery filter = q;
  filter.limit = std::numeric_limits<std::size_t>::max();
  const IndexKind plan = planned_index(filter);
  auto& segs = snapshot.segments_mut();

  struct SegmentAgg {
    std::unordered_map<std::uint64_t, AggregateRow> groups;
    std::uint64_t matched = 0;
    std::size_t index_hits = 0;
    std::size_t rows_scanned = 0;
    bool scanned = false;
    ColdStats cold;
  };
  std::vector<SegmentAgg> partial(segs.size());

  auto aggregate_segment = [&](std::size_t idx) {
    PinnedSegment& pin = segs[idx];
    SegmentAgg& out = partial[idx];
    const std::vector<std::uint32_t>* candidates = nullptr;
    if (!open_segment_scan(pin, filter, plan, candidates, out.cold)) return;
    out.scanned = true;
    const StoredFlow* flows = pin.segment->flows.data();
    auto credit = [&out](std::uint64_t key, const capture::FlowRecord& f) {
      AggregateRow& row = out.groups[key];
      row.key = key;
      ++row.flows;
      row.packets += f.packets;
      row.bytes += f.bytes;
    };
    auto consume = [&](const StoredFlow& stored) {
      ++out.rows_scanned;
      if (!filter.matches(stored)) return;
      ++out.matched;
      const auto& f = stored.flow;
      switch (group_by) {
        case GroupBy::kHost:
          credit(f.tuple.src.value(), f);
          if (f.tuple.dst != f.tuple.src) credit(f.tuple.dst.value(), f);
          break;
        case GroupBy::kPort:
          credit(f.tuple.src_port, f);
          if (f.tuple.dst_port != f.tuple.src_port)
            credit(f.tuple.dst_port, f);
          break;
        case GroupBy::kLabel:
          credit(static_cast<std::uint64_t>(f.majority_label()), f);
          break;
      }
    };
    if (candidates != nullptr) {
      out.index_hits = candidates->size();
      for (const auto offset : *candidates) consume(flows[offset]);
    } else {
      for (std::uint32_t i = 0; i < pin.count; ++i) consume(flows[i]);
    }
  };

  const bool parallel = pool != nullptr && pool->threads() > 1 &&
                        segs.size() > 1;
  if (parallel) {
    pool->parallel_for(segs.size(), aggregate_segment);
  } else {
    for (std::size_t i = 0; i < segs.size(); ++i) aggregate_segment(i);
  }

  AggregateResult result;
  result.group_by = group_by;
  result.stats.index = plan;
  result.stats.segments_pinned = segs.size();
  result.stats.threads = parallel ? pool->threads() : 1;
  std::unordered_map<std::uint64_t, AggregateRow> merged;
  for (const auto& part : partial) {
    result.stats.segments_scanned += part.scanned ? 1 : 0;
    result.stats.index_hits += part.index_hits;
    result.stats.rows_scanned += part.rows_scanned;
    result.stats.cold_loaded += part.cold.loaded;
    result.stats.cold_pruned += part.cold.pruned;
    result.stats.cold_load_failures += part.cold.load_failures;
    result.matched_flows += part.matched;
    for (const auto& [key, row] : part.groups) {
      AggregateRow& into = merged[key];
      into.key = key;
      into.flows += row.flows;
      into.packets += row.packets;
      into.bytes += row.bytes;
    }
  }
  result.rows.reserve(merged.size());
  for (const auto& [key, row] : merged) result.rows.push_back(row);
  const auto heavier = [](const AggregateRow& a, const AggregateRow& b) {
    if (a.bytes != b.bytes) return a.bytes > b.bytes;
    return a.key < b.key;
  };
  if (top_k > 0 && top_k < result.rows.size()) {
    std::partial_sort(result.rows.begin(),
                      result.rows.begin() + static_cast<std::ptrdiff_t>(top_k),
                      result.rows.end(), heavier);
    result.rows.resize(top_k);
  } else {
    std::sort(result.rows.begin(), result.rows.end(), heavier);
  }
  return result;
}

// ---------------------------------------------------------- scan_chunk

std::vector<StoredFlow> scan_chunk(StoreSnapshot snapshot, const FlowQuery& q,
                                   std::uint64_t after_id,
                                   std::size_t max_rows, QueryStats* stats,
                                   bool* exhausted) {
  FlowQuery filter = q;
  filter.limit = std::numeric_limits<std::size_t>::max();
  const IndexKind plan = planned_index(filter);
  auto& segs = snapshot.segments_mut();
  QueryStats st;
  st.index = plan;
  st.segments_pinned = segs.size();
  st.threads = 1;
  std::vector<StoredFlow> rows;
  bool done = true;
  ColdStats cold;
  if (max_rows == 0) {
    done = false;  // a zero-row pull proves nothing about the tail
  } else {
    for (std::size_t si = 0; si < segs.size(); ++si) {
      PinnedSegment& pin = segs[si];
      if (pin.count == 0) continue;
      if (after_id != 0) {
        // Segments are consumed in ascending-id order, so a segment
        // whose last id is at or below the resume token was fully
        // drained by earlier pulls — skip it, cold ones without I/O.
        if (pin.segment != nullptr) {
          if (pin.segment->flows.data()[pin.count - 1].id <= after_id)
            continue;
        } else if (pin.cold != nullptr &&
                   pin.cold->zone().id_hi <= after_id) {
          continue;
        }
      }
      const std::vector<std::uint32_t>* candidates = nullptr;
      if (!open_segment_scan(pin, filter, plan, candidates, cold)) continue;
      ++st.segments_scanned;
      const StoredFlow* flows = pin.segment->flows.data();
      // Returns false once the chunk is full.
      auto consume = [&](const StoredFlow& stored) {
        ++st.rows_scanned;
        if (stored.id <= after_id || !filter.matches(stored)) return true;
        rows.push_back(stored);
        return rows.size() < max_rows;
      };
      bool room = true;
      if (candidates != nullptr) {
        st.index_hits += candidates->size();
        for (const auto offset : *candidates) {
          if (!(room = consume(flows[offset]))) break;
        }
      } else {
        for (std::uint32_t i = 0; i < pin.count && room; ++i)
          room = consume(flows[i]);
      }
      if (!room) {
        done = false;  // cut mid-scan: this or a later segment may hold more
        break;
      }
    }
  }
  st.cold_loaded = cold.loaded;
  st.cold_pruned = cold.pruned;
  st.cold_load_failures = cold.load_failures;
  if (stats != nullptr) *stats = st;
  if (exhausted != nullptr) *exhausted = done;
  return rows;
}

// -------------------------------------------------------- QueryCursor

QueryCursor::QueryCursor(StoreSnapshot snapshot, FlowQuery query)
    : snapshot_(std::move(snapshot)), query_(std::move(query)) {
  stats_.index = planned_index(query_);
  stats_.segments_pinned = snapshot_.segments().size();
}

bool QueryCursor::open_next_segment() {
  auto& segs = snapshot_.segments_mut();
  while (next_segment_ < segs.size()) {
    PinnedSegment& pin = segs[next_segment_++];
    ColdStats cold;
    const bool open =
        open_segment_scan(pin, query_, stats_.index, candidates_, cold);
    stats_.cold_loaded += cold.loaded;
    stats_.cold_pruned += cold.pruned;
    stats_.cold_load_failures += cold.load_failures;
    if (!open) continue;
    segment_ = pin.segment.get();
    count_ = pin.count;
    pos_ = 0;
    segment_open_ = true;
    ++stats_.segments_scanned;
    if (candidates_ != nullptr) stats_.index_hits += candidates_->size();
    return true;
  }
  return false;
}

bool QueryCursor::next() {
  if (produced_ >= query_.limit) return false;
  for (;;) {
    if (!segment_open_ && !open_next_segment()) return false;
    const StoredFlow* flows = segment_->flows.data();
    if (candidates_ != nullptr) {
      while (pos_ < candidates_->size()) {
        const auto& stored = flows[(*candidates_)[pos_++]];
        ++stats_.rows_scanned;
        if (query_.matches(stored)) {
          current_ = &stored;
          ++produced_;
          return true;
        }
      }
    } else {
      while (pos_ < count_) {
        const auto& stored = flows[pos_++];
        ++stats_.rows_scanned;
        if (query_.matches(stored)) {
          current_ = &stored;
          ++produced_;
          return true;
        }
      }
    }
    segment_open_ = false;
  }
}

std::string_view to_string(GroupBy by) noexcept {
  switch (by) {
    case GroupBy::kHost: return "host";
    case GroupBy::kPort: return "port";
    case GroupBy::kLabel: return "label";
  }
  return "?";
}

}  // namespace campuslab::store

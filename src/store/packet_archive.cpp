#include "campuslab/store/packet_archive.h"

#include <algorithm>
#include <filesystem>

#include "campuslab/resilience/fault.h"

namespace campuslab::store {

Result<PacketArchive> PacketArchive::open(PacketArchiveConfig config) {
  std::error_code ec;
  if (!std::filesystem::is_directory(config.directory, ec)) {
    return Error::make("io",
                       "archive directory missing: " + config.directory);
  }
  return PacketArchive(std::move(config));
}

Status PacketArchive::rotate(Timestamp first_ts) {
  if (writer_) {
    if (auto s = writer_->flush(); !s.ok()) return s;
    writer_.reset();
  }
  const std::string path = config_.directory + "/segment_" +
                           std::to_string(next_file_id_++) + ".pcap";
  auto w = capture::PcapWriter::open(path);
  if (!w.ok()) return w.error();
  writer_.emplace(std::move(w).value());
  segments_.push_back(ArchiveSegmentInfo{path, first_ts, first_ts, 0});
  return Status::success();
}

Status PacketArchive::write(const packet::Packet& pkt) {
  if (degradation_ != nullptr &&
      degradation_->should_shed(resilience::ShedClass::kArchiveWrite)) {
    // Shed, not failed: the pipeline chose to skip this write under
    // pressure, and the controller counted the decision.
    return Status::success();
  }
  if (auto s = resilience::fault_point_status("archive.write"); !s.ok())
    return s;
  const bool need_rotation =
      !writer_ || (!segments_.empty() &&
                   pkt.ts - segments_.back().first_ts >= config_.segment_span);
  if (need_rotation) {
    if (auto s = rotate(pkt.ts); !s.ok()) return s;
  }
  if (auto s = writer_->write(pkt); !s.ok()) return s;
  auto& seg = segments_.back();
  seg.last_ts = std::max(seg.last_ts, pkt.ts);
  ++seg.records;
  ++records_;
  return Status::success();
}

Status PacketArchive::write(const packet::Packet& pkt,
                            const resilience::RetryPolicy& policy, Rng& rng,
                            const resilience::Sleeper& sleeper) {
  return resilience::retry_status(
      policy, rng, "archive.write", [this, &pkt] { return write(pkt); },
      sleeper);
}

Status PacketArchive::seal() {
  if (writer_) {
    if (auto s = writer_->flush(); !s.ok()) return s;
    writer_.reset();
  }
  return Status::success();
}

Result<std::vector<packet::Packet>> PacketArchive::read_range(Timestamp from,
                                                              Timestamp to) {
  if (auto s = seal(); !s.ok()) return s.error();
  std::vector<packet::Packet> out;
  for (const auto& seg : segments_) {
    if (seg.last_ts < from || seg.first_ts > to) continue;
    auto reader = capture::PcapReader::open(seg.path);
    if (!reader.ok()) return reader.error();
    while (true) {
      auto r = reader.value().next();
      if (!r.ok()) return r.error();
      if (!r.value().has_value()) break;
      if (r.value()->ts >= from && r.value()->ts <= to)
        out.push_back(std::move(*r.value()));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const packet::Packet& a, const packet::Packet& b) {
                     return a.ts < b.ts;
                   });
  return out;
}

Result<std::vector<packet::Packet>> PacketArchive::read_filtered(
    Timestamp from, Timestamp to, const capture::FilterExpr& filter) {
  auto all = read_range(from, to);
  if (!all.ok()) return all;
  std::vector<packet::Packet> out;
  for (auto& pkt : all.value()) {
    if (filter.matches(pkt)) out.push_back(std::move(pkt));
  }
  return out;
}

std::size_t PacketArchive::enforce_retention(Timestamp now) {
  const Timestamp horizon = now - config_.retention;
  std::size_t deleted = 0;
  // Never delete the open (last) segment.
  while (segments_.size() > 1 && segments_.front().last_ts < horizon) {
    std::error_code ec;
    std::filesystem::remove(segments_.front().path, ec);
    segments_.pop_front();
    ++deleted;
  }
  return deleted;
}

}  // namespace campuslab::store

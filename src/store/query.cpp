#include "campuslab/store/query.h"

namespace campuslab::store {

std::string_view to_string(IndexKind kind) noexcept {
  switch (kind) {
    case IndexKind::kHost: return "host";
    case IndexKind::kLabel: return "label";
    case IndexKind::kPort: return "port";
    case IndexKind::kTimeScan: return "time-scan";
  }
  return "?";
}

IndexKind planned_index(const FlowQuery& q) noexcept {
  if (q.host || q.src || q.dst) return IndexKind::kHost;
  if (q.label) return IndexKind::kLabel;
  if (q.port) return IndexKind::kPort;
  return IndexKind::kTimeScan;
}

bool FlowQuery::matches(const StoredFlow& stored) const noexcept {
  const auto& f = stored.flow;
  if (from && f.last_ts < *from) return false;
  if (to && f.first_ts > *to) return false;
  if (src && f.tuple.src != *src) return false;
  if (dst && f.tuple.dst != *dst) return false;
  if (host && f.tuple.src != *host && f.tuple.dst != *host) return false;
  if (port && f.tuple.src_port != *port && f.tuple.dst_port != *port)
    return false;
  if (proto && f.tuple.proto != *proto) return false;
  if (label && f.majority_label() != *label) return false;
  if (dns_only && f.saw_dns != *dns_only) return false;
  if (direction && f.initial_direction != *direction) return false;
  if (f.bytes < min_bytes) return false;
  return true;
}

bool LogQuery::matches(const LogEvent& ev) const noexcept {
  if (from && ev.ts < *from) return false;
  if (to && ev.ts > *to) return false;
  if (source && ev.source != *source) return false;
  if (subject && ev.subject != *subject) return false;
  if (ev.severity < min_severity) return false;
  return true;
}

}  // namespace campuslab::store

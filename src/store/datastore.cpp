#include "campuslab/store/datastore.h"

#include <algorithm>
#include <filesystem>

#include "campuslab/obs/registry.h"
#include "campuslab/obs/stage_timer.h"
#include "campuslab/resilience/fault.h"
#include "campuslab/store/query_engine.h"
#include "campuslab/store/segment_file.h"

namespace campuslab::store {

namespace {
struct StoreMetrics {
  obs::Counter& ingested =
      obs::Registry::global().counter("store.flows_ingested");
  obs::Histogram& ingest_ns = obs::stage_histogram("store_ingest");
  obs::Histogram& query_ns =
      obs::Registry::global().histogram("store_query_ns");
  obs::Counter& queries = obs::Registry::global().counter("store.queries");
  obs::Counter& segments_scanned =
      obs::Registry::global().counter("store.segments_scanned");
  obs::Counter& index_hits =
      obs::Registry::global().counter("store.index_hits");
  obs::Counter& rows_returned =
      obs::Registry::global().counter("store.rows_returned");
  // Tiering.
  obs::Counter& spills = obs::Registry::global().counter("store.spills");
  obs::Counter& spill_failures =
      obs::Registry::global().counter("store.spill_failures");
  obs::Counter& spill_bytes =
      obs::Registry::global().counter("store.spill_bytes_total");
  obs::Gauge& cold_segments =
      obs::Registry::global().gauge("store.cold_segments");
  obs::Histogram& spill_ns =
      obs::Registry::global().histogram("store_spill_ns");

  static StoreMetrics& get() {
    static StoreMetrics m;
    return m;
  }

  void record_query(std::uint64_t elapsed_ns, const QueryStats& stats,
                    std::size_t rows) {
    query_ns.observe(elapsed_ns);
    queries.increment();
    segments_scanned.add(stats.segments_scanned);
    index_hits.add(stats.index_hits);
    rows_returned.add(rows);
  }
};
}  // namespace

DataStore::DataStore(DataStoreConfig config) : config_(config) {
  if (config_.segment_flows == 0) config_.segment_flows = 1;
  if (config_.query_threads == 0) config_.query_threads = 1;
}

DataStore::~DataStore() = default;

ScanPool* DataStore::configured_pool() const {
  if (config_.query_threads <= 1) return nullptr;
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<ScanPool>(config_.query_threads);
  });
  return pool_.get();
}

Segment& DataStore::open_segment_locked() {
  // The back slot is the only one that can be the open tail; a spilled
  // back (hot == nullptr) is sealed by construction.
  if (segments_.empty() || segments_.back().hot == nullptr ||
      segments_.back().hot->sealed)
    segments_.push_back(TieredSegment{
        std::make_shared<Segment>(config_.segment_flows), nullptr});
  return *segments_.back().hot;
}

void DataStore::index_flow(Segment& seg, const StoredFlow& stored,
                           std::uint32_t offset) {
  const auto& f = stored.flow;
  seg.by_host[f.tuple.src.value()].push_back(offset);
  if (f.tuple.dst != f.tuple.src)
    seg.by_host[f.tuple.dst.value()].push_back(offset);
  seg.by_port[f.tuple.src_port].push_back(offset);
  if (f.tuple.dst_port != f.tuple.src_port)
    seg.by_port[f.tuple.dst_port].push_back(offset);
  seg.by_label[static_cast<std::size_t>(f.majority_label())].push_back(
      offset);
}

std::uint64_t DataStore::ingest(const capture::FlowRecord& flow) {
  return ingest(StoredFlow{0, flow});
}

std::uint64_t DataStore::ingest(const StoredFlow& row) {
  auto& metrics = StoreMetrics::get();
  obs::StageTimer stage_timer(metrics.ingest_ns);
  metrics.ingested.increment();

  std::uint64_t id = 0;
  bool sealed_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& seg = open_segment_locked();
    StoredFlow stored{row.id != 0 ? row.id : next_id_++, row.flow};
    if (stored.id >= next_id_) next_id_ = stored.id + 1;

    // Data cleaning: a flow whose timestamps are inverted (possible only
    // through producer bugs) is normalized rather than stored broken.
    if (stored.flow.last_ts < stored.flow.first_ts)
      stored.flow.last_ts = stored.flow.first_ts;

    seg.min_ts = std::min(seg.min_ts, stored.flow.first_ts);
    seg.max_ts = std::max(seg.max_ts, stored.flow.last_ts);
    const auto offset = static_cast<std::uint32_t>(seg.flows.size());
    // push_back never reallocates: capacity was reserved up front and
    // the segment seals exactly at capacity (snapshot.h relies on this).
    seg.flows.push_back(std::move(stored));
    index_flow(seg, seg.flows.back(), offset);

    total_flows_.fetch_add(1, std::memory_order_release);
    ++label_counts_[static_cast<std::size_t>(row.flow.majority_label())];
    if (seg.flows.size() >= config_.segment_flows) {
      seg.sealed = true;
      sealed_now = true;
    }
    id = seg.flows.back().id;
  }
  // Spill outside the lock: serialization is the expensive part and
  // sealed segments are immutable, so queries keep flowing meanwhile.
  if (sealed_now) enforce_hot_budget();
  return id;
}

void DataStore::ingest_log(LogEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  logs_.push_back(std::move(event));
}

StoreSnapshot DataStore::snapshot_locked() const {
  std::vector<PinnedSegment> pins;
  pins.reserve(segments_.size());
  for (const auto& tier : segments_) {
    if (tier.hot != nullptr) {
      if (tier.hot->flows.empty()) continue;
      pins.push_back(PinnedSegment{
          tier.hot, static_cast<std::uint32_t>(tier.hot->flows.size()),
          tier.hot->sealed, nullptr});
    } else {
      // Cold pin: the handle carries the zone map; the query engine
      // prunes/loads it lazily. Spilled segments are always sealed.
      pins.push_back(PinnedSegment{nullptr, tier.cold->zone().flow_count,
                                   true, tier.cold});
    }
  }
  return StoreSnapshot(std::move(pins));
}

StoreSnapshot DataStore::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_locked();
}

QueryResult DataStore::query(const FlowQuery& q) const {
  resilience::fault_point("store.query");
  const auto t0 = obs::monotonic_ns();
  auto result = execute_query(snapshot(), q, configured_pool());
  StoreMetrics::get().record_query(obs::monotonic_ns() - t0,
                                   result.stats(), result.size());
  return result;
}

QueryResult DataStore::query(const FlowQuery& q, ScanPool& pool) const {
  resilience::fault_point("store.query");
  const auto t0 = obs::monotonic_ns();
  auto result = execute_query(snapshot(), q, &pool);
  StoreMetrics::get().record_query(obs::monotonic_ns() - t0,
                                   result.stats(), result.size());
  return result;
}

AggregateResult DataStore::aggregate(const FlowQuery& q, GroupBy group_by,
                                     std::size_t top_k) const {
  resilience::fault_point("store.query");
  const auto t0 = obs::monotonic_ns();
  auto result =
      execute_aggregate(snapshot(), q, group_by, top_k, configured_pool());
  StoreMetrics::get().record_query(obs::monotonic_ns() - t0, result.stats,
                                   result.rows.size());
  return result;
}

AggregateResult DataStore::aggregate(const FlowQuery& q, GroupBy group_by,
                                     std::size_t top_k,
                                     ScanPool& pool) const {
  resilience::fault_point("store.query");
  const auto t0 = obs::monotonic_ns();
  auto result = execute_aggregate(snapshot(), q, group_by, top_k, &pool);
  StoreMetrics::get().record_query(obs::monotonic_ns() - t0, result.stats,
                                   result.rows.size());
  return result;
}

QueryCursor DataStore::open_cursor(FlowQuery q) const {
  resilience::fault_point("store.query");
  return QueryCursor(snapshot(), std::move(q));
}

LogResult DataStore::query_logs(const LogQuery& q) const {
  resilience::fault_point("store.query");
  std::vector<LogEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ev : logs_) {
      if (q.matches(ev)) {
        out.push_back(ev);
        if (out.size() >= q.limit) break;
      }
    }
  }
  return LogResult(std::move(out));
}

void DataStore::for_each(
    const std::function<void(const StoredFlow&)>& fn) const {
  const auto snap = snapshot();
  for (const auto& pin : snap.segments()) {
    // Cold segments load one at a time and release before the next:
    // a full-store export stays O(one segment) of resident cold data.
    std::shared_ptr<const Segment> loaded;
    const Segment* seg = pin.segment.get();
    if (seg == nullptr) {
      if (pin.cold == nullptr) continue;
      auto r = pin.cold->load();
      if (!r.ok()) continue;  // counted in store.cold_load_failures
      loaded = std::move(r).value();
      seg = loaded.get();
    }
    const StoredFlow* flows = seg->flows.data();
    for (std::uint32_t i = 0; i < pin.count; ++i) fn(flows[i]);
  }
}

std::uint64_t DataStore::enforce_retention(Timestamp now) {
  const Timestamp horizon = now - config_.retention;
  std::uint64_t evicted = 0;
  std::lock_guard<std::mutex> lock(mu_);
  while (!segments_.empty()) {
    const TieredSegment& front = segments_.front();
    if (front.hot != nullptr) {
      if (!front.hot->sealed || !(front.hot->max_ts < horizon)) break;
      for (const auto& stored : front.hot->flows) {
        --label_counts_[static_cast<std::size_t>(
            stored.flow.majority_label())];
        ++evicted;
      }
      total_flows_.fetch_sub(front.hot->flows.size(),
                             std::memory_order_release);
    } else {
      // Cold eviction needs no I/O: the zone map carries the horizon
      // check and the per-label counts. Dropping the reference unlinks
      // the file once the last pinned snapshot releases the handle.
      const SegmentZoneMap& zone = front.cold->zone();
      if (!(zone.max_ts < horizon)) break;
      for (std::size_t l = 0; l < zone.label_flows.size(); ++l)
        label_counts_[l] -= zone.label_flows[l];
      evicted += zone.flow_count;
      total_flows_.fetch_sub(zone.flow_count, std::memory_order_release);
      StoreMetrics::get().cold_segments.add(-1);
    }
    segments_.pop_front();  // pinned snapshots keep the segment alive
  }
  while (!logs_.empty() && logs_.front().ts < horizon) {
    logs_.pop_front();
    // Log eviction is not counted toward flow eviction totals.
  }
  evicted_ += evicted;
  return evicted;
}

CatalogInfo DataStore::catalog() const {
  CatalogInfo info;
  StoreSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    info.total_flows = total_flows_.load(std::memory_order_relaxed);
    info.total_log_events = logs_.size();
    info.segments = segments_.size();
    info.flows_per_label = label_counts_;
    info.evicted_by_retention = evicted_;
    snap = snapshot_locked();
  }
  bool first = true;
  auto widen = [&](Timestamp lo, Timestamp hi) {
    if (first) {
      info.earliest = lo;
      info.latest = hi;
      first = false;
    } else {
      info.earliest = std::min(info.earliest, lo);
      info.latest = std::max(info.latest, hi);
    }
  };
  for (const auto& pin : snap.segments()) {
    if (pin.segment == nullptr) {
      // Cold segments are cataloged from their zone maps — no I/O.
      if (pin.cold == nullptr) continue;
      const SegmentZoneMap& zone = pin.cold->zone();
      ++info.cold_segments;
      info.total_packets += zone.packets;
      info.total_bytes += zone.bytes;
      if (zone.flow_count > 0) widen(zone.min_ts, zone.max_ts);
      continue;
    }
    const StoredFlow* flows = pin.segment->flows.data();
    for (std::uint32_t i = 0; i < pin.count; ++i) {
      const auto& f = flows[i].flow;
      info.total_packets += f.packets;
      info.total_bytes += f.bytes;
      widen(f.first_ts, f.last_ts);
    }
  }
  return info;
}

// ------------------------------------------------------------- tiering

std::uint64_t DataStore::hot_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& tier : segments_)
    if (tier.hot != nullptr) total += segment_memory_bytes(*tier.hot);
  return total;
}

void DataStore::enforce_hot_budget() {
  if (config_.spill_directory.empty()) return;
  if (config_.hot_bytes_budget == 0) {
    spill();  // spill-at-seal: everything sealed goes cold
    return;
  }
  while (hot_bytes() > config_.hot_bytes_budget)
    if (spill(1) == 0) break;  // nothing sealed left, or disk down
}

std::size_t DataStore::spill(std::size_t max_segments) {
  if (config_.spill_directory.empty()) return 0;
  std::size_t spilled = 0;
  while (spilled < max_segments) {
    // Oldest sealed hot segment first: retention evicts oldest-first
    // too, so the hot tier converges to "the open tail plus whatever
    // the budget allows".
    std::shared_ptr<Segment> victim;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& tier : segments_) {
        if (tier.hot != nullptr && tier.hot->sealed) {
          victim = tier.hot;
          break;
        }
      }
    }
    if (victim == nullptr) break;
    if (!spill_segment(victim)) break;
    ++spilled;
  }
  return spilled;
}

bool DataStore::spill_segment(const std::shared_ptr<Segment>& victim) {
  auto& metrics = StoreMetrics::get();
  const std::uint64_t first_id = victim->flows.front().id;
  std::error_code ec;
  std::filesystem::create_directories(config_.spill_directory, ec);
  const std::string path = config_.spill_directory + "/seg-" +
                           std::to_string(first_id) + ".clseg";

  // Serialize outside the store lock (the victim is sealed, hence
  // immutable), with retry/backoff around the fault site; exhaustion
  // degrades gracefully — the segment simply stays hot.
  Rng rng(config_.spill_seed ^ first_id);
  SegmentFileInfo info;
  const auto t0 = obs::monotonic_ns();
  const Status status = resilience::retry_status(
      config_.spill_retry, rng, "store.spill", [&]() -> Status {
        if (Status injected =
                resilience::fault_point_status("store.spill");
            !injected.ok())
          return injected;
        auto written = write_segment_file(*victim, path);
        if (!written.ok()) return written.error();
        info = std::move(written).value();
        return Status::success();
      });
  if (!status.ok()) {
    metrics.spill_failures.increment();
    return false;
  }
  metrics.spill_ns.observe(obs::monotonic_ns() - t0);

  auto handle = std::make_shared<const ColdSegmentHandle>(
      path, info.zone, info.file_bytes, /*owns_file=*/true);
  bool swapped = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& tier : segments_) {
      if (tier.hot == victim) {
        tier.hot = nullptr;
        tier.cold = handle;
        swapped = true;
        break;
      }
    }
  }
  if (!swapped) {
    // Retention raced the write and already evicted the segment; the
    // handle (sole owner) unlinks the file on destruction here.
    return true;
  }
  metrics.spills.increment();
  metrics.spill_bytes.add(info.file_bytes);
  metrics.cold_segments.add(1);
  return true;
}

}  // namespace campuslab::store

#include "campuslab/store/datastore.h"

#include <algorithm>

#include "campuslab/obs/registry.h"
#include "campuslab/obs/stage_timer.h"

namespace campuslab::store {

namespace {
struct StoreMetrics {
  obs::Counter& ingested =
      obs::Registry::global().counter("store.flows_ingested");
  obs::Histogram& ingest_ns = obs::stage_histogram("store_ingest");

  static StoreMetrics& get() {
    static StoreMetrics m;
    return m;
  }
};
}  // namespace

DataStore::DataStore(DataStoreConfig config) : config_(config) {}

DataStore::Segment& DataStore::open_segment() {
  if (segments_.empty() || segments_.back().sealed) {
    Segment seg;
    seg.min_ts = Timestamp::from_nanos(
        std::numeric_limits<std::int64_t>::max());
    seg.max_ts = Timestamp::from_nanos(
        std::numeric_limits<std::int64_t>::min());
    seg.flows.reserve(config_.segment_flows);
    segments_.push_back(std::move(seg));
  }
  return segments_.back();
}

void DataStore::index_flow(Segment& seg, const StoredFlow& stored,
                           std::uint32_t offset) {
  const auto& f = stored.flow;
  seg.by_host[f.tuple.src.value()].push_back(offset);
  if (f.tuple.dst != f.tuple.src)
    seg.by_host[f.tuple.dst.value()].push_back(offset);
  seg.by_port[f.tuple.src_port].push_back(offset);
  if (f.tuple.dst_port != f.tuple.src_port)
    seg.by_port[f.tuple.dst_port].push_back(offset);
  seg.by_label[static_cast<std::size_t>(f.majority_label())].push_back(
      offset);
}

std::uint64_t DataStore::ingest(const capture::FlowRecord& flow) {
  auto& metrics = StoreMetrics::get();
  obs::StageTimer stage_timer(metrics.ingest_ns);
  metrics.ingested.increment();
  auto& seg = open_segment();
  StoredFlow stored{next_id_++, flow};

  // Data cleaning: a flow whose timestamps are inverted (possible only
  // through producer bugs) is normalized rather than stored broken.
  if (stored.flow.last_ts < stored.flow.first_ts)
    stored.flow.last_ts = stored.flow.first_ts;

  seg.min_ts = std::min(seg.min_ts, stored.flow.first_ts);
  seg.max_ts = std::max(seg.max_ts, stored.flow.last_ts);
  const auto offset = static_cast<std::uint32_t>(seg.flows.size());
  seg.flows.push_back(std::move(stored));
  index_flow(seg, seg.flows.back(), offset);

  ++total_flows_;
  ++label_counts_[static_cast<std::size_t>(flow.majority_label())];
  if (seg.flows.size() >= config_.segment_flows) seg.sealed = true;
  return seg.flows.back().id;
}

void DataStore::ingest_log(LogEvent event) {
  logs_.push_back(std::move(event));
}

bool DataStore::segment_overlaps(const Segment& seg,
                                 const FlowQuery& q) const {
  if (seg.flows.empty()) return false;
  if (q.from && seg.max_ts < *q.from) return false;
  if (q.to && seg.min_ts > *q.to) return false;
  return true;
}

std::vector<const StoredFlow*> DataStore::query(const FlowQuery& q) const {
  std::vector<const StoredFlow*> out;
  for (const auto& seg : segments_) {
    if (out.size() >= q.limit) break;
    if (!segment_overlaps(seg, q)) continue;

    // Plan: host index > label index > port index > scan.
    const std::vector<std::uint32_t>* candidates = nullptr;
    std::vector<std::uint32_t> merged;
    if (q.host || q.src || q.dst) {
      const auto addr = q.host ? *q.host : (q.src ? *q.src : *q.dst);
      const auto it = seg.by_host.find(addr.value());
      if (it == seg.by_host.end()) continue;
      candidates = &it->second;
    } else if (q.label) {
      candidates = &seg.by_label[static_cast<std::size_t>(*q.label)];
    } else if (q.port) {
      const auto it = seg.by_port.find(*q.port);
      if (it == seg.by_port.end()) continue;
      candidates = &it->second;
    }

    if (candidates) {
      for (const auto offset : *candidates) {
        const auto& stored = seg.flows[offset];
        if (q.matches(stored)) {
          out.push_back(&stored);
          if (out.size() >= q.limit) break;
        }
      }
    } else {
      for (const auto& stored : seg.flows) {
        if (q.matches(stored)) {
          out.push_back(&stored);
          if (out.size() >= q.limit) break;
        }
      }
    }
  }
  return out;
}

std::vector<const LogEvent*> DataStore::query_logs(const LogQuery& q) const {
  std::vector<const LogEvent*> out;
  for (const auto& ev : logs_) {
    if (q.matches(ev)) {
      out.push_back(&ev);
      if (out.size() >= q.limit) break;
    }
  }
  return out;
}

void DataStore::for_each(
    const std::function<void(const StoredFlow&)>& fn) const {
  for (const auto& seg : segments_)
    for (const auto& stored : seg.flows) fn(stored);
}

std::uint64_t DataStore::enforce_retention(Timestamp now) {
  const Timestamp horizon = now - config_.retention;
  std::uint64_t evicted = 0;
  while (!segments_.empty() && segments_.front().sealed &&
         segments_.front().max_ts < horizon) {
    for (const auto& stored : segments_.front().flows) {
      --label_counts_[static_cast<std::size_t>(
          stored.flow.majority_label())];
      ++evicted;
    }
    total_flows_ -= segments_.front().flows.size();
    segments_.pop_front();
  }
  while (!logs_.empty() && logs_.front().ts < horizon) {
    logs_.pop_front();
    // Log eviction is not counted toward flow eviction totals.
  }
  evicted_ += evicted;
  return evicted;
}

CatalogInfo DataStore::catalog() const {
  CatalogInfo info;
  info.total_flows = total_flows_;
  info.total_log_events = logs_.size();
  info.segments = segments_.size();
  info.flows_per_label = label_counts_;
  info.evicted_by_retention = evicted_;
  bool first = true;
  for (const auto& seg : segments_) {
    for (const auto& stored : seg.flows) {
      info.total_packets += stored.flow.packets;
      info.total_bytes += stored.flow.bytes;
    }
    if (seg.flows.empty()) continue;
    if (first) {
      info.earliest = seg.min_ts;
      info.latest = seg.max_ts;
      first = false;
    } else {
      info.earliest = std::min(info.earliest, seg.min_ts);
      info.latest = std::max(info.latest, seg.max_ts);
    }
  }
  return info;
}

}  // namespace campuslab::store

#include "campuslab/store/datastore.h"

#include <algorithm>

#include "campuslab/obs/registry.h"
#include "campuslab/obs/stage_timer.h"
#include "campuslab/resilience/fault.h"
#include "campuslab/store/query_engine.h"

namespace campuslab::store {

namespace {
struct StoreMetrics {
  obs::Counter& ingested =
      obs::Registry::global().counter("store.flows_ingested");
  obs::Histogram& ingest_ns = obs::stage_histogram("store_ingest");
  obs::Histogram& query_ns =
      obs::Registry::global().histogram("store_query_ns");
  obs::Counter& queries = obs::Registry::global().counter("store.queries");
  obs::Counter& segments_scanned =
      obs::Registry::global().counter("store.segments_scanned");
  obs::Counter& index_hits =
      obs::Registry::global().counter("store.index_hits");
  obs::Counter& rows_returned =
      obs::Registry::global().counter("store.rows_returned");

  static StoreMetrics& get() {
    static StoreMetrics m;
    return m;
  }

  void record_query(std::uint64_t elapsed_ns, const QueryStats& stats,
                    std::size_t rows) {
    query_ns.observe(elapsed_ns);
    queries.increment();
    segments_scanned.add(stats.segments_scanned);
    index_hits.add(stats.index_hits);
    rows_returned.add(rows);
  }
};
}  // namespace

DataStore::DataStore(DataStoreConfig config) : config_(config) {
  if (config_.segment_flows == 0) config_.segment_flows = 1;
  if (config_.query_threads == 0) config_.query_threads = 1;
}

DataStore::~DataStore() = default;

ScanPool* DataStore::configured_pool() const {
  if (config_.query_threads <= 1) return nullptr;
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<ScanPool>(config_.query_threads);
  });
  return pool_.get();
}

Segment& DataStore::open_segment_locked() {
  if (segments_.empty() || segments_.back()->sealed)
    segments_.push_back(std::make_shared<Segment>(config_.segment_flows));
  return *segments_.back();
}

void DataStore::index_flow(Segment& seg, const StoredFlow& stored,
                           std::uint32_t offset) {
  const auto& f = stored.flow;
  seg.by_host[f.tuple.src.value()].push_back(offset);
  if (f.tuple.dst != f.tuple.src)
    seg.by_host[f.tuple.dst.value()].push_back(offset);
  seg.by_port[f.tuple.src_port].push_back(offset);
  if (f.tuple.dst_port != f.tuple.src_port)
    seg.by_port[f.tuple.dst_port].push_back(offset);
  seg.by_label[static_cast<std::size_t>(f.majority_label())].push_back(
      offset);
}

std::uint64_t DataStore::ingest(const capture::FlowRecord& flow) {
  auto& metrics = StoreMetrics::get();
  obs::StageTimer stage_timer(metrics.ingest_ns);
  metrics.ingested.increment();

  std::lock_guard<std::mutex> lock(mu_);
  auto& seg = open_segment_locked();
  StoredFlow stored{next_id_++, flow};

  // Data cleaning: a flow whose timestamps are inverted (possible only
  // through producer bugs) is normalized rather than stored broken.
  if (stored.flow.last_ts < stored.flow.first_ts)
    stored.flow.last_ts = stored.flow.first_ts;

  seg.min_ts = std::min(seg.min_ts, stored.flow.first_ts);
  seg.max_ts = std::max(seg.max_ts, stored.flow.last_ts);
  const auto offset = static_cast<std::uint32_t>(seg.flows.size());
  // push_back never reallocates: capacity was reserved up front and
  // the segment seals exactly at capacity (snapshot.h relies on this).
  seg.flows.push_back(std::move(stored));
  index_flow(seg, seg.flows.back(), offset);

  total_flows_.fetch_add(1, std::memory_order_release);
  ++label_counts_[static_cast<std::size_t>(flow.majority_label())];
  if (seg.flows.size() >= config_.segment_flows) seg.sealed = true;
  return seg.flows.back().id;
}

void DataStore::ingest_log(LogEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  logs_.push_back(std::move(event));
}

StoreSnapshot DataStore::snapshot_locked() const {
  std::vector<PinnedSegment> pins;
  pins.reserve(segments_.size());
  for (const auto& seg : segments_) {
    if (seg->flows.empty()) continue;
    pins.push_back(PinnedSegment{
        seg, static_cast<std::uint32_t>(seg->flows.size()), seg->sealed});
  }
  return StoreSnapshot(std::move(pins));
}

StoreSnapshot DataStore::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_locked();
}

QueryResult DataStore::query(const FlowQuery& q) const {
  resilience::fault_point("store.query");
  const auto t0 = obs::monotonic_ns();
  auto result = execute_query(snapshot(), q, configured_pool());
  StoreMetrics::get().record_query(obs::monotonic_ns() - t0,
                                   result.stats(), result.size());
  return result;
}

QueryResult DataStore::query(const FlowQuery& q, ScanPool& pool) const {
  resilience::fault_point("store.query");
  const auto t0 = obs::monotonic_ns();
  auto result = execute_query(snapshot(), q, &pool);
  StoreMetrics::get().record_query(obs::monotonic_ns() - t0,
                                   result.stats(), result.size());
  return result;
}

AggregateResult DataStore::aggregate(const FlowQuery& q, GroupBy group_by,
                                     std::size_t top_k) const {
  resilience::fault_point("store.query");
  const auto t0 = obs::monotonic_ns();
  auto result =
      execute_aggregate(snapshot(), q, group_by, top_k, configured_pool());
  StoreMetrics::get().record_query(obs::monotonic_ns() - t0, result.stats,
                                   result.rows.size());
  return result;
}

AggregateResult DataStore::aggregate(const FlowQuery& q, GroupBy group_by,
                                     std::size_t top_k,
                                     ScanPool& pool) const {
  resilience::fault_point("store.query");
  const auto t0 = obs::monotonic_ns();
  auto result = execute_aggregate(snapshot(), q, group_by, top_k, &pool);
  StoreMetrics::get().record_query(obs::monotonic_ns() - t0, result.stats,
                                   result.rows.size());
  return result;
}

QueryCursor DataStore::open_cursor(FlowQuery q) const {
  resilience::fault_point("store.query");
  return QueryCursor(snapshot(), std::move(q));
}

LogResult DataStore::query_logs(const LogQuery& q) const {
  resilience::fault_point("store.query");
  std::vector<LogEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ev : logs_) {
      if (q.matches(ev)) {
        out.push_back(ev);
        if (out.size() >= q.limit) break;
      }
    }
  }
  return LogResult(std::move(out));
}

void DataStore::for_each(
    const std::function<void(const StoredFlow&)>& fn) const {
  const auto snap = snapshot();
  for (const auto& pin : snap.segments()) {
    const StoredFlow* flows = pin.segment->flows.data();
    for (std::uint32_t i = 0; i < pin.count; ++i) fn(flows[i]);
  }
}

std::uint64_t DataStore::enforce_retention(Timestamp now) {
  const Timestamp horizon = now - config_.retention;
  std::uint64_t evicted = 0;
  std::lock_guard<std::mutex> lock(mu_);
  while (!segments_.empty() && segments_.front()->sealed &&
         segments_.front()->max_ts < horizon) {
    for (const auto& stored : segments_.front()->flows) {
      --label_counts_[static_cast<std::size_t>(
          stored.flow.majority_label())];
      ++evicted;
    }
    total_flows_.fetch_sub(segments_.front()->flows.size(),
                           std::memory_order_release);
    segments_.pop_front();  // pinned snapshots keep the segment alive
  }
  while (!logs_.empty() && logs_.front().ts < horizon) {
    logs_.pop_front();
    // Log eviction is not counted toward flow eviction totals.
  }
  evicted_ += evicted;
  return evicted;
}

CatalogInfo DataStore::catalog() const {
  CatalogInfo info;
  StoreSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    info.total_flows = total_flows_.load(std::memory_order_relaxed);
    info.total_log_events = logs_.size();
    info.segments = segments_.size();
    info.flows_per_label = label_counts_;
    info.evicted_by_retention = evicted_;
    snap = snapshot_locked();
  }
  bool first = true;
  for (const auto& pin : snap.segments()) {
    const StoredFlow* flows = pin.segment->flows.data();
    for (std::uint32_t i = 0; i < pin.count; ++i) {
      const auto& f = flows[i].flow;
      info.total_packets += f.packets;
      info.total_bytes += f.bytes;
      if (first) {
        info.earliest = f.first_ts;
        info.latest = f.last_ts;
        first = false;
      } else {
        info.earliest = std::min(info.earliest, f.first_ts);
        info.latest = std::max(info.latest, f.last_ts);
      }
    }
  }
  return info;
}

}  // namespace campuslab::store

// campuslab::resilience — retry with exponential backoff, jitter, and a
// deadline.
//
// The store-ingest and archive-write paths talk to things that fail
// transiently (a disk that blips, an injected fault, tomorrow a remote
// store). Throwing across the pipeline for those is wrong — CampusLab
// reserves exceptions for programming errors — so retryable operations
// return Status/Result and go through retry_status(): exponential
// backoff with multiplicative growth, seeded jitter (so N shards backing
// off from one shared stall don't re-converge into a retry storm), and a
// total-backoff deadline after which the caller gets a terminal
// `retry_exhausted` / `retry_deadline` error and decides what degrades.
//
// Determinism: backoff durations come from an explicit util::Rng, and
// the deadline is accounted against *requested* backoff (not wall
// clock), so a test with a fake sleeper replays exactly.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

#include "campuslab/util/result.h"
#include "campuslab/util/rng.h"
#include "campuslab/util/time.h"

namespace campuslab::resilience {

struct RetryPolicy {
  std::size_t max_attempts = 5;  // total tries, including the first
  Duration initial_backoff = Duration::millis(1);
  Duration max_backoff = Duration::millis(100);
  double multiplier = 2.0;
  double jitter = 0.2;  // uniform in [1-jitter, 1+jitter] of the base
  /// Total backoff budget across all attempts; exceeded → give up with
  /// "retry_deadline". Zero disables the deadline.
  Duration deadline = Duration::seconds(2);
};

/// Backoff before retry number `attempt` (1-based count of failures so
/// far): initial * multiplier^(attempt-1), capped at max_backoff, then
/// jittered. Never negative.
Duration backoff_for(const RetryPolicy& policy, std::size_t attempt,
                     Rng& rng) noexcept;

/// How an operation waits out a backoff. Default (empty function) is a
/// real sleep; tests inject a recorder to stay wall-clock free.
using Sleeper = std::function<void(Duration)>;

/// Filled in by retry_status for callers that report (benches, tests).
struct RetryTelemetry {
  std::size_t attempts = 0;      // tries actually made
  Duration backoff_total{};      // total backoff requested
};

/// Run `fn` (returning Status) until it succeeds or the policy is
/// exhausted. `op` labels the retry metrics
/// (resilience.retry_attempts_total{op=...} etc.). Terminal errors keep
/// a stable code: "retry_exhausted" (attempts) or "retry_deadline"
/// (backoff budget), with the last underlying error in the message.
template <typename Fn>
Status retry_status(const RetryPolicy& policy, Rng& rng, std::string_view op,
                    Fn&& fn, const Sleeper& sleeper = {},
                    RetryTelemetry* telemetry = nullptr);

namespace detail {
/// Metric bumps live in the .cpp so the template stays header-only
/// without dragging the registry in.
void note_attempt(std::string_view op) noexcept;
void note_failure(std::string_view op) noexcept;
void note_exhausted(std::string_view op) noexcept;
}  // namespace detail

template <typename Fn>
Status retry_status(const RetryPolicy& policy, Rng& rng, std::string_view op,
                    Fn&& fn, const Sleeper& sleeper,
                    RetryTelemetry* telemetry) {
  Duration backoff_spent{};
  for (std::size_t attempt = 1;; ++attempt) {
    detail::note_attempt(op);
    if (telemetry != nullptr) telemetry->attempts = attempt;
    Status status = fn();
    if (status.ok()) return status;
    detail::note_failure(op);
    if (attempt >= policy.max_attempts) {
      detail::note_exhausted(op);
      return Error::make("retry_exhausted",
                         std::string(op) + ": gave up after " +
                             std::to_string(attempt) + " attempts (last: " +
                             status.error().message + ")");
    }
    const Duration backoff = backoff_for(policy, attempt, rng);
    if (policy.deadline.count_nanos() > 0 &&
        backoff_spent + backoff > policy.deadline) {
      detail::note_exhausted(op);
      return Error::make("retry_deadline",
                         std::string(op) + ": backoff budget exhausted (" +
                             std::to_string(attempt) + " attempts, last: " +
                             status.error().message + ")");
    }
    backoff_spent += backoff;
    if (telemetry != nullptr) telemetry->backoff_total = backoff_spent;
    if (sleeper) {
      sleeper(backoff);
    } else {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(backoff.count_nanos()));
    }
  }
}

}  // namespace campuslab::resilience

// campuslab::resilience — pipeline health state machine and graceful
// degradation tiers.
//
// When the capture pipeline falls behind (rings filling, sink latency
// climbing), something has to give, and it must be the *right* thing in
// the *right* order. The tiers:
//
//   Healthy   — everything runs: verdicts, flow metering, dataset rows,
//               archive writes.
//   Degraded  — dataset rows are shed first (training data is the most
//               replaceable product: it is subsampled anyway, and a gap
//               is a labelling nuisance, not a blind spot).
//   Shedding  — archive writes are shed too (raw pcap is the heaviest
//               per-packet cost; flows + verdicts still cover the
//               operational questions).
//
// The FastLoop verdict path is NEVER shed, at any tier — the fast loop
// is the in-band defense; shedding it converts overload into an open
// gate. DegradationController encodes that structurally: there is no
// state in which should_shed(kFastLoopVerdict) returns true.
//
// The monitor is driven by the two live pressure signals the obs layer
// already exports: ring occupancy (fraction of capacity) and the
// windowed p99 of a pipeline stage latency histogram. Escalation is
// immediate; de-escalation takes `recover_samples` consecutive calm
// samples below the entry threshold minus a hysteresis margin, so the
// pipeline cannot flap shed/unshed at the boundary.
//
// Every shed decision is counted (resilience.shed_total{what=...}) —
// degradation that is not measured is just loss with better marketing.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "campuslab/obs/metrics.h"

namespace campuslab::obs {
class Counter;
class Gauge;
}  // namespace campuslab::obs

namespace campuslab::resilience {

enum class HealthState : int { kHealthy = 0, kDegraded = 1, kShedding = 2 };

std::string_view to_string(HealthState state) noexcept;

struct HealthConfig {
  // Occupancy driver (fraction of ring capacity, the max across shards).
  double degraded_occupancy = 0.50;
  double shedding_occupancy = 0.85;
  /// Hysteresis: to leave a tier, the signal must fall below the entry
  /// threshold minus this margin.
  double recover_margin = 0.15;
  // Stage-latency driver (windowed p99, ns). Zero disables.
  std::uint64_t degraded_p99_ns = 0;
  std::uint64_t shedding_p99_ns = 0;
  /// Consecutive calm samples required to step down ONE tier.
  std::size_t recover_samples = 3;
};

/// Healthy → Degraded → Shedding, with hysteresis and debounce.
/// update() is called by one supervising thread; state() is safe to
/// read from any thread (the shed checks on the workers).
class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig config = {});

  /// Feed one sample of the pressure signals; returns the new state.
  /// `stage_p99_ns` is optional (pass 0 when only occupancy drives).
  HealthState update(double ring_occupancy,
                     std::uint64_t stage_p99_ns = 0) noexcept;

  HealthState state() const noexcept {
    return static_cast<HealthState>(
        state_.load(std::memory_order_acquire));
  }

  std::uint64_t transitions() const noexcept { return transitions_; }

 private:
  int severity(double occupancy, std::uint64_t p99,
               double margin) const noexcept;

  HealthConfig config_;
  std::atomic<int> state_{0};
  std::size_t calm_streak_ = 0;
  std::uint64_t transitions_ = 0;
  obs::Gauge* obs_state_ = nullptr;
  std::array<obs::Counter*, 3> obs_transitions_{};
};

/// The optional work classes a pressured pipeline may shed, in shed
/// order. kFastLoopVerdict exists so the protected path is visible in
/// the same accounting — it is never shed.
enum class ShedClass : int {
  kDatasetRow = 0,
  kArchiveWrite = 1,
  kFastLoopVerdict = 2,
};

std::string_view to_string(ShedClass c) noexcept;

/// Binds a HealthMonitor to shed decisions. Stages call should_shed()
/// per unit of optional work; the controller answers from the current
/// tier and counts every shed. Thread-safe: decisions are atomic reads,
/// counts are atomic increments.
class DegradationController {
 public:
  explicit DegradationController(HealthConfig config = {});

  /// Feed the monitor (one supervising thread).
  HealthState update(double ring_occupancy,
                     std::uint64_t stage_p99_ns = 0) noexcept {
    return monitor_.update(ring_occupancy, stage_p99_ns);
  }

  HealthState state() const noexcept { return monitor_.state(); }
  HealthMonitor& monitor() noexcept { return monitor_; }

  /// True when this unit of work must be shed under the current tier.
  /// Structurally always false for kFastLoopVerdict.
  bool should_shed(ShedClass c) noexcept;

  std::uint64_t shed_count(ShedClass c) const noexcept {
    return shed_[static_cast<std::size_t>(c)].load(
        std::memory_order_relaxed);
  }
  /// FastLoop verdicts that passed through the controller (all of them,
  /// by construction).
  std::uint64_t fastloop_protected() const noexcept {
    return fastloop_protected_.load(std::memory_order_relaxed);
  }

 private:
  HealthMonitor monitor_;
  std::array<std::atomic<std::uint64_t>, 3> shed_{};
  std::atomic<std::uint64_t> fastloop_protected_{0};
  std::array<obs::Counter*, 3> obs_shed_{};
  obs::Counter* obs_protected_ = nullptr;
};

/// Windowed stage-latency reader: diffs successive snapshots of
/// `pipeline_stage_ns{stage=<name>}` from the global registry, so the
/// health monitor sees the p99 of the *recent* window instead of the
/// since-boot distribution (which would never recover after one storm).
class StageLatencyProbe {
 public:
  explicit StageLatencyProbe(std::string_view stage);

  /// p99 (ns) of observations since the previous call; 0 when the
  /// window holds no new samples.
  std::uint64_t windowed_p99() noexcept;

 private:
  obs::Histogram* hist_;
  obs::HistogramSnapshot prev_;
};

}  // namespace campuslab::resilience

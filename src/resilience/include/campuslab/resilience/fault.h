// campuslab::resilience — deterministic fault injection.
//
// A production capture pipeline is only as trustworthy as its behavior
// under failure, and failures do not schedule themselves for test runs.
// FaultInjector lets a test, bench, or chaos CI job *plan* failures —
// "the 100 000th sink dispatch throws", "every store ingest fails twice
// before succeeding", "worker consumption stalls 2 ms every 10 000
// packets" — and replays the same plan bit-for-bit from a seed, so a
// chaos run that finds a bug is a regression test, not an anecdote.
//
// Injection points are named call sites threaded through the pipeline
// (capture.sink_dispatch, capture.worker, flow.update, dataset.append,
// store.ingest, archive.write, sim.emit, store.shard_rpc — every
// cluster-to-shard message — the socket-level rpc.connect / rpc.send /
// rpc.recv inside RemoteShard, and the automation loop's five stage
// sites control.train / control.extract / control.compile /
// control.swap / control.registry). Each is a single relaxed
// atomic load when no injector is installed — cheap enough to live on
// the per-packet path permanently, which is the point: the shipped
// binary and the chaos binary are the same binary.
//
// Determinism: every decision is a pure function of (plan seed, site,
// per-site hit index). Counting is atomic, so under concurrency the
// k-th hit of a site fires the same faults no matter which worker
// thread lands it.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "campuslab/util/result.h"
#include "campuslab/util/time.h"

namespace campuslab::obs {
class Counter;
}  // namespace campuslab::obs

namespace campuslab::resilience {

enum class FaultKind {
  kThrow,  // throw FaultInjected — a sink exception / worker death
  kFail,   // report an Error to the caller — a failed ingest or write
  kDelay,  // sleep `delay` — a slow consumer / stalled stage
};

std::string_view to_string(FaultKind kind) noexcept;

/// One planned fault class at one injection point. Firing pattern:
/// `every_n` (fires on every n-th hit past `skip_first`) when nonzero,
/// else Bernoulli(`probability`) derived from the plan seed and the hit
/// index. `max_fires` bounds the total.
struct FaultSpec {
  std::string site;
  FaultKind kind = FaultKind::kFail;
  std::uint64_t every_n = 0;
  double probability = 0.0;
  std::uint64_t skip_first = 0;
  std::uint64_t max_fires = ~std::uint64_t{0};
  Duration delay = Duration::micros(200);  // kDelay only
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultSpec> faults;

  /// The chaos-CI knob: CAMPUSLAB_FAULT_SEED, else `fallback`.
  static std::uint64_t seed_from_env(std::uint64_t fallback = 1);
};

/// Thrown by kThrow faults. Supervisors catch it like any escaped
/// std::exception; the site survives for diagnostics.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(std::string site)
      : std::runtime_error("injected fault at " + site),
        site_(std::move(site)) {}
  const std::string& site() const noexcept { return site_; }

 private:
  std::string site_;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Process-global arming. Injection points reduce to one relaxed load
  /// of this pointer when it is null. Installing a new injector
  /// replaces the previous one; install(nullptr) disarms.
  static void install(FaultInjector* injector) noexcept;
  static FaultInjector* current() noexcept;

  /// Count one hit of `site` and return the spec of the fault that
  /// fires on it, or nullptr. Thread-safe; does not apply the fault
  /// (the fault_point helpers do).
  const FaultSpec* evaluate(std::string_view site) noexcept;

  /// Fires recorded at `site` / across all sites so far.
  std::uint64_t fires(std::string_view site) const noexcept;
  std::uint64_t hits(std::string_view site) const noexcept;
  std::uint64_t total_fires() const noexcept {
    return total_fires_.load(std::memory_order_relaxed);
  }

 private:
  struct Site {
    FaultSpec spec;
    std::uint64_t decision_salt = 0;  // seed ^ hash(site), fixed at build
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> fires{0};
    obs::Counter* fire_counter = nullptr;
  };

  bool decide(Site& site, std::uint64_t hit_index) noexcept;

  FaultPlan plan_;
  std::vector<std::unique_ptr<Site>> sites_;
  // Heterogeneous lookup (string_view against string keys), built once
  // at construction and read-only afterwards — no lock on the hot path.
  std::map<std::string, std::vector<std::size_t>, std::less<>> by_site_;
  std::atomic<std::uint64_t> total_fires_{0};
};

/// RAII arm/disarm for tests and benches: builds the injector from the
/// plan, installs it, and disarms on scope exit.
class FaultScope {
 public:
  explicit FaultScope(FaultPlan plan) : injector_(std::move(plan)) {
    FaultInjector::install(&injector_);
  }
  ~FaultScope() { FaultInjector::install(nullptr); }

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  FaultInjector& injector() noexcept { return injector_; }

 private:
  FaultInjector injector_;
};

namespace detail {
void apply_fault(const FaultSpec& spec);  // throws or delays; kFail = no-op
extern std::atomic<FaultInjector*> g_injector;
}  // namespace detail

/// Injection point for sites with no failure channel (sink dispatch,
/// flow update, dataset append). May throw FaultInjected or delay;
/// kFail specs are ignored here. One relaxed load when disarmed.
inline void fault_point(std::string_view site) {
  FaultInjector* injector =
      detail::g_injector.load(std::memory_order_acquire);
  if (injector == nullptr) return;
  if (const FaultSpec* spec = injector->evaluate(site))
    detail::apply_fault(*spec);
}

/// Injection point for sites that report recoverable errors (store
/// ingest, archive write, sim emit): kFail returns the error, kThrow
/// throws, kDelay sleeps then succeeds.
inline Status fault_point_status(std::string_view site) {
  FaultInjector* injector =
      detail::g_injector.load(std::memory_order_acquire);
  if (injector == nullptr) return Status::success();
  if (const FaultSpec* spec = injector->evaluate(site)) {
    if (spec->kind == FaultKind::kFail)
      return Error::make("fault_injected",
                         "injected failure at " + spec->site);
    detail::apply_fault(*spec);
  }
  return Status::success();
}

}  // namespace campuslab::resilience

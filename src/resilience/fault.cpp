#include "campuslab/resilience/fault.h"

#include "campuslab/util/hash.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "campuslab/obs/registry.h"
#include "campuslab/util/rng.h"

namespace campuslab::resilience {

namespace detail {
std::atomic<FaultInjector*> g_injector{nullptr};

void apply_fault(const FaultSpec& spec) {
  switch (spec.kind) {
    case FaultKind::kThrow:
      throw FaultInjected(spec.site);
    case FaultKind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(spec.delay.count_nanos()));
      return;
    case FaultKind::kFail:
      return;  // failure channel handled by fault_point_status
  }
}
}  // namespace detail

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kThrow:
      return "throw";
    case FaultKind::kFail:
      return "fail";
    case FaultKind::kDelay:
      return "delay";
  }
  return "?";
}

std::uint64_t FaultPlan::seed_from_env(std::uint64_t fallback) {
  const char* env = std::getenv("CAMPUSLAB_FAULT_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const auto v = std::strtoull(env, &end, 10);
  return end != env ? v : fallback;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  auto& registry = obs::Registry::global();
  sites_.reserve(plan_.faults.size());
  for (const auto& spec : plan_.faults) {
    auto site = std::make_unique<Site>();
    site->spec = spec;
    // Compat basis: site salts predate the hash dedup and seeded fault
    // plans must replay bit-for-bit across it.
    site->decision_salt =
        plan_.seed ^ util::fnv1a(spec.site, util::kFnvCompatBasis);
    site->fire_counter = &registry.counter("resilience.faults_injected_total",
                                           "site=" + spec.site);
    by_site_[spec.site].push_back(sites_.size());
    sites_.push_back(std::move(site));
  }
}

FaultInjector::~FaultInjector() {
  // Never leave a dangling global: disarm if this injector is current.
  FaultInjector* self = this;
  detail::g_injector.compare_exchange_strong(self, nullptr,
                                             std::memory_order_acq_rel);
}

void FaultInjector::install(FaultInjector* injector) noexcept {
  detail::g_injector.store(injector, std::memory_order_release);
}

FaultInjector* FaultInjector::current() noexcept {
  return detail::g_injector.load(std::memory_order_acquire);
}

bool FaultInjector::decide(Site& site, std::uint64_t hit_index) noexcept {
  const auto& spec = site.spec;
  if (hit_index < spec.skip_first) return false;
  bool fire;
  if (spec.every_n > 0) {
    fire = (hit_index - spec.skip_first + 1) % spec.every_n == 0;
  } else {
    // Stateless Bernoulli: the decision for hit k is a pure function of
    // (seed, site, k), so it is reproducible under any thread schedule.
    SplitMix64 mix(site.decision_salt ^ (hit_index * 0x9E3779B97F4A7C15ull));
    const double u = static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
    fire = u < spec.probability;
  }
  if (!fire) return false;
  const auto prev = site.fires.fetch_add(1, std::memory_order_relaxed);
  if (prev >= spec.max_fires) {
    site.fires.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

const FaultSpec* FaultInjector::evaluate(std::string_view site) noexcept {
  const auto it = by_site_.find(site);
  if (it == by_site_.end()) return nullptr;
  // Every spec at the site sees every hit (so their phases never drift);
  // the first one that fires supplies the action.
  const FaultSpec* fired = nullptr;
  for (const auto idx : it->second) {
    Site& s = *sites_[idx];
    const auto hit = s.hits.fetch_add(1, std::memory_order_relaxed);
    if (decide(s, hit)) {
      s.fire_counter->increment();
      total_fires_.fetch_add(1, std::memory_order_relaxed);
      if (fired == nullptr) fired = &s.spec;
    }
  }
  return fired;
}

std::uint64_t FaultInjector::fires(std::string_view site) const noexcept {
  const auto it = by_site_.find(site);
  if (it == by_site_.end()) return 0;
  std::uint64_t total = 0;
  for (const auto idx : it->second)
    total += sites_[idx]->fires.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t FaultInjector::hits(std::string_view site) const noexcept {
  const auto it = by_site_.find(site);
  if (it == by_site_.end()) return 0;
  std::uint64_t total = 0;
  for (const auto idx : it->second)
    total += sites_[idx]->hits.load(std::memory_order_relaxed);
  return total;
}

}  // namespace campuslab::resilience

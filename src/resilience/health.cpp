#include "campuslab/resilience/health.h"

#include "campuslab/obs/registry.h"
#include "campuslab/obs/stage_timer.h"

namespace campuslab::resilience {

std::string_view to_string(HealthState state) noexcept {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kShedding:
      return "shedding";
  }
  return "?";
}

std::string_view to_string(ShedClass c) noexcept {
  switch (c) {
    case ShedClass::kDatasetRow:
      return "dataset_row";
    case ShedClass::kArchiveWrite:
      return "archive_write";
    case ShedClass::kFastLoopVerdict:
      return "fastloop_verdict";
  }
  return "?";
}

HealthMonitor::HealthMonitor(HealthConfig config) : config_(config) {
  auto& registry = obs::Registry::global();
  obs_state_ = &registry.gauge("resilience.health_state");
  obs_state_->set(0);
  obs_transitions_[0] =
      &registry.counter("resilience.health_transitions_total", "to=healthy");
  obs_transitions_[1] =
      &registry.counter("resilience.health_transitions_total", "to=degraded");
  obs_transitions_[2] =
      &registry.counter("resilience.health_transitions_total", "to=shedding");
}

int HealthMonitor::severity(double occupancy, std::uint64_t p99,
                            double margin) const noexcept {
  int sev = 0;
  if (occupancy >= config_.degraded_occupancy - margin) sev = 1;
  if (occupancy >= config_.shedding_occupancy - margin) sev = 2;
  // Latency driver: thresholds are absolute, margin applies as a
  // fraction so hysteresis behaves the same way for both signals.
  if (config_.degraded_p99_ns > 0 &&
      static_cast<double>(p99) >=
          static_cast<double>(config_.degraded_p99_ns) * (1.0 - margin))
    sev = sev < 1 ? 1 : sev;
  if (config_.shedding_p99_ns > 0 &&
      static_cast<double>(p99) >=
          static_cast<double>(config_.shedding_p99_ns) * (1.0 - margin))
    sev = 2;
  return sev;
}

HealthState HealthMonitor::update(double ring_occupancy,
                                  std::uint64_t stage_p99_ns) noexcept {
  const int current = state_.load(std::memory_order_relaxed);
  const int entry = severity(ring_occupancy, stage_p99_ns, 0.0);
  int next = current;
  if (entry > current) {
    // Escalate immediately — pressure does not wait for a debounce.
    next = entry;
    calm_streak_ = 0;
  } else {
    // De-escalate one tier only after `recover_samples` consecutive
    // samples calm even under the widened (hysteresis) thresholds.
    const int exit = severity(ring_occupancy, stage_p99_ns,
                              config_.recover_margin);
    if (exit < current) {
      if (++calm_streak_ >= config_.recover_samples) {
        next = current - 1;
        calm_streak_ = 0;
      }
    } else {
      calm_streak_ = 0;
    }
  }
  if (next != current) {
    state_.store(next, std::memory_order_release);
    ++transitions_;
    obs_state_->set(next);
    obs_transitions_[static_cast<std::size_t>(next)]->increment();
  }
  return static_cast<HealthState>(next);
}

DegradationController::DegradationController(HealthConfig config)
    : monitor_(config) {
  auto& registry = obs::Registry::global();
  obs_shed_[0] = &registry.counter("resilience.shed_total", "what=dataset_row");
  obs_shed_[1] =
      &registry.counter("resilience.shed_total", "what=archive_write");
  obs_shed_[2] =
      &registry.counter("resilience.shed_total", "what=fastloop_verdict");
  obs_protected_ = &registry.counter("resilience.fastloop_protected_total");
}

bool DegradationController::should_shed(ShedClass c) noexcept {
  // The verdict path is exempt by construction, not by configuration:
  // no tier sheds it, and the pass-through is counted so tests can
  // assert the exemption held under pressure.
  if (c == ShedClass::kFastLoopVerdict) {
    fastloop_protected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const auto state = monitor_.state();
  bool shed = false;
  switch (state) {
    case HealthState::kHealthy:
      shed = false;
      break;
    case HealthState::kDegraded:
      shed = c == ShedClass::kDatasetRow;
      break;
    case HealthState::kShedding:
      shed = true;  // dataset rows and archive writes
      break;
  }
  if (shed) {
    shed_[static_cast<std::size_t>(c)].fetch_add(1,
                                                 std::memory_order_relaxed);
    obs_shed_[static_cast<std::size_t>(c)]->increment();
  }
  return shed;
}

StageLatencyProbe::StageLatencyProbe(std::string_view stage)
    : hist_(&obs::stage_histogram(stage)), prev_(hist_->snapshot()) {}

std::uint64_t StageLatencyProbe::windowed_p99() noexcept {
  const auto now = hist_->snapshot();
  const auto window = now.since(prev_);
  prev_ = now;
  if (window.count == 0) return 0;
  return static_cast<std::uint64_t>(window.quantile(0.99));
}

}  // namespace campuslab::resilience

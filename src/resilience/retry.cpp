#include "campuslab/resilience/retry.h"

#include <algorithm>

#include "campuslab/obs/registry.h"

namespace campuslab::resilience {

Duration backoff_for(const RetryPolicy& policy, std::size_t attempt,
                     Rng& rng) noexcept {
  if (attempt == 0) attempt = 1;
  double base = static_cast<double>(policy.initial_backoff.count_nanos());
  for (std::size_t i = 1; i < attempt; ++i) {
    base *= policy.multiplier;
    if (base >= static_cast<double>(policy.max_backoff.count_nanos())) break;
  }
  base = std::min(base, static_cast<double>(policy.max_backoff.count_nanos()));
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  const double factor =
      jitter > 0.0 ? rng.uniform(1.0 - jitter, 1.0 + jitter) : 1.0;
  const double jittered = std::max(0.0, base * factor);
  return Duration::nanos(static_cast<std::int64_t>(jittered));
}

namespace detail {
namespace {
// Retries are cold-path by definition (something already failed), so a
// registry lookup per event is acceptable; no cached references needed.
void bump(const char* name, std::string_view op) noexcept {
  obs::Registry::global()
      .counter(name, "op=" + std::string(op))
      .increment();
}
}  // namespace

void note_attempt(std::string_view op) noexcept {
  bump("resilience.retry_attempts_total", op);
}
void note_failure(std::string_view op) noexcept {
  bump("resilience.retry_failures_total", op);
}
void note_exhausted(std::string_view op) noexcept {
  bump("resilience.retry_exhausted_total", op);
}
}  // namespace detail

}  // namespace campuslab::resilience

#include "campuslab/features/flow_merge.h"

#include <algorithm>
#include <string>

namespace campuslab::features {

std::vector<capture::FlowRecord> merge_flow_exports(
    std::vector<std::vector<capture::FlowRecord>> per_shard) {
  std::size_t total = 0;
  for (const auto& shard : per_shard) total += shard.size();
  std::vector<capture::FlowRecord> merged;
  merged.reserve(total);
  for (auto& shard : per_shard)
    for (auto& record : shard) merged.push_back(std::move(record));
  // stable_sort: records that compare equal keep shard-index order, so
  // the merge is a pure function of (per-shard streams, shard order).
  std::stable_sort(merged.begin(), merged.end(), capture::flow_export_before);
  return merged;
}

ShardedFlowCollector::ShardedFlowCollector(std::size_t shards,
                                           capture::FlowMeterConfig config) {
  if (shards == 0) shards = 1;
  slots_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    slots_.push_back(std::make_unique<Slot>(config));
    // Live table-size gauge; approx_active_flows() is the any-thread
    // mirror, so sampling mid-capture is race-free.
    obs_handles_.push_back(obs::Registry::global().register_callback(
        "flow.table_size", "shard=" + std::to_string(i),
        [meter = &slots_.back()->meter] {
          return static_cast<double>(meter->approx_active_flows());
        }));
  }
}

capture::FlowMeterStats ShardedFlowCollector::merged_meter_stats()
    const noexcept {
  capture::FlowMeterStats sum;
  for (const auto& slot : slots_) {
    const auto& s = slot->meter.stats();
    sum.packets_seen += s.packets_seen;
    sum.non_ip_packets += s.non_ip_packets;
    sum.flows_created += s.flows_created;
    sum.flows_evicted_idle += s.flows_evicted_idle;
    sum.flows_evicted_active += s.flows_evicted_active;
    sum.flows_evicted_capacity += s.flows_evicted_capacity;
  }
  return sum;
}

std::vector<capture::FlowRecord> ShardedFlowCollector::merged_export() {
  std::vector<std::vector<capture::FlowRecord>> per_shard;
  per_shard.reserve(slots_.size());
  for (auto& slot : slots_) {
    slot->meter.flush();
    per_shard.push_back(std::move(slot->exports));
    slot->exports.clear();
  }
  return merge_flow_exports(std::move(per_shard));
}

}  // namespace campuslab::features

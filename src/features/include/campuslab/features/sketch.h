// Compact streaming sketches used by the stateful feature extractor —
// the data structures that would live in switch registers in the
// compiled deployment (they are sized and shaped accordingly).
#pragma once

#include <array>
#include <cstdint>

#include "campuslab/util/time.h"

namespace campuslab::features {

/// Exponentially-weighted event-rate estimator over virtual time.
/// update(t, w) decays the estimate by exp(-(t-last)/tau) then adds
/// w/tau; the value approximates the recent rate in units/second.
class EwmaRate {
 public:
  explicit EwmaRate(Duration tau = Duration::seconds(1)) noexcept
      : tau_s_(tau.to_seconds()) {}

  void update(Timestamp t, double weight) noexcept;

  /// Rate estimate decayed to time `t` (no event added).
  double rate_at(Timestamp t) const noexcept;

  void reset() noexcept {
    rate_ = 0.0;
    last_ = Timestamp{};
  }

 private:
  double tau_s_;
  double rate_ = 0.0;
  Timestamp last_{};
};

/// Linear-counting distinct estimator over a fixed 256-bit bitmap —
/// what a P4 register array of 256 one-bit cells would hold.
class BitmapDistinct {
 public:
  static constexpr std::size_t kBits = 256;

  void add(std::uint64_t key) noexcept;

  /// Linear-counting estimate: -m * ln(zeros/m). Saturates near m when
  /// the bitmap fills.
  double estimate() const noexcept;

  std::size_t bits_set() const noexcept { return set_count_; }
  void reset() noexcept {
    words_.fill(0);
    set_count_ = 0;
  }

 private:
  std::array<std::uint64_t, kBits / 64> words_{};
  std::size_t set_count_ = 0;
};

}  // namespace campuslab::features

// Per-packet feature extraction with switch-register state.
//
// The fast control loop (Figure 2) cannot wait for flows to finish: the
// deployable model classifies *packets* at ingress. Its features are
// restricted to what a programmable switch can actually compute —
// header fields plus per-host register state (EWMA rates, 256-bit
// distinct sketches). The same extractor runs in two places with
// identical semantics: offline (training data generation, this C++
// code) and online (the compiled match-action pipeline, which consumes
// the quantized equivalents via dataplane metadata).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "campuslab/features/sketch.h"
#include "campuslab/packet/view.h"
#include "campuslab/sim/campus.h"

namespace campuslab::features {

/// Indexes into the packet feature vector; keep in sync with
/// packet_feature_names().
enum class PacketFeature : std::size_t {
  kIsUdp = 0,
  kIsTcp,
  kFrameBytes,
  kPayloadBytes,
  kSrcPort,
  kDstPort,
  kSrcPortIsDns,
  kTcpSynNoAck,
  kDstInboundPps,     // register: per-dst inbound packet rate
  kDstInboundBps,     // register: per-dst inbound byte rate
  kDstDistinctSrcs,   // register: distinct sources hitting this dst
  kSrcFanout,         // register: distinct dsts contacted by this src
  kCount,             // sentinel
};

inline constexpr std::size_t kPacketFeatureCount =
    static_cast<std::size_t>(PacketFeature::kCount);

const std::vector<std::string>& packet_feature_names();

/// Which features require register state (vs. pure header fields) —
/// the dataplane compiler uses this to budget stateful stages.
bool is_register_feature(PacketFeature f) noexcept;

struct PacketFeatureConfig {
  Duration rate_tau = Duration::seconds(1);
  Duration sketch_window = Duration::seconds(5);
  /// Bound on tracked hosts; beyond it, the oldest-touched entry is
  /// recycled (a real switch has fixed register arrays).
  std::size_t max_tracked_hosts = 1 << 16;
};

class StatefulFeatureExtractor {
 public:
  explicit StatefulFeatureExtractor(PacketFeatureConfig config = {});

  /// Extract the feature vector for one packet, updating register
  /// state. Must be fed packets in timestamp order. Returns an empty
  /// vector for non-IPv4 frames.
  ///
  /// The three-argument form is the parse-once path: `view` must be a
  /// decode of `pkt`'s bytes. The two-argument form re-parses.
  std::vector<double> extract(const packet::Packet& pkt,
                              const packet::PacketView& view,
                              sim::Direction dir);
  std::vector<double> extract(const packet::Packet& pkt,
                              sim::Direction dir) {
    return extract(pkt, packet::PacketView(pkt), dir);
  }

  std::size_t tracked_dsts() const noexcept { return dst_state_.size(); }
  std::size_t tracked_srcs() const noexcept { return src_state_.size(); }

  void reset();

 private:
  struct DstState {
    EwmaRate pps;
    EwmaRate bps;
    BitmapDistinct srcs;
    Timestamp last_touch;
  };
  struct SrcState {
    BitmapDistinct dsts;
    Timestamp last_touch;
  };

  void maybe_roll_window(Timestamp now);
  template <typename Map>
  void evict_if_needed(Map& map);

  PacketFeatureConfig config_;
  std::unordered_map<std::uint32_t, DstState> dst_state_;
  std::unordered_map<std::uint32_t, SrcState> src_state_;
  Timestamp window_start_{};
};

}  // namespace campuslab::features

// Shard-safe flow tables and deterministic merge of per-shard exports.
//
// The sharded capture engine (capture/sharded_engine.h) guarantees that
// both directions of a conversation land on one shard, so flow state
// needs no locks: each worker owns a private FlowMeter whose evictions
// accumulate in a private export buffer. ShardedFlowCollector bundles
// those N tables; merged_export() flushes them and produces ONE
// deterministic stream (sorted by flow_export_before) so everything
// downstream — dataset builders, EXPERIMENTS numbers — is independent
// of worker scheduling.
//
// Thread contract: meter(s) may only be driven by shard s's worker
// thread; merged_* methods require all workers quiesced (engine
// stopped or never started).
#pragma once

#include <memory>
#include <vector>

#include "campuslab/capture/flow.h"
#include "campuslab/obs/registry.h"

namespace campuslab::features {

/// Concatenate per-shard export streams and sort them into the
/// canonical deterministic order.
std::vector<capture::FlowRecord> merge_flow_exports(
    std::vector<std::vector<capture::FlowRecord>> per_shard);

class ShardedFlowCollector {
 public:
  explicit ShardedFlowCollector(std::size_t shards,
                                capture::FlowMeterConfig config = {});

  std::size_t shards() const noexcept { return slots_.size(); }

  /// Shard s's private flow table. Drive it only from shard s's
  /// consumer thread.
  capture::FlowMeter& meter(std::size_t shard) {
    return slots_[shard]->meter;
  }

  /// Flows exported (evicted) by one shard so far.
  std::size_t exported(std::size_t shard) const noexcept {
    return slots_[shard]->exports.size();
  }

  /// Sum of the per-shard meter counters (quiesced workers only).
  capture::FlowMeterStats merged_meter_stats() const noexcept;

  /// Flush every shard's table and move out the deterministic merged
  /// export stream. The collector is left empty and reusable.
  std::vector<capture::FlowRecord> merged_export();

 private:
  struct Slot {
    capture::FlowMeter meter;
    std::vector<capture::FlowRecord> exports;

    explicit Slot(const capture::FlowMeterConfig& config) : meter(config) {
      meter.set_sink(
          [this](const capture::FlowRecord& r) { exports.push_back(r); });
    }
  };

  // unique_ptr: the sink closure captures the slot's address, so slots
  // must be address-stable.
  std::vector<std::unique_ptr<Slot>> slots_;
  // Live per-shard table sizes (flow.table_size{shard=N}); declared
  // after slots_ so the handles unregister before the meters die.
  std::vector<obs::Registry::CallbackHandle> obs_handles_;
};

}  // namespace campuslab::features

// PacketDatasetCollector — builds the deployable model's training set.
//
// The fast control loop classifies inbound packets, so its model must
// be trained on per-packet features (packet_features.h) with ground-
// truth labels. The collector sits on the capture path next to the
// flow meter: every inbound packet's stateful feature vector is
// extracted, (sub)sampled, and appended with its generation-time label
// — the "labelled data of unprecedented quality" the campus data store
// makes possible.
#pragma once

#include <optional>

#include "campuslab/features/dataset_builder.h"
#include "campuslab/features/packet_features.h"
#include "campuslab/ml/dataset.h"
#include "campuslab/resilience/health.h"

namespace campuslab::features {

struct PacketDatasetOptions {
  FlowDatasetOptions labeling;  // same multi/binary framing as flows
  /// Subsampling bounds dataset size; attack traffic often dwarfs
  /// benign in packet count, so independent rates keep classes usable.
  double benign_sample_rate = 1.0;
  double attack_sample_rate = 1.0;
  std::uint64_t seed = 1;
  PacketFeatureConfig feature_config;
};

class PacketDatasetCollector {
 public:
  explicit PacketDatasetCollector(PacketDatasetOptions options = {});

  /// Feed every captured packet (timestamp order). Only inbound IPv4
  /// packets produce rows — the ingress pipeline's scope — but state
  /// updates still happen for all of them. The three-argument form is
  /// the parse-once path: `view` must be a decode of `pkt`'s bytes.
  void offer(const packet::Packet& pkt, const packet::PacketView& view,
             sim::Direction dir);
  void offer(const packet::Packet& pkt, sim::Direction dir) {
    offer(pkt, packet::PacketView(pkt), dir);
  }

  const ml::Dataset& dataset() const noexcept { return dataset_; }

  /// Hand over the collected rows and reset to an empty dataset, so
  /// collection continues cleanly (windowed harvesting).
  ml::Dataset take();

  std::uint64_t packets_seen() const noexcept { return seen_; }
  std::uint64_t rows_collected() const noexcept {
    return dataset_.n_rows();
  }

  /// Optional degradation hook: when set, offer() consults
  /// should_shed(kDatasetRow) after feature extraction (extractor state
  /// must track every packet regardless) and skips the row append while
  /// the pipeline is Degraded or worse — training rows are the first
  /// tier shed. Caller keeps ownership; pass nullptr to detach.
  void set_degradation(resilience::DegradationController* controller) {
    degradation_ = controller;
  }

 private:
  PacketDatasetOptions options_;
  StatefulFeatureExtractor extractor_;
  ml::Dataset dataset_;
  Rng rng_;
  std::uint64_t seen_ = 0;
  resilience::DegradationController* degradation_ = nullptr;
};

}  // namespace campuslab::features

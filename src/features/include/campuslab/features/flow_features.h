// Flow-level feature extraction — the "top-down feature engineering"
// layer (§3): with the data store populated, a researcher starts from
// full-fidelity flow records and engineers features, with no new
// measurement campaign per iteration.
//
// The feature vector is fixed and named; names flow into trained models
// so the XAI layer can speak in these terms ("src_port_is_dns > 0.5").
#pragma once

#include <string>
#include <vector>

#include "campuslab/capture/flow.h"

namespace campuslab::features {

/// Indexes into the flow feature vector. Keep in sync with
/// flow_feature_names().
enum class FlowFeature : std::size_t {
  kDurationSeconds = 0,
  kPackets,
  kBytes,
  kPayloadBytes,
  kMeanPacketBytes,
  kPacketsPerSecond,
  kBytesPerSecond,
  kFwdRevRatio,
  kSynRatio,
  kSynAckRatio,
  kFinRatio,
  kRstRatio,
  kPshRatio,
  kIsUdp,
  kIsTcp,
  kIsIcmp,
  kSrcPort,
  kDstPort,
  kSrcPortIsDns,
  kDstPortIsWellKnown,
  kSawDns,
  kIsInbound,
  kPayloadRatio,
  kCount,  // sentinel
};

inline constexpr std::size_t kFlowFeatureCount =
    static_cast<std::size_t>(FlowFeature::kCount);

const std::vector<std::string>& flow_feature_names();

/// Extract the feature vector from one flow record.
std::vector<double> extract_flow_features(const capture::FlowRecord& flow);

}  // namespace campuslab::features

// Dataset builders — from the data store (or raw flow records) to
// labelled ml::Dataset, closing the §3 loop: the campus network's own
// traffic becomes the training corpus.
#pragma once

#include <optional>
#include <span>

#include "campuslab/features/flow_features.h"
#include "campuslab/ml/dataset.h"
#include "campuslab/store/datastore.h"

namespace campuslab::features {

struct FlowDatasetOptions {
  /// Multi-class (benign + each attack) by default. `binary_target`
  /// collapses labels to {benign-or-other, target} — the framing of the
  /// paper's "detect event E, act at >= 90% confidence" tasks.
  std::optional<packet::TrafficLabel> binary_target;
  /// Collapse to {benign, any-attack} when true (and no binary_target).
  bool attack_vs_benign = false;
};

/// Class names for the options (e.g. {"benign","dns_amplification"}).
std::vector<std::string> dataset_class_names(const FlowDatasetOptions& opt);

/// Map a flow's ground-truth label to the dataset's class index.
int dataset_label(packet::TrafficLabel label, const FlowDatasetOptions& opt);

ml::Dataset build_flow_dataset(std::span<const capture::FlowRecord> flows,
                               const FlowDatasetOptions& opt = {});

ml::Dataset build_flow_dataset(const store::DataStore& store,
                               const FlowDatasetOptions& opt = {});

/// As above, additionally recording per-row provenance: after the call,
/// `scenario_ids[i]` is the scenario instance that generated row i's
/// flow (0 = background traffic). This is what lets benches score a
/// model per scenario — e.g. a confusion matrix restricted to the worm
/// phase — instead of only per label class.
ml::Dataset build_flow_dataset(std::span<const capture::FlowRecord> flows,
                               const FlowDatasetOptions& opt,
                               std::vector<std::uint32_t>& scenario_ids);

ml::Dataset build_flow_dataset(const store::DataStore& store,
                               const FlowDatasetOptions& opt,
                               std::vector<std::uint32_t>& scenario_ids);

}  // namespace campuslab::features

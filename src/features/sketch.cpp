#include "campuslab/features/sketch.h"

#include <cmath>

namespace campuslab::features {

void EwmaRate::update(Timestamp t, double weight) noexcept {
  const double dt = (t - last_).to_seconds();
  if (dt > 0) {
    rate_ *= std::exp(-dt / tau_s_);
    last_ = t;
  }
  rate_ += weight / tau_s_;
}

double EwmaRate::rate_at(Timestamp t) const noexcept {
  const double dt = (t - last_).to_seconds();
  return dt > 0 ? rate_ * std::exp(-dt / tau_s_) : rate_;
}

void BitmapDistinct::add(std::uint64_t key) noexcept {
  // SplitMix avalanche, then pick one of 256 bits.
  std::uint64_t z = key + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  const auto bit = static_cast<std::size_t>(z & (kBits - 1));
  const auto word = bit / 64;
  const std::uint64_t mask = 1ULL << (bit % 64);
  if (!(words_[word] & mask)) {
    words_[word] |= mask;
    ++set_count_;
  }
}

double BitmapDistinct::estimate() const noexcept {
  const auto zeros = kBits - set_count_;
  if (zeros == 0) {
    // Bitmap saturated; report the linear-counting ceiling.
    return static_cast<double>(kBits) *
           std::log(static_cast<double>(kBits));
  }
  return -static_cast<double>(kBits) *
         std::log(static_cast<double>(zeros) /
                  static_cast<double>(kBits));
}

}  // namespace campuslab::features

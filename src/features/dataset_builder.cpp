#include "campuslab/features/dataset_builder.h"

namespace campuslab::features {

using packet::TrafficLabel;

std::vector<std::string> dataset_class_names(
    const FlowDatasetOptions& opt) {
  if (opt.binary_target) {
    return {"rest", std::string(to_string(*opt.binary_target))};
  }
  if (opt.attack_vs_benign) return {"benign", "attack"};
  std::vector<std::string> names;
  names.reserve(packet::kTrafficLabelCount);
  for (std::size_t i = 0; i < packet::kTrafficLabelCount; ++i)
    names.emplace_back(to_string(static_cast<TrafficLabel>(i)));
  return names;
}

int dataset_label(TrafficLabel label, const FlowDatasetOptions& opt) {
  if (opt.binary_target) return label == *opt.binary_target ? 1 : 0;
  if (opt.attack_vs_benign) return is_attack(label) ? 1 : 0;
  return static_cast<int>(label);
}

namespace {

ml::Dataset build_from_flows(std::span<const capture::FlowRecord> flows,
                             const FlowDatasetOptions& opt,
                             std::vector<std::uint32_t>* scenario_ids) {
  ml::Dataset data(flow_feature_names(), dataset_class_names(opt));
  if (scenario_ids != nullptr) {
    scenario_ids->clear();
    scenario_ids->reserve(flows.size());
  }
  for (const auto& flow : flows) {
    const auto x = extract_flow_features(flow);
    data.add(x, dataset_label(flow.majority_label(), opt));
    if (scenario_ids != nullptr) scenario_ids->push_back(flow.scenario_id);
  }
  return data;
}

ml::Dataset build_from_store(const store::DataStore& store,
                             const FlowDatasetOptions& opt,
                             std::vector<std::uint32_t>* scenario_ids) {
  ml::Dataset data(flow_feature_names(), dataset_class_names(opt));
  if (scenario_ids != nullptr) scenario_ids->clear();
  store.for_each([&](const store::StoredFlow& stored) {
    const auto x = extract_flow_features(stored.flow);
    data.add(x, dataset_label(stored.flow.majority_label(), opt));
    if (scenario_ids != nullptr)
      scenario_ids->push_back(stored.flow.scenario_id);
  });
  return data;
}

}  // namespace

ml::Dataset build_flow_dataset(std::span<const capture::FlowRecord> flows,
                               const FlowDatasetOptions& opt) {
  return build_from_flows(flows, opt, nullptr);
}

ml::Dataset build_flow_dataset(const store::DataStore& store,
                               const FlowDatasetOptions& opt) {
  return build_from_store(store, opt, nullptr);
}

ml::Dataset build_flow_dataset(std::span<const capture::FlowRecord> flows,
                               const FlowDatasetOptions& opt,
                               std::vector<std::uint32_t>& scenario_ids) {
  return build_from_flows(flows, opt, &scenario_ids);
}

ml::Dataset build_flow_dataset(const store::DataStore& store,
                               const FlowDatasetOptions& opt,
                               std::vector<std::uint32_t>& scenario_ids) {
  return build_from_store(store, opt, &scenario_ids);
}

}  // namespace campuslab::features

#include "campuslab/features/packet_dataset.h"

#include "campuslab/obs/registry.h"
#include "campuslab/obs/stage_timer.h"
#include "campuslab/resilience/fault.h"

namespace campuslab::features {

namespace {
struct DatasetMetrics {
  obs::Counter& seen =
      obs::Registry::global().counter("dataset.packets_seen");
  obs::Counter& rows = obs::Registry::global().counter("dataset.rows");
  obs::Histogram& append_ns = obs::stage_histogram("dataset_append");

  static DatasetMetrics& get() {
    static DatasetMetrics m;
    return m;
  }
};
}  // namespace

PacketDatasetCollector::PacketDatasetCollector(PacketDatasetOptions options)
    : options_(options), extractor_(options.feature_config),
      dataset_(packet_feature_names(),
               dataset_class_names(options.labeling)),
      rng_(options.seed) {}

ml::Dataset PacketDatasetCollector::take() {
  ml::Dataset out = std::move(dataset_);
  dataset_ = ml::Dataset(packet_feature_names(),
                         dataset_class_names(options_.labeling));
  return out;
}

void PacketDatasetCollector::offer(const packet::Packet& pkt,
                                   const packet::PacketView& view,
                                   sim::Direction dir) {
  auto& metrics = DatasetMetrics::get();
  obs::StageTimer stage_timer(metrics.append_ns);
  resilience::fault_point("dataset.append");
  ++seen_;
  metrics.seen.increment();
  // Extractor state must advance for EVERY packet — shedding below this
  // point skips only the row, never the state update, or surviving rows
  // would carry wrong inter-arrival/flow features.
  const auto x = extractor_.extract(pkt, view, dir);
  if (x.empty() || dir != sim::Direction::kInbound) return;
  if (degradation_ != nullptr &&
      degradation_->should_shed(resilience::ShedClass::kDatasetRow))
    return;
  const double rate = is_attack(pkt.label) ? options_.attack_sample_rate
                                           : options_.benign_sample_rate;
  if (rate < 1.0 && !rng_.chance(rate)) return;
  dataset_.add(x, dataset_label(pkt.label, options_.labeling));
  metrics.rows.increment();
}

}  // namespace campuslab::features

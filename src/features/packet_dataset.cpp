#include "campuslab/features/packet_dataset.h"

namespace campuslab::features {

PacketDatasetCollector::PacketDatasetCollector(PacketDatasetOptions options)
    : options_(options), extractor_(options.feature_config),
      dataset_(packet_feature_names(),
               dataset_class_names(options.labeling)),
      rng_(options.seed) {}

ml::Dataset PacketDatasetCollector::take() {
  ml::Dataset out = std::move(dataset_);
  dataset_ = ml::Dataset(packet_feature_names(),
                         dataset_class_names(options_.labeling));
  return out;
}

void PacketDatasetCollector::offer(const packet::Packet& pkt,
                                   const packet::PacketView& view,
                                   sim::Direction dir) {
  ++seen_;
  const auto x = extractor_.extract(pkt, view, dir);
  if (x.empty() || dir != sim::Direction::kInbound) return;
  const double rate = is_attack(pkt.label) ? options_.attack_sample_rate
                                           : options_.benign_sample_rate;
  if (rate < 1.0 && !rng_.chance(rate)) return;
  dataset_.add(x, dataset_label(pkt.label, options_.labeling));
}

}  // namespace campuslab::features

#include "campuslab/features/flow_features.h"

namespace campuslab::features {

const std::vector<std::string>& flow_feature_names() {
  static const std::vector<std::string> kNames = {
      "duration_s",      "packets",          "bytes",
      "payload_bytes",   "mean_pkt_bytes",   "pps",
      "bps",             "fwd_rev_ratio",    "syn_ratio",
      "synack_ratio",    "fin_ratio",        "rst_ratio",
      "psh_ratio",       "is_udp",           "is_tcp",
      "is_icmp",         "src_port",         "dst_port",
      "src_port_is_dns", "dst_port_wellknown", "saw_dns",
      "is_inbound",      "payload_ratio",
  };
  static_assert(kFlowFeatureCount == 23);
  return kNames;
}

std::vector<double> extract_flow_features(const capture::FlowRecord& f) {
  std::vector<double> x(kFlowFeatureCount, 0.0);
  const double duration = f.duration().to_seconds();
  const double packets = static_cast<double>(f.packets);
  const double bytes = static_cast<double>(f.bytes);
  // Sub-millisecond flows get a floor so rates stay finite and
  // comparable (a single-packet probe is "at least 1ms of activity").
  const double safe_duration = duration > 1e-3 ? duration : 1e-3;

  auto set = [&x](FlowFeature id, double v) {
    x[static_cast<std::size_t>(id)] = v;
  };
  set(FlowFeature::kDurationSeconds, duration);
  set(FlowFeature::kPackets, packets);
  set(FlowFeature::kBytes, bytes);
  set(FlowFeature::kPayloadBytes, static_cast<double>(f.payload_bytes));
  set(FlowFeature::kMeanPacketBytes, f.mean_packet_bytes());
  set(FlowFeature::kPacketsPerSecond, packets / safe_duration);
  set(FlowFeature::kBytesPerSecond, bytes / safe_duration);
  set(FlowFeature::kFwdRevRatio,
      static_cast<double>(f.fwd_packets) /
          (static_cast<double>(f.rev_packets) + 1.0));
  if (packets > 0) {
    set(FlowFeature::kSynRatio, f.syn_count / packets);
    set(FlowFeature::kSynAckRatio, f.synack_count / packets);
    set(FlowFeature::kFinRatio, f.fin_count / packets);
    set(FlowFeature::kRstRatio, f.rst_count / packets);
    set(FlowFeature::kPshRatio, f.psh_count / packets);
  }
  set(FlowFeature::kIsUdp, f.tuple.proto == 17 ? 1.0 : 0.0);
  set(FlowFeature::kIsTcp, f.tuple.proto == 6 ? 1.0 : 0.0);
  set(FlowFeature::kIsIcmp, f.tuple.proto == 1 ? 1.0 : 0.0);
  set(FlowFeature::kSrcPort, f.tuple.src_port);
  set(FlowFeature::kDstPort, f.tuple.dst_port);
  set(FlowFeature::kSrcPortIsDns, f.tuple.src_port == 53 ? 1.0 : 0.0);
  set(FlowFeature::kDstPortIsWellKnown,
      f.tuple.dst_port < 1024 ? 1.0 : 0.0);
  set(FlowFeature::kSawDns, f.saw_dns ? 1.0 : 0.0);
  set(FlowFeature::kIsInbound,
      f.initial_direction == sim::Direction::kInbound ? 1.0 : 0.0);
  set(FlowFeature::kPayloadRatio,
      bytes > 0 ? static_cast<double>(f.payload_bytes) / bytes : 0.0);
  return x;
}

}  // namespace campuslab::features

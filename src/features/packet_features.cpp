#include "campuslab/features/packet_features.h"

namespace campuslab::features {

const std::vector<std::string>& packet_feature_names() {
  static const std::vector<std::string> kNames = {
      "is_udp",          "is_tcp",         "frame_bytes",
      "payload_bytes",   "src_port",       "dst_port",
      "src_port_is_dns", "tcp_syn_no_ack", "dst_inbound_pps",
      "dst_inbound_bps", "dst_distinct_srcs", "src_fanout",
  };
  static_assert(kPacketFeatureCount == 12);
  return kNames;
}

bool is_register_feature(PacketFeature f) noexcept {
  switch (f) {
    case PacketFeature::kDstInboundPps:
    case PacketFeature::kDstInboundBps:
    case PacketFeature::kDstDistinctSrcs:
    case PacketFeature::kSrcFanout:
      return true;
    default:
      return false;
  }
}

StatefulFeatureExtractor::StatefulFeatureExtractor(
    PacketFeatureConfig config)
    : config_(config) {}

void StatefulFeatureExtractor::reset() {
  dst_state_.clear();
  src_state_.clear();
  window_start_ = Timestamp{};
}

void StatefulFeatureExtractor::maybe_roll_window(Timestamp now) {
  if (now - window_start_ < config_.sketch_window) return;
  for (auto& [ip, state] : dst_state_) state.srcs.reset();
  for (auto& [ip, state] : src_state_) state.dsts.reset();
  window_start_ = now;
}

template <typename Map>
void StatefulFeatureExtractor::evict_if_needed(Map& map) {
  if (map.size() < config_.max_tracked_hosts) return;
  auto victim = map.begin();
  for (auto it = map.begin(); it != map.end(); ++it)
    if (it->second.last_touch < victim->second.last_touch) victim = it;
  map.erase(victim);
}

std::vector<double> StatefulFeatureExtractor::extract(
    const packet::Packet& pkt, const packet::PacketView& view,
    sim::Direction dir) {
  if (!view.valid() || !view.is_ipv4()) return {};
  const auto tuple = *view.five_tuple();
  const Timestamp now = pkt.ts;
  maybe_roll_window(now);

  std::vector<double> x(kPacketFeatureCount, 0.0);
  auto set = [&x](PacketFeature id, double v) {
    x[static_cast<std::size_t>(id)] = v;
  };
  set(PacketFeature::kIsUdp, view.is_udp() ? 1.0 : 0.0);
  set(PacketFeature::kIsTcp, view.is_tcp() ? 1.0 : 0.0);
  set(PacketFeature::kFrameBytes, static_cast<double>(pkt.size()));
  set(PacketFeature::kPayloadBytes,
      static_cast<double>(view.payload().size()));
  set(PacketFeature::kSrcPort, tuple.src_port);
  set(PacketFeature::kDstPort, tuple.dst_port);
  set(PacketFeature::kSrcPortIsDns, tuple.src_port == 53 ? 1.0 : 0.0);
  set(PacketFeature::kTcpSynNoAck,
      view.is_tcp() && view.tcp().syn() && !view.tcp().ack_flag() ? 1.0
                                                                  : 0.0);

  // Register state is maintained for the inbound direction — that is
  // the side the ingress pipeline owns registers for.
  if (dir == sim::Direction::kInbound) {
    auto dst_it = dst_state_.find(tuple.dst.value());
    if (dst_it == dst_state_.end()) {
      evict_if_needed(dst_state_);
      dst_it = dst_state_
                   .emplace(tuple.dst.value(),
                            DstState{EwmaRate(config_.rate_tau),
                                     EwmaRate(config_.rate_tau),
                                     BitmapDistinct{}, now})
                   .first;
    }
    auto& dst = dst_it->second;
    dst.pps.update(now, 1.0);
    dst.bps.update(now, static_cast<double>(pkt.size()));
    dst.srcs.add(tuple.src.value());
    dst.last_touch = now;
    set(PacketFeature::kDstInboundPps, dst.pps.rate_at(now));
    set(PacketFeature::kDstInboundBps, dst.bps.rate_at(now));
    set(PacketFeature::kDstDistinctSrcs, dst.srcs.estimate());

    auto src_it = src_state_.find(tuple.src.value());
    if (src_it == src_state_.end()) {
      evict_if_needed(src_state_);
      src_it = src_state_
                   .emplace(tuple.src.value(),
                            SrcState{BitmapDistinct{}, now})
                   .first;
    }
    auto& src = src_it->second;
    src.dsts.add(tuple.dst.value());
    src.last_touch = now;
    set(PacketFeature::kSrcFanout, src.dsts.estimate());
  }
  return x;
}

}  // namespace campuslab::features

#include "campuslab/xai/collection_spec.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace campuslab::xai {

CollectionSpec derive_collection_spec(
    const ml::DecisionTree& model,
    const std::vector<bool>& register_mask) {
  std::map<int, std::size_t> uses;
  for (const auto& node : model.nodes()) {
    if (!node.is_leaf()) ++uses[node.feature];
  }

  CollectionSpec spec;
  spec.features_total = model.feature_names().size();
  for (const auto& [feature, count] : uses) {
    CollectionItem item;
    item.feature = feature;
    const auto f = static_cast<std::size_t>(feature);
    item.name = f < model.feature_names().size()
                    ? model.feature_names()[f]
                    : "f" + std::to_string(feature);
    item.needs_register_state =
        f < register_mask.size() && register_mask[f];
    item.uses = count;
    spec.items.push_back(std::move(item));
  }
  std::sort(spec.items.begin(), spec.items.end(),
            [](const CollectionItem& a, const CollectionItem& b) {
              return a.uses > b.uses;
            });
  spec.features_needed = spec.items.size();
  for (const auto& item : spec.items) {
    spec.bits_per_packet += item.bits;
    if (item.needs_register_state) ++spec.register_arrays;
  }
  return spec;
}

std::string CollectionSpec::to_string() const {
  std::ostringstream out;
  out << "=== Minimal collection spec ===\n"
      << "collect " << features_needed << " of " << features_total
      << " features (" << bits_per_packet << " bits/packet, "
      << register_arrays << " register arrays)\n";
  for (const auto& item : items) {
    out << "  " << item.name << "  ["
        << (item.needs_register_state ? "stateful register"
                                      : "header field")
        << ", " << item.bits << "b, used by " << item.uses
        << " decision nodes]\n";
  }
  return out.str();
}

}  // namespace campuslab::xai

#include "campuslab/xai/rules.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace campuslab::xai {

RuleList RuleList::from_tree(const ml::DecisionTree& tree) {
  RuleList list;
  list.feature_names_ = tree.feature_names();
  list.class_names_ = tree.class_names();

  // DFS carrying per-feature tightest bounds: (lower > L) and (upper <= U).
  struct Frame {
    int node;
    std::map<int, double> upper;  // feature -> tightest <= bound
    std::map<int, double> lower;  // feature -> tightest >  bound
  };
  const auto& nodes = tree.nodes();
  if (nodes.empty()) return list;
  std::vector<Frame> stack{{0, {}, {}}};
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    const auto& node = nodes[static_cast<std::size_t>(frame.node)];
    if (node.is_leaf()) {
      Rule rule;
      for (const auto& [f, thr] : frame.upper)
        rule.conditions.push_back(
            RuleCondition{f, RuleCondition::Op::kLe, thr});
      for (const auto& [f, thr] : frame.lower)
        rule.conditions.push_back(
            RuleCondition{f, RuleCondition::Op::kGt, thr});
      const auto best = static_cast<std::size_t>(
          std::max_element(node.class_probs.begin(),
                           node.class_probs.end()) -
          node.class_probs.begin());
      rule.predicted_class = static_cast<int>(best);
      rule.confidence = node.class_probs[best];
      rule.support = node.samples;
      list.rules_.push_back(std::move(rule));
      continue;
    }
    // Left branch: x[f] <= thr tightens the upper bound.
    Frame left = frame;
    left.node = node.left;
    const auto up = left.upper.find(node.feature);
    if (up == left.upper.end() || node.threshold < up->second)
      left.upper[node.feature] = node.threshold;
    // Right branch: x[f] > thr tightens the lower bound.
    Frame right = std::move(frame);
    right.node = node.right;
    const auto lo = right.lower.find(node.feature);
    if (lo == right.lower.end() || node.threshold > lo->second)
      right.lower[node.feature] = node.threshold;
    stack.push_back(std::move(left));
    stack.push_back(std::move(right));
  }

  std::stable_sort(list.rules_.begin(), list.rules_.end(),
                   [](const Rule& a, const Rule& b) {
                     return a.support > b.support;
                   });
  return list;
}

int RuleList::matching_rule(std::span<const double> x) const {
  for (std::size_t i = 0; i < rules_.size(); ++i)
    if (rules_[i].matches(x)) return static_cast<int>(i);
  return -1;
}

int RuleList::predict(std::span<const double> x) const {
  const int idx = matching_rule(x);
  return idx < 0 ? 0 : rules_[static_cast<std::size_t>(idx)].predicted_class;
}

std::size_t RuleList::total_conditions() const noexcept {
  std::size_t total = 0;
  for (const auto& r : rules_) total += r.conditions.size();
  return total;
}

std::string RuleList::to_string(std::size_t max_rules) const {
  std::ostringstream out;
  const auto fname = [&](int f) {
    return static_cast<std::size_t>(f) < feature_names_.size()
               ? feature_names_[static_cast<std::size_t>(f)]
               : "f" + std::to_string(f);
  };
  const auto cname = [&](int c) {
    return static_cast<std::size_t>(c) < class_names_.size()
               ? class_names_[static_cast<std::size_t>(c)]
               : "class" + std::to_string(c);
  };
  std::size_t shown = 0;
  for (const auto& rule : rules_) {
    if (shown++ >= max_rules) {
      out << "... (" << rules_.size() - max_rules << " more rules)\n";
      break;
    }
    out << "if ";
    if (rule.conditions.empty()) out << "true";
    for (std::size_t c = 0; c < rule.conditions.size(); ++c) {
      if (c > 0) out << " and ";
      const auto& cond = rule.conditions[c];
      out << fname(cond.feature)
          << (cond.op == RuleCondition::Op::kLe ? " <= " : " > ")
          << cond.threshold;
    }
    out << " then " << cname(rule.predicted_class) << "  [confidence "
        << rule.confidence << ", support " << rule.support << "]\n";
  }
  return out.str();
}

}  // namespace campuslab::xai

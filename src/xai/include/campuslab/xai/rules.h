// RuleList — a fitted tree rendered as an ordered list of
// operator-readable rules ("if src_port_is_dns > 0.5 and
// dst_inbound_bps > 2.1e8 then dns_amplification, confidence 0.98").
//
// Rules from a tree are mutually exclusive and exhaustive, so the list
// is also an executable model: predict() finds the matching rule. The
// dataplane compiler consumes this same structure — each rule becomes
// one ternary table entry.
#pragma once

#include <string>
#include <vector>

#include "campuslab/ml/tree.h"

namespace campuslab::xai {

/// One conjunct: x[feature] <= threshold (kLe) or > threshold (kGt).
struct RuleCondition {
  enum class Op : std::uint8_t { kLe, kGt };
  int feature = 0;
  Op op = Op::kLe;
  double threshold = 0.0;

  bool matches(std::span<const double> x) const noexcept {
    const double v = x[static_cast<std::size_t>(feature)];
    return op == Op::kLe ? v <= threshold : v > threshold;
  }
};

struct Rule {
  std::vector<RuleCondition> conditions;  // conjunction
  int predicted_class = 0;
  double confidence = 0.0;  // leaf class probability
  std::size_t support = 0;  // training samples at the leaf

  bool matches(std::span<const double> x) const noexcept {
    for (const auto& c : conditions)
      if (!c.matches(x)) return false;
    return true;
  }
};

class RuleList {
 public:
  /// Convert a fitted tree. Per-path conditions on the same feature are
  /// merged to their tightest bounds; rules are ordered by support
  /// (most-traffic rules first — what an operator reads first).
  static RuleList from_tree(const ml::DecisionTree& tree);

  /// First matching rule's class. Precondition: built from a tree (the
  /// rule set is then exhaustive).
  int predict(std::span<const double> x) const;

  /// Index of the matching rule, -1 if none (never for tree rules).
  int matching_rule(std::span<const double> x) const;

  const std::vector<Rule>& rules() const noexcept { return rules_; }
  std::size_t total_conditions() const noexcept;

  const std::vector<std::string>& feature_names() const noexcept {
    return feature_names_;
  }
  const std::vector<std::string>& class_names() const noexcept {
    return class_names_;
  }

  std::string to_string(std::size_t max_rules = SIZE_MAX) const;

 private:
  std::vector<Rule> rules_;
  std::vector<std::string> feature_names_;
  std::vector<std::string> class_names_;
};

}  // namespace campuslab::xai

// Per-decision explanations and the operator-facing trust report —
// step (iv) of Figure 2: "explain to the network operator how a given
// deployable learning model works".
//
// explain_decision() renders the exact evidence path one input took
// through the deployed tree — the paper's "list of pieces of evidence
// that the model used to arrive at its decisions". TrustReport bundles
// what an operator reviews before signing off a deployment: accuracy,
// fidelity to the black box, the dominant rules, and model size.
#pragma once

#include <string>
#include <vector>

#include "campuslab/ml/metrics.h"
#include "campuslab/ml/tree.h"
#include "campuslab/xai/rules.h"

namespace campuslab::xai {

/// One hop of a decision path.
struct PathStep {
  int feature = 0;
  std::string feature_name;
  double value = 0.0;       // the input's value
  double threshold = 0.0;
  bool went_left = false;   // value <= threshold
  /// How much the probability of the final predicted class moved at
  /// this hop (evidence weight; signed).
  double contribution = 0.0;
};

struct Explanation {
  int predicted_class = 0;
  std::string predicted_class_name;
  double confidence = 0.0;
  std::vector<PathStep> steps;

  std::string to_string() const;
};

/// Trace `x` through the tree. Precondition: tree is fitted.
Explanation explain_decision(const ml::DecisionTree& tree,
                             std::span<const double> x);

/// The sign-off artifact for the road-test review meeting.
struct TrustReport {
  std::string task_name;
  // Black-box teacher on held-out data.
  double teacher_accuracy = 0.0;
  double teacher_f1 = 0.0;
  std::size_t teacher_nodes = 0;
  // Deployable student on the same held-out data.
  double student_accuracy = 0.0;
  double student_f1 = 0.0;
  std::size_t student_nodes = 0;
  int student_depth = 0;
  double fidelity = 0.0;  // student-vs-teacher agreement
  /// Confidence honesty: the largest |confidence - accuracy| across
  /// populated calibration bins. A model whose 95%-confident calls are
  /// right 95% of the time earns the operator's 90%-threshold rule.
  double max_calibration_gap = 0.0;
  std::string top_rules;  // rendered dominant rules
  std::string sample_explanation;

  std::string to_string() const;
};

TrustReport make_trust_report(const std::string& task_name,
                              const ml::Classifier& teacher,
                              std::size_t teacher_nodes,
                              const ml::DecisionTree& student,
                              const ml::Dataset& holdout);

}  // namespace campuslab::xai

// CollectionSpec — §5's industry-collaboration payoff: "a campus
// network-based study may identify precisely-defined problem-specific
// small subsets of data that are amenable for continuous collection
// even in a large production network where a more full-fledged data
// collection would be infeasible."
//
// Given a deployable model, derive exactly what a large network would
// need to collect to run it: which features, whether each is a plain
// header field or needs switch register state, and the per-packet
// telemetry cost — the handoff document from the campus study to the
// carrier deployment.
#pragma once

#include <string>
#include <vector>

#include "campuslab/ml/tree.h"

namespace campuslab::xai {

struct CollectionItem {
  int feature = 0;
  std::string name;
  bool needs_register_state = false;
  /// Bits of per-packet metadata this feature occupies on the wire /
  /// in an export record (quantized width).
  int bits = 16;
  /// How many decision nodes consult it (a proxy for importance).
  std::size_t uses = 0;
};

struct CollectionSpec {
  std::vector<CollectionItem> items;  // sorted by uses, descending
  std::size_t features_total = 0;     // in the model's feature space
  std::size_t features_needed = 0;    // actually consulted
  int bits_per_packet = 0;            // sum over needed features
  int register_arrays = 0;

  std::string to_string() const;
};

/// Derive the spec from a fitted tree. `register_mask[f]` marks
/// features requiring stateful collection (may be empty = none).
CollectionSpec derive_collection_spec(
    const ml::DecisionTree& model,
    const std::vector<bool>& register_mask = {});

}  // namespace campuslab::xai

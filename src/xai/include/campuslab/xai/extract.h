// ModelExtractor — step (ii) of the paper's Figure-2 roadmap: "replace
// the learning model with a deployable learning model (explainable or
// interpretable, lightweight and closely approximating the original)".
//
// Teacher-student distillation after Bastani et al. [8,9]: the opaque
// teacher (random forest / GBT) is queried on the training data plus
// synthetic samples drawn around it (jitter within the empirical
// feature box, booleans snapped), and a single shallow CART tree is fit
// to the *teacher's* labels. The student's agreement with the teacher
// ("fidelity") is the contract the operator gets: the deployed model is
// a faithful, inspectable proxy.
#pragma once

#include "campuslab/ml/tree.h"

namespace campuslab::xai {

struct ExtractConfig {
  int student_max_depth = 5;
  std::size_t min_samples_leaf = 10;
  /// Synthetic teacher-labelled samples generated in addition to the
  /// base rows. 0 = plain distillation on the base set.
  std::size_t synthetic_samples = 20'000;
  /// Jitter amplitude relative to each feature's observed range.
  double jitter = 0.15;
  std::uint64_t seed = 1;
};

struct ExtractionResult {
  ml::DecisionTree student;
  /// Agreement with the teacher on the augmented training set.
  double train_fidelity = 0.0;
  std::size_t samples_used = 0;
};

class ModelExtractor {
 public:
  explicit ModelExtractor(ExtractConfig config = {}) : config_(config) {}

  /// Distill `teacher` into a shallow tree. `base` provides the input
  /// distribution (its labels are ignored; the teacher is the oracle).
  ExtractionResult extract(const ml::Classifier& teacher,
                           const ml::Dataset& base) const;

 private:
  ExtractConfig config_;
};

/// Agreement rate between two classifiers over a probe set.
double fidelity(const ml::Classifier& student,
                const ml::Classifier& teacher, const ml::Dataset& probe);

}  // namespace campuslab::xai

#include "campuslab/xai/explain.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "campuslab/xai/extract.h"

namespace campuslab::xai {

Explanation explain_decision(const ml::DecisionTree& tree,
                             std::span<const double> x) {
  Explanation out;
  const auto& nodes = tree.nodes();
  const auto& names = tree.feature_names();

  // First pass: find the leaf so contributions can be measured with
  // respect to the final predicted class.
  const int leaf = tree.decision_leaf(x);
  const auto& leaf_node = nodes[static_cast<std::size_t>(leaf)];
  const auto cls = static_cast<std::size_t>(
      std::max_element(leaf_node.class_probs.begin(),
                       leaf_node.class_probs.end()) -
      leaf_node.class_probs.begin());
  out.predicted_class = static_cast<int>(cls);
  out.predicted_class_name =
      cls < tree.class_names().size() ? tree.class_names()[cls]
                                      : "class" + std::to_string(cls);
  out.confidence = leaf_node.class_probs[cls];

  // Second pass: walk the path recording each hop's evidence.
  int idx = 0;
  while (!nodes[static_cast<std::size_t>(idx)].is_leaf()) {
    const auto& node = nodes[static_cast<std::size_t>(idx)];
    const auto f = static_cast<std::size_t>(node.feature);
    PathStep step;
    step.feature = node.feature;
    step.feature_name =
        f < names.size() ? names[f] : "f" + std::to_string(node.feature);
    step.value = x[f];
    step.threshold = node.threshold;
    step.went_left = x[f] <= node.threshold;
    const int next = step.went_left ? node.left : node.right;
    step.contribution =
        nodes[static_cast<std::size_t>(next)].class_probs[cls] -
        node.class_probs[cls];
    out.steps.push_back(std::move(step));
    idx = next;
  }
  return out;
}

std::string Explanation::to_string() const {
  std::ostringstream out;
  out << "decision: " << predicted_class_name << " (confidence "
      << confidence << ")\nevidence:\n";
  for (const auto& step : steps) {
    out << "  " << step.feature_name << " = " << step.value
        << (step.went_left ? " <= " : " > ") << step.threshold
        << "  (moved P[" << predicted_class_name << "] by "
        << (step.contribution >= 0 ? "+" : "") << step.contribution
        << ")\n";
  }
  return out.str();
}

TrustReport make_trust_report(const std::string& task_name,
                              const ml::Classifier& teacher,
                              std::size_t teacher_nodes,
                              const ml::DecisionTree& student,
                              const ml::Dataset& holdout) {
  TrustReport report;
  report.task_name = task_name;

  const auto teacher_cm = ml::evaluate(teacher, holdout);
  report.teacher_accuracy = teacher_cm.accuracy();
  report.teacher_f1 = teacher_cm.macro_f1();
  report.teacher_nodes = teacher_nodes;

  const auto student_cm = ml::evaluate(student, holdout);
  report.student_accuracy = student_cm.accuracy();
  report.student_f1 = student_cm.macro_f1();
  report.student_nodes = student.node_count();
  report.student_depth = student.depth();
  report.fidelity = xai::fidelity(student, teacher, holdout);

  for (const auto& bin : ml::calibration_bins(student, holdout, 10)) {
    if (bin.count < 20) continue;  // too few samples to judge the bin
    report.max_calibration_gap =
        std::max(report.max_calibration_gap,
                 std::abs(bin.mean_confidence - bin.accuracy));
  }

  report.top_rules = RuleList::from_tree(student).to_string(5);
  if (holdout.n_rows() > 0) {
    report.sample_explanation =
        explain_decision(student, holdout.row(0)).to_string();
  }
  return report;
}

std::string TrustReport::to_string() const {
  std::ostringstream out;
  out << "=== Trust report: " << task_name << " ===\n"
      << "black-box teacher : accuracy " << teacher_accuracy
      << ", macro-F1 " << teacher_f1 << ", " << teacher_nodes
      << " nodes\n"
      << "deployable student: accuracy " << student_accuracy
      << ", macro-F1 " << student_f1 << ", " << student_nodes
      << " nodes, depth " << student_depth << "\n"
      << "fidelity to teacher on held-out data: " << fidelity << "\n"
      << "worst calibration gap (|confidence - accuracy|): "
      << max_calibration_gap << "\n"
      << "--- dominant rules ---\n"
      << top_rules << "--- sample decision walkthrough ---\n"
      << sample_explanation;
  return out.str();
}

}  // namespace campuslab::xai

#include "campuslab/xai/extract.h"

#include <algorithm>
#include <cassert>

namespace campuslab::xai {

ExtractionResult ModelExtractor::extract(const ml::Classifier& teacher,
                                         const ml::Dataset& base) const {
  assert(base.n_rows() > 0);
  Rng rng(config_.seed);

  // Teacher-labelled corpus: base rows first, then synthetic jitters.
  ml::Dataset corpus(base.feature_names(), base.class_names());
  const auto ranges = base.feature_ranges();
  std::vector<double> x(base.n_features());

  for (std::size_t i = 0; i < base.n_rows(); ++i) {
    const auto row = base.row(i);
    corpus.add(row, teacher.predict(row));
  }
  for (std::size_t s = 0; s < config_.synthetic_samples; ++s) {
    const auto anchor = base.row(rng.below(base.n_rows()));
    for (std::size_t f = 0; f < x.size(); ++f) {
      const double span = ranges[f].second - ranges[f].first;
      if (span <= 0.0) {
        x[f] = anchor[f];
        continue;
      }
      const bool boolean_like =
          ranges[f].first == 0.0 && ranges[f].second == 1.0;
      if (boolean_like) {
        // Flip occasionally rather than jitter into meaningless 0.37s.
        x[f] = rng.chance(0.1) ? 1.0 - anchor[f] : anchor[f];
        continue;
      }
      double v = anchor[f] + rng.normal(0.0, config_.jitter * span);
      v = std::clamp(v, ranges[f].first, ranges[f].second);
      x[f] = v;
    }
    corpus.add(x, teacher.predict(x));
  }

  ml::TreeConfig tc;
  tc.max_depth = config_.student_max_depth;
  tc.min_samples_leaf = config_.min_samples_leaf;
  ExtractionResult result;
  result.student = ml::DecisionTree(tc);
  result.student.fit(corpus);
  result.train_fidelity = fidelity(result.student, teacher, corpus);
  result.samples_used = corpus.n_rows();
  return result;
}

double fidelity(const ml::Classifier& student,
                const ml::Classifier& teacher, const ml::Dataset& probe) {
  if (probe.n_rows() == 0) return 0.0;
  std::size_t agree = 0;
  for (std::size_t i = 0; i < probe.n_rows(); ++i) {
    if (student.predict(probe.row(i)) == teacher.predict(probe.row(i)))
      ++agree;
  }
  return static_cast<double>(agree) /
         static_cast<double>(probe.n_rows());
}

}  // namespace campuslab::xai

#include "campuslab/util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace campuslab {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n = n_ + other.n_;
  const double delta = other.mean_ - mean_;
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ = n;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
    ++counts_[idx];
  }
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t cum = underflow_;
  if (target < cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (target < cum + counts_[i]) {
      // Interpolate within the bucket.
      const double frac =
          static_cast<double>(target - cum) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cum += counts_[i];
  }
  return hi_;
}

void EntropyCounter::add(std::uint64_t key, std::uint64_t weight) {
  counts_[key] += weight;
  total_ += weight;
}

double EntropyCounter::entropy() const noexcept {
  if (total_ == 0 || counts_.size() <= 1) return 0.0;
  double h = 0.0;
  const double total = static_cast<double>(total_);
  for (const auto& [key, count] : counts_) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / total;
    h -= p * std::log2(p);
  }
  return h;
}

double EntropyCounter::normalized_entropy() const noexcept {
  if (counts_.size() <= 1) return 0.0;
  return entropy() / std::log2(static_cast<double>(counts_.size()));
}

}  // namespace campuslab

// Simulation time types.
//
// CampusLab runs on virtual time: a Timestamp is nanoseconds since the
// simulation epoch, a Duration is a signed nanosecond interval. Strong
// types (not raw integers) keep seconds/milliseconds bugs out of the
// event queue and the flow-timeout logic.
#pragma once

#include <cstdint>
#include <compare>

namespace campuslab {

class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration nanos(std::int64_t n) noexcept {
    return Duration(n);
  }
  static constexpr Duration micros(std::int64_t n) noexcept {
    return Duration(n * 1'000);
  }
  static constexpr Duration millis(std::int64_t n) noexcept {
    return Duration(n * 1'000'000);
  }
  static constexpr Duration seconds(std::int64_t n) noexcept {
    return Duration(n * 1'000'000'000);
  }
  static constexpr Duration minutes(std::int64_t n) noexcept {
    return seconds(n * 60);
  }
  static constexpr Duration hours(std::int64_t n) noexcept {
    return seconds(n * 3600);
  }
  /// Fractional seconds (traffic model rates are naturally in seconds).
  static constexpr Duration from_seconds(double s) noexcept {
    return Duration(static_cast<std::int64_t>(s * 1e9));
  }

  constexpr std::int64_t count_nanos() const noexcept { return ns_; }
  constexpr double to_seconds() const noexcept {
    return static_cast<double>(ns_) * 1e-9;
  }
  constexpr double to_millis() const noexcept {
    return static_cast<double>(ns_) * 1e-6;
  }
  constexpr double to_micros() const noexcept {
    return static_cast<double>(ns_) * 1e-3;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration other) const noexcept {
    return Duration(ns_ + other.ns_);
  }
  constexpr Duration operator-(Duration other) const noexcept {
    return Duration(ns_ - other.ns_);
  }
  constexpr Duration operator*(std::int64_t k) const noexcept {
    return Duration(ns_ * k);
  }
  constexpr Duration operator/(std::int64_t k) const noexcept {
    return Duration(ns_ / k);
  }
  constexpr Duration& operator+=(Duration other) noexcept {
    ns_ += other.ns_;
    return *this;
  }

 private:
  explicit constexpr Duration(std::int64_t ns) noexcept : ns_(ns) {}
  std::int64_t ns_ = 0;
};

class Timestamp {
 public:
  constexpr Timestamp() = default;

  static constexpr Timestamp epoch() noexcept { return Timestamp(); }
  static constexpr Timestamp from_nanos(std::int64_t ns) noexcept {
    return Timestamp(ns);
  }
  static constexpr Timestamp from_seconds(double s) noexcept {
    return Timestamp(static_cast<std::int64_t>(s * 1e9));
  }

  constexpr std::int64_t nanos() const noexcept { return ns_; }
  constexpr double to_seconds() const noexcept {
    return static_cast<double>(ns_) * 1e-9;
  }

  constexpr auto operator<=>(const Timestamp&) const = default;

  constexpr Timestamp operator+(Duration d) const noexcept {
    return Timestamp(ns_ + d.count_nanos());
  }
  constexpr Timestamp operator-(Duration d) const noexcept {
    return Timestamp(ns_ - d.count_nanos());
  }
  constexpr Duration operator-(Timestamp other) const noexcept {
    return Duration::nanos(ns_ - other.ns_);
  }
  constexpr Timestamp& operator+=(Duration d) noexcept {
    ns_ += d.count_nanos();
    return *this;
  }

 private:
  explicit constexpr Timestamp(std::int64_t ns) noexcept : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace campuslab

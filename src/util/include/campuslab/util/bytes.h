// Bounds-checked, endian-aware byte-stream primitives.
//
// All wire-format encoding and decoding in CampusLab goes through
// ByteReader / ByteWriter: network byte order (big-endian) accessors,
// explicit bounds checks, and no pointer arithmetic at call sites.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "campuslab/util/result.h"

namespace campuslab {

/// Sequential big-endian reader over a non-owning byte span.
/// Out-of-range reads set a sticky `truncated` flag and return zero
/// instead of touching out-of-bounds memory; callers check `ok()` once
/// after a parse rather than after every field.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  std::size_t offset() const noexcept { return offset_; }
  std::size_t remaining() const noexcept {
    return truncated_ ? 0 : data_.size() - offset_;
  }
  bool ok() const noexcept { return !truncated_; }

  std::uint8_t u8() noexcept {
    if (!require(1)) return 0;
    return data_[offset_++];
  }

  std::uint16_t u16() noexcept {
    if (!require(2)) return 0;
    const std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[offset_]) << 8) |
        data_[offset_ + 1]);
    offset_ += 2;
    return v;
  }

  std::uint32_t u32() noexcept {
    if (!require(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[offset_ + i];
    offset_ += 4;
    return v;
  }

  std::uint64_t u64() noexcept {
    if (!require(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[offset_ + i];
    offset_ += 8;
    return v;
  }

  /// View of the next `n` bytes without copying; empty span on underrun.
  std::span<const std::uint8_t> bytes(std::size_t n) noexcept {
    if (!require(n)) return {};
    auto view = data_.subspan(offset_, n);
    offset_ += n;
    return view;
  }

  /// Skip `n` bytes.
  void skip(std::size_t n) noexcept {
    if (require(n)) offset_ += n;
  }

  /// Everything not yet consumed, without consuming it.
  std::span<const std::uint8_t> rest() const noexcept {
    if (truncated_) return {};
    return data_.subspan(offset_);
  }

 private:
  bool require(std::size_t n) noexcept {
    if (truncated_ || data_.size() - offset_ < n) {
      truncated_ = true;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
  bool truncated_ = false;
};

/// Append-only big-endian writer into an owned buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void u32(std::uint32_t v) {
    for (int shift = 24; shift >= 0; shift -= 8)
      buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }

  void u64(std::uint64_t v) {
    for (int shift = 56; shift >= 0; shift -= 8)
      buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }

  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void zeros(std::size_t n) { buf_.insert(buf_.end(), n, 0); }

  /// Overwrite a previously written big-endian u16 at `offset` —
  /// used for length and checksum fields patched after the body is known.
  /// Precondition: offset + 2 <= size().
  void patch_u16(std::size_t offset, std::uint16_t v) {
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  std::size_t size() const noexcept { return buf_.size(); }
  std::span<const std::uint8_t> view() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() && { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

}  // namespace campuslab

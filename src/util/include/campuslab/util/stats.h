// Streaming statistics used across the monitoring and feature pipelines:
// Welford running moments, fixed-bucket histograms with quantile
// estimation, and Shannon entropy over categorical counters (the
// workhorse of DDoS feature engineering).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace campuslab {

/// Numerically stable running mean/variance/min/max (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-width linear histogram over [lo, hi) with overflow/underflow
/// buckets; supports approximate quantiles by bucket interpolation.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  std::uint64_t count() const noexcept { return total_; }

  /// Approximate q-quantile, q in [0,1]. Returns lo/hi bounds for
  /// mass in the underflow/overflow buckets. 0 when empty.
  double quantile(double q) const noexcept;

  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  const std::vector<std::uint64_t>& buckets() const noexcept {
    return counts_;
  }

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Categorical counter with Shannon entropy — e.g. the entropy of
/// source addresses in a window collapses under an amplification attack
/// (few reflectors) and explodes under a spoofed SYN flood.
class EntropyCounter {
 public:
  void add(std::uint64_t key, std::uint64_t weight = 1);

  std::uint64_t total() const noexcept { return total_; }
  std::size_t distinct() const noexcept { return counts_.size(); }

  /// Shannon entropy in bits; 0 when empty or single-valued.
  double entropy() const noexcept;

  /// Entropy normalized by log2(distinct) into [0,1]; 1 when uniform.
  double normalized_entropy() const noexcept;

  void reset() noexcept {
    counts_.clear();
    total_ = 0;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace campuslab

// Shared variable-length integer codecs.
//
// LEB128 varints, zigzag signed mapping, and a sticky-failure varint
// decoder — the primitives both durable formats use: the CLSEG01
// columnar segment file (store/segment_file.cpp) and the CLRP01 shard
// wire protocol (store/wire.cpp). One implementation means one set of
// totality guarantees: a varint is rejected as overlong past 10 bytes
// or non-minimal in its final byte, every read is bounds-checked
// through ByteReader, and failure is sticky so callers validate once
// per message instead of once per field.
#pragma once

#include <cstdint>
#include <span>

#include "campuslab/util/bytes.h"

namespace campuslab::util {

/// Append `v` as an LEB128 varint (1..10 bytes).
inline void put_varint(ByteWriter& w, std::uint64_t v) {
  while (v >= 0x80) {
    w.u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  w.u8(static_cast<std::uint8_t>(v));
}

/// Zigzag map: deltas between unordered values wrap through unsigned
/// space and back, so every i64 pair round-trips exactly — the encoder
/// is total.
inline constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline constexpr std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Sticky-failure varint decoder: every read is bounds-checked, a
/// malformed (truncated / overlong / continuation-past-64-bit) varint
/// poisons the decoder, and callers check once per column or message
/// group rather than per field.
struct VarintDecoder {
  ByteReader r;
  bool failed = false;

  explicit VarintDecoder(std::span<const std::uint8_t> data) : r(data) {}

  std::uint64_t varint() noexcept {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = r.u8();
      if (!r.ok()) break;
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        // The 10th byte holds only bit 63; anything more is overlong.
        if (shift == 63 && (b & 0x7E) != 0) break;
        return v;
      }
      if (shift == 63) break;  // continuation past 64 bits
    }
    failed = true;
    return 0;
  }

  /// varint constrained to [0, bound]; poisons the decoder past it.
  std::uint64_t varint_at_most(std::uint64_t bound) noexcept {
    const std::uint64_t v = varint();
    if (v > bound) failed = true;
    return failed ? 0 : v;
  }
};

}  // namespace campuslab::util

// Deterministic pseudo-random number generation.
//
// Every stochastic component in CampusLab (traffic generators, attack
// injectors, bagging, distillation resampling) takes an explicit 64-bit
// seed so that simulations, tests and benchmarks are exactly
// reproducible. The generator is xoshiro256**, seeded via SplitMix64 as
// its authors recommend; both are implemented here so the library has no
// dependency on the platform's <random> engines (whose streams differ
// across standard libraries).
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>

namespace campuslab {

/// SplitMix64 — used to expand a single 64-bit seed into generator state
/// and to derive independent child seeds (`fork`).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Precondition: n > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t n) noexcept {
    // Debiased multiply: for our use (n << 2^64) the bias of the plain
    // multiply-shift is negligible, but rejection keeps it exact.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept {
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return u * factor;
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Pareto (heavy-tailed) with scale xm > 0 and shape alpha > 0 —
  /// classic model for flow-size distributions.
  double pareto(double xm, double alpha) noexcept {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Derive an independent child generator; `salt` distinguishes
  /// children forked from the same parent state.
  Rng fork(std::uint64_t salt) noexcept {
    return Rng(next() ^ (salt * 0x9E3779B97F4A7C15ULL));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace campuslab

// campuslab::util — the one FNV-1a implementation.
//
// FNV-1a (64-bit) is CampusLab's workhorse non-cryptographic hash: the
// capture spreader uses it to shard frames that carry no 5-tuple, the
// segment-file format uses it for header and payload checksums, the
// fault injector salts per-site decisions with it, and the store
// cluster's consistent-hash ring places keyspace slices with it. All of
// those used to carry private copies; they now share these functions,
// so the constants — and therefore on-disk checksums, shard spreads and
// ring placements — can never drift apart silently. The spreader and
// segment-file pin tests assert the exact historical outputs.
//
// The incremental `fnv1a_step` folds a whole 64-bit word per step
// (h = (h ^ v) * prime). That is the spreader's historical tail-mix
// semantics, not byte-at-a-time FNV over the word's bytes; use the
// span/string_view overloads when byte-exact FNV-1a is required.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace campuslab::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// The basis the capture spreader and the fault injector's site salt
/// shipped with: the standard basis with its last decimal digit
/// dropped. Kept verbatim so shard placement of tuple-less frames and
/// seeded fault-plan replays stay bit-stable across the dedup (the
/// spreader pin test asserts outputs under this basis). New call sites
/// should use kFnvOffsetBasis.
inline constexpr std::uint64_t kFnvCompatBasis = 1469598103934665603ULL;

/// Fold one byte into a running FNV-1a state.
constexpr std::uint64_t fnv1a_byte(std::uint64_t h, std::uint8_t b) noexcept {
  return (h ^ b) * kFnvPrime;
}

/// Fold one 64-bit word into a running state in a single step (the
/// capture spreader's length mix and the hash ring's key mixing).
constexpr std::uint64_t fnv1a_step(std::uint64_t h,
                                   std::uint64_t v) noexcept {
  return (h ^ v) * kFnvPrime;
}

/// Byte-exact FNV-1a over a buffer, resumable via `seed`.
constexpr std::uint64_t fnv1a(std::span<const std::uint8_t> data,
                              std::uint64_t seed = kFnvOffsetBasis) noexcept {
  std::uint64_t h = seed;
  for (const auto b : data) h = fnv1a_byte(h, b);
  return h;
}

/// Byte-exact FNV-1a over a string (site names, file tags).
constexpr std::uint64_t fnv1a(std::string_view s,
                              std::uint64_t seed = kFnvOffsetBasis) noexcept {
  std::uint64_t h = seed;
  for (const char c : s) h = fnv1a_byte(h, static_cast<std::uint8_t>(c));
  return h;
}

/// Finalizing bit-mixer (splitmix64's). FNV-1a of a short input has
/// weak high-bit avalanche — the last folded word reaches the top bits
/// through a single prime multiply — which is fine for table buckets
/// (low bits) but disastrous for anything partitioned by *magnitude*,
/// like a consistent-hash ring: vnode points computed from (seed,
/// node, v) clump into a few tight arcs. Run the final FNV state
/// through this before using it as a ring position or placement key.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace campuslab::util

// Result<T> — a lightweight expected-style return type for recoverable
// errors. CampusLab reserves exceptions for programming errors; everything
// a caller is expected to handle (truncated packet, full ring, unknown
// query field, budget overflow) travels through Result.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace campuslab {

/// Error payload carried by a failed Result. `code` is a short stable
/// machine-readable tag ("truncated", "full", "not_found", ...); `message`
/// is human-readable detail.
struct Error {
  std::string code;
  std::string message;

  static Error make(std::string code, std::string message) {
    return Error{std::move(code), std::move(message)};
  }
};

/// Minimal expected<T, Error>. Intentionally small: value_or, map-free,
/// no monadic chains — call sites stay explicit.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const noexcept { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const noexcept { return ok(); }

  /// Precondition: ok().
  T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  /// Precondition: !ok().
  const Error& error() const {
    assert(!ok());
    return std::get<Error>(storage_);
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> storage_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT

  static Status success() { return Status{}; }

  bool ok() const noexcept { return !failed_; }
  explicit operator bool() const noexcept { return ok(); }

  /// Precondition: !ok().
  const Error& error() const {
    assert(failed_);
    return error_;
  }

 private:
  Error error_{};
  bool failed_ = false;
};

}  // namespace campuslab

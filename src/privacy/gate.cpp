#include "campuslab/privacy/gate.h"

namespace campuslab::privacy {

Result<std::vector<store::StoredFlow>> PrivacyGate::query(
    const store::FlowQuery& query, Role role, const std::string& requester,
    Timestamp now) {
  const auto& rights = policy_.rights(role);
  if (!rights.allowed) {
    audit_.push_back(AuditEntry{now, role, requester, false, 0});
    return Error::make("denied", std::string(to_string(role)) +
                                     " role has no access to the store");
  }

  // Clip the query window to the role's reach-back allowance.
  store::FlowQuery clipped = query;
  const Timestamp horizon = now - rights.max_window;
  if (!clipped.from || *clipped.from < horizon) clipped.from = horizon;

  // A caller filtering on raw addresses it is not allowed to see would
  // leak membership ("does host X appear?"); reject instead.
  if (!rights.raw_addresses &&
      (clipped.src || clipped.dst || clipped.host)) {
    audit_.push_back(AuditEntry{now, role, requester, false, 0});
    return Error::make("denied",
                       "role may not filter by raw host addresses");
  }
  if (!rights.labels && clipped.label) {
    audit_.push_back(AuditEntry{now, role, requester, false, 0});
    return Error::make("denied", "role may not filter by labels");
  }

  const auto raw = store_->query(clipped);
  std::vector<store::StoredFlow> out;
  out.reserve(raw.size());
  for (const auto& stored : raw) out.push_back(sanitize(stored, rights));
  audit_.push_back(AuditEntry{now, role, requester, true, out.size()});
  return out;
}

store::StoredFlow PrivacyGate::sanitize(const store::StoredFlow& stored,
                                        const AccessRights& rights) {
  store::StoredFlow copy = stored;
  auto& f = copy.flow;
  if (!rights.raw_addresses) {
    f.tuple.src = anonymizer_.anonymize(f.tuple.src);
    f.tuple.dst = anonymizer_.anonymize(f.tuple.dst);
  }
  if (!rights.raw_ports) {
    f.tuple.src_port = anonymizer_.anonymize_port(f.tuple.src_port);
    f.tuple.dst_port = anonymizer_.anonymize_port(f.tuple.dst_port);
  }
  if (!rights.labels) {
    f.label_packets = {};  // ground truth withheld
  }
  return copy;
}

}  // namespace campuslab::privacy

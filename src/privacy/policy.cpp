#include "campuslab/privacy/policy.h"

#include <algorithm>

namespace campuslab::privacy {

namespace {

/// 16-byte keyed digest written over the payload area (kHash action).
void hash_in_place(std::span<std::uint8_t> payload, std::uint64_t key) {
  std::uint64_t h1 = key ^ 0x9E3779B97F4A7C15ULL;
  std::uint64_t h2 = key ^ 0xC2B2AE3D27D4EB4FULL;
  for (const auto b : payload) {
    h1 = (h1 ^ b) * 0x100000001B3ULL;
    h2 = (h2 + b) * 0xC6A4A7935BD1E995ULL;
  }
  const std::size_t keep = std::min<std::size_t>(payload.size(), 16);
  for (std::size_t i = 0; i < keep; ++i) {
    const std::uint64_t h = i < 8 ? h1 : h2;
    payload[i] = static_cast<std::uint8_t>(h >> ((i % 8) * 8));
  }
  std::fill(payload.begin() + static_cast<std::ptrdiff_t>(keep),
            payload.end(), 0);
}

}  // namespace

PayloadPolicy PayloadPolicy::conservative() {
  PayloadPolicy p;
  p.set_default(PayloadAction::kTruncate, 32);
  p.set_port_rule(53, PayloadAction::kKeep);       // DNS
  p.set_port_rule(80, PayloadAction::kTruncate, 64);
  p.set_port_rule(443, PayloadAction::kTruncate, 64);
  p.set_port_rule(25, PayloadAction::kStrip);      // SMTP bodies
  p.set_port_rule(22, PayloadAction::kStrip);      // SSH
  return p;
}

PayloadPolicy PayloadPolicy::keep_all() {
  PayloadPolicy p;
  p.set_default(PayloadAction::kKeep);
  return p;
}

void PayloadPolicy::set_default(PayloadAction action,
                                std::size_t truncate_to) {
  default_rule_ = Rule{action, truncate_to};
}

void PayloadPolicy::set_port_rule(std::uint16_t port, PayloadAction action,
                                  std::size_t truncate_to) {
  port_rules_[port] = Rule{action, truncate_to};
}

PayloadAction PayloadPolicy::action_for(
    std::uint16_t src_port, std::uint16_t dst_port) const noexcept {
  // The service side of a conversation is the well-known (smaller)
  // port; check both, most-specific rule wins by lower port number.
  const auto lo = std::min(src_port, dst_port);
  const auto hi = std::max(src_port, dst_port);
  if (const auto it = port_rules_.find(lo); it != port_rules_.end())
    return it->second.action;
  if (const auto it = port_rules_.find(hi); it != port_rules_.end())
    return it->second.action;
  return default_rule_.action;
}

void PayloadPolicy::apply(packet::Packet& pkt,
                          const packet::PacketView& view,
                          std::uint64_t hash_key) const {
  if (!view.valid() || view.payload().empty()) return;
  std::uint16_t sport = 0, dport = 0;
  if (const auto t = view.five_tuple()) {
    sport = t->src_port;
    dport = t->dst_port;
  }
  // Locate the payload inside the frame via offsets: offsets stay valid
  // even when a copy-on-write accessor re-seats the bytes below.
  const auto payload_view = view.payload();
  const auto offset = static_cast<std::size_t>(
      payload_view.data() - pkt.bytes().data());
  const auto len = payload_view.size();

  const auto lo = std::min(sport, dport);
  const auto hi = std::max(sport, dport);
  Rule rule = default_rule_;
  if (const auto it = port_rules_.find(lo); it != port_rules_.end())
    rule = it->second;
  else if (const auto it2 = port_rules_.find(hi); it2 != port_rules_.end())
    rule = it2->second;

  switch (rule.action) {
    case PayloadAction::kKeep:
      return;
    case PayloadAction::kTruncate:
      if (len > rule.truncate_to)
        pkt.resize(offset + rule.truncate_to);
      return;
    case PayloadAction::kHash:
      hash_in_place(pkt.mutable_bytes().subspan(offset, len), hash_key);
      return;
    case PayloadAction::kStrip:
      pkt.resize(offset);
      return;
  }
}

AccessPolicy AccessPolicy::campus_default() {
  AccessPolicy p;
  p.set_rights(Role::kOperator,
               AccessRights{true, true, true, true,
                            Duration::hours(24 * 365)});
  p.set_rights(Role::kAuditor,
               AccessRights{true, true, false, false,
                            Duration::hours(24 * 90)});
  p.set_rights(Role::kResearcher,
               AccessRights{true, false, false, true,
                            Duration::hours(24 * 30)});
  p.set_rights(Role::kExternal, AccessRights{});  // denied
  return p;
}

void AccessPolicy::set_rights(Role role, AccessRights rights) {
  by_role_[static_cast<std::size_t>(role)] = rights;
}

const AccessRights& AccessPolicy::rights(Role role) const noexcept {
  return by_role_[static_cast<std::size_t>(role)];
}

}  // namespace campuslab::privacy

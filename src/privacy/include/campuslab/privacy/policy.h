// Collection and access policies — the IT organization's controls.
//
// §5 makes the IT organization "responsible for safeguarding the
// resulting data store, protecting user privacy, deciding on what data
// can/should not be collected and/or stored (and in what form), and
// arbitrating what data can or cannot be made available to which ...
// constituents". PayloadPolicy is the collection-side control (what
// form data is stored in); AccessPolicy is the egress-side arbitration
// (who sees what).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "campuslab/packet/view.h"

namespace campuslab::privacy {

/// What happens to an application payload at collection time.
enum class PayloadAction : std::uint8_t {
  kKeep,      // store full payload
  kTruncate,  // keep the first N bytes (protocol headers survive)
  kHash,      // replace with a 16-byte keyed digest (dedup/corr. only)
  kStrip,     // drop entirely
};

/// Per-port payload handling with a default. DNS defaults to kKeep
/// (queries are operationally vital and low-sensitivity relative to,
/// say, mail bodies); mail and ssh default to kStrip.
class PayloadPolicy {
 public:
  /// A conservative default policy: keep DNS, truncate web to 64 bytes,
  /// strip mail/ssh, truncate everything else to 32 bytes.
  static PayloadPolicy conservative();
  /// Store everything (a closed, well-governed store may choose this).
  static PayloadPolicy keep_all();

  void set_default(PayloadAction action, std::size_t truncate_to = 32);
  void set_port_rule(std::uint16_t port, PayloadAction action,
                     std::size_t truncate_to = 0);

  PayloadAction action_for(std::uint16_t src_port,
                           std::uint16_t dst_port) const noexcept;

  /// Apply the policy to a frame in place: the L2-L4 headers are
  /// preserved; the application payload is transformed per the rule.
  /// Key parameterizes the kHash digest. Lengths/checksums in the
  /// stored frame are NOT recomputed — the stored artifact records what
  /// was on the wire with the payload redacted, like a snaplen capture.
  ///
  /// The view-taking form is the parse-once path: `view` must decode
  /// `pkt`'s current bytes (a buffer-sharing copy of the viewed packet
  /// qualifies — redaction then mutates copy-on-write). The two-
  /// argument form re-parses.
  void apply(packet::Packet& pkt, const packet::PacketView& view,
             std::uint64_t hash_key) const;
  void apply(packet::Packet& pkt, std::uint64_t hash_key) const {
    apply(pkt, packet::PacketView(pkt), hash_key);
  }

 private:
  struct Rule {
    PayloadAction action = PayloadAction::kTruncate;
    std::size_t truncate_to = 32;
  };
  Rule default_rule_{};
  std::map<std::uint16_t, Rule> port_rules_;
};

/// Constituents of the university, in decreasing privilege.
enum class Role : std::uint8_t {
  kOperator,    // IT organization: full fidelity
  kAuditor,     // compliance: full addresses, no payload-derived fields
  kResearcher,  // campus researchers: anonymized identifiers
  kExternal,    // outside parties: no access (the store is internal!)
};

/// What a role is allowed to see. Produced by AccessPolicy::rights.
struct AccessRights {
  bool allowed = false;
  bool raw_addresses = false;
  bool raw_ports = false;
  bool labels = false;       // ground-truth labels visible?
  Duration max_window = Duration::hours(24 * 365);
};

class AccessPolicy {
 public:
  /// The paper's stance: data never leaves the university; researchers
  /// work on anonymized views; operators keep full fidelity.
  static AccessPolicy campus_default();

  void set_rights(Role role, AccessRights rights);
  const AccessRights& rights(Role role) const noexcept;

 private:
  std::array<AccessRights, 4> by_role_{};
};

constexpr std::string_view to_string(Role role) noexcept {
  switch (role) {
    case Role::kOperator: return "operator";
    case Role::kAuditor: return "auditor";
    case Role::kResearcher: return "researcher";
    case Role::kExternal: return "external";
  }
  return "unknown";
}

}  // namespace campuslab::privacy

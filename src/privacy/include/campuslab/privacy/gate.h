// PrivacyGate — role-arbitrated, anonymizing view over the DataStore.
//
// Every access passes through the gate: the requester's role decides
// whether the query runs at all, how far back it may reach, and whether
// the returned flows carry raw or anonymized identifiers. Every request
// is recorded in an audit trail — the operational artifact that lets an
// IT organization demonstrate the "guaranteed to be only used for
// improving the network's security and performance" promise of §5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campuslab/privacy/anonymize.h"
#include "campuslab/privacy/policy.h"
#include "campuslab/store/datastore.h"

namespace campuslab::privacy {

struct AuditEntry {
  Timestamp when;
  Role role;
  std::string requester;
  bool granted = false;
  std::size_t results = 0;
};

class PrivacyGate {
 public:
  PrivacyGate(const store::DataStore& store, AccessPolicy policy,
              std::uint64_t anonymization_key)
      : store_(&store), policy_(std::move(policy)),
        anonymizer_(anonymization_key) {}

  /// Run `query` on behalf of `requester` acting as `role` at (virtual)
  /// time `now`. Returns sanitized copies, or an error when the role is
  /// denied. The time window is clipped to the role's max_window.
  Result<std::vector<store::StoredFlow>> query(
      const store::FlowQuery& query, Role role,
      const std::string& requester, Timestamp now);

  const std::vector<AuditEntry>& audit_log() const noexcept {
    return audit_;
  }

 private:
  store::StoredFlow sanitize(const store::StoredFlow& stored,
                             const AccessRights& rights);

  const store::DataStore* store_;
  AccessPolicy policy_;
  PrefixPreservingAnonymizer anonymizer_;
  std::vector<AuditEntry> audit_;
};

}  // namespace campuslab::privacy

// Prefix-preserving IP address anonymization (Crypto-PAn construction).
//
// §5 "Revisiting data privacy": the store must be usable for research
// without exposing who-talked-to-whom. Prefix preservation keeps
// subnet structure intact — two addresses sharing a k-bit prefix map to
// anonymized addresses sharing exactly a k-bit prefix — so topology-
// and locality-based features survive anonymization while identities
// do not.
//
// Construction: anonymized bit i = original bit i XOR PRF_key(bits 0..i-1),
// evaluated per prefix with a keyed pseudo-random function (here a
// SplitMix64-based keyed mix; the *structure* is Crypto-PAn's, the PRF
// is not cryptographically certified — adequate for a research store,
// stated honestly).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "campuslab/packet/addr.h"

namespace campuslab::privacy {

class PrefixPreservingAnonymizer {
 public:
  explicit PrefixPreservingAnonymizer(std::uint64_t key) noexcept
      : key_(key) {}

  /// Deterministic, prefix-preserving mapping.
  packet::Ipv4Address anonymize(packet::Ipv4Address addr) const noexcept;

  /// Port anonymization: keyed permutation over the well-known /
  /// ephemeral split (well-known ports map among themselves so
  /// service identity class survives, exact service does not).
  std::uint16_t anonymize_port(std::uint16_t port) const noexcept;

 private:
  std::uint64_t prf(std::uint32_t prefix, int bits) const noexcept;
  std::uint64_t key_;
};

/// Memoizing wrapper for hot paths (per-packet anonymization in the
/// capture pipeline). Not thread-safe; one instance per consumer.
class CachedAnonymizer {
 public:
  explicit CachedAnonymizer(std::uint64_t key) : inner_(key) {}

  packet::Ipv4Address anonymize(packet::Ipv4Address addr);
  std::uint64_t cache_size() const noexcept { return cache_.size(); }

 private:
  PrefixPreservingAnonymizer inner_;
  std::unordered_map<std::uint32_t, std::uint32_t> cache_;
};

}  // namespace campuslab::privacy

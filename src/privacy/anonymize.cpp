#include "campuslab/privacy/anonymize.h"

namespace campuslab::privacy {

std::uint64_t PrefixPreservingAnonymizer::prf(std::uint32_t prefix,
                                              int bits) const noexcept {
  // Keyed SplitMix-style avalanche over (key, prefix, length).
  std::uint64_t z = key_ ^ (static_cast<std::uint64_t>(prefix) << 8) ^
                    static_cast<std::uint64_t>(bits);
  z = (z + 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

packet::Ipv4Address PrefixPreservingAnonymizer::anonymize(
    packet::Ipv4Address addr) const noexcept {
  const std::uint32_t v = addr.value();
  std::uint32_t out = 0;
  for (int i = 0; i < 32; ++i) {
    // The i high bits already processed form the prefix context.
    const std::uint32_t prefix = i == 0 ? 0u : (v >> (32 - i));
    const std::uint32_t orig_bit = (v >> (31 - i)) & 1u;
    const std::uint32_t flip = static_cast<std::uint32_t>(
        prf(prefix, i) & 1u);
    out = (out << 1) | (orig_bit ^ flip);
  }
  return packet::Ipv4Address(out);
}

std::uint16_t PrefixPreservingAnonymizer::anonymize_port(
    std::uint16_t port) const noexcept {
  // Feistel-style two-round permutation within each class so the
  // mapping is bijective and class-preserving.
  const bool well_known = port < 1024;
  const std::uint16_t base = well_known ? 0 : 1024;
  const std::uint32_t range = well_known ? 1024u : (65536u - 1024u);
  // Keyed affine permutation x -> a*x + b (mod range), iterated. The
  // multipliers are coprime with both range sizes (2^10 and 2^10*63),
  // so each round is a bijection and the composition is too.
  static constexpr std::uint32_t kMultipliers[] = {5, 11, 13, 25};
  std::uint32_t x = port - base;
  for (int round = 0; round < 3; ++round) {
    const std::uint64_t r = prf(0xF0F0 + static_cast<std::uint32_t>(round),
                                200 + round);
    const std::uint32_t a = kMultipliers[r & 3];
    const auto b = static_cast<std::uint32_t>((r >> 2) % range);
    x = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(a) * x + b) % range);
  }
  return static_cast<std::uint16_t>(base + x);
}

packet::Ipv4Address CachedAnonymizer::anonymize(packet::Ipv4Address addr) {
  const auto it = cache_.find(addr.value());
  if (it != cache_.end()) return packet::Ipv4Address(it->second);
  const auto anon = inner_.anonymize(addr);
  cache_.emplace(addr.value(), anon.value());
  return anon;
}

}  // namespace campuslab::privacy

#include "campuslab/testbed/safety.h"

namespace campuslab::testbed {

void SafetyMonitor::install(sim::CampusNetwork& network) {
  network.set_ingress_filter(
      [this](const packet::Packet& pkt) { return inspect(pkt); });
}

bool SafetyMonitor::inspect(const packet::Packet& pkt) {
  if (rolled_back()) return false;  // disarmed: fail open

  if (pkt.ts - window_start_ >= config_.window) finish_window(pkt.ts);

  const bool drop = loop_->inspect(pkt);
  if (!packet::is_attack(pkt.label)) {
    ++window_benign_;
    if (drop) ++window_benign_dropped_;
  }
  return drop;
}

void SafetyMonitor::finish_window(Timestamp now) {
  if (window_benign_ >= config_.min_window_benign) {
    ++windows_judged_;
    const double benign_drop =
        static_cast<double>(window_benign_dropped_) /
        static_cast<double>(window_benign_);
    if (benign_drop > config_.max_benign_drop_fraction) {
      rollback_at_ = now;
    }
  }
  window_start_ = now;
  window_benign_ = 0;
  window_benign_dropped_ = 0;
}

}  // namespace campuslab::testbed

#include "campuslab/testbed/automation_loop.h"

#include <utility>

#include "campuslab/obs/registry.h"
#include "campuslab/resilience/fault.h"

namespace campuslab::control {

namespace {

struct LoopMetrics {
  obs::Gauge& stage = obs::Registry::global().gauge("control.loop_stage");
  obs::Gauge& health = obs::Registry::global().gauge("control.loop_health");
  obs::Gauge& model_version =
      obs::Registry::global().gauge("control.model_version");
  obs::Counter& cycles_started =
      obs::Registry::global().counter("control.cycles_started");
  obs::Counter& cycles_promoted =
      obs::Registry::global().counter("control.cycles_promoted");
  obs::Counter& cycles_rolled_back =
      obs::Registry::global().counter("control.cycles_rolled_back");
  obs::Counter& cycles_aborted =
      obs::Registry::global().counter("control.cycles_aborted");
  obs::Counter& canary_extensions =
      obs::Registry::global().counter("control.canary_extensions");

  static LoopMetrics& get() {
    static LoopMetrics m;
    return m;
  }
};

}  // namespace

std::string_view to_string(LoopStage stage) noexcept {
  switch (stage) {
    case LoopStage::kIdle:
      return "idle";
    case LoopStage::kTrain:
      return "train";
    case LoopStage::kExtract:
      return "extract";
    case LoopStage::kCompile:
      return "compile";
    case LoopStage::kCanary:
      return "canary";
    case LoopStage::kSwap:
      return "swap";
  }
  return "?";
}

AutomationLoop::AutomationLoop(AutomationConfig config,
                               testbed::Testbed& testbed)
    : config_(std::move(config)),
      testbed_(&testbed),
      drift_(config_.drift),
      rng_(config_.seed) {}

void AutomationLoop::enter_stage(LoopStage stage) {
  stage_ = stage;
  LoopMetrics::get().stage.set(static_cast<int>(stage));
  if (stage_hook_) stage_hook_(stage);
}

Status AutomationLoop::run_stage(LoopStage stage, std::string_view site,
                                 const std::function<Status()>& fn) {
  enter_stage(stage);
  return resilience::retry_status(
      config_.retry, rng_, site, [&]() -> Status {
        try {
          if (auto s = resilience::fault_point_status(site); !s.ok())
            return s;
          return fn();
        } catch (const resilience::FaultInjected& e) {
          // kThrow faults are transient too: the supervisor converts
          // them to a retryable error rather than dying mid-cycle.
          return Error::make("fault_injected", e.what());
        }
      });
}

Status AutomationLoop::deploy_version(std::uint32_t version,
                                      const DeploymentPackage& package) {
  auto status = run_stage(
      LoopStage::kSwap, "control.swap", [&]() -> Status {
        auto loop = FastLoop::deploy(package);
        if (!loop.ok()) return loop.error();
        // The live model feeds the drift detector: score = model's
        // probability of the event class, positive = its verdict.
        loop.value()->set_verdict_hook(
            [this](int cls, double confidence, bool /*dropped*/) {
              drift_.observe(cls == 1 ? confidence : 1.0 - confidence,
                             cls == 1);
            });
        handle_.swap(version, std::move(loop).value());
        return Status::success();
      });
  if (status.ok())
    LoopMetrics::get().model_version.set(static_cast<std::int64_t>(version));
  return status;
}

Status AutomationLoop::start() {
  if (started_)
    return Error::make("loop_started", "start() called twice");
  auto registry = ModelRegistry::open(config_.registry_directory);
  if (!registry.ok()) return registry.error();
  registry_.emplace(std::move(registry).value());

  // The handle — not any single FastLoop — owns the ingress filter, so
  // later swaps never touch the network wiring. Installed before any
  // model exists: an empty handle forwards traffic.
  handle_.install(testbed_->network());
  // One permanent tee to whichever canary is live; sinks cannot be
  // removed, so cycles must not each register their own.
  testbed_->add_observer([this](const capture::TaggedPacket& tagged) {
    if (canary_) canary_->observe(tagged.pkt, tagged.view, tagged.dir);
  });
  started_ = true;
  LoopMetrics::get().health.set(static_cast<int>(health_));

  const auto now = testbed_->network().events().now();
  if (const RegistryEntry* active = registry_->active();
      active != nullptr) {
    // Crash/restart recovery: redeploy the last promoted version from
    // disk; no retraining, no canary.
    auto deployed = deploy_version(active->version, active->package);
    if (!deployed.ok()) return deployed;
    (void)registry_->record(AuditKind::kRecovered, active->version, now,
                            "redeployed after restart");
    drift_.rebase();
    enter_stage(LoopStage::kIdle);
  } else {
    // First boot: build v1 from the gathered prefix and promote it
    // without a canary — there is no incumbent to protect yet.
    harvest_into_reservoir();
    if (auto s = bootstrap_initial(); !s.ok()) return s;
  }

  testbed_->network().events().schedule_in(config_.drift_check_interval,
                                           [this] { check_tick(); });
  return Status::success();
}

Status AutomationLoop::bootstrap_initial() {
  if (!reservoir_.has_value() ||
      reservoir_->n_rows() < config_.min_window_rows)
    return Error::make("window_too_small",
                       "initial window too small for training");
  const auto counts = reservoir_->class_counts();
  if (counts[0] == 0 || counts[1] == 0)
    return Error::make("window_single_class",
                       "initial window lacks one class");

  auto built = build_package(*reservoir_);
  if (!built.ok()) return built.error();

  RegistryEntry entry;
  entry.version = registry_->next_version();
  entry.trained_at = testbed_->network().events().now();
  entry.candidate_accuracy = built.value().balanced_accuracy_on(*reservoir_);
  entry.package = std::move(built).value();

  if (auto s = with_registry_retry([&] {
        return registry_->publish(entry, "initial");
      });
      !s.ok())
    return s;
  if (auto s = deploy_version(entry.version, entry.package); !s.ok())
    return s;
  if (auto s = with_registry_retry([&] {
        return registry_->promote(entry.version,
                                  testbed_->network().events().now(),
                                  "initial");
      });
      !s.ok())
    return s;
  drift_.rebase();
  enter_stage(LoopStage::kIdle);
  return Status::success();
}

Status AutomationLoop::with_registry_retry(
    const std::function<Status()>& fn) {
  return resilience::retry_status(
      config_.retry, rng_, "control.registry", [&]() -> Status {
        try {
          return fn();
        } catch (const resilience::FaultInjected& e) {
          return Error::make("fault_injected", e.what());
        }
      });
}

void AutomationLoop::harvest_into_reservoir() {
  absorb_window(testbed_->harvest_dataset());
}

void AutomationLoop::check_tick() {
  testbed_->network().events().schedule_in(config_.drift_check_interval,
                                           [this] { check_tick(); });
  harvest_into_reservoir();
  if (pending_.has_value()) return;  // canary in flight
  if (!drift_.triggered()) return;
  // A failed cycle start (thin window, retries exhausted) leaves the
  // detector armed; the next tick tries again.
  (void)run_cycle();
}

Result<DeploymentPackage> AutomationLoop::build_package(
    const ml::Dataset& data) {
  DevelopmentLoop dev(config_.development);

  std::optional<TrainArtifacts> trained;
  auto status =
      run_stage(LoopStage::kTrain, "control.train", [&]() -> Status {
        auto result = dev.train(data);
        if (!result.ok()) return result.error();
        trained.emplace(std::move(result).value());
        return Status::success();
      });
  if (!status.ok()) return status.error();

  std::optional<ExtractArtifacts> extracted;
  status =
      run_stage(LoopStage::kExtract, "control.extract", [&]() -> Status {
        auto result = dev.extract(*trained);
        if (!result.ok()) return result.error();
        extracted.emplace(std::move(result).value());
        return Status::success();
      });
  if (!status.ok()) return status.error();

  std::optional<DeploymentPackage> package;
  status =
      run_stage(LoopStage::kCompile, "control.compile", [&]() -> Status {
        auto result = dev.compile(*trained, *extracted);
        if (!result.ok()) return result.error();
        package.emplace(std::move(result).value());
        return Status::success();
      });
  if (!status.ok()) return status.error();
  return std::move(*package);
}

Status AutomationLoop::trigger_cycle() {
  if (!started_)
    return Error::make("loop_not_started", "call start() first");
  return run_cycle();
}

Status AutomationLoop::run_cycle() {
  if (pending_.has_value())
    return Error::make("cycle_in_progress",
                       "a canary is already running");
  if (!reservoir_.has_value() ||
      reservoir_->n_rows() < config_.min_window_rows)
    return Error::make("window_too_small",
                       "reservoir too thin to retrain");
  const auto counts = reservoir_->class_counts();
  if (counts[0] == 0 || counts[1] == 0)
    return Error::make("window_single_class",
                       "reservoir lacks one class");

  auto& metrics = LoopMetrics::get();
  metrics.cycles_started.increment();
  const std::uint64_t cycle = next_cycle_++;
  const auto now = testbed_->network().events().now();
  (void)registry_->record(
      AuditKind::kDriftTrigger, handle_.version(), now,
      "score=" + std::to_string(drift_.last_score_distance()) +
          " rate_delta=" + std::to_string(drift_.last_rate_delta()));

  auto abort_cycle = [&](std::uint32_t version, const Error& error) {
    cycles_.push_back(CycleRecord{cycle, version, CycleOutcome::kAborted,
                                  error.code, 0.0, 0.0});
    metrics.cycles_aborted.increment();
    health_ = LoopHealth::kDegraded;
    metrics.health.set(static_cast<int>(health_));
    (void)registry_->record(AuditKind::kAborted, version,
                            testbed_->network().events().now(),
                            error.code + ": " + error.message);
    // Pace the next attempt like any completed cycle: persistent drift
    // re-arms the detector after fresh windows.
    drift_.rebase();
    enter_stage(LoopStage::kIdle);
  };

  auto built = build_package(*reservoir_);
  if (!built.ok()) {
    abort_cycle(0, built.error());
    return built.error();
  }

  const double candidate_acc =
      built.value().balanced_accuracy_on(*reservoir_);
  double incumbent_acc = 0.0;
  if (auto snapshot = handle_.acquire(); snapshot != nullptr)
    if (const RegistryEntry* incumbent = registry_->find(snapshot->version);
        incumbent != nullptr)
      incumbent_acc = incumbent->package.balanced_accuracy_on(*reservoir_);

  RegistryEntry entry;
  entry.version = registry_->next_version();
  entry.trained_at = testbed_->network().events().now();
  entry.candidate_accuracy = candidate_acc;
  entry.incumbent_accuracy = incumbent_acc;
  entry.package = built.value();
  if (auto s = with_registry_retry([&] {
        return registry_->publish(entry,
                                  "cycle " + std::to_string(cycle));
      });
      !s.ok()) {
    abort_cycle(0, s.error());
    return s;
  }

  enter_stage(LoopStage::kCanary);
  auto canary = testbed::CanaryDeployment::create(entry.package);
  if (!canary.ok()) {
    abort_cycle(entry.version, canary.error());
    return canary.error();
  }
  canary_ = std::move(canary).value();
  pending_.emplace(PendingCycle{cycle, entry.version,
                                std::move(built).value(), candidate_acc,
                                incumbent_acc, 0});
  testbed_->network().events().schedule_in(config_.canary_duration,
                                           [this] { finish_canary(); });
  return Status::success();
}

void AutomationLoop::finish_canary() {
  if (!pending_.has_value()) return;
  auto& metrics = LoopMetrics::get();

  auto verdict = canary_->evaluate(config_.gate);
  if (!verdict.ok() &&
      verdict.error().code == "canary_underobserved" &&
      pending_->extensions < config_.max_canary_extensions) {
    ++pending_->extensions;
    metrics.canary_extensions.increment();
    testbed_->network().events().schedule_in(config_.canary_duration,
                                             [this] { finish_canary(); });
    return;
  }

  // The fresh window scores candidate vs incumbent on traffic neither
  // trained on; it then joins the reservoir either way.
  auto fresh = testbed_->harvest_dataset();
  if (!verdict.ok()) {
    // Underobserved past the extension budget aborts (no evidence);
    // any quality code is a regression and rolls the candidate back.
    finish_cycle(verdict.error().code == "canary_underobserved"
                     ? CycleOutcome::kAborted
                     : CycleOutcome::kRolledBack,
                 verdict.error().code);
    absorb_window(std::move(fresh));
    return;
  }

  const double utilization = pending_->package.resources.utilization(
      config_.development.budget);
  if (utilization > config_.max_budget_utilization) {
    finish_cycle(CycleOutcome::kRolledBack, "budget_utilization");
    absorb_window(std::move(fresh));
    return;
  }

  const auto fresh_counts =
      fresh.n_rows() > 0 ? fresh.class_counts()
                         : std::vector<std::size_t>{0, 0};
  if (fresh.n_rows() >= config_.min_window_rows && fresh_counts[0] > 0 &&
      fresh_counts[1] > 0) {
    const double cand = pending_->package.balanced_accuracy_on(fresh);
    double inc = 0.0;
    if (auto snapshot = handle_.acquire(); snapshot != nullptr)
      if (const RegistryEntry* e = registry_->find(snapshot->version);
          e != nullptr)
        inc = e->package.balanced_accuracy_on(fresh);
    pending_->candidate_accuracy = cand;
    pending_->incumbent_accuracy = inc;
    if (cand < inc + config_.promote_margin) {
      finish_cycle(CycleOutcome::kRolledBack, "promote_margin");
      absorb_window(std::move(fresh));
      return;
    }
  }

  // Swap first, promote second: the registry must never claim a
  // promotion the dataplane did not take.
  auto incumbent = handle_.acquire();
  if (auto s = deploy_version(pending_->version, pending_->package);
      !s.ok()) {
    finish_cycle(CycleOutcome::kAborted, s.error().code);
    absorb_window(std::move(fresh));
    return;
  }
  if (auto s = with_registry_retry([&] {
        return registry_->promote(pending_->version,
                                  testbed_->network().events().now(),
                                  "cycle " +
                                      std::to_string(pending_->cycle));
      });
      !s.ok()) {
    // The promotion never reached disk: restore the incumbent so the
    // served model and the durable record agree.
    handle_.exchange(std::move(incumbent));
    LoopMetrics::get().model_version.set(
        static_cast<std::int64_t>(handle_.version()));
    finish_cycle(CycleOutcome::kAborted, s.error().code);
    absorb_window(std::move(fresh));
    return;
  }
  finish_cycle(CycleOutcome::kPromoted, {});
  absorb_window(std::move(fresh));
}

void AutomationLoop::absorb_window(ml::Dataset window) {
  if (window.n_rows() == 0) return;
  if (!reservoir_.has_value()) {
    reservoir_.emplace(std::move(window));
  } else {
    reservoir_->append(window);
  }
  if (reservoir_->n_rows() > config_.reservoir_rows)
    *reservoir_ = reservoir_->sample(config_.reservoir_rows, rng_);
}

void AutomationLoop::finish_cycle(CycleOutcome outcome,
                                  std::string error_code) {
  auto& metrics = LoopMetrics::get();
  const auto now = testbed_->network().events().now();
  cycles_.push_back(CycleRecord{pending_->cycle, pending_->version,
                                outcome, error_code,
                                pending_->candidate_accuracy,
                                pending_->incumbent_accuracy});
  switch (outcome) {
    case CycleOutcome::kPromoted:
      metrics.cycles_promoted.increment();
      health_ = LoopHealth::kHealthy;
      break;
    case CycleOutcome::kRolledBack:
      // A rollback is the guardrail working, not a degradation.
      metrics.cycles_rolled_back.increment();
      health_ = LoopHealth::kHealthy;
      (void)registry_->record(AuditKind::kRolledBack, pending_->version,
                              now, error_code);
      break;
    case CycleOutcome::kAborted:
      metrics.cycles_aborted.increment();
      health_ = LoopHealth::kDegraded;
      (void)registry_->record(AuditKind::kAborted, pending_->version, now,
                              error_code);
      break;
  }
  metrics.health.set(static_cast<int>(health_));
  canary_.reset();
  pending_.reset();
  drift_.rebase();
  enter_stage(LoopStage::kIdle);
}

}  // namespace campuslab::control

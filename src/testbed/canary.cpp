#include "campuslab/testbed/canary.h"

#include "campuslab/obs/registry.h"

namespace campuslab::testbed {

namespace {
struct CanaryMetrics {
  obs::Counter& observed =
      obs::Registry::global().counter("canary.observed");
  obs::Counter& would_drop =
      obs::Registry::global().counter("canary.would_drop");
  obs::Counter& passed = obs::Registry::global().counter("canary.passed");

  static CanaryMetrics& get() {
    static CanaryMetrics m;
    return m;
  }
};
}  // namespace

Result<std::unique_ptr<CanaryDeployment>> CanaryDeployment::create(
    const control::DeploymentPackage& package) {
  auto sw = package.instantiate();
  if (!sw.ok()) return sw.error();
  return std::unique_ptr<CanaryDeployment>(
      new CanaryDeployment(package.task, std::move(sw).value()));
}

void CanaryDeployment::attach(Testbed& testbed) {
  testbed.add_observer([this](const capture::TaggedPacket& tagged) {
    observe(tagged.pkt, tagged.view, tagged.dir);
  });
}

void CanaryDeployment::observe(const packet::Packet& pkt,
                               const packet::PacketView& view,
                               sim::Direction dir) {
  if (dir != sim::Direction::kInbound) return;
  auto& metrics = CanaryMetrics::get();
  ++stats_.observed;
  metrics.observed.increment();
  const auto verdict = switch_->process(pkt, view, dir);
  const bool would_drop = verdict.cls == 1 &&
                          verdict.confidence >= task_.confidence_threshold;
  const bool attack = packet::is_attack(pkt.label);
  if (would_drop) {
    metrics.would_drop.increment();
    (attack ? stats_.would_drop_attack : stats_.would_drop_benign)++;
  } else {
    metrics.passed.increment();
    (attack ? stats_.passed_attack : stats_.passed_benign)++;
  }
}

Status CanaryDeployment::evaluate(const Gate& gate) const {
  if (stats_.observed < gate.min_observed)
    return Error::make("canary_underobserved",
                       "canary observed " + std::to_string(stats_.observed) +
                           " packets, need " +
                           std::to_string(gate.min_observed));
  if (stats_.would_drop_precision() < gate.min_precision)
    return Error::make(
        "canary_precision",
        "would-drop precision " +
            std::to_string(stats_.would_drop_precision()) + " below floor " +
            std::to_string(gate.min_precision));
  if (stats_.would_block_rate() < gate.min_block_rate)
    return Error::make("canary_block_rate",
                       "attack block rate " +
                           std::to_string(stats_.would_block_rate()) +
                           " below floor " +
                           std::to_string(gate.min_block_rate));
  if (stats_.would_benign_loss() > gate.max_benign_loss)
    return Error::make("canary_benign_loss",
                       "benign would-drop rate " +
                           std::to_string(stats_.would_benign_loss()) +
                           " above ceiling " +
                           std::to_string(gate.max_benign_loss));
  return Status::success();
}

bool CanaryDeployment::ready_to_promote(
    double min_precision, double min_block_rate,
    std::uint64_t min_observed) const noexcept {
  Gate gate;
  gate.min_precision = min_precision;
  gate.min_block_rate = min_block_rate;
  gate.min_observed = min_observed;
  gate.max_benign_loss = 1.0;  // legacy gate had no benign-loss ceiling
  return evaluate(gate).ok();
}

}  // namespace campuslab::testbed

#include "campuslab/testbed/canary.h"

#include "campuslab/obs/registry.h"

namespace campuslab::testbed {

namespace {
struct CanaryMetrics {
  obs::Counter& observed =
      obs::Registry::global().counter("canary.observed");
  obs::Counter& would_drop =
      obs::Registry::global().counter("canary.would_drop");
  obs::Counter& passed = obs::Registry::global().counter("canary.passed");

  static CanaryMetrics& get() {
    static CanaryMetrics m;
    return m;
  }
};
}  // namespace

Result<std::unique_ptr<CanaryDeployment>> CanaryDeployment::create(
    const control::DeploymentPackage& package) {
  auto sw = package.instantiate();
  if (!sw.ok()) return sw.error();
  return std::unique_ptr<CanaryDeployment>(
      new CanaryDeployment(package.task, std::move(sw).value()));
}

void CanaryDeployment::attach(Testbed& testbed) {
  testbed.add_observer([this](const capture::TaggedPacket& tagged) {
    observe(tagged.pkt, tagged.view, tagged.dir);
  });
}

void CanaryDeployment::observe(const packet::Packet& pkt,
                               const packet::PacketView& view,
                               sim::Direction dir) {
  if (dir != sim::Direction::kInbound) return;
  auto& metrics = CanaryMetrics::get();
  ++stats_.observed;
  metrics.observed.increment();
  const auto verdict = switch_->process(pkt, view, dir);
  const bool would_drop = verdict.cls == 1 &&
                          verdict.confidence >= task_.confidence_threshold;
  const bool attack = packet::is_attack(pkt.label);
  if (would_drop) {
    metrics.would_drop.increment();
    (attack ? stats_.would_drop_attack : stats_.would_drop_benign)++;
  } else {
    metrics.passed.increment();
    (attack ? stats_.passed_attack : stats_.passed_benign)++;
  }
}

bool CanaryDeployment::ready_to_promote(
    double min_precision, double min_block_rate,
    std::uint64_t min_observed) const noexcept {
  return stats_.observed >= min_observed &&
         stats_.would_drop_precision() >= min_precision &&
         stats_.would_block_rate() >= min_block_rate;
}

}  // namespace campuslab::testbed

#include "campuslab/testbed/continual.h"

namespace campuslab::testbed {

Status ContinualLoop::start() {
  const auto initial = testbed_->harvest_dataset();
  control::DevelopmentLoop dev(config_.development);
  auto package = dev.run(initial);
  if (!package.ok()) return package.error();
  const double acc = package.value().balanced_accuracy_on(initial);
  if (auto s = install(std::move(package).value(), "initial", acc, 0.0);
      !s.ok())
    return s;

  testbed_->network().events().schedule_in(config_.retrain_interval,
                                           [this] { retrain_tick(); });
  return Status::success();
}

Status ContinualLoop::install(control::DeploymentPackage package,
                              const char* note, double candidate_acc,
                              double incumbent_acc) {
  auto loop = control::FastLoop::deploy(package);
  if (!loop.ok()) return loop.error();
  incumbent_ = std::move(package);
  loop_ = std::move(loop).value();
  loop_->install(testbed_->network());
  history_.push_back(ModelVersion{next_version_++,
                                  testbed_->network().events().now(),
                                  candidate_acc, incumbent_acc, true,
                                  note, {}});
  return Status::success();
}

void ContinualLoop::retrain_tick() {
  // Always schedule the next tick first: one bad window must not end
  // the loop.
  testbed_->network().events().schedule_in(config_.retrain_interval,
                                           [this] { retrain_tick(); });
  // The history entry carries the window's outcome; a failed window
  // must not end the loop either.
  (void)retrain_once();
}

Status ContinualLoop::retrain_once() {
  const auto window = testbed_->harvest_dataset();
  const auto now = testbed_->network().events().now();
  auto skip = [&](std::string code, std::string why) -> Status {
    history_.push_back(ModelVersion{next_version_++, now, 0.0, 0.0, false,
                                    "skipped: " + why, code});
    return Error::make(std::move(code), std::move(why));
  };
  if (window.n_rows() < config_.min_window_rows)
    return skip("window_too_small",
                "window too small (" + std::to_string(window.n_rows()) +
                    " rows)");
  const auto counts = window.class_counts();
  if (counts[0] == 0 || counts[1] == 0)
    return skip("window_single_class", "single-class window");

  control::DevelopmentLoop dev(config_.development);
  auto candidate = dev.run(window);
  if (!candidate.ok())
    return skip(candidate.error().code, candidate.error().message);
  const double candidate_acc =
      candidate.value().balanced_accuracy_on(window);
  const double incumbent_acc = incumbent_->balanced_accuracy_on(window);
  if (candidate_acc >= incumbent_acc + config_.promote_margin) {
    if (auto installed =
            install(std::move(candidate).value(), "promoted",
                    candidate_acc, incumbent_acc);
        !installed.ok()) {
      // Deployment failed: keep serving the incumbent, record why.
      history_.push_back(ModelVersion{next_version_++, now, candidate_acc,
                                      incumbent_acc, false,
                                      "deploy failed: " +
                                          installed.error().message,
                                      installed.error().code});
      return installed;
    }
  } else {
    history_.push_back(ModelVersion{next_version_++, now, candidate_acc,
                                    incumbent_acc, false,
                                    "kept incumbent", {}});
  }
  return Status::success();
}

int ContinualLoop::promotions() const noexcept {
  int count = 0;
  for (const auto& v : history_)
    if (v.promoted) ++count;
  return count;
}

}  // namespace campuslab::testbed

#include "campuslab/testbed/testbed.h"

namespace campuslab::testbed {

Testbed::Testbed(TestbedConfig config)
    : config_(config), engine_(config.capture), meter_(config.flow_meter),
      store_(config.store), collector_(config.collector) {
  simulator_ = std::make_unique<sim::CampusSimulator>(config_.scenario);

  meter_.set_sink([this](const capture::FlowRecord& flow) {
    store_.ingest(flow);
  });
  engine_.add_sink([this](const capture::TaggedPacket& tagged) {
    // Parse-once: both consumers read the decode cached at the tap.
    meter_.offer(tagged);
    collector_.offer(tagged.pkt, tagged.view, tagged.dir);
  });
  if (config_.enable_sensors) {
    sensors_.emplace(config_.sensors, store_,
                     simulator_->network().topology());
    engine_.add_sink([this](const capture::TaggedPacket& tagged) {
      sensors_->observe(tagged);
    });
  }
  if (!config_.archive_directory.empty()) {
    store::PacketArchiveConfig acfg;
    acfg.directory = config_.archive_directory;
    acfg.segment_span = config_.archive_segment_span;
    auto archive = store::PacketArchive::open(acfg);
    if (archive.ok()) {
      archive_.emplace(std::move(archive).value());
      engine_.add_sink([this](const capture::TaggedPacket& tagged) {
        // Collection-side privacy: the payload policy decides what form
        // the raw bytes are stored in. The copy is a refcount bump;
        // redaction mutates it copy-on-write, so the shared buffer the
        // other sinks (and their cached view) read stays untouched.
        packet::Packet redacted = tagged.pkt;
        config_.archive_policy.apply(redacted, tagged.view,
                                     config_.archive_hash_key);
        (void)archive_->write(redacted);
      });
    }
  }
  simulator_->network().set_tap(
      [this](const packet::Packet& pkt, sim::Direction dir) {
        engine_.offer(pkt, dir);
        engine_.poll(64);  // inline consumption: same-thread capture
      });
}

void Testbed::run(Duration d) {
  simulator_->run_for(d);
  engine_.drain();
}

ml::Dataset Testbed::harvest_dataset() {
  engine_.drain();
  meter_.flush();
  return collector_.take();
}

}  // namespace campuslab::testbed

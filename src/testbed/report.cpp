#include "campuslab/testbed/report.h"

#include <sstream>

namespace campuslab::testbed {

RoadTestReport make_road_test_report(
    const control::DeploymentPackage& package,
    const CanaryDeployment& canary, const control::FastLoop& loop,
    const SafetyMonitor& safety, const sim::CampusNetwork& network) {
  RoadTestReport report;
  report.task_name = package.task.name;
  report.student_holdout_accuracy = package.student_holdout_accuracy;
  report.holdout_fidelity = package.holdout_fidelity;
  report.resources = package.resources.to_string();
  report.canary = canary.stats();
  report.enforcement = loop.stats();
  report.mean_inspect_latency_ns = loop.latency_ns().mean();
  report.rolled_back = safety.rolled_back();
  report.benign_lost_to_congestion =
      network.accounting().lost_access.benign_frames();
  return report;
}

std::string RoadTestReport::to_string() const {
  std::ostringstream out;
  out << "=== Road-test report: " << task_name << " ===\n"
      << "deployable model : holdout accuracy "
      << student_holdout_accuracy << ", fidelity " << holdout_fidelity
      << "\nswitch resources : " << resources << "\n"
      << "canary (mirror)  : precision " << canary.would_drop_precision()
      << ", block rate " << canary.would_block_rate()
      << ", benign loss " << canary.would_benign_loss() << " over "
      << canary.observed << " packets\n"
      << "enforcement      : dropped " << enforcement.dropped << " ("
      << enforcement.attack_dropped << " attack / "
      << enforcement.benign_dropped << " benign), precision "
      << enforcement.drop_precision() << ", attack block rate "
      << enforcement.attack_block_rate() << ", benign loss "
      << enforcement.benign_loss_rate() << "\n"
      << "fast-loop latency: " << mean_inspect_latency_ns
      << " ns/packet (mean)\n"
      << "safety monitor   : "
      << (rolled_back ? "ROLLED BACK" : "held") << "\n"
      << "benign frames still lost to access-link congestion: "
      << benign_lost_to_congestion << "\n";
  return out.str();
}

}  // namespace campuslab::testbed

// AutomationLoop — the closed loop over both of Figure 2's loops.
//
// The paper's endgame is a pipeline where "the network runs itself":
// the fast loop enforces, a drift detector watches the live verdict
// stream, and when the traffic distribution moves the slow loop
// retrains, re-extracts, re-compiles, canaries, and hot-swaps — with no
// operator in the loop but every step auditable after the fact. This
// class is that supervisor, run as a stage machine:
//
//        ┌────────────────────────────────────────────────────┐
//        v                 (drift trigger)                     │
//      Idle ──> Train ──> Extract ──> Compile ──> Canary ──> Swap
//        ^        │           │           │          │          │
//        │        └───────────┴─────┬─────┴──────────┘          │
//        │       retry (transient) / abort (exhausted):         │
//        └──────── keep serving the incumbent ──────────────────┘
//                  rollback (canary regressed): discard candidate
//
// Robustness contract:
//   * Ingest never stops: the live model hangs off an RCU-style
//     ModelHandle (control/fast_loop.h); the packet path takes a
//     lock-free snapshot per packet (one acquire load) and a swap is
//     one release store of the new version's pointer.
//   * Every stage crosses its own seeded fault site (control.train /
//     control.extract / control.compile / control.swap /
//     control.registry) and is wrapped in retry_status(); when retries
//     exhaust, the cycle ABORTS and the incumbent keeps serving — the
//     loop never leaves the dataplane without a model it already had.
//   * Every promotion is durable before it is claimed: ModelRegistry
//     persists via write-then-rename and audits promotions only after
//     the rename, so a SIGKILL at any stage recovers — on restart,
//     start() redeploys the last *promoted* version from disk and the
//     audit log shows no phantom promotions.
//
// Physically this file lives in the testbed module (the loop drives a
// Testbed and a CanaryDeployment, which link above campuslab_control),
// but the type belongs to the control plane and keeps its namespace.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "campuslab/control/development_loop.h"
#include "campuslab/control/drift.h"
#include "campuslab/control/fast_loop.h"
#include "campuslab/control/model_registry.h"
#include "campuslab/resilience/retry.h"
#include "campuslab/testbed/canary.h"
#include "campuslab/testbed/testbed.h"

namespace campuslab::control {

struct AutomationConfig {
  DevelopmentConfig development;
  DriftConfig drift;
  /// Registry directory; empty = ephemeral (no durability, benches).
  std::string registry_directory;
  /// Cadence of the drift check (also the harvest cadence feeding the
  /// training reservoir).
  Duration drift_check_interval = Duration::seconds(5);
  /// Mirror-only canary window before a candidate may be promoted.
  Duration canary_duration = Duration::seconds(10);
  /// An underobserved canary extends its window at most this often
  /// before the cycle aborts (quiet network ≠ promotable model).
  std::size_t max_canary_extensions = 2;
  testbed::CanaryDeployment::Gate gate;
  /// Candidate resources must stay within this fraction of the switch
  /// budget (utilization(), worst dimension) or the canary rolls back.
  double max_budget_utilization = 1.0;
  /// Candidate must beat the incumbent on the fresh window by at least
  /// this much (balanced accuracy) to be promoted.
  double promote_margin = 0.0;
  /// Reservoir windows with fewer labelled rows than this do not start
  /// a cycle even when drift is armed.
  std::size_t min_window_rows = 500;
  /// Retraining reservoir cap: harvested windows accumulate and are
  /// down-sampled to this many rows (incremental retrain sees history
  /// plus the drifted present, not just one window).
  std::size_t reservoir_rows = 8192;
  resilience::RetryPolicy retry;
  std::uint64_t seed = 1;
};

enum class LoopStage : int {
  kIdle = 0,
  kTrain = 1,
  kExtract = 2,
  kCompile = 3,
  kCanary = 4,
  kSwap = 5,
};
std::string_view to_string(LoopStage stage) noexcept;

enum class LoopHealth : int { kHealthy = 0, kDegraded = 1 };

enum class CycleOutcome { kPromoted, kRolledBack, kAborted };

/// One completed retrain cycle, for reports and assertions.
struct CycleRecord {
  std::uint64_t cycle = 0;
  std::uint32_t candidate_version = 0;  // 0 = aborted before publish
  CycleOutcome outcome = CycleOutcome::kAborted;
  /// Stable code for a rollback/abort (canary_precision,
  /// retry_exhausted, budget_utilization, ...); empty on promotion.
  std::string error_code;
  double candidate_accuracy = 0.0;
  double incumbent_accuracy = 0.0;
};

class AutomationLoop {
 public:
  /// The testbed's collector must be binary for the task in
  /// `config.development.task`. The loop must outlive the testbed run.
  AutomationLoop(AutomationConfig config, testbed::Testbed& testbed);

  /// Install the model handle as the ingress filter and begin.
  /// Recovery first: when the registry holds a promoted version, it is
  /// redeployed (audited kRecovered) and training is skipped. Otherwise
  /// an initial model is built from whatever the collector holds now
  /// (promoted without a canary — there is no incumbent to protect).
  /// Either way, the periodic drift check is scheduled before return.
  Status start();

  /// Run one retrain cycle immediately (tests, benches, the crash
  /// helper). Builds + publishes the candidate and starts its canary;
  /// the canary itself completes on the event clock.
  Status trigger_cycle();

  // -- queries ------------------------------------------------------

  LoopHealth health() const noexcept { return health_; }
  LoopStage stage() const noexcept { return stage_; }
  bool cycle_in_progress() const noexcept { return pending_.has_value(); }
  ModelHandle& handle() noexcept { return handle_; }
  const ModelHandle& handle() const noexcept { return handle_; }
  ModelRegistry& registry() noexcept { return *registry_; }
  const ModelRegistry& registry() const noexcept { return *registry_; }
  DriftDetector& drift() noexcept { return drift_; }
  const DriftDetector& drift() const noexcept { return drift_; }
  const std::vector<CycleRecord>& cycles() const noexcept {
    return cycles_;
  }
  const testbed::CanaryDeployment* canary() const noexcept {
    return canary_.get();
  }

  /// Called at entry to every stage (before the stage's work and
  /// before its fault site). The crash-recovery chaos test installs a
  /// hook that SIGKILLs the process at a seed-chosen stage.
  using StageHook = std::function<void(LoopStage)>;
  void set_stage_hook(StageHook hook) { stage_hook_ = std::move(hook); }

 private:
  void enter_stage(LoopStage stage);
  void check_tick();
  void harvest_into_reservoir();
  void absorb_window(ml::Dataset window);
  Status bootstrap_initial();
  Status run_cycle();
  void finish_canary();
  void finish_cycle(CycleOutcome outcome, std::string error_code);
  /// retry_status around `fn` with the stage's fault site crossed per
  /// attempt; FaultInjected (kThrow) converts to a retryable error.
  Status run_stage(LoopStage stage, std::string_view site,
                   const std::function<Status()>& fn);
  Status with_registry_retry(const std::function<Status()>& fn);
  /// The three build stages (train / extract / compile) under their
  /// fault sites and retry policies.
  Result<DeploymentPackage> build_package(const ml::Dataset& data);
  Status deploy_version(std::uint32_t version,
                        const DeploymentPackage& package);

  struct PendingCycle {
    std::uint64_t cycle = 0;
    std::uint32_t version = 0;
    DeploymentPackage package;
    double candidate_accuracy = 0.0;
    double incumbent_accuracy = 0.0;
    std::size_t extensions = 0;
  };

  AutomationConfig config_;
  testbed::Testbed* testbed_;
  ModelHandle handle_;
  std::optional<ModelRegistry> registry_;
  DriftDetector drift_;
  std::unique_ptr<testbed::CanaryDeployment> canary_;
  std::optional<ml::Dataset> reservoir_;
  std::optional<PendingCycle> pending_;
  std::vector<CycleRecord> cycles_;
  std::uint64_t next_cycle_ = 1;
  LoopStage stage_ = LoopStage::kIdle;
  LoopHealth health_ = LoopHealth::kHealthy;
  StageHook stage_hook_;
  Rng rng_;
  bool started_ = false;
};

}  // namespace campuslab::control

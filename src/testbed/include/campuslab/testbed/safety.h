// SafetyMonitor — the enforcement-time guardrail (§4 "correctness,
// robustness, and safety").
//
// Wraps a deployed FastLoop with a benign-collateral budget: if, over
// a sliding window, the filter drops more than the budgeted fraction
// of benign traffic, the monitor disarms the filter (auto-rollback)
// and records when and why. Ground-truth labels are available because
// road-test attacks are injected by the researcher — exactly the
// controlled setting the paper's testbed role provides.
#pragma once

#include <memory>
#include <optional>

#include "campuslab/control/fast_loop.h"

namespace campuslab::testbed {

struct SafetyConfig {
  /// Maximum tolerated fraction of benign packets dropped per window.
  double max_benign_drop_fraction = 0.02;
  Duration window = Duration::seconds(2);
  /// Windows with fewer benign packets than this are not judged.
  std::uint64_t min_window_benign = 100;
};

class SafetyMonitor {
 public:
  SafetyMonitor(control::FastLoop& loop, SafetyConfig config)
      : loop_(&loop), config_(config) {}

  /// Install the monitored filter on the network. Replaces any
  /// existing ingress filter. The monitor and loop must outlive the
  /// network's use of the filter.
  void install(sim::CampusNetwork& network);

  /// The filter decision with monitoring applied. Returns false (pass
  /// everything) after rollback.
  bool inspect(const packet::Packet& pkt);

  bool rolled_back() const noexcept { return rollback_at_.has_value(); }
  std::optional<Timestamp> rollback_time() const noexcept {
    return rollback_at_;
  }
  std::uint64_t windows_judged() const noexcept { return windows_judged_; }

 private:
  void finish_window(Timestamp now);

  control::FastLoop* loop_;
  SafetyConfig config_;
  Timestamp window_start_{};
  std::uint64_t window_benign_ = 0;
  std::uint64_t window_benign_dropped_ = 0;
  std::uint64_t windows_judged_ = 0;
  std::optional<Timestamp> rollback_at_;
};

}  // namespace campuslab::testbed

// Testbed — the campus network operated "as a lab" (§4).
//
// Wires the full dual-role pipeline into one harness: the simulated
// campus (traffic + attacks) feeds the capture engine at the border
// tap; the flow meter populates the data store; the packet dataset
// collector accumulates deployable-model training data. Road-testing a
// model is then: run() to gather data, DevelopmentLoop to build the
// package, CanaryDeployment to score it passively, FastLoop +
// SafetyMonitor to enforce it — all against the same live network.
#pragma once

#include <memory>

#include <optional>

#include "campuslab/capture/engine.h"
#include "campuslab/capture/flow.h"
#include "campuslab/features/packet_dataset.h"
#include "campuslab/privacy/policy.h"
#include "campuslab/sim/simulator.h"
#include "campuslab/store/datastore.h"
#include "campuslab/store/packet_archive.h"
#include "campuslab/testbed/sensors.h"

namespace campuslab::testbed {

struct TestbedConfig {
  sim::ScenarioConfig scenario;
  features::PacketDatasetOptions collector;
  capture::FlowMeterConfig flow_meter;
  store::DataStoreConfig store;
  capture::CaptureConfig capture;
  /// When set, raw packets are archived as rotating pcap segments in
  /// this (existing) directory, after the payload policy is applied at
  /// collection time — §5's "what form data is stored in" control.
  std::string archive_directory;
  privacy::PayloadPolicy archive_policy =
      privacy::PayloadPolicy::conservative();
  Duration archive_segment_span = Duration::minutes(10);
  std::uint64_t archive_hash_key = 0xA5C1;
  /// Complementary-sensor emulation (firewall / sshd / ids / dhcp log
  /// events into the store). On by default: §5 wants the store to hold
  /// more than packets.
  bool enable_sensors = true;
  SensorConfig sensors;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);

  /// Advance the campus by `d`, running the capture pipeline inline.
  void run(Duration d);

  sim::CampusSimulator& simulator() noexcept { return *simulator_; }
  sim::CampusNetwork& network() noexcept { return simulator_->network(); }
  store::DataStore& store() noexcept { return store_; }
  const capture::CaptureEngine& capture_engine() const noexcept {
    return engine_;
  }
  const capture::FlowMeter& flow_meter() const noexcept { return meter_; }
  features::PacketDatasetCollector& collector() noexcept {
    return collector_;
  }
  /// Present only when archive_directory was configured.
  std::optional<store::PacketArchive>& archive() noexcept {
    return archive_;
  }
  /// Present unless enable_sensors was false.
  const std::optional<SensorEmulator>& sensors() const noexcept {
    return sensors_;
  }

  /// Register an extra consumer of captured packets (e.g. a canary).
  void add_observer(capture::CaptureEngine::Sink sink) {
    engine_.add_sink(std::move(sink));
  }

  /// Flush in-flight flows into the store and return the collected
  /// packet dataset (leaves the collector collecting afresh).
  ml::Dataset harvest_dataset();

  /// Flush in-flight flows into the store without touching the
  /// collector (e.g. before ad-hoc store queries mid-run).
  void flush_flows() {
    engine_.drain();
    meter_.flush();
  }

 private:
  TestbedConfig config_;
  std::unique_ptr<sim::CampusSimulator> simulator_;
  capture::CaptureEngine engine_;
  capture::FlowMeter meter_;
  store::DataStore store_;
  features::PacketDatasetCollector collector_;
  std::optional<store::PacketArchive> archive_;
  std::optional<SensorEmulator> sensors_;
};

}  // namespace campuslab::testbed

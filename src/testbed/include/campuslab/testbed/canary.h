// CanaryDeployment — mirror-only scoring before enforcement.
//
// Operators do not flip a new model straight to "drop": the canary
// runs the exact deployed pipeline against mirrored traffic, counting
// what it *would* have dropped. Because road-test attacks are injected
// by the researcher, ground truth is available, and the canary reports
// honest would-be precision/recall. promote-worthiness is a simple
// threshold question the operator can read off.
#pragma once

#include <memory>

#include "campuslab/control/development_loop.h"
#include "campuslab/testbed/testbed.h"

namespace campuslab::testbed {

struct CanaryStats {
  std::uint64_t observed = 0;
  std::uint64_t would_drop_attack = 0;
  std::uint64_t would_drop_benign = 0;
  std::uint64_t passed_attack = 0;
  std::uint64_t passed_benign = 0;

  double would_drop_precision() const noexcept {
    const auto total = would_drop_attack + would_drop_benign;
    return total == 0 ? 0.0
                      : static_cast<double>(would_drop_attack) /
                            static_cast<double>(total);
  }
  double would_block_rate() const noexcept {
    const auto total = would_drop_attack + passed_attack;
    return total == 0 ? 0.0
                      : static_cast<double>(would_drop_attack) /
                            static_cast<double>(total);
  }
  double would_benign_loss() const noexcept {
    const auto total = would_drop_benign + passed_benign;
    return total == 0 ? 0.0
                      : static_cast<double>(would_drop_benign) /
                            static_cast<double>(total);
  }
};

class CanaryDeployment {
 public:
  /// Instantiates the package's pipeline in mirror mode.
  static Result<std::unique_ptr<CanaryDeployment>> create(
      const control::DeploymentPackage& package);

  /// Register on a testbed's capture path (observes inbound packets).
  void attach(Testbed& testbed);

  /// Feed one packet directly. The view-taking form is the parse-once
  /// path used by attach(); the two-argument form re-parses.
  void observe(const packet::Packet& pkt, const packet::PacketView& view,
               sim::Direction dir);
  void observe(const packet::Packet& pkt, sim::Direction dir) {
    observe(pkt, packet::PacketView(pkt), dir);
  }

  const CanaryStats& stats() const noexcept { return stats_; }

  /// Operator gate: enough evidence and acceptable precision/recall?
  bool ready_to_promote(double min_precision, double min_block_rate,
                        std::uint64_t min_observed = 1000) const noexcept;

  /// evaluate() against this gate returns ok when the canary has seen
  /// enough traffic AND clears every quality floor; otherwise the
  /// Status carries a stable, machine-readable code the automation
  /// loop branches on:
  ///
  ///   canary_underobserved — not enough mirrored packets yet
  ///                          (transient: extend the canary window);
  ///   canary_precision     — would-drop precision below floor;
  ///   canary_block_rate    — attack block rate below floor;
  ///   canary_benign_loss   — benign would-drop rate above ceiling.
  ///
  /// The quality codes are permanent for this candidate: roll back.
  struct Gate {
    double min_precision = 0.9;
    double min_block_rate = 0.5;
    double max_benign_loss = 0.05;
    std::uint64_t min_observed = 1000;
  };
  Status evaluate(const Gate& gate) const;

 private:
  CanaryDeployment(control::AutomationTask task,
                   std::unique_ptr<dataplane::SoftwareSwitch> sw)
      : task_(std::move(task)), switch_(std::move(sw)) {}

  control::AutomationTask task_;
  std::unique_ptr<dataplane::SoftwareSwitch> switch_;
  CanaryStats stats_;
};

}  // namespace campuslab::testbed

// RoadTestReport — the end-of-road-test artifact an operator and a
// researcher review together: what the model claimed (trust report),
// what the canary predicted, what enforcement actually did to attack
// and benign traffic, and whether the safety net had to act.
#pragma once

#include <string>

#include "campuslab/control/fast_loop.h"
#include "campuslab/testbed/canary.h"
#include "campuslab/testbed/safety.h"

namespace campuslab::testbed {

struct RoadTestReport {
  std::string task_name;
  // From the development loop.
  double student_holdout_accuracy = 0.0;
  double holdout_fidelity = 0.0;
  std::string resources;
  // From the canary phase.
  CanaryStats canary;
  // From enforcement.
  control::MitigationStats enforcement;
  double mean_inspect_latency_ns = 0.0;
  // From the safety monitor.
  bool rolled_back = false;
  // Network-level outcome: benign frames lost to congestion on the
  // access link during enforcement (the collateral the filter should
  // have removed).
  std::uint64_t benign_lost_to_congestion = 0;

  std::string to_string() const;
};

RoadTestReport make_road_test_report(
    const control::DeploymentPackage& package,
    const CanaryDeployment& canary, const control::FastLoop& loop,
    const SafetyMonitor& safety, const sim::CampusNetwork& network);

}  // namespace campuslab::testbed

// SensorEmulator — the §5 "complementary data from other available
// sensors or sources (e.g., server logs, firewall rules, configuration
// files, events)".
//
// Watches the same captured packet stream as everything else and emits
// the log events the campus's middleboxes and servers would have
// written, straight into the data store:
//
//   firewall   blocks on inbound SYNs to non-served ports (port scans
//              light this up)
//   sshd       failed-password entries for short inbound SSH exchanges
//              (brute force turns this into a drumbeat)
//   ids        signature alerts on oversized DNS responses
//   dhcp       routine lease renewals (the baseline hum every real
//              syslog has)
//
// The point is cross-source linkage: the store can then answer "show
// me everything about host X during the incident" across packets,
// flows and logs — see store/timeline.h.
#pragma once

#include <array>
#include <set>

#include "campuslab/capture/engine.h"
#include "campuslab/sim/topology.h"
#include "campuslab/store/datastore.h"
#include "campuslab/util/rng.h"

namespace campuslab::testbed {

struct SensorConfig {
  bool firewall = true;
  bool auth_log = true;
  bool ids = true;
  bool dhcp = true;
  /// Probability the firewall logs a given blocked probe (real
  /// firewalls rate-limit their own logging).
  double firewall_log_prob = 0.6;
  double auth_log_prob = 0.5;
  std::size_t ids_dns_threshold_bytes = 1600;
  Duration dhcp_period = Duration::minutes(2);
  std::uint64_t seed = 1;
};

struct SensorStats {
  std::uint64_t firewall_events = 0;
  std::uint64_t auth_events = 0;
  std::uint64_t ids_events = 0;
  std::uint64_t dhcp_events = 0;
};

class SensorEmulator {
 public:
  SensorEmulator(SensorConfig config, store::DataStore& store,
                 const sim::Topology& topology);

  /// Feed every captured packet (the testbed registers this as a
  /// capture sink). DHCP chatter is emitted on the packet clock.
  void observe(const capture::TaggedPacket& tagged);

  const SensorStats& stats() const noexcept { return stats_; }

 private:
  bool port_served(packet::Ipv4Address dst,
                   std::uint16_t port) const noexcept;

  SensorConfig config_;
  store::DataStore* store_;
  const sim::Topology* topology_;
  Rng rng_;
  SensorStats stats_;
  Timestamp last_dhcp_{};
};

}  // namespace campuslab::testbed

// ContinualLoop — the development loop run *continually* on the live
// campus, after the Puffer "learning-and-deployment platform" the
// paper's related-work section builds on (§6, refs [6, 28] "continual
// learning improves Internet video streaming").
//
// On the simulation clock, every retrain_interval the loop:
//   1. harvests the window's labelled packet dataset from the testbed,
//   2. re-runs the development loop on it (skipping windows that lack
//      one of the classes — quiet periods train nothing),
//   3. scores the incumbent package on the fresh window,
//   4. promotes the candidate only if it beats the incumbent by
//      promote_margin, hot-swapping the installed fast loop,
//   5. records a ModelVersion entry either way.
//
// The payoff is drift resistance: when the attack profile changes, a
// static deployment decays, while the continual loop recovers within
// one window (the T-DRIFT experiment).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "campuslab/control/development_loop.h"
#include "campuslab/control/fast_loop.h"
#include "campuslab/testbed/testbed.h"

namespace campuslab::testbed {

struct ContinualConfig {
  control::DevelopmentConfig development;
  Duration retrain_interval = Duration::seconds(30);
  /// Candidate must beat the incumbent on the fresh window by at least
  /// this much to be promoted.
  double promote_margin = 0.01;
  /// Windows with fewer labelled rows than this are skipped outright.
  std::size_t min_window_rows = 500;
};

struct ModelVersion {
  int version = 0;
  Timestamp trained_at;
  double candidate_window_accuracy = 0.0;
  double incumbent_window_accuracy = 0.0;
  bool promoted = false;
  std::string note;  // "initial", "promoted", "kept incumbent", "skipped: ..."
  /// Stable machine-readable code for why this window produced no
  /// promotion; empty on success ("initial"/"promoted"/"kept
  /// incumbent"). Transient window codes (window_too_small,
  /// window_single_class) mean "try again next window"; anything else
  /// is the development loop's or deployment's own stable code.
  std::string error_code;
};

class ContinualLoop {
 public:
  /// The testbed's collector must be configured binary for the task in
  /// `config.development.task`. The loop must outlive the testbed run.
  ContinualLoop(ContinualConfig config, Testbed& testbed)
      : config_(std::move(config)), testbed_(&testbed) {}

  /// Train the initial model from whatever the collector holds now,
  /// install it, and schedule periodic retraining. Call after a
  /// data-gathering prefix has been simulated.
  Status start();

  const std::vector<ModelVersion>& history() const noexcept {
    return history_;
  }
  /// Currently installed model's package; nullopt before start().
  const std::optional<control::DeploymentPackage>& incumbent()
      const noexcept {
    return incumbent_;
  }
  const control::FastLoop* active_loop() const noexcept {
    return loop_.get();
  }
  int promotions() const noexcept;

  /// Run one retrain window now (the tick calls this; tests may too).
  /// A failed window returns its stable code — window_too_small /
  /// window_single_class for transient skips, the development loop's or
  /// deployment's own code otherwise — and always appends a history
  /// entry carrying the same code. Keeping the incumbent is ok(): the
  /// loop declined, nothing failed.
  Status retrain_once();

 private:
  void retrain_tick();
  Status install(control::DeploymentPackage package, const char* note,
                 double candidate_acc, double incumbent_acc);

  ContinualConfig config_;
  Testbed* testbed_;
  std::optional<control::DeploymentPackage> incumbent_;
  std::unique_ptr<control::FastLoop> loop_;
  std::vector<ModelVersion> history_;
  int next_version_ = 1;
};

}  // namespace campuslab::testbed

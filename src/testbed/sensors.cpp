#include "campuslab/testbed/sensors.h"

#include "campuslab/packet/view.h"

namespace campuslab::testbed {

using packet::PacketView;

SensorEmulator::SensorEmulator(SensorConfig config,
                               store::DataStore& store,
                               const sim::Topology& topology)
    : config_(config), store_(&store), topology_(&topology),
      rng_(config.seed) {}

bool SensorEmulator::port_served(packet::Ipv4Address dst,
                                 std::uint16_t port) const noexcept {
  // The DMZ serves its well-known ports; clients serve nothing.
  if (dst == topology_->web_server().endpoint.ip)
    return port == 80 || port == 443;
  if (dst == topology_->dns_server().endpoint.ip) return port == 53;
  if (dst == topology_->mail_server().endpoint.ip) return port == 25;
  if (dst == topology_->ssh_gateway().endpoint.ip) return port == 22;
  if (dst == topology_->storage_server().endpoint.ip) return port == 873;
  return false;
}

void SensorEmulator::observe(const capture::TaggedPacket& tagged) {
  const auto& pkt = tagged.pkt;

  // Routine infrastructure hum, driven by the virtual clock.
  if (config_.dhcp && pkt.ts - last_dhcp_ >= config_.dhcp_period) {
    last_dhcp_ = pkt.ts;
    const auto& clients = topology_->clients();
    if (!clients.empty()) {
      const auto& host = clients[rng_.below(clients.size())];
      store_->ingest_log(store::LogEvent{
          pkt.ts, "dhcp", 0, host.endpoint.ip, "lease renewed"});
      ++stats_.dhcp_events;
    }
  }

  if (tagged.dir != sim::Direction::kInbound) return;
  // Parse-once: the decode cached at the tap rides in on the tagged
  // packet.
  const PacketView& view = tagged.view;
  if (!view.valid() || !view.is_ipv4()) return;
  const auto tuple = view.five_tuple();
  if (!tuple) return;

  // Firewall: inbound connection attempts to ports nothing serves.
  if (config_.firewall && view.is_tcp() && view.tcp().syn() &&
      !view.tcp().ack_flag() && !port_served(tuple->dst, tuple->dst_port) &&
      topology_->is_campus(tuple->dst)) {
    if (rng_.chance(config_.firewall_log_prob)) {
      store_->ingest_log(store::LogEvent{
          pkt.ts, "firewall", 1, tuple->dst,
          "blocked " + tuple->src.to_string() + " -> port " +
              std::to_string(tuple->dst_port)});
      ++stats_.firewall_events;
    }
  }

  // sshd: auth traffic into the bastion.
  if (config_.auth_log && view.is_tcp() &&
      tuple->dst == topology_->ssh_gateway().endpoint.ip &&
      tuple->dst_port == 22 && !view.payload().empty()) {
    if (rng_.chance(config_.auth_log_prob)) {
      store_->ingest_log(store::LogEvent{
          pkt.ts, "sshd", 1, tuple->dst,
          "failed password for invalid user from " +
              tuple->src.to_string()});
      ++stats_.auth_events;
    }
  }

  // IDS: oversized DNS responses inbound.
  if (config_.ids && view.is_udp() && tuple->src_port == 53 &&
      view.payload().size() >= config_.ids_dns_threshold_bytes) {
    // Heavily sampled: a flood would otherwise drown the log store.
    if (rng_.chance(0.01)) {
      store_->ingest_log(store::LogEvent{
          pkt.ts, "ids", 2, tuple->dst,
          "oversized DNS response (" +
              std::to_string(view.payload().size()) + "B) from " +
              tuple->src.to_string()});
      ++stats_.ids_events;
    }
  }
}

}  // namespace campuslab::testbed

// campuslab::obs — per-stage latency tracing.
//
// StageTimer is the RAII tracer dropped at every pipeline hop (tap
// decode, ring enqueue/dequeue, FlowMeter update, dataset append,
// DataStore ingest, FastLoop verdict, SoftwareSwitch apply). Each hop
// records wall-clock nanoseconds into a log2 Histogram named
// `pipeline_stage_ns{stage=<hop>}` in the global registry.
//
// Budget: the hot path must not pay two clock reads per packet per
// stage. Two knobs keep the overhead inside the <= 3% T-CAP target:
//
//   * a process-global enable flag — when tracing is off a StageTimer
//     is one relaxed atomic load;
//   * thread-local sampling — when on, only every Nth construction on
//     a given thread arms the timer (N a power of two, default 256).
//     Sampled latency distributions are unbiased for quantiles as long
//     as per-packet cost does not correlate with the sample phase,
//     which a fixed stride over a mixed workload does not.
//
// Histogram counts are therefore ~1/N of event counts; event counts
// come from the stage Counters, not from histograms.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>

#include "campuslab/obs/metrics.h"

namespace campuslab::obs {

namespace detail {
/// The two knobs packed into ONE atomic so the per-timer fast path is a
/// single relaxed load: kKnobOff when tracing is disabled, otherwise the
/// sample mask (period - 1, a power of two minus one, always < kKnobOff).
inline constexpr std::uint32_t kKnobOff = 0xFFFFFFFFu;
inline std::atomic<std::uint32_t> g_trace_knob{255};   // period 256, enabled
inline std::atomic<std::uint32_t> g_sample_mask{255};  // remembered mask
}  // namespace detail

inline void set_tracing_enabled(bool on) noexcept {
  detail::g_trace_knob.store(
      on ? detail::g_sample_mask.load(std::memory_order_relaxed)
         : detail::kKnobOff,
      std::memory_order_relaxed);
}
inline bool tracing_enabled() noexcept {
  return detail::g_trace_knob.load(std::memory_order_relaxed) !=
         detail::kKnobOff;
}

/// Sample every `period`th StageTimer per thread; rounded up to the
/// next power of two. Period 1 arms every timer (tests, benches).
void set_trace_sample_period(std::uint32_t period) noexcept;
std::uint32_t trace_sample_period() noexcept;

/// True when this construction should be traced (advances the
/// thread-local phase).
inline bool trace_sample_tick() noexcept {
  const auto knob = detail::g_trace_knob.load(std::memory_order_relaxed);
  if (knob == detail::kKnobOff) return false;
  thread_local std::uint32_t tick = 0;
  return (tick++ & knob) == 0;
}

inline std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The stage histogram `pipeline_stage_ns{stage=<name>}` in the global
/// registry. Resolve once and keep the reference (registration takes a
/// lock; observation does not).
Histogram& stage_histogram(std::string_view stage);

/// RAII stage tracer. Unarmed (disabled or off-phase) it costs two
/// relaxed loads; armed it adds two steady_clock reads and one
/// Histogram::observe.
class StageTimer {
 public:
  explicit StageTimer(Histogram& hist) noexcept
      : hist_(trace_sample_tick() ? &hist : nullptr),
        start_(hist_ ? monotonic_ns() : 0) {}
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer() {
    if (hist_ != nullptr) hist_->observe(monotonic_ns() - start_);
  }

  /// Discard this measurement (e.g. the operation failed and its
  /// latency would pollute the distribution).
  void cancel() noexcept { hist_ = nullptr; }
  bool armed() const noexcept { return hist_ != nullptr; }

 private:
  Histogram* hist_;
  std::uint64_t start_;
};

}  // namespace campuslab::obs

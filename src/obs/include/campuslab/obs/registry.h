// campuslab::obs — named metric registry and snapshot export.
//
// The registry is the pipeline's single export point: every stage
// registers its counters/gauges/histograms here under a stable name
// plus an optional label string ("shard=0", "stage=flow_update"), and
// an operator samples the whole pipeline with one snapshot() call that
// serializes to human-readable text or JSON.
//
// Concurrency model: registration is mutex-guarded and expected at
// construction time only — call sites resolve their metrics once and
// keep the returned reference. Metric objects are heap-allocated and
// never erased, so a reference stays valid for the registry's lifetime
// and updates through it take no lock. Metrics are identified by
// (kind, name, labels); looking up the same triple twice returns the
// same object, so two pipeline instances (e.g. two ShardedCaptureEngines
// in one process) aggregate into one time series.
//
// Gauges owned by live objects (ring occupancy, flow-table sizes) are
// exported via callbacks: register_callback() returns an RAII handle
// whose destruction unregisters, so a snapshot never samples a dead
// object. Callbacks that resolve to the same (name, labels) sum — the
// per-shard flow tables of one collector stay distinct via labels while
// two collectors' same-labelled tables aggregate, matching the
// counter semantics above.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "campuslab/obs/metrics.h"

namespace campuslab::obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One exported metric, flattened for presentation.
struct MetricSample {
  std::string name;
  std::string labels;  // "k=v" or "k=v,k2=v2"; empty when unlabelled
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;           // counter / gauge / callback value
  HistogramSnapshot histogram;  // kHistogram only
};

/// Point-in-time view of every registered metric, sorted by
/// (name, labels) for stable output.
struct RegistrySnapshot {
  std::vector<MetricSample> metrics;

  /// First metric matching name (and labels, when given); nullptr when
  /// absent.
  const MetricSample* find(std::string_view name,
                           std::string_view labels = {}) const noexcept;
  /// Counter/gauge value lookup with a default (histograms excluded).
  double value_or(std::string_view name, std::string_view labels,
                  double fallback) const noexcept;

  /// One metric per line: `name{labels} value` for counters/gauges,
  /// `name{labels} count=N p50=... p99=... p999=... mean=...` for
  /// histograms.
  std::string to_text() const;
  /// {"metrics":[{"name":...,"labels":...,"kind":...,...},...]}
  std::string to_json() const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry the pipeline wires into. Never destroyed
  /// (intentionally leaked via static storage), so references resolved
  /// from it are valid for the life of the process.
  static Registry& global();

  /// Get-or-create. References remain valid for the registry's
  /// lifetime; the same (name, labels) always yields the same object.
  Counter& counter(std::string_view name, std::string_view labels = {});
  Gauge& gauge(std::string_view name, std::string_view labels = {});
  Histogram& histogram(std::string_view name, std::string_view labels = {});

  /// RAII registration of a sampled-at-snapshot gauge. Movable; the
  /// surviving handle unregisters on destruction.
  class CallbackHandle {
   public:
    CallbackHandle() noexcept = default;
    CallbackHandle(CallbackHandle&& other) noexcept;
    CallbackHandle& operator=(CallbackHandle&& other) noexcept;
    CallbackHandle(const CallbackHandle&) = delete;
    CallbackHandle& operator=(const CallbackHandle&) = delete;
    ~CallbackHandle();

   private:
    friend class Registry;
    CallbackHandle(Registry* owner, std::uint64_t id) noexcept
        : owner_(owner), id_(id) {}
    Registry* owner_ = nullptr;
    std::uint64_t id_ = 0;
  };

  /// The callback runs inside snapshot() under the registry mutex: keep
  /// it cheap and lock-free (atomic loads, approximate sizes).
  [[nodiscard]] CallbackHandle register_callback(std::string name,
                                                 std::string labels,
                                                 std::function<double()> fn);

  RegistrySnapshot snapshot() const;

  /// Number of registered metrics (callbacks included).
  std::size_t size() const;

 private:
  struct Entry {
    MetricKind kind;
    std::string name;
    std::string labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Callback {
    std::string name;
    std::string labels;
    std::function<double()> fn;
  };

  void unregister_callback(std::uint64_t id);
  Entry& entry_for(MetricKind kind, std::string_view name,
                   std::string_view labels);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // key: kind marker + name{labels}
  std::map<std::uint64_t, Callback> callbacks_;
  std::uint64_t next_callback_id_ = 1;
};

}  // namespace campuslab::obs

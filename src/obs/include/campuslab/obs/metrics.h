// campuslab::obs — lock-cheap metric primitives.
//
// Three metric kinds, all safe to update concurrently from any thread:
//
//   Counter   — monotone event count (relaxed atomic add).
//   Gauge     — last-written level (queue depth, active tasks).
//   Histogram — log2-bucketed distribution with atomic buckets, built
//               for nanosecond latencies: observe() is two relaxed
//               fetch_adds, and a snapshot can answer p50/p99/p999 by
//               interpolating inside the power-of-two bucket that holds
//               the requested rank.
//
// Updates are memory_order_relaxed throughout: metrics observe the
// pipeline, they do not synchronize it. A snapshot taken mid-update may
// be a few events stale per thread but is never torn — every load is a
// whole atomic word. (Contrast with capture::ConcurrentCaptureStats,
// whose acquire/release snapshot invariants exist because callers make
// control decisions from it; nothing should branch on obs values.)
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace campuslab::obs {

/// Monotonically increasing event counter.
class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A level that goes up and down (depths, sizes, in-flight counts).
/// Integer-valued: every wired gauge is a count of things.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Point-in-time view of a Histogram; quantiles are computed here, off
/// the hot path. Bucket b >= 1 holds values in [2^(b-1), 2^b); bucket 0
/// holds exact zeros.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 65;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  double mean() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }

  /// Rank-interpolated quantile, q in [0, 1]. The true value lies within
  /// a factor of two of the estimate (the bucket width); for latency
  /// tails that resolution is the point of log2 bucketing.
  double quantile(double q) const noexcept;

  /// Windowed view: the observations recorded between `earlier` and
  /// this snapshot (element-wise difference). Histograms are cumulative
  /// and monotone, so diffing two snapshots of the SAME histogram is
  /// exact; quantiles of the delta answer "p99 over the last window",
  /// which is what health monitoring needs (a since-boot p99 never
  /// recovers after one storm).
  HistogramSnapshot since(const HistogramSnapshot& earlier) const noexcept {
    HistogramSnapshot d;
    for (std::size_t b = 0; b < kBuckets; ++b)
      d.buckets[b] = buckets[b] - earlier.buckets[b];
    d.count = count - earlier.count;
    d.sum = sum - earlier.sum;
    return d;
  }
};

/// Log2-bucketed histogram. observe() costs two relaxed fetch_adds and
/// one bit_width — no branches on bucket boundaries, no locks, no
/// allocation, so it is safe inside the per-packet path.
class Histogram {
 public:
  void observe(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Bucket index: 0 for v == 0, else bit_width(v) (1..64).
  static constexpr std::size_t bucket_of(std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  /// Upper bound (exclusive) of bucket b; lower bound is bound(b-1).
  static constexpr std::uint64_t bucket_upper(std::size_t b) noexcept {
    return b == 0 ? 1 : (b >= 64 ? ~std::uint64_t{0} : std::uint64_t{1} << b);
  }

  HistogramSnapshot snapshot() const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, HistogramSnapshot::kBuckets>
      buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace campuslab::obs
